#!/bin/sh
# Build and run the full tier-1 test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the asan-ubsan CMake preset, no
# sanitizer recovery - any finding fails the run).  The suite
# includes the fault-churn soak and the transient-fault tests, so
# the sever/teardown/watchdog paths get exercised under ASan too.
# Job counts honour the environment instead of hard-coding nproc:
#   NPROC                - build parallelism   (default: nproc)
#   CTEST_PARALLEL_LEVEL - test parallelism    (default: NPROC)
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -e
cd "$(dirname "$0")/.."
jobs="${NPROC:-$(nproc)}"
ctest_jobs="${CTEST_PARALLEL_LEVEL:-$jobs}"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$ctest_jobs" "$@"
