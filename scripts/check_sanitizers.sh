#!/bin/sh
# Build and run the full tier-1 test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the asan-ubsan CMake preset, no
# sanitizer recovery - any finding fails the run).  The suite
# includes the fault-churn soak and the transient-fault tests, so
# the sever/teardown/watchdog paths get exercised under ASan too.
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -e
cd "$(dirname "$0")/.."
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
