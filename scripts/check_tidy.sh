#!/bin/sh
# Run clang-tidy (config: the repo-root .clang-tidy) over the given
# source files, or over the protocol core when none are given.
#
# Exits 77 - the CTest SKIP_RETURN_CODE - when no clang-tidy binary
# exists, so environments without the LLVM toolchain skip instead of
# fail; never a silent pass.  Set RMB_TIDY_STRICT=1 to promote all
# warnings to errors.
# Usage: scripts/check_tidy.sh [file.cc...]
set -e
cd "$(dirname "$0")/.."

tidy=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
        tidy="$cand"
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "check_tidy: no clang-tidy binary found; skipping (77)" >&2
    exit 77
fi

# clang-tidy needs a compilation database; the default build exports
# one (CMAKE_EXPORT_COMPILE_COMMANDS in the top-level CMakeLists).
if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . >/dev/null
fi

strict=""
[ "${RMB_TIDY_STRICT:-0}" = "1" ] && strict="--warnings-as-errors=*"

files="$*"
[ -z "$files" ] && files="src/rmb/status_register.cc \
    src/rmb/cycle_fsm.cc src/check/explorer.cc"

# shellcheck disable=SC2086
exec "$tidy" -p build --quiet $strict $files
