#!/bin/sh
# Rebuild everything and regenerate the checked-in result files:
#   test_output.txt  - full ctest log
#   bench_output.txt - every experiment's regenerated tables
# Usage: scripts/regenerate.sh [--fast]
set -e
cd "$(dirname "$0")/.."
FAST=""
[ "$1" = "--fast" ] && FAST="--fast"
jobs="${NPROC:-$(nproc)}"
ctest_jobs="${CTEST_PARALLEL_LEVEL:-$jobs}"
cmake -B build -G Ninja
cmake --build build -j "$jobs"
ctest --test-dir build -j "$ctest_jobs" 2>&1 | tee test_output.txt
( for b in build/bench/*; do echo "### $b"; "$b" $FAST; echo; done ) \
    2>&1 | tee bench_output.txt
