#!/bin/sh
# Build the tsan CMake preset and run the *threaded* part of the
# suite - the experiment engine (exp::Runner thread pool, the sweep
# CLI's parallel runs, progress/eval reporting) - under
# ThreadSanitizer.  Any race aborts the run.
#
# Job counts honour the environment instead of hard-coding nproc:
#   NPROC                - build parallelism   (default: nproc)
#   CTEST_PARALLEL_LEVEL - test parallelism    (default: NPROC)
# Usage: scripts/check_tsan.sh [extra ctest args...]
set -e
cd "$(dirname "$0")/.."
jobs="${NPROC:-$(nproc)}"
ctest_jobs="${CTEST_PARALLEL_LEVEL:-$jobs}"
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"
# The threaded surface: exp unit tests, engine determinism under
# worker pools, and the sweep CLI end-to-end targets (which spin up
# 1..3 worker threads each).
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}" \
    ctest --preset tsan -j "$ctest_jobs" \
        -R 'exp_test|determinism_test|sweep_|fault_sweep_' "$@"
