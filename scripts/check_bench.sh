#!/bin/sh
# Kernel-vs-event throughput gate: run bench_microperf's speedup
# report (--fast --report) and compare it against the checked-in
# baseline (tests/data/BENCH_microperf.json) with tools/sweep
# compare.  Two ways to fail, both load-bearing:
#   - bench_microperf exits non-zero when the kernel's measured
#     speedup drops below the hard floor (10x on the default
#     16-node, 4-bus config);
#   - sweep compare exits non-zero when a gated baseline leaf (the
#     floor indicators) is missing or out of tolerance.
# Usage: scripts/check_bench.sh [bench_microperf sweep baseline.json]
# With no arguments, binaries are taken from ./build and the
# baseline from tests/data (the developer workflow; the bench_gate
# ctest passes explicit paths).
set -e

if [ $# -ge 3 ]; then
    bench="$1"
    sweep="$2"
    baseline="$3"
else
    cd "$(dirname "$0")/.."
    bench=build/bench/bench_microperf
    sweep=build/tools/sweep
    baseline=tests/data/BENCH_microperf.json
    if [ ! -x "$bench" ] || [ ! -x "$sweep" ]; then
        echo "check_bench: build bench_microperf and sweep first" \
            "(cmake --build build)" >&2
        exit 1
    fi
fi

fresh="${TMPDIR:-/tmp}/bench_microperf_fresh_$$.json"
trap 'rm -f "$fresh"' EXIT

"$bench" --fast --report "$fresh" --min-speedup 10
exec "$sweep" compare "$fresh" "$baseline"
