/**
 * @file
 * Quickstart: build a reconfigurable multiple bus network, send a
 * few messages, and read the statistics back.
 *
 *   $ ./examples/quickstart
 *
 * This is the smallest end-to-end use of the public API:
 *   1. create a sim::Simulator (the discrete-event clock),
 *   2. configure and create a core::RmbNetwork,
 *   3. send() messages (header flit -> Hack -> data flits -> Fack),
 *   4. run the simulator until the network is quiescent,
 *   5. inspect per-message records and aggregate statistics.
 */

#include <cstdio>

#include "rmb/network.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace rmb;

    // The simulation clock all components share.
    sim::Simulator simulator;

    // A 16-node ring with 4 reconfigurable buses between adjacent
    // interconnection network controllers (INCs).
    core::RmbConfig config;
    config.numNodes = 16;
    config.numBuses = 4;
    config.verify = core::VerifyLevel::Cheap;

    core::RmbNetwork network(simulator, config);

    // Send three messages: (source, destination, data flits).
    // Traffic flows clockwise; node 14 -> 2 wraps around the ring.
    const auto a = network.send(0, 5, 64);
    const auto b = network.send(3, 9, 128);
    const auto c = network.send(14, 2, 32);

    // Drive the event loop until everything is delivered.  (The
    // compaction clocks tick forever, so bound the loop by
    // quiescence, not by an empty event queue.)
    while (!network.quiescent())
        simulator.run(1024);

    std::printf("delivered %llu/%llu messages by tick %llu\n\n",
                static_cast<unsigned long long>(
                    network.stats().delivered),
                static_cast<unsigned long long>(
                    network.stats().injected),
                static_cast<unsigned long long>(simulator.now()));

    for (const auto id : {a, b, c}) {
        const net::Message &m = network.message(id);
        std::printf("message %llu: %2u -> %-2u  %4u flits  "
                    "setup %3llu ticks  total %4llu ticks\n",
                    static_cast<unsigned long long>(m.id), m.src,
                    m.dst, m.payloadFlits,
                    static_cast<unsigned long long>(
                        m.setupLatency()),
                    static_cast<unsigned long long>(
                        m.totalLatency()));
    }

    const auto &rs = network.rmbStats();
    std::printf("\ncompaction moves: %llu, top-bus release latency:"
                " %.1f ticks (mean)\n",
                static_cast<unsigned long long>(rs.compactionMoves),
                rs.topReleaseLatency.mean());
    return 0;
}
