/**
 * @file
 * The paper's motivating scenario (section 1): "real-time and
 * distributed multimedia systems" where delivering data within an
 * acceptable delay matters more than raw compute.
 *
 * Four long-lived media streams hold circuits across the ring while
 * sporadic short control messages are injected around them.  The
 * demo shows the property circuit switching buys: once established,
 * a stream's flits arrive with zero jitter (the virtual bus is
 * dedicated), while compaction keeps enough top-bus headroom for
 * the control traffic to weave between the streams.
 *
 *   $ ./examples/multimedia_stream
 */

#include <cstdio>
#include <vector>

#include "rmb/network.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

int
main()
{
    using namespace rmb;

    sim::Simulator simulator;
    core::RmbConfig config;
    config.numNodes = 24;
    config.numBuses = 4;
    config.verify = core::VerifyLevel::Cheap;
    core::RmbNetwork network(simulator, config);

    // --- media plane: four streams of 20 chunks each -------------
    struct Stream
    {
        net::NodeId src;
        net::NodeId dst;
        std::vector<net::MessageId> chunks;
    };
    std::vector<Stream> streams{
        {0, 9, {}}, {6, 15, {}}, {12, 21, {}}, {18, 3, {}}};
    constexpr std::uint32_t kChunkFlits = 256;
    constexpr int kChunks = 20;

    // --- control plane: short command messages --------------------
    sim::Random rng(7);
    std::vector<net::MessageId> control;

    // Interleave: every stream enqueues its next chunk as soon as
    // the previous one finished (the PE send port enforces this
    // ordering for us - we just enqueue them all); control traffic
    // arrives at random instants.
    for (auto &stream : streams)
        for (int chunk = 0; chunk < kChunks; ++chunk)
            stream.chunks.push_back(
                network.send(stream.src, stream.dst, kChunkFlits));

    for (int i = 0; i < 60; ++i) {
        simulator.schedule(
            rng.uniformRange(0, 20'000), [&network, &control, &rng] {
                const auto src = static_cast<net::NodeId>(
                    rng.uniformInt(24));
                auto dst = static_cast<net::NodeId>(
                    rng.uniformInt(23));
                if (dst >= src)
                    ++dst;
                control.push_back(network.send(src, dst, 4));
            });
    }

    simulator.runFor(20'000);
    while (!network.quiescent())
        simulator.run(2048);

    // --- report ----------------------------------------------------
    std::printf("multimedia demo on RMB(N=24, k=4), finished at"
                " tick %llu\n\n",
                static_cast<unsigned long long>(simulator.now()));

    for (const auto &stream : streams) {
        sim::SampleStat inter_arrival;
        sim::SampleStat stream_lat;
        sim::Tick last = 0;
        for (const auto id : stream.chunks) {
            const net::Message &m = network.message(id);
            stream_lat.add(static_cast<double>(m.totalLatency() -
                                               (m.firstAttempt -
                                                m.created)));
            if (last != 0)
                inter_arrival.add(
                    static_cast<double>(m.delivered - last));
            last = m.delivered;
        }
        std::printf("stream %2u->%-2u: chunk service %6.1f +- %5.1f"
                    " ticks, inter-arrival jitter (stddev) %.1f\n",
                    stream.src, stream.dst, stream_lat.mean(),
                    stream_lat.stddev(), inter_arrival.stddev());
    }

    sim::SampleStat control_lat;
    for (const auto id : control)
        control_lat.add(static_cast<double>(
            network.message(id).totalLatency()));
    std::printf("\ncontrol messages: %llu delivered, latency mean"
                " %.1f / p95 %.1f / max %.0f ticks\n",
                static_cast<unsigned long long>(control_lat.count()),
                control_lat.mean(), control_lat.percentile(95),
                control_lat.max());
    std::printf("\nThe streams' service times are flat (dedicated"
                " virtual buses; stddev ~ retry noise only) and the"
                " short control messages still get through - the"
                " compaction protocol keeps recycling the top bus"
                " under four standing streams.\n");
    return 0;
}
