/**
 * @file
 * Route a bit-reversal permutation through the RMB and render the
 * physical bus occupancy as ASCII frames while the compaction
 * protocol runs - a live version of the paper's Figures 2 and 3.
 *
 *   $ ./examples/permutation_route [N] [k]
 *
 * Each frame draws the N x k segment grid: rows are bus levels (top
 * row = injection bus k-1), columns are the inter-node gaps; a
 * letter names the virtual bus occupying a segment ('*' marks a
 * make-before-break dual segment).
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

void
drawFrame(const core::RmbNetwork &network, sim::Tick now)
{
    const auto &segments = network.segments();
    const auto n = segments.numGaps();
    const auto k = segments.numLevels();

    // Stable letters per live bus id.
    std::map<core::VirtualBusId, char> letter;
    for (const auto id : network.liveBusIds())
        letter[id] = static_cast<char>(
            'A' + static_cast<char>(letter.size() % 26));

    std::printf("t=%-6llu  live buses: %zu\n",
                static_cast<unsigned long long>(now),
                letter.size());
    for (int l = static_cast<int>(k) - 1; l >= 0; --l) {
        std::printf("  L%d %s|", l, l == static_cast<int>(k) - 1
                                       ? "(top)" : "     ");
        for (core::GapId g = 0; g < n; ++g) {
            const auto id = segments.occupant(g, l);
            if (id == core::kNoBus) {
                std::printf(" .");
                continue;
            }
            const core::VirtualBus *bus = network.bus(id);
            bool dual = false;
            for (const auto &h : bus->hops)
                if (h.gap == g && h.dualLevel == l)
                    dual = true;
            std::printf(" %c", dual ? '*' : letter[id]);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    const std::uint32_t n =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                 : 16;
    const std::uint32_t k =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                 : 4;

    sim::Simulator simulator;
    core::RmbConfig config;
    config.numNodes = n;
    config.numBuses = k;
    config.verify = core::VerifyLevel::Full;
    core::RmbNetwork network(simulator, config);

    const auto perm = workload::bitReversal(n);
    const auto pairs = workload::toPairs(perm);
    std::printf("bit-reversal permutation on RMB(N=%u, k=%u): %zu"
                " messages\n\n",
                n, k, pairs.size());
    for (const auto &[src, dst] : pairs)
        network.send(src, dst, 96);

    sim::Tick next_frame = 0;
    while (!network.quiescent() && simulator.now() < 1'000'000) {
        simulator.runUntil(next_frame);
        drawFrame(network, simulator.now());
        next_frame += 120;
    }
    while (!network.quiescent())
        simulator.run(1024);

    const auto &stats = network.stats();
    std::printf("\nall %llu messages delivered by tick %llu; mean"
                " latency %.1f, max %.0f; %llu compaction moves;"
                " max cycle skew %llu (Lemma 1 bound: 1)\n",
                static_cast<unsigned long long>(stats.delivered),
                static_cast<unsigned long long>(simulator.now()),
                stats.totalLatency.mean(), stats.totalLatency.max(),
                static_cast<unsigned long long>(
                    network.rmbStats().compactionMoves),
                static_cast<unsigned long long>(
                    network.rmbStats().maxCycleSkew));
    return 0;
}
