/**
 * @file
 * Fault-tolerance demo: kill bus segments while traffic flows and
 * watch the RMB route and compact around them.
 *
 *   $ ./examples/fault_tolerance
 *
 * Shows (1) the utilization heatmap with dead segments marked, and
 * (2) the header-policy finding from experiment E18: top-bus
 * headers survive scattered faults that permanently trap
 * eager-descent headers.
 */

#include <iostream>

#include "report/report.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

void
demo(core::HeaderPolicy policy, const char *label)
{
    sim::Simulator simulator;
    core::RmbConfig config;
    config.numNodes = 16;
    config.numBuses = 4;
    config.headerPolicy = policy;
    config.maxRetries = 50;
    core::RmbNetwork network(simulator, config);

    // Kill the two lowest levels of gap 8 - the trap configuration.
    network.failSegment(8, 0);
    network.failSegment(8, 1);

    sim::Random rng(3);
    const auto pairs = workload::toPairs(
        workload::randomFullTraffic(16, rng));
    const auto result = workload::runBatch(network, pairs, 48,
                                           2'000'000);

    std::cout << "--- " << label << " ---\n";
    std::cout << (result.completed ? "all " : "only ")
              << result.delivered << "/" << pairs.size()
              << " messages delivered ("
              << network.stats().failed << " failed permanently), "
              << "makespan " << result.makespan << " ticks, "
              << result.retries << " retries\n";
    report::utilizationHeatmap(std::cout, network,
                               simulator.now());
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "RMB(N=16, k=4) with segments (8,0) and (8,1)"
                 " faulted, random permutation:\n\n";
    demo(rmb::core::HeaderPolicy::PreferStraight,
         "top-bus headers (fault tolerant)");
    demo(rmb::core::HeaderPolicy::PreferLowest,
         "eager-descent headers (trapped at gap 8)");
    std::cout << "The eager policy descends to the bottom levels"
                 " and arrives at gap 8 unable to reach the"
                 " surviving segments (inputs switch only one"
                 " level); messages whose paths cross gap 8 burn"
                 " their retries and fail.  Top-bus headers ride"
                 " level 3, which can never be faulted.  See"
                 " bench_faults / EXPERIMENTS.md E18.\n";
    return 0;
}
