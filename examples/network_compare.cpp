/**
 * @file
 * Run the same workload over the RMB and every baseline topology
 * through the shared net::Network interface, and print a side-by-
 * side comparison - a minimal version of the E6 bench that shows
 * how to drive heterogeneous networks from one harness.
 *
 *   $ ./examples/network_compare
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/fattree.hh"
#include "baselines/hypercube.hh"
#include "baselines/mesh.hh"
#include "baselines/multibus.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

int
main()
{
    using namespace rmb;

    constexpr std::uint32_t kNodes = 16;
    constexpr std::uint32_t kBuses = 4;
    constexpr std::uint32_t kPayload = 48;

    // One workload, many networks: a random fixed-point-free
    // permutation.
    sim::Random rng(99);
    const auto pairs = workload::toPairs(
        workload::randomFullTraffic(kNodes, rng));

    TextTable table("random permutation, N = 16, payload 48 flits",
                    {"network", "makespan", "mean latency",
                     "mean hops", "nacks", "retries"});

    for (int which = 0; which < 6; ++which) {
        sim::Simulator simulator;
        std::unique_ptr<net::Network> network;
        baseline::CircuitConfig circuit;
        switch (which) {
          case 0: {
            core::RmbConfig cfg;
            cfg.numNodes = kNodes;
            cfg.numBuses = kBuses;
            network = std::make_unique<core::RmbNetwork>(simulator,
                                                         cfg);
            break;
          }
          case 1:
            network = std::make_unique<baseline::IdealRingNetwork>(
                simulator, kNodes, kBuses, circuit);
            break;
          case 2:
            network = std::make_unique<baseline::HypercubeNetwork>(
                simulator, 4, circuit);
            break;
          case 3:
            network = std::make_unique<baseline::FatTreeNetwork>(
                simulator, kNodes, kBuses, circuit);
            break;
          case 4:
            network = std::make_unique<baseline::MeshNetwork>(
                simulator, 4, 4, circuit);
            break;
          case 5:
            network = std::make_unique<baseline::MultiBusNetwork>(
                simulator, kNodes, kBuses, circuit);
            break;
        }

        const auto result =
            workload::runBatch(*network, pairs, kPayload);
        table.addRow(
            {network->name(),
             TextTable::num(
                 static_cast<std::uint64_t>(result.makespan)),
             TextTable::num(result.meanLatency, 1),
             TextTable::num(network->stats().pathLength.mean(), 2),
             TextTable::num(
                 static_cast<std::uint64_t>(result.nacks)),
             TextTable::num(
                 static_cast<std::uint64_t>(result.retries))});
    }

    table.print(std::cout);
    std::printf("\nSee bench_permutation_compare for the full"
                " experiment (more sizes, more patterns, averaged"
                " trials) and bench_cost_* for the hardware-cost"
                " side of the trade.\n");
    return 0;
}
