/**
 * @file
 * Interactive explorer for the section-3.2 hardware cost models:
 * pass N and k on the command line and get the full comparison
 * table for that design point.
 *
 *   $ ./examples/cost_explorer 256 8
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/cost_model.hh"
#include "analysis/extended_costs.hh"
#include "analysis/switch_structure.hh"
#include "common/bitutils.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;
    using namespace rmb::analysis;

    const std::uint64_t n =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
    const std::uint64_t k =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

    if (!isPowerOfTwo(n) || !isPowerOfTwo(k) || k < 1 || k > n ||
        n % k != 0) {
        std::fprintf(stderr,
                     "usage: cost_explorer [N] [k] with N, k powers"
                     " of two, k <= N (constraints of the hypercube"
                     " and fat-tree models)\n");
        return 1;
    }

    TextTable t("hardware to support a " + std::to_string(k) +
                    "-permutation over " + std::to_string(n) +
                    " nodes (paper section 3.2)",
                {"architecture", "links", "cross points", "area",
                 "bisection (xB)", "constraint"});
    for (const auto &arch : allArchitectures()) {
        const Costs c = arch.costs(n, k);
        t.addRow({arch.name, TextTable::num(c.links),
                  TextTable::num(c.crossPoints),
                  TextTable::num(c.area),
                  TextTable::num(c.bisection), arch.constraint});
    }
    t.print(std::cout);

    // The systems this reproduction builds beyond the paper's set.
    TextTable x("extended systems at the same design point"
                " (this reproduction's accounting)",
                {"architecture", "links", "cross points", "area",
                 "bisection (xB)"});
    const Costs dual = dualRingRmbCosts(n, k);
    x.addRow({"RMB dual ring (2x" + std::to_string(k) + ")",
              TextTable::num(dual.links),
              TextTable::num(dual.crossPoints),
              TextTable::num(dual.area),
              TextTable::num(dual.bisection)});
    if (isPowerOfTwo(n)) {
        const auto side = static_cast<std::uint64_t>(1)
                          << (log2Floor(n) / 2);
        const Costs torus = rmbTorusCosts(side, n / side, k);
        x.addRow({"RMB torus (" + std::to_string(side) + "x" +
                      std::to_string(n / side) + ")",
                  TextTable::num(torus.links),
                  TextTable::num(torus.crossPoints),
                  TextTable::num(torus.area),
                  TextTable::num(torus.bisection)});
    }
    const Costs cube = karyNcubeCosts(4, log2Floor(n) / 2);
    x.addRow({"4-ary " + std::to_string(log2Floor(n) / 2) +
                  "-cube",
              TextTable::num(cube.links),
              TextTable::num(cube.crossPoints),
              TextTable::num(cube.area),
              TextTable::num(cube.bisection)});
    x.print(std::cout);

    std::cout << "\nExact RMB cross points from the constructed"
                 " switch (N*(3k-2), vs the paper's 3Nk): "
              << exactRmbCrossPoints(n, k) << " (+"
              << 2 * n * k
              << " PE-access mux points if counted)\n";

    std::cout << "\nReading guide: the RMB spends more links than"
                 " the fat tree but needs only 3 cross points per"
                 " output port and unit-length wires; the hypercube"
                 " family pays Theta(N^2) area.  See DESIGN.md"
                 " experiments E1-E4.\n";
    return 0;
}
