/**
 * @file
 * rmbsim - command-line driver for the RMB simulator.
 *
 * Runs a workload against any of the implemented networks and
 * prints a statistics table; can also record the generated workload
 * to a trace file or replay a previously recorded trace, so the
 * exact same communication pattern can be compared across networks.
 *
 * Examples:
 *   rmbsim --network rmb --nodes 32 --buses 4 \
 *          --workload bitrev --payload 64
 *   rmbsim --network torus --width 8 --height 4 --buses 2 \
 *          --workload uniform --rate 0.002 --duration 50000
 *   rmbsim --network rmb --nodes 16 --buses 4 \
 *          --workload uniform --rate 0.001 --duration 20000 \
 *          --record /tmp/u.trace
 *   rmbsim --network multibus --nodes 16 --buses 4 \
 *          --replay /tmp/u.trace
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fattree.hh"
#include "baselines/hypercube.hh"
#include "baselines/mesh.hh"
#include "baselines/multibus.hh"
#include "baselines/wormhole_ring.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/json.hh"
#include "obs/run_report.hh"
#include "obs/sinks.hh"
#include "obs/timeline.hh"
#include "rmb/dual_ring.hh"
#include "rmb/engine.hh"
#include "rmb/grid.hh"
#include "rmb/network.hh"
#include "report/report.hh"
#include "rmb/torus.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"
#include "workload/trace.hh"
#include "workload/traffic.hh"

namespace {

using namespace rmb;

struct Options
{
    std::string network = "rmb";
    /** --engine: RMB backend (event | kernel). */
    std::string engine = "event";
    std::uint32_t nodes = 16;
    std::uint32_t buses = 4;
    std::uint32_t width = 4;
    std::uint32_t height = 4;
    std::string dims = "4x4x4";
    std::string workload = "randperm";
    double rate = 0.001;
    std::uint32_t payload = 32;
    sim::Tick duration = 50'000;
    std::uint64_t seed = 1;
    std::string blocking = "nack";
    std::string header = "lowest";
    std::uint32_t sendPorts = 1;
    std::uint32_t receivePorts = 1;
    bool compaction = true;
    /** --fault-mtbf: 0 keeps the transient-fault process off. */
    sim::Tick faultMtbf = 0;
    sim::Tick faultMttrMin = 500;
    sim::Tick faultMttrMax = 2'000;
    sim::Tick watchdog = 0;
    std::uint32_t maxRetries = 0;
    std::string record;
    std::string replay;
    bool csv = false;
    bool json = false;
    /** --json FILE: write an obs::RunReport there instead of
     *  printing the stats JSON to stdout. */
    std::string jsonPath;
    /** --trace FILE: stream every protocol event there as JSONL. */
    std::string tracePath;
    /** --timeline T: sample period in ticks; 0 = duration/100. */
    sim::Tick timeline = 0;
    bool heatmap = false;
};

/**
 * Prints the option summary and exits: to stdout with code 0 when
 * the user asked for it (--help), to stderr with code 2 on a
 * command-line mistake.
 */
[[noreturn]] void
usage(int code = 2)
{
    (code == 0 ? std::cout : std::cerr)
        << "usage: rmbsim [options]\n"
           "  --network   rmb|dualring|torus|grid|ring|mesh|"
           "hypercube|ehc|fattree|multibus|wormhole\n"
           "  --engine    event|kernel    (rmb backend)\n"
           "  --nodes N --buses K        (ring-like networks)\n"
           "  --width W --height H       (torus / mesh)\n"
           "  --dims AxBxC                (grid)\n"
           "  --workload  randperm|bitrev|shuffle|transpose|"
           "tornado|rot:<s>|uniform|local:<d>|hotspot:<f>\n"
           "  --rate R --duration T      (stochastic workloads)\n"
           "  --payload FLITS --seed S\n"
           "  --blocking  nack|wait|wait:<timeout>\n"
           "  --header    lowest|straight\n"
           "  --ports S,R                (send,receive ports/PE)\n"
           "  --no-compaction\n"
           "  --fault-mtbf T             (transient faults, mean\n"
           "                              ticks between faults)\n"
           "  --fault-mttr MIN,MAX       (repair delay range)\n"
           "  --watchdog T               (source watchdog timeout)\n"
           "  --max-retries N            (0 = unlimited)\n"
           "  --record FILE | --replay FILE\n"
           "  --csv | --json [FILE] | --heatmap\n"
           "  --trace FILE               (JSONL protocol events)\n"
           "  --timeline T               (report sample period,\n"
           "                              default duration/100)\n"
           "  --help | -h\n";
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--network") {
            o.network = need(i);
        } else if (arg == "--engine") {
            o.engine = need(i);
        } else if (arg == "--nodes") {
            o.nodes = static_cast<std::uint32_t>(
                std::stoul(need(i)));
        } else if (arg == "--buses") {
            o.buses = static_cast<std::uint32_t>(
                std::stoul(need(i)));
        } else if (arg == "--width") {
            o.width = static_cast<std::uint32_t>(
                std::stoul(need(i)));
        } else if (arg == "--height") {
            o.height = static_cast<std::uint32_t>(
                std::stoul(need(i)));
        } else if (arg == "--dims") {
            o.dims = need(i);
        } else if (arg == "--workload") {
            o.workload = need(i);
        } else if (arg == "--rate") {
            o.rate = std::stod(need(i));
        } else if (arg == "--payload") {
            o.payload = static_cast<std::uint32_t>(
                std::stoul(need(i)));
        } else if (arg == "--duration") {
            o.duration = std::stoull(need(i));
        } else if (arg == "--seed") {
            o.seed = std::stoull(need(i));
        } else if (arg == "--blocking") {
            o.blocking = need(i);
        } else if (arg == "--header") {
            o.header = need(i);
        } else if (arg == "--ports") {
            const std::string v = need(i);
            const auto comma = v.find(',');
            if (comma == std::string::npos)
                usage();
            o.sendPorts = static_cast<std::uint32_t>(
                std::stoul(v.substr(0, comma)));
            o.receivePorts = static_cast<std::uint32_t>(
                std::stoul(v.substr(comma + 1)));
        } else if (arg == "--no-compaction") {
            o.compaction = false;
        } else if (arg == "--fault-mtbf") {
            o.faultMtbf = std::stoull(need(i));
        } else if (arg == "--fault-mttr") {
            const std::string v = need(i);
            const auto comma = v.find(',');
            if (comma == std::string::npos)
                usage();
            o.faultMttrMin = std::stoull(v.substr(0, comma));
            o.faultMttrMax = std::stoull(v.substr(comma + 1));
        } else if (arg == "--watchdog") {
            o.watchdog = std::stoull(need(i));
        } else if (arg == "--max-retries") {
            o.maxRetries = static_cast<std::uint32_t>(
                std::stoul(need(i)));
        } else if (arg == "--record") {
            o.record = need(i);
        } else if (arg == "--replay") {
            o.replay = need(i);
        } else if (arg == "--csv") {
            o.csv = true;
        } else if (arg == "--json") {
            o.json = true;
            // Optional argument: a bare --json keeps the legacy
            // stats-JSON-to-stdout behaviour.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                o.jsonPath = argv[++i];
        } else if (arg == "--trace") {
            o.tracePath = need(i);
        } else if (arg == "--timeline") {
            o.timeline = std::stoull(need(i));
        } else if (arg == "--heatmap") {
            o.heatmap = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
        }
    }
    return o;
}

core::RmbConfig
rmbConfig(const Options &o)
{
    core::RmbConfig cfg;
    if (o.engine == "kernel")
        cfg.engine = core::EngineKind::Kernel;
    else if (o.engine != "event")
        fatal("unknown engine '", o.engine, "' (event | kernel)");
    cfg.numNodes = o.nodes;
    cfg.numBuses = o.buses;
    cfg.seed = o.seed;
    cfg.enableCompaction = o.compaction;
    if (o.faultMtbf > 0) {
        cfg.transientFaults = true;
        cfg.faultMtbf = o.faultMtbf;
        cfg.faultMttrMin = o.faultMttrMin;
        cfg.faultMttrMax = o.faultMttrMax;
    }
    cfg.watchdogTimeout = o.watchdog;
    cfg.maxRetries = o.maxRetries;
    cfg.sendPorts = o.sendPorts;
    cfg.receivePorts = o.receivePorts;
    cfg.headerPolicy = o.header == "straight"
                           ? core::HeaderPolicy::PreferStraight
                           : core::HeaderPolicy::PreferLowest;
    if (o.blocking == "wait") {
        cfg.blocking = core::BlockingPolicy::Wait;
    } else if (o.blocking.rfind("wait:", 0) == 0) {
        cfg.blocking = core::BlockingPolicy::Wait;
        cfg.headerTimeout = std::stoull(o.blocking.substr(5));
    } else if (o.blocking == "nack") {
        cfg.blocking = core::BlockingPolicy::NackRetry;
    } else {
        fatal("unknown blocking policy '", o.blocking, "'");
    }
    return cfg;
}

std::unique_ptr<net::Network>
makeNetwork(const Options &o, sim::Simulator &simulator)
{
    baseline::CircuitConfig circuit;
    circuit.seed = o.seed;
    if (o.network == "rmb") {
        // Backend selection (--engine) happens inside makeEngine;
        // everything downstream sees only the core::Engine contract.
        return core::makeEngine(simulator, rmbConfig(o));
    }
    if (o.network == "dualring") {
        return std::make_unique<core::DualRingRmbNetwork>(
            simulator, rmbConfig(o));
    }
    if (o.network == "torus") {
        core::RmbConfig cfg = rmbConfig(o);
        return std::make_unique<core::RmbTorusNetwork>(
            simulator, o.width, o.height, cfg);
    }
    if (o.network == "grid") {
        std::vector<std::uint32_t> dims;
        std::size_t pos = 0;
        while (pos < o.dims.size()) {
            const auto x = o.dims.find('x', pos);
            const auto part = o.dims.substr(
                pos, x == std::string::npos ? std::string::npos
                                            : x - pos);
            if (part.empty())
                fatal("bad --dims '", o.dims, "'");
            dims.push_back(static_cast<std::uint32_t>(
                std::stoul(part)));
            pos = x == std::string::npos ? o.dims.size() : x + 1;
        }
        return std::make_unique<core::RmbGridNetwork>(
            simulator, dims, rmbConfig(o));
    }
    if (o.network == "ring") {
        return std::make_unique<baseline::IdealRingNetwork>(
            simulator, o.nodes, o.buses, circuit);
    }
    if (o.network == "mesh") {
        return std::make_unique<baseline::MeshNetwork>(
            simulator, o.width, o.height, circuit);
    }
    if (o.network == "hypercube" || o.network == "ehc") {
        if (!isPowerOfTwo(o.nodes))
            fatal("hypercube needs --nodes = 2^n");
        return std::make_unique<baseline::HypercubeNetwork>(
            simulator, log2Floor(o.nodes), circuit,
            o.network == "ehc");
    }
    if (o.network == "fattree") {
        return std::make_unique<baseline::FatTreeNetwork>(
            simulator, o.nodes, o.buses, circuit);
    }
    if (o.network == "multibus") {
        return std::make_unique<baseline::MultiBusNetwork>(
            simulator, o.nodes, o.buses, circuit);
    }
    if (o.network == "wormhole") {
        baseline::WormholeConfig cfg;
        cfg.vcsPerClass = o.buses / 2 ? o.buses / 2 : 1;
        return std::make_unique<baseline::WormholeRingNetwork>(
            simulator, o.nodes, cfg);
    }
    fatal("unknown network '", o.network, "'");
}

/** Batch (permutation) workloads return a pair list; stochastic
 *  ones return empty and use rate/duration. */
workload::PairList
batchWorkload(const Options &o, net::NodeId n, sim::Random &rng)
{
    const std::string &w = o.workload;
    if (w == "randperm")
        return workload::toPairs(
            workload::randomFullTraffic(n, rng));
    if (w == "bitrev")
        return workload::toPairs(workload::bitReversal(n));
    if (w == "shuffle")
        return workload::toPairs(workload::perfectShuffle(n));
    if (w == "transpose")
        return workload::toPairs(workload::transpose(n));
    if (w == "tornado")
        return workload::toPairs(workload::rotation(n, n / 2));
    if (w.rfind("rot:", 0) == 0) {
        return workload::toPairs(workload::rotation(
            n, static_cast<net::NodeId>(
                   std::stoul(w.substr(4)) % n)));
    }
    return {};
}

std::unique_ptr<workload::TrafficPattern>
stochasticWorkload(const Options &o, net::NodeId n)
{
    const std::string &w = o.workload;
    if (w == "uniform")
        return std::make_unique<workload::UniformTraffic>(n);
    if (w.rfind("local:", 0) == 0) {
        return std::make_unique<workload::LocalRingTraffic>(
            n, static_cast<net::NodeId>(std::stoul(w.substr(6))));
    }
    if (w.rfind("hotspot:", 0) == 0) {
        return std::make_unique<workload::HotSpotTraffic>(
            n, 0, std::stod(w.substr(8)));
    }
    return nullptr;
}

/** Fixed-schema per-kind event tallies for the report. */
std::string
traceCountsJson(const obs::CountingSink &counts)
{
    obs::JsonWriter json;
    json.beginObject();
    json.beginObject("events");
    for (std::size_t k = 0; k < obs::kNumEventKinds; ++k) {
        const auto kind = static_cast<obs::EventKind>(k);
        json.field(obs::eventKindName(kind), counts.count(kind));
    }
    json.endObject();
    json.field("total", counts.total());
    json.endObject();
    return json.str();
}

void
writeReport(const Options &o, const net::Network &network,
            sim::Tick now, const obs::CountingSink *counts,
            const obs::TimelineSampler *timeline)
{
    obs::RunReport report("rmbsim");
    report.set("network", o.network);
    report.set("workload", o.workload);
    report.set("nodes", std::uint64_t{network.numNodes()});
    report.set("payload", std::uint64_t{o.payload});
    report.set("seed", o.seed);
    report.set("ticks", static_cast<std::uint64_t>(now));
    report.setRaw("stats", report::statsToJson(network, now));
    report.setRaw("metrics", network.metrics().snapshot(now));
    if (counts != nullptr)
        report.setRaw("trace", traceCountsJson(*counts));
    if (timeline != nullptr)
        report.setRaw("timeline", timeline->toJson());
    report.write(o.jsonPath);
}

void
printStats(const Options &o, const net::Network &network,
           sim::Tick now,
           const obs::CountingSink *counts = nullptr,
           const obs::TimelineSampler *timeline = nullptr)
{
    if (!o.jsonPath.empty())
        writeReport(o, network, now, counts, timeline);
    if (o.json && o.jsonPath.empty()) {
        std::cout << report::statsToJson(network, now) << "\n";
        if (!o.heatmap)
            return;
    }
    if (o.heatmap) {
        if (const auto *rmb =
                dynamic_cast<const core::Engine *>(&network)) {
            report::utilizationHeatmap(std::cout, *rmb, now);
        }
        if (o.json)
            return;
    }
    const auto &s = network.stats();
    TextTable t("rmbsim results: " + network.name(),
                {"metric", "value"});
    t.addRow({"simulated ticks", TextTable::num(
                                     static_cast<std::uint64_t>(
                                         now))});
    t.addRow({"injected", TextTable::num(s.injected)});
    t.addRow({"delivered", TextTable::num(s.delivered)});
    t.addRow({"failed", TextTable::num(s.failed)});
    t.addRow({"nacks", TextTable::num(s.nacks)});
    t.addRow({"retries", TextTable::num(s.retries)});
    t.addRow({"mean latency", TextTable::num(s.totalLatency.mean(),
                                             1)});
    t.addRow({"p95 latency",
              TextTable::num(s.totalLatency.percentile(95), 1)});
    t.addRow({"mean setup",
              TextTable::num(s.setupLatency.mean(), 1)});
    t.addRow({"mean hops", TextTable::num(s.pathLength.mean(), 2)});
    t.addRow({"peak circuits",
              TextTable::num(static_cast<std::uint64_t>(
                  s.activeCircuits.maximum()))});
    if (const auto *rmb =
            dynamic_cast<const core::Engine *>(&network)) {
        t.addRow({"compaction moves",
                  TextTable::num(rmb->rmbStats().compactionMoves)});
        t.addRow({"max cycle skew",
                  TextTable::num(rmb->rmbStats().maxCycleSkew)});
        t.addRow({"avg segment util %",
                  TextTable::num(
                      100.0 * rmb->averageSegmentUtilization(now),
                      2)});
    }
    if (o.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    sim::Simulator simulator;
    auto network = makeNetwork(o, simulator);

    // Sink stack: --trace streams JSONL; a JSON report additionally
    // keeps per-kind counters (the report's "trace" section).  Both
    // are pure observers, so attaching them never perturbs the run.
    std::unique_ptr<obs::JsonlFileSink> fileSink;
    obs::CountingSink counting;
    std::unique_ptr<obs::TeeSink> tee;
    obs::TraceSink *sink = nullptr;
    const obs::CountingSink *counts = nullptr;
    if (!o.tracePath.empty()) {
        fileSink = std::make_unique<obs::JsonlFileSink>(o.tracePath);
        sink = fileSink.get();
    }
    if (!o.jsonPath.empty()) {
        counts = &counting;
        if (sink != nullptr) {
            tee = std::make_unique<obs::TeeSink>(&counting,
                                                 fileSink.get());
            sink = tee.get();
        } else {
            sink = &counting;
        }
    }
    if (sink != nullptr)
        network->setTraceSink(sink);

    // Timeline sampling for the report: bus/circuit occupancy every
    // `period` ticks until the run has passed `minEnd` and drained.
    std::unique_ptr<obs::TimelineSampler> timeline;
    const auto startTimeline = [&](sim::Tick minEnd) {
        if (o.jsonPath.empty())
            return;
        sim::Tick period = o.timeline;
        if (period == 0)
            period = o.duration / 100 ? o.duration / 100 : 1;
        timeline = std::make_unique<obs::TimelineSampler>(simulator,
                                                          period);
        net::Network *net = network.get();
        timeline->addSeries("injected", [net] {
            return static_cast<double>(net->stats().injected);
        });
        timeline->addSeries("delivered", [net] {
            return static_cast<double>(net->stats().delivered);
        });
        timeline->addSeries("active_circuits", [net] {
            return static_cast<double>(
                net->stats().activeCircuits.current());
        });
        if (const auto *rmb =
                dynamic_cast<const core::Engine *>(net)) {
            const double segs =
                static_cast<double>(rmb->config().numNodes) *
                static_cast<double>(rmb->config().numBuses);
            timeline->addSeries("live_buses", [rmb] {
                return static_cast<double>(
                    rmb->rmbStats().liveBuses.current());
            });
            timeline->addSeries("segment_occupancy", [rmb, segs] {
                return static_cast<double>(
                           rmb->occupiedSegments()) /
                       segs;
            });
        }
        timeline->setStopWhen([net, &simulator, minEnd] {
            return simulator.now() >= minEnd && net->quiescent();
        });
        timeline->start();
    };
    sim::Random rng(o.seed);

    if (!o.replay.empty()) {
        std::ifstream in(o.replay);
        if (!in)
            fatal("cannot open trace '", o.replay, "'");
        const auto trace = workload::readTrace(in);
        startTimeline(trace.empty() ? 0 : trace.back().time);
        const auto r = workload::replayTrace(*network, trace);
        std::cout << "replayed " << r.injected << " events: "
                  << r.delivered << " delivered, " << r.failed
                  << " failed, makespan " << r.makespan
                  << ", mean latency " << r.meanLatency << "\n";
        printStats(o, *network, simulator.now(), counts,
                   timeline.get());
        return 0;
    }

    const auto pairs = batchWorkload(o, network->numNodes(), rng);
    if (!pairs.empty()) {
        startTimeline(0);
        const auto r =
            workload::runBatch(*network, pairs, o.payload);
        std::cout << (r.completed ? "batch completed"
                                  : "batch TIMED OUT")
                  << ": makespan " << r.makespan << "\n";
        if (!o.record.empty()) {
            workload::Trace trace;
            for (const auto &[src, dst] : pairs)
                trace.push_back(
                    workload::TraceEvent{0, src, dst, o.payload});
            std::ofstream out(o.record);
            workload::writeTrace(out, trace);
        }
        printStats(o, *network, simulator.now(), counts,
                   timeline.get());
        return 0;
    }

    auto pattern = stochasticWorkload(o, network->numNodes());
    if (!pattern)
        fatal("unknown workload '", o.workload, "'");
    if (!o.record.empty()) {
        const auto trace = workload::generateTrace(
            *pattern, o.rate, o.payload, o.duration, rng);
        {
            std::ofstream out(o.record);
            if (!out)
                fatal("cannot write trace '", o.record, "'");
            workload::writeTrace(out, trace);
        }
        startTimeline(trace.empty() ? 0 : trace.back().time);
        const auto r = workload::replayTrace(*network, trace);
        std::cout << "recorded " << trace.size() << " events to "
                  << o.record << "; replayed locally: "
                  << r.delivered << " delivered\n";
        printStats(o, *network, simulator.now(), counts,
                   timeline.get());
        return 0;
    }
    startTimeline(o.duration);
    const auto r = workload::runOpenLoop(
        *network, *pattern, o.rate, o.payload, o.duration, rng,
        o.duration / 10);
    std::cout << "open loop: offered " << r.offeredLoad
              << " msgs/node/tick, throughput " << r.throughput
              << ", mean latency " << r.meanLatency << "\n";
    printStats(o, *network, simulator.now(), counts,
               timeline.get());
    return 0;
}
