/**
 * @file
 * sweep - run declarative experiment sweeps and gate regressions.
 *
 * Modes:
 *   sweep run <spec.json> [--jobs N] [--json FILE] [--seed S]
 *             [--quiet]
 *       Materialise the spec's grid, execute every point on a
 *       thread pool, and emit one aggregated RunReport (stdout, or
 *       FILE with --json).  The report is byte-identical for every
 *       --jobs value.  Exits 1 if any point failed, 2 on a bad
 *       spec.
 *
 *   sweep points <spec.json>
 *       List the materialised grid (index, seed, label) without
 *       running anything - for checking what a spec expands to.
 *
 *   sweep compare <report.json> <baseline.json> [--rtol F]
 *                 [--atol F]
 *       Diff a fresh report against a stored baseline with
 *       per-metric tolerances (see docs/SWEEPS.md).  Exits 0 when
 *       every baseline leaf matches, 1 on regression, 2 on bad
 *       input.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/eval.hh"
#include "exp/gate.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"

namespace {

using namespace rmb;

[[noreturn]] void
usage(int code)
{
    std::cerr
        << "usage: sweep run <spec.json> [--jobs N] [--json FILE]"
           " [--seed S] [--quiet]\n"
           "       sweep points <spec.json>\n"
           "       sweep compare <report.json> <baseline.json>"
           " [--rtol F] [--atol F]\n";
    std::exit(code);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "sweep: cannot open '" << path << "'\n";
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

exp::SweepSpec
loadSpec(const std::string &path)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    if (!exp::SweepSpec::fromFile(path, spec, errors)) {
        std::cerr << "sweep: spec '" << path << "' is invalid:\n";
        for (const auto &e : errors)
            std::cerr << "  - " << e << "\n";
        std::exit(2);
    }
    return spec;
}

int
runMode(int argc, char **argv)
{
    std::string spec_path;
    std::string json_path;
    unsigned jobs = exp::Runner::defaultJobs();
    bool quiet = false;
    bool seed_set = false;
    std::uint64_t seed = 0;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "sweep: " << arg
                          << " needs an argument\n";
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(need()));
            if (jobs == 0)
                jobs = exp::Runner::defaultJobs();
        } else if (arg == "--json") {
            json_path = need();
        } else if (arg == "--seed") {
            seed = std::stoull(need());
            seed_set = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (spec_path.empty() && arg[0] != '-') {
            spec_path = arg;
        } else {
            std::cerr << "sweep: unknown option '" << arg << "'\n";
            usage(2);
        }
    }
    if (spec_path.empty()) {
        std::cerr << "sweep run: missing <spec.json>\n";
        usage(2);
    }

    exp::SweepSpec spec = loadSpec(spec_path);
    if (seed_set)
        spec.setMasterSeed(seed);

    exp::ProgressFn progress;
    if (!quiet) {
        progress = [](const exp::Progress &p) {
            std::cerr << "[" << p.completed << "/" << p.total
                      << "] point " << p.index
                      << (p.label.empty() ? "" : " (" + p.label + ")")
                      << (p.ok ? " ok" : " FAILED") << " in "
                      << static_cast<std::uint64_t>(p.wallMillis)
                      << " ms\n";
        };
    }

    const exp::SweepOutcome outcome =
        exp::runSweep(spec, jobs, progress);
    const obs::RunReport report = exp::aggregate(spec, outcome);
    if (json_path.empty())
        std::cout << report.toJson() << "\n";
    else
        report.write(json_path);

    if (outcome.failures != 0) {
        std::cerr << "sweep: " << outcome.failures << " of "
                  << outcome.points.size() << " points failed:\n";
        for (std::size_t i = 0; i < outcome.results.size(); ++i) {
            if (!outcome.results[i].ok) {
                std::cerr << "  - point " << i << " ("
                          << outcome.points[i].label
                          << "): " << outcome.results[i].error
                          << "\n";
            }
        }
        return 1;
    }
    return 0;
}

int
pointsMode(int argc, char **argv)
{
    if (argc != 3)
        usage(2);
    const exp::SweepSpec spec = loadSpec(argv[2]);
    const auto points = spec.points();
    std::cout << spec.name() << ": " << points.size()
              << " points\n";
    for (const auto &pt : points) {
        std::cout << "  [" << pt.index << "] seed=" << pt.seed
                  << (pt.label.empty() ? "" : " " + pt.label)
                  << "\n";
    }
    return 0;
}

int
compareMode(int argc, char **argv)
{
    std::string fresh_path;
    std::string baseline_path;
    exp::GateOptions options;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "sweep: " << arg
                          << " needs an argument\n";
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--rtol") {
            options.rtol = std::stod(need());
        } else if (arg == "--atol") {
            options.atol = std::stod(need());
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (fresh_path.empty() && arg[0] != '-') {
            fresh_path = arg;
        } else if (baseline_path.empty() && arg[0] != '-') {
            baseline_path = arg;
        } else {
            std::cerr << "sweep: unknown option '" << arg << "'\n";
            usage(2);
        }
    }
    if (fresh_path.empty() || baseline_path.empty()) {
        std::cerr << "sweep compare: needs <report.json> and"
                     " <baseline.json>\n";
        usage(2);
    }

    const exp::GateOutcome outcome = exp::compareReportTexts(
        slurp(fresh_path), slurp(baseline_path), options);
    if (outcome.pass) {
        std::cout << "PASS: " << outcome.compared
                  << " baseline values within tolerance\n";
        return 0;
    }
    std::cerr << "FAIL: " << outcome.problems.size()
              << " regression(s) against '" << baseline_path
              << "':\n";
    for (const auto &p : outcome.problems)
        std::cerr << "  - " << p << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(2);
    const std::string mode = argv[1];
    if (mode == "run")
        return runMode(argc, argv);
    if (mode == "points")
        return pointsMode(argc, argv);
    if (mode == "compare")
        return compareMode(argc, argv);
    if (mode == "--help" || mode == "-h")
        usage(0);
    std::cerr << "sweep: unknown mode '" << mode
              << "' (expected run, points or compare)\n";
    usage(2);
}
