/**
 * @file
 * traceview - offline analysis of a JSONL protocol trace
 * (`rmbsim --trace FILE`).
 *
 * Reconstructs causal spans (obs::SpanBuilder) from the flat event
 * stream and can
 *  - print a phase-latency table (default, or --phases),
 *  - export a Chrome-trace / Perfetto-loadable JSON timeline
 *    (--chrome OUT.json),
 *  - run the offline causality checker (--check): every Hack needs
 *    its Inject, every segment is freed exactly once, delivered
 *    buses are fully reclaimed, and adjacent INC cycle counts obey
 *    Lemma 1.
 *
 * --drop KIND filters a kind out while reading, simulating a lossy
 * or corrupted trace; CTest uses `--drop teardown --check` to prove
 * the checker notices a dropped Fack.
 *
 * Exit codes: 0 healthy, 1 causality problems found, 2 usage or
 * input error.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "obs/json_value.hh"
#include "obs/perfetto.hh"
#include "obs/span.hh"
#include "obs/trace.hh"

namespace {

using namespace rmb;

[[noreturn]] void
usage(int code = 2)
{
    (code == 0 ? std::cout : std::cerr)
        << "usage: traceview [options] TRACE.jsonl|-\n"
           "  --check            run the offline causality checker\n"
           "  --chrome OUT.json  write a chrome://tracing timeline\n"
           "  --phases           print the phase-latency table\n"
           "  --drop KIND        ignore events of KIND (testing)\n"
           "  --help | -h\n"
           "With no output option, the phase table is printed.\n";
    std::exit(code);
}

std::uint64_t
fieldU64(const obs::JsonValue &obj, const char *key,
         std::size_t lineno)
{
    const obs::JsonValue *v = obj.find(key);
    std::uint64_t out = 0;
    if (v == nullptr || !v->asUint64(out)) {
        std::cerr << "traceview: line " << lineno
                  << ": missing or non-integer field '" << key
                  << "'\n";
        std::exit(2);
    }
    return out;
}

std::vector<obs::TraceEvent>
readTrace(std::istream &in, const std::string &drop_kind)
{
    std::vector<obs::TraceEvent> events;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        obs::JsonValue value;
        std::string error;
        if (!obs::jsonParse(line, value, error)) {
            std::cerr << "traceview: line " << lineno << ": "
                      << error << "\n";
            std::exit(2);
        }
        const obs::JsonValue *kind = value.find("kind");
        if (kind == nullptr || !kind->isString()) {
            std::cerr << "traceview: line " << lineno
                      << ": missing 'kind'\n";
            std::exit(2);
        }
        if (kind->string() == drop_kind)
            continue;
        obs::TraceEvent e;
        if (!obs::eventKindFromName(kind->string(), e.kind)) {
            std::cerr << "traceview: line " << lineno
                      << ": unknown event kind '" << kind->string()
                      << "'\n";
            std::exit(2);
        }
        e.at = fieldU64(value, "at", lineno);
        e.message = fieldU64(value, "msg", lineno);
        e.bus = fieldU64(value, "bus", lineno);
        e.node = static_cast<std::uint32_t>(
            fieldU64(value, "node", lineno));
        e.gap = static_cast<std::uint32_t>(
            fieldU64(value, "gap", lineno));
        const obs::JsonValue *level = value.find("level");
        if (level == nullptr || !level->isNumber()) {
            std::cerr << "traceview: line " << lineno
                      << ": missing 'level'\n";
            std::exit(2);
        }
        e.level = static_cast<std::int32_t>(level->number());
        e.a = fieldU64(value, "a", lineno);
        e.b = fieldU64(value, "b", lineno);
        events.push_back(e);
    }
    return events;
}

void
printPhaseTable(const obs::SpanBuilder &builder)
{
    TextTable t("trace phases (" +
                    std::to_string(builder.eventCount()) +
                    " events, " +
                    std::to_string(builder.spans().size()) +
                    " spans)",
                {"phase", "count", "mean", "p50", "p95", "max"});
    for (std::size_t k = 0; k < obs::kNumSpanKinds; ++k) {
        const auto kind = static_cast<obs::SpanKind>(k);
        const sim::SampleStat &s = builder.phaseStat(kind);
        if (s.count() == 0)
            continue;
        t.addRow({obs::spanKindName(kind), TextTable::num(s.count()),
                  TextTable::num(s.mean(), 1),
                  TextTable::num(s.percentile(50), 1),
                  TextTable::num(s.percentile(95), 1),
                  TextTable::num(s.max(), 0)});
    }
    std::size_t open = 0;
    for (const obs::Span &span : builder.spans())
        open += span.open ? 1 : 0;
    t.print(std::cout);
    if (open > 0) {
        std::cout << open
                  << " span(s) still open at trace end (flagged"
                     " open_at_end)\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    bool phases = false;
    std::string chrome_path;
    std::string drop_kind;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need = [&](int &j) -> std::string {
            if (j + 1 >= argc)
                usage();
            return argv[++j];
        };
        if (arg == "--check") {
            check = true;
        } else if (arg == "--chrome") {
            chrome_path = need(i);
        } else if (arg == "--phases") {
            phases = true;
        } else if (arg == "--drop") {
            drop_kind = need(i);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg[0] == '-' && arg != "-") {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
        } else if (!path.empty()) {
            usage();
        } else {
            path = arg;
        }
    }
    if (path.empty())
        usage();

    std::ifstream file;
    std::istream *in = &std::cin;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::cerr << "traceview: cannot open '" << path
                      << "'\n";
            return 2;
        }
        in = &file;
    }

    const std::vector<obs::TraceEvent> events =
        readTrace(*in, drop_kind);
    if (events.empty()) {
        std::cerr << "traceview: no events in '" << path << "'\n";
        return 2;
    }

    obs::SpanBuilder builder;
    for (const obs::TraceEvent &e : events)
        builder.onEvent(e);
    builder.finish(events.back().at);

    if (!chrome_path.empty()) {
        std::ofstream out(chrome_path);
        if (!out) {
            std::cerr << "traceview: cannot write '" << chrome_path
                      << "'\n";
            return 2;
        }
        obs::writeChromeTrace(out, builder.spans(),
                              builder.instants());
        if (!out) {
            std::cerr << "traceview: write to '" << chrome_path
                      << "' failed\n";
            return 2;
        }
        std::cout << "chrome trace (" << builder.spans().size()
                  << " spans, " << builder.instants().size()
                  << " instants) -> " << chrome_path << "\n";
    }

    if (phases || (!check && chrome_path.empty()))
        printPhaseTable(builder);

    if (check) {
        const std::vector<std::string> problems =
            obs::checkTrace(events);
        for (const std::string &p : problems)
            std::cerr << "traceview: " << p << "\n";
        if (!problems.empty()) {
            std::cerr << "traceview: " << problems.size()
                      << " causality problem(s) in " << events.size()
                      << " events\n";
            return 1;
        }
        std::cout << "causality check OK (" << events.size()
                  << " events)\n";
    }
    return 0;
}
