/**
 * @file
 * json_check - validate that a file (or stdin) holds one JSON value,
 * or, with --jsonl, one JSON value per line.  Exit 0 iff valid and
 * non-empty.  Keeps the project's JSON emitters honest from CTest
 * without external dependencies.
 *
 * Usage: json_check [--jsonl] [FILE|-]
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hh"

int
main(int argc, char **argv)
{
    bool jsonl = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jsonl") {
            jsonl = true;
        } else if (arg == "--help" || arg == "-h" ||
                   (!path.empty() && path != "-")) {
            std::cerr << "usage: json_check [--jsonl] [FILE|-]\n";
            return 2;
        } else {
            path = arg;
        }
    }

    std::ifstream file;
    std::istream *in = &std::cin;
    if (!path.empty() && path != "-") {
        file.open(path);
        if (!file) {
            std::cerr << "json_check: cannot open '" << path
                      << "'\n";
            return 2;
        }
        in = &file;
    }

    if (jsonl) {
        std::string line;
        std::size_t lineno = 0;
        std::size_t values = 0;
        while (std::getline(*in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            if (!rmb::obs::jsonValid(line)) {
                std::cerr << "json_check: invalid JSON on line "
                          << lineno << "\n";
                return 1;
            }
            ++values;
        }
        if (values == 0) {
            std::cerr << "json_check: no JSON values found\n";
            return 1;
        }
        std::cout << values << " JSONL values OK\n";
        return 0;
    }

    std::ostringstream all;
    all << in->rdbuf();
    if (!rmb::obs::jsonValid(all.str())) {
        std::cerr << "json_check: invalid JSON\n";
        return 1;
    }
    std::cout << "JSON OK\n";
    return 0;
}
