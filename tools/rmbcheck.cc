/**
 * @file
 * rmbcheck - bounded explicit-state model checker for the RMB
 * protocol (docs/MODELCHECK.md).
 *
 * Composes the simulator's own pure rules (core::stepCycle, the
 * Figure-6/7 datapath predicates, Table 1 legality) into a ring of N
 * INCs by k segments and exhaustively enumerates every reachable
 * state, checking safety invariants per state and liveness over the
 * full graph.  Exit codes: 0 clean, 1 counterexample printed,
 * 2 usage error, 3 state budget exhausted.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "check/runner.hh"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: rmbcheck [options]\n"
          "\n"
          "  --nodes N          ring size (2..8, default 4)\n"
          "  --buses K          segments per gap (1..8, default 3)\n"
          "  --messages M       concurrent messages (1..4, "
          "default 2)\n"
          "  --cycle-only       check only the odd/even handshake "
          "layer\n"
          "  --datapath-only    check only the bus/compaction "
          "layer\n"
          "  --header POLICY    lowest | straight (default "
          "lowest)\n"
          "  --mutate NAME      check a deliberately broken rule "
          "reading:\n"
          "                     oc-rule-bodytext | "
          "no-handshake-gates |\n"
          "                     move-ignore-neighbors\n"
          "  --max-states X     state budget (default 1000000; "
          "exceeding\n"
          "                     it exits 3, never a silent pass)\n"
          "  --all              sweep N in {3..6} x k in {2..4}, "
          "both\n"
          "                     layers, unmutated rules\n"
          "  --help             this text\n"
          "\n"
          "exit codes: 0 clean, 1 violation, 2 usage, "
          "3 truncated\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using rmb::check::CheckConfig;
    using rmb::check::Layers;
    using rmb::check::RunStatus;

    CheckConfig cfg;
    Layers layers = Layers::Both;
    std::string mutate;
    bool all = false;

    const auto need_value = [&](int i) {
        if (i + 1 >= argc) {
            std::cerr << "rmbcheck: missing value for " << argv[i]
                      << "\n";
            std::exit(static_cast<int>(RunStatus::Usage));
        }
        return std::string(argv[i + 1]);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--nodes") {
            cfg.nodes = static_cast<std::uint32_t>(
                std::stoul(need_value(i++)));
        } else if (arg == "--buses") {
            cfg.buses = static_cast<std::uint32_t>(
                std::stoul(need_value(i++)));
        } else if (arg == "--messages") {
            cfg.messages = static_cast<std::uint32_t>(
                std::stoul(need_value(i++)));
        } else if (arg == "--max-states") {
            cfg.maxStates = std::stoul(need_value(i++));
        } else if (arg == "--cycle-only") {
            layers = Layers::CycleOnly;
        } else if (arg == "--datapath-only") {
            layers = Layers::DatapathOnly;
        } else if (arg == "--header") {
            const std::string v = need_value(i++);
            if (v == "lowest") {
                cfg.headerPolicy =
                    rmb::core::HeaderPolicy::PreferLowest;
            } else if (v == "straight") {
                cfg.headerPolicy =
                    rmb::core::HeaderPolicy::PreferStraight;
            } else {
                std::cerr << "rmbcheck: unknown header policy '" << v
                          << "'\n";
                return static_cast<int>(RunStatus::Usage);
            }
        } else if (arg == "--mutate") {
            mutate = need_value(i++);
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return static_cast<int>(RunStatus::Clean);
        } else {
            std::cerr << "rmbcheck: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return static_cast<int>(RunStatus::Usage);
        }
    }

    if (!rmb::check::applyMutation(mutate, cfg)) {
        std::cerr << "rmbcheck: unknown mutation '" << mutate
                  << "'\n";
        return static_cast<int>(RunStatus::Usage);
    }
    if (cfg.nodes < 2 || cfg.nodes > 8 || cfg.buses < 1 ||
        cfg.buses > 8 || cfg.messages < 1 || cfg.messages > 4) {
        std::cerr << "rmbcheck: configuration out of range (see "
                     "--help)\n";
        return static_cast<int>(RunStatus::Usage);
    }

    if (all)
        return static_cast<int>(
            rmb::check::runAll(cfg.maxStates, std::cout));
    return static_cast<int>(
        rmb::check::runCheck(cfg, layers, std::cout));
}
