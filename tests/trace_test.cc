/**
 * @file
 * Tests for trace generation, (de)serialization and replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/trace.hh"

namespace rmb {
namespace workload {
namespace {

TEST(Trace, GenerateIsSortedAndInRange)
{
    UniformTraffic pattern(8);
    sim::Random rng(1);
    const Trace trace = generateTrace(pattern, 0.01, 16, 5000, rng);
    EXPECT_GT(trace.size(), 100u); // ~8 * 5000 * 0.01 = 400
    sim::Tick last = 0;
    for (const TraceEvent &e : trace) {
        EXPECT_GE(e.time, last);
        last = e.time;
        EXPECT_LT(e.time, 5000u);
        EXPECT_LT(e.src, 8u);
        EXPECT_LT(e.dst, 8u);
        EXPECT_NE(e.src, e.dst);
        EXPECT_EQ(e.payloadFlits, 16u);
    }
}

TEST(Trace, GenerateIsDeterministicPerSeed)
{
    UniformTraffic pattern(8);
    sim::Random a(7);
    sim::Random b(7);
    EXPECT_EQ(generateTrace(pattern, 0.01, 8, 2000, a),
              generateTrace(pattern, 0.01, 8, 2000, b));
}

TEST(Trace, WriteReadRoundTrip)
{
    UniformTraffic pattern(8);
    sim::Random rng(3);
    const Trace original =
        generateTrace(pattern, 0.02, 12, 1000, rng);
    std::stringstream buffer;
    writeTrace(buffer, original);
    const Trace parsed = readTrace(buffer);
    EXPECT_EQ(parsed, original);
}

TEST(Trace, ReadSkipsCommentsAndSorts)
{
    std::stringstream in(
        "# rmbtrace v1\n"
        "# a comment\n"
        "50 1 2 8\n"
        "\n"
        "10 3 4 16\n");
    const Trace trace = readTrace(in);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].time, 10u);
    EXPECT_EQ(trace[1].time, 50u);
}

TEST(TraceDeathTest, MalformedLineIsFatal)
{
    std::stringstream in("10 3 4\n");
    EXPECT_EXIT(readTrace(in), ::testing::ExitedWithCode(1),
                "malformed");
}

TEST(Trace, ReplayDeliversEverything)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 3;
    cfg.verify = core::VerifyLevel::Full;
    core::RmbNetwork net(s, cfg);
    const Trace trace{
        {0, 0, 4, 8}, {10, 2, 6, 8}, {500, 5, 1, 8},
        {500, 6, 2, 8},
    };
    const auto r = replayTrace(net, trace);
    EXPECT_EQ(r.injected, 4u);
    EXPECT_EQ(r.delivered, 4u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.makespan, 500u);
}

TEST(Trace, ReplayHonoursTimestamps)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 3;
    core::RmbNetwork net(s, cfg);
    const Trace trace{{1000, 0, 4, 8}};
    const auto r = replayTrace(net, trace);
    EXPECT_EQ(r.delivered, 1u);
    const net::Message &m = net.message(1);
    EXPECT_EQ(m.created, 1000u);
}

TEST(Trace, EmptyReplayIsNoop)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    const auto r = replayTrace(net, {});
    EXPECT_EQ(r.injected, 0u);
    EXPECT_EQ(r.makespan, 0u);
}

TEST(Trace, SameTraceDifferentNetworksComparable)
{
    UniformTraffic pattern(8);
    sim::Random rng(11);
    const Trace trace =
        generateTrace(pattern, 0.005, 16, 4000, rng);

    sim::Simulator s1;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork rmb(s1, cfg);
    const auto r1 = replayTrace(rmb, trace);

    sim::Simulator s2;
    core::RmbConfig cfg2 = cfg;
    cfg2.numBuses = 4;
    core::RmbNetwork rmb4(s2, cfg2);
    const auto r2 = replayTrace(rmb4, trace);

    EXPECT_EQ(r1.injected, r2.injected);
    EXPECT_EQ(r1.delivered, r2.delivered);
}

} // namespace
} // namespace workload
} // namespace rmb
