/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace rmb {
namespace sim {
namespace {

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTick(), kMaxTick);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&, i] { order.push_back(i); });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, RunOneReturnsFiringTick)
{
    EventQueue q;
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextTick(), 42u);
    EXPECT_EQ(q.runOne(), 42u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPendingEvent)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.runOne();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, CancelledEventSkippedAmongOthers)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    EventId mid = q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    q.cancel(mid);
    EXPECT_EQ(q.size(), 2u);
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CallbackCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> reschedule = [&] {
        if (++count < 5)
            q.schedule(static_cast<Tick>(count * 10), reschedule);
    };
    q.schedule(0, reschedule);
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(count, 5);
}

TEST(EventQueue, NumExecutedCounts)
{
    EventQueue q;
    for (int i = 0; i < 4; ++i)
        q.schedule(i, [] {});
    EventId id = q.schedule(9, [] {});
    q.cancel(id);
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(q.numExecuted(), 4u);
}

TEST(EventQueue, NextTickSkipsCancelledHead)
{
    EventQueue q;
    EventId early = q.schedule(1, [] {});
    q.schedule(50, [] {});
    q.cancel(early);
    EXPECT_EQ(q.nextTick(), 50u);
}

TEST(EventQueueDeathTest, RunOneOnEmptyPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.runOne(), "empty event queue");
}

TEST(EventQueueDeathTest, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.schedule(1, EventQueue::Callback{}),
                 "null callback");
}

TEST(EventQueue, ManyEventsStressOrder)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 1000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 257);
        q.schedule(when, [] {});
    }
    while (!q.empty()) {
        const Tick t = q.runOne();
        if (t < last)
            monotonic = false;
        last = t;
    }
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace sim
} // namespace rmb
