/**
 * @file
 * Determinism regression tests: the same configuration and seed must
 * yield bit-identical results on every run, and the split()-based
 * substream scheme must isolate per-node / per-point streams from
 * each other.  These pin the contract the experiment engine's
 * byte-identical-reports guarantee is built on.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "rmb/network.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"
#include "workload/trace.hh"
#include "workload/traffic.hh"

namespace {

using namespace rmb;

workload::BatchResult
batchRun(std::uint64_t seed)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 16;
    cfg.numBuses = 4;
    cfg.seed = seed;
    cfg.verify = core::VerifyLevel::Cheap;
    core::RmbNetwork net(s, cfg);
    sim::Random rng = sim::Random(seed).split(0);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    return workload::runBatch(net, pairs, 24, 4'000'000);
}

TEST(Determinism, BatchRunRepeatsExactly)
{
    const auto a = batchRun(11);
    const auto b = batchRun(11);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.meanSetupLatency, b.meanSetupLatency);
}

TEST(Determinism, SeedActuallyMatters)
{
    const auto a = batchRun(11);
    const auto b = batchRun(12);
    // Different seeds give a different permutation; the odds of an
    // identical makespan AND latency are negligible.
    EXPECT_FALSE(a.makespan == b.makespan &&
                 a.meanLatency == b.meanLatency);
}

workload::OpenLoopResult
openLoopRun(std::uint64_t seed)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 16;
    cfg.numBuses = 4;
    cfg.seed = seed;
    cfg.verify = core::VerifyLevel::Off;
    core::RmbNetwork net(s, cfg);
    workload::UniformTraffic pattern(16);
    sim::Random rng(seed);
    return workload::runOpenLoop(net, pattern, 0.002, 8, 20'000,
                                 rng, 2'000);
}

TEST(Determinism, OpenLoopRepeatsExactly)
{
    const auto a = openLoopRun(5);
    const auto b = openLoopRun(5);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
}

TEST(Determinism, TraceNodeStreamsAreSizeIndependent)
{
    // generateTrace splits one substream per node, so the events of
    // nodes 0..7 are identical whether the network has 8 nodes or
    // 16 - a property fork()-chained streams cannot have.
    sim::Random rng_small(77);
    sim::Random rng_big(77);
    workload::UniformTraffic small(8);
    workload::UniformTraffic big(16);
    auto t_small =
        workload::generateTrace(small, 0.01, 4, 5'000, rng_small);
    auto t_big =
        workload::generateTrace(big, 0.01, 4, 5'000, rng_big);

    auto only_low_src = [](workload::Trace t) {
        workload::Trace out;
        for (const auto &e : t)
            if (e.src < 8)
                out.push_back(e);
        return out;
    };
    const auto low_small = only_low_src(t_small);
    const auto low_big = only_low_src(t_big);
    ASSERT_EQ(low_small.size(), low_big.size());
    for (std::size_t i = 0; i < low_small.size(); ++i) {
        EXPECT_EQ(low_small[i].time, low_big[i].time);
        EXPECT_EQ(low_small[i].src, low_big[i].src);
        // Destinations differ (picked from different node ranges);
        // timing and source streams must not.
    }
}

TEST(Determinism, TraceRoundTripsThroughText)
{
    sim::Random rng(3);
    workload::UniformTraffic pattern(8);
    const auto trace =
        workload::generateTrace(pattern, 0.02, 4, 2'000, rng);
    ASSERT_FALSE(trace.empty());
    std::stringstream ss;
    workload::writeTrace(ss, trace);
    const auto back = workload::readTrace(ss);
    EXPECT_EQ(trace, back);
}

} // namespace
