/**
 * @file
 * Unit tests for the experiment engine (src/exp): spec parsing and
 * materialisation, the thread-pool runner, deterministic sweep
 * execution, report aggregation, and the baseline regression gate.
 */

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/eval.hh"
#include "exp/gate.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "obs/json.hh"
#include "obs/json_value.hh"
#include "sim/random.hh"

namespace {

using namespace rmb;

std::string
joined(const std::vector<std::string> &errors)
{
    std::string all;
    for (const auto &e : errors)
        all += e + "\n";
    return all;
}

// ---------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------

TEST(JsonValue, ParsesAndSerialisesCanonically)
{
    obs::JsonValue v;
    std::string error;
    ASSERT_TRUE(obs::jsonParse(
        R"({ "a" : [ 1, 2.5, true, null ], "b" : { "c" : "x\ny" } })",
        v, error))
        << error;
    ASSERT_TRUE(v.isObject());
    const auto *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    EXPECT_EQ(a->array().size(), 4u);
    EXPECT_EQ(a->array()[0].numberToken(), "1");
    EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.5);
    // Canonical form: no whitespace, member order preserved.
    EXPECT_EQ(v.serialize(),
              R"({"a":[1,2.5,true,null],"b":{"c":"x\ny"}})");
}

TEST(JsonValue, Uint64RoundTripsExactly)
{
    obs::JsonValue v;
    std::string error;
    ASSERT_TRUE(
        obs::jsonParse("{\"seed\": 18446744073709551615}", v, error));
    std::uint64_t seed = 0;
    ASSERT_TRUE(v.find("seed")->asUint64(seed));
    EXPECT_EQ(seed, 18446744073709551615ull);
    EXPECT_EQ(v.serialize(), "{\"seed\":18446744073709551615}");
}

TEST(JsonValue, SyntaxErrorsNameTheOffset)
{
    obs::JsonValue v;
    std::string error;
    EXPECT_FALSE(obs::jsonParse("{\"a\": [1, }", v, error));
    EXPECT_NE(error.find("at byte"), std::string::npos) << error;
    EXPECT_FALSE(obs::jsonParse("", v, error));
    EXPECT_FALSE(obs::jsonParse("{} trailing", v, error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

// ---------------------------------------------------------------
// Random::split
// ---------------------------------------------------------------

TEST(RandomSplit, PureAndOrderIndependent)
{
    const sim::Random root(1234);
    // split() is const: calling it many times, in any order, yields
    // the same child for the same id.
    const std::uint64_t a_first = root.split(7).next();
    for (std::uint64_t id : {3ull, 0ull, 7ull, 7ull, 100ull})
        (void)root.split(id);
    EXPECT_EQ(root.split(7).next(), a_first);

    // Distinct ids give distinct streams (no collisions in a small
    // range, and not the trivial seed+i relationship).
    std::set<std::uint64_t> firsts;
    for (std::uint64_t id = 0; id < 256; ++id)
        firsts.insert(root.split(id).next());
    EXPECT_EQ(firsts.size(), 256u);
}

TEST(RandomSplit, NestedSplitsAreIndependent)
{
    const sim::Random root(99);
    EXPECT_NE(root.split(0).split(1).next(),
              root.split(1).split(0).next());
    EXPECT_EQ(root.split(4).split(2).next(),
              root.split(4).split(2).next());
}

// ---------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------

const char *kSmallSpec = R"({
  "name": "small",
  "seed": 42,
  "base": { "nodes": 8, "buses": 2, "payload": 4,
            "workload": "randperm", "timeout": 2000000 },
  "axes": [
    { "field": "nodes", "values": [8, 16] },
    { "field": "buses", "values": [2, 4] }
  ]
})";

TEST(SweepSpec, CartesianMaterialisation)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    ASSERT_TRUE(exp::SweepSpec::fromJson(kSmallSpec, spec, errors))
        << joined(errors);
    EXPECT_EQ(spec.name(), "small");
    EXPECT_EQ(spec.masterSeed(), 42u);
    ASSERT_EQ(spec.pointCount(), 4u);

    const auto points = spec.points();
    ASSERT_EQ(points.size(), 4u);
    // Last axis varies fastest.
    EXPECT_EQ(points[0].nodes, 8u);
    EXPECT_EQ(points[0].buses, 2u);
    EXPECT_EQ(points[1].nodes, 8u);
    EXPECT_EQ(points[1].buses, 4u);
    EXPECT_EQ(points[2].nodes, 16u);
    EXPECT_EQ(points[2].buses, 2u);
    EXPECT_EQ(points[3].nodes, 16u);
    EXPECT_EQ(points[3].buses, 4u);
    // Base fields carry through; labels describe the axis choices.
    EXPECT_EQ(points[3].payload, 4u);
    EXPECT_NE(points[3].label.find("nodes=16"), std::string::npos);
    EXPECT_NE(points[3].label.find("buses=4"), std::string::npos);

    // Seeds are split per index: all distinct, and stable across
    // re-materialisation.
    std::set<std::uint64_t> seeds;
    for (const auto &p : points)
        seeds.insert(p.seed);
    EXPECT_EQ(seeds.size(), points.size());
    const auto again = spec.points();
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].seed, again[i].seed);
}

TEST(SweepSpec, ZipMode)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    ASSERT_TRUE(exp::SweepSpec::fromJson(R"({
      "mode": "zip",
      "axes": [
        { "field": "nodes", "values": [8, 16, 32] },
        { "field": "buses", "values": [2, 4, 8] }
      ]
    })",
                                         spec, errors))
        << joined(errors);
    ASSERT_EQ(spec.pointCount(), 3u);
    const auto points = spec.points();
    EXPECT_EQ(points[1].nodes, 16u);
    EXPECT_EQ(points[1].buses, 4u);
}

TEST(SweepSpec, ZipLengthMismatchIsActionable)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    EXPECT_FALSE(exp::SweepSpec::fromJson(R"({
      "mode": "zip",
      "axes": [
        { "field": "nodes", "values": [8, 16] },
        { "field": "buses", "values": [2] }
      ]
    })",
                                          spec, errors));
    EXPECT_NE(joined(errors).find("zip"), std::string::npos)
        << joined(errors);
}

TEST(SweepSpec, UnknownFieldListsKnownOnes)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    EXPECT_FALSE(exp::SweepSpec::fromJson(
        R"({ "base": { "bogus_field": 3 } })", spec, errors));
    const std::string all = joined(errors);
    EXPECT_NE(all.find("bogus_field"), std::string::npos) << all;
}

TEST(SweepSpec, WrongValueTypeIsActionable)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    EXPECT_FALSE(exp::SweepSpec::fromJson(
        R"({ "axes": [ { "field": "nodes",
                         "values": ["not-a-number"] } ] })",
        spec, errors));
    EXPECT_NE(joined(errors).find("nodes"), std::string::npos)
        << joined(errors);
}

TEST(SweepSpec, DuplicateAxisFieldRejected)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    EXPECT_FALSE(exp::SweepSpec::fromJson(R"({
      "axes": [
        { "field": "nodes", "values": [8] },
        { "field": "nodes", "values": [16] }
      ]
    })",
                                          spec, errors));
    EXPECT_NE(joined(errors).find("nodes"), std::string::npos);
}

TEST(SweepSpec, SyntaxErrorSurfacesParserMessage)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    EXPECT_FALSE(exp::SweepSpec::fromJson("{ not json", spec, errors));
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("at byte"), std::string::npos)
        << errors[0];
}

// ---------------------------------------------------------------
// Runner
// ---------------------------------------------------------------

TEST(Runner, CoversEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 5u}) {
        const exp::Runner runner(jobs);
        std::vector<std::atomic<int>> hits(100);
        runner.forEach(hits.size(),
                       [&](std::size_t i) { hits[i]++; });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(Runner, PropagatesTheFirstException)
{
    const exp::Runner runner(2);
    EXPECT_THROW(runner.forEach(8,
                                [](std::size_t i) {
                                    if (i == 3)
                                        throw std::runtime_error(
                                            "boom");
                                }),
                 std::runtime_error);
}

// ---------------------------------------------------------------
// Sweep execution + aggregation
// ---------------------------------------------------------------

TEST(Sweep, ReportIsByteIdenticalAcrossJobCounts)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    ASSERT_TRUE(exp::SweepSpec::fromJson(kSmallSpec, spec, errors))
        << joined(errors);

    const auto one = exp::runSweep(spec, 1);
    const auto four = exp::runSweep(spec, 4);
    EXPECT_EQ(one.failures, 0u);
    const std::string report_one =
        exp::aggregate(spec, one).toJson();
    const std::string report_four =
        exp::aggregate(spec, four).toJson();
    EXPECT_EQ(report_one, report_four);

    // And the artifact is valid JSON.
    EXPECT_TRUE(obs::jsonValid(report_one));
}

TEST(Sweep, ProgressObserverSeesEveryPoint)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    ASSERT_TRUE(exp::SweepSpec::fromJson(kSmallSpec, spec, errors));
    std::vector<std::size_t> seen;
    std::size_t last_completed = 0;
    exp::runSweep(spec, 2, [&](const exp::Progress &p) {
        // The observer runs serially: completed is monotone.
        EXPECT_EQ(p.completed, last_completed + 1);
        last_completed = p.completed;
        EXPECT_EQ(p.total, 4u);
        seen.push_back(p.index);
    });
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Sweep, BadPointIsCapturedNotFatal)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    ASSERT_TRUE(exp::SweepSpec::fromJson(R"({
      "base": { "nodes": 8, "payload": 4, "workload": "randperm" },
      "axes": [ { "field": "buses", "values": [2, 0] } ]
    })",
                                         spec, errors))
        << joined(errors);
    const auto outcome = exp::runSweep(spec, 2);
    ASSERT_EQ(outcome.results.size(), 2u);
    EXPECT_TRUE(outcome.results[0].ok);
    EXPECT_FALSE(outcome.results[1].ok);
    EXPECT_EQ(outcome.failures, 1u);
    EXPECT_NE(outcome.results[1].error.find("bus"),
              std::string::npos)
        << outcome.results[1].error;
}

TEST(Sweep, RunPointIsDeterministic)
{
    exp::SweepSpec spec;
    std::vector<std::string> errors;
    ASSERT_TRUE(exp::SweepSpec::fromJson(kSmallSpec, spec, errors));
    const auto points = spec.points();
    for (const auto &p : points) {
        const auto r1 = exp::runPoint(p);
        const auto r2 = exp::runPoint(p);
        ASSERT_TRUE(r1.ok) << r1.error;
        EXPECT_EQ(r1.metrics, r2.metrics);
    }
}

// ---------------------------------------------------------------
// Baseline gate
// ---------------------------------------------------------------

TEST(Gate, IdenticalReportsPass)
{
    const std::string doc =
        R"({"a": 1.5, "b": {"c": 2, "s": "hi"}, "arr": [1, 2]})";
    const auto outcome = exp::compareReportTexts(doc, doc);
    EXPECT_TRUE(outcome.pass) << joined(outcome.problems);
    EXPECT_EQ(outcome.compared, 5u);
}

TEST(Gate, NumericDriftFailsWithPath)
{
    const auto outcome = exp::compareReportTexts(
        R"({"b": {"c": 2}})", R"({"b": {"c": 3}})");
    EXPECT_FALSE(outcome.pass);
    ASSERT_EQ(outcome.problems.size(), 1u);
    EXPECT_NE(outcome.problems[0].find("b.c"), std::string::npos)
        << outcome.problems[0];
}

TEST(Gate, ToleranceFromBaselineAllowsDrift)
{
    // |2 - 3| <= rtol * |baseline| with rtol = 0.6 -> within budget.
    const auto outcome = exp::compareReportTexts(
        R"({"b": {"c": 2}})",
        R"({"b": {"c": 3}, "tolerances": {"c": 0.6}})");
    EXPECT_TRUE(outcome.pass) << joined(outcome.problems);
}

TEST(Gate, ExactPathBeatsBareLeafName)
{
    // The bare name would allow the drift; the exact path (more
    // specific) forbids it.
    const auto outcome = exp::compareReportTexts(
        R"({"b": {"c": 2}})",
        R"({"b": {"c": 3},
            "tolerances": {"c": 0.6, "b.c": 0.0}})");
    EXPECT_FALSE(outcome.pass);
}

TEST(Gate, StarAndCliDefaultsApply)
{
    EXPECT_TRUE(exp::compareReportTexts(
                    R"({"x": 10})",
                    R"({"x": 11, "tolerances": {"*": 0.2}})")
                    .pass);
    exp::GateOptions opt;
    opt.rtol = 0.2;
    EXPECT_TRUE(
        exp::compareReportTexts(R"({"x": 10})", R"({"x": 11})", opt)
            .pass);
    EXPECT_FALSE(
        exp::compareReportTexts(R"({"x": 10})", R"({"x": 11})")
            .pass);
}

TEST(Gate, MissingLeafAndTypeMismatchFail)
{
    EXPECT_FALSE(
        exp::compareReportTexts(R"({})", R"({"gone": 1})").pass);
    EXPECT_FALSE(exp::compareReportTexts(R"({"x": "1"})",
                                         R"({"x": 1})")
                     .pass);
    // Fresh-only leaves are fine: adding metrics never breaks a
    // stored baseline.
    EXPECT_TRUE(exp::compareReportTexts(R"({"x": 1, "new": 2})",
                                        R"({"x": 1})")
                    .pass);
}

TEST(Gate, BrokenDocumentsAreReportedNotThrown)
{
    const auto outcome =
        exp::compareReportTexts("{ nope", R"({"x": 1})");
    EXPECT_FALSE(outcome.pass);
    ASSERT_FALSE(outcome.problems.empty());
    EXPECT_NE(outcome.problems[0].find("fresh"), std::string::npos)
        << outcome.problems[0];
}

} // namespace
