/**
 * @file
 * Unit tests for src/common: bit utilities, logging macros and the
 * text-table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace rmb {
namespace {

TEST(BitUtils, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(4));
    EXPECT_FALSE(isPowerOfTwo(6));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(BitUtils, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(BitUtils, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(BitUtils, BitReverse)
{
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b110, 3), 0b011u);
    EXPECT_EQ(bitReverse(0b101, 3), 0b101u);
    EXPECT_EQ(bitReverse(1, 1), 1u);
    EXPECT_EQ(bitReverse(0, 4), 0u);
}

TEST(BitUtils, BitReverseIsInvolution)
{
    for (std::uint64_t v = 0; v < 64; ++v)
        EXPECT_EQ(bitReverse(bitReverse(v, 6), 6), v);
}

TEST(BitUtils, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(8, 4), 2u);
}

TEST(Logging, AssertPassesOnTrue)
{
    rmb_assert(1 + 1 == 2, "never printed");
    SUCCEED();
}

TEST(LoggingDeathTest, AssertAbortsOnFalse)
{
    EXPECT_DEATH(rmb_assert(false, "boom ", 42), "boom 42");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("internal bug ", 7), "internal bug 7");
}

TEST(LoggingDeathTest, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("user error"), ::testing::ExitedWithCode(1),
                "user error");
}

TEST(TextTable, RendersHeadersAndRows)
{
    TextTable t("caption text", {"a", "bb", "ccc"});
    t.addRow({"1", "22", "333"});
    t.addRow({"x", "y", "z"});
    EXPECT_EQ(t.numRows(), 2u);

    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("# caption text"), std::string::npos);
    EXPECT_NE(out.find("| a |"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t("cap", {"n", "v"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "# cap\nn,v\n1,2\n");
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(std::uint64_t{12345}), "12345");
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTableDeathTest, RowArityMismatchPanics)
{
    TextTable t("cap", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

} // namespace
} // namespace rmb
