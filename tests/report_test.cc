/**
 * @file
 * Tests for the report module (JSON stats + utilization heatmap).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/multibus.hh"
#include "report/report.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"

namespace rmb {
namespace report {
namespace {

TEST(Report, JsonContainsCommonCounters)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    net.send(0, 4, 16);
    while (!net.quiescent())
        s.run(256);
    const std::string json = statsToJson(net, s.now());
    EXPECT_NE(json.find("\"network\":\"RMB(ring)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"injected\":1"), std::string::npos);
    EXPECT_NE(json.find("\"delivered\":1"), std::string::npos);
    EXPECT_NE(json.find("\"totalLatency\""), std::string::npos);
    EXPECT_NE(json.find("\"rmb\""), std::string::npos);
    EXPECT_NE(json.find("\"compactionMoves\""), std::string::npos);
}

TEST(Report, JsonBalancedBraces)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    const std::string json = statsToJson(net, s.now());
    int depth = 0;
    for (const char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Report, EmptyStatsEmitNullNotNan)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    const std::string json = statsToJson(net, s.now());
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_NE(json.find("\"mean\":null"), std::string::npos);
}

TEST(Report, BaselineNetworksHaveNoRmbSection)
{
    sim::Simulator s;
    baseline::CircuitConfig cfg;
    baseline::MultiBusNetwork net(s, 8, 2, cfg);
    const std::string json = statsToJson(net, s.now());
    EXPECT_EQ(json.find("\"rmb\""), std::string::npos);
    EXPECT_NE(json.find("\"network\":\"MultiBus\""),
              std::string::npos);
}

TEST(Report, HeatmapShowsFaultsAndLoad)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 3;
    core::RmbNetwork net(s, cfg);
    net.failSegment(2, 1);
    net.send(0, 4, 4000);
    s.runFor(3000);
    std::ostringstream oss;
    utilizationHeatmap(oss, net, s.now());
    const std::string out = oss.str();
    // One row per level, top marked.
    EXPECT_NE(out.find("L2 (top)|"), std::string::npos);
    EXPECT_NE(out.find("L0      |"), std::string::npos);
    // The faulted cell renders as X.
    EXPECT_NE(out.find('X'), std::string::npos);
    // Some cell shows heavy utilization.
    EXPECT_TRUE(out.find('@') != std::string::npos ||
                out.find('%') != std::string::npos ||
                out.find('#') != std::string::npos);
    while (!net.quiescent())
        s.run(1024);
}

} // namespace
} // namespace report
} // namespace rmb
