/**
 * @file
 * Tests of the detailed flit-level data plane: Dack flow control,
 * the paper's flit-contiguity guarantee, and cross-validation
 * against the closed-form pipeline model.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
cfg(std::uint32_t n, std::uint32_t k, bool detailed,
    std::uint32_t window = 8)
{
    RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.detailedFlits = detailed;
    c.dackWindow = window;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 2'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

using Point = std::tuple<std::uint32_t /*dst*/, std::uint32_t
                         /*payload*/>;

class FlitCrossValidation : public ::testing::TestWithParam<Point>
{
};

TEST_P(FlitCrossValidation, DetailedMatchesClosedFormWhenUnthrottled)
{
    // With a window wide enough that Dacks never throttle the pump,
    // the detailed per-flit simulation must produce the *exact*
    // closed-form delivery time.
    const auto [dst, payload] = GetParam();
    sim::Tick detailed_time = 0;
    sim::Tick closed_time = 0;
    for (const bool detailed : {true, false}) {
        sim::Simulator s;
        RmbNetwork net(s, cfg(16, 3, detailed, 100'000));
        const auto id = net.send(0, dst, payload);
        runToQuiescence(s, net);
        const net::Message &m = net.message(id);
        ASSERT_EQ(m.state, net::MessageState::Delivered);
        (detailed ? detailed_time : closed_time) =
            m.totalLatency();
    }
    EXPECT_EQ(detailed_time, closed_time);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlitCrossValidation,
    ::testing::Values(Point{1, 0}, Point{1, 1}, Point{1, 16},
                      Point{4, 0}, Point{4, 7}, Point{4, 64},
                      Point{8, 3}, Point{8, 32}, Point{15, 1},
                      Point{15, 100}),
    [](const ::testing::TestParamInfo<Point> &info) {
        return "d" + std::to_string(std::get<0>(info.param)) + "p" +
               std::to_string(std::get<1>(info.param));
    });

TEST(FlitLevel, TightWindowThrottlesMonotonically)
{
    // Long path (12 hops): the Dack round trip is 12*1 + 12*2 = 36
    // ticks per flit; windows below that rate-limit the stream.
    sim::Tick previous = 0;
    for (const std::uint32_t window : {1u, 2u, 4u, 64u}) {
        sim::Simulator s;
        RmbNetwork net(s, cfg(16, 3, true, window));
        const auto id = net.send(0, 12, 40);
        runToQuiescence(s, net);
        const net::Message &m = net.message(id);
        ASSERT_EQ(m.state, net::MessageState::Delivered);
        if (previous != 0) {
            EXPECT_LE(m.totalLatency(), previous)
                << "window " << window;
        }
        previous = m.totalLatency();
    }
}

TEST(FlitLevel, WindowOneRateIsDackRoundTrip)
{
    // With window 1 each flit waits for the previous flit's Dack:
    // per-flit period = path*flit + path*ack.
    sim::Simulator s;
    RmbConfig c = cfg(16, 3, true, 1);
    RmbNetwork net(s, c);
    const std::uint32_t hops = 6;
    const std::uint32_t payload = 10;
    const auto id = net.send(0, hops, payload);
    runToQuiescence(s, net);
    const net::Message &m = net.message(id);
    ASSERT_EQ(m.state, net::MessageState::Delivered);
    const sim::Tick per_flit =
        hops * c.flitDelay + hops * c.ackHopDelay;
    // payload flits gated by Dacks + the FF, plus setup and the
    // first flit's departure offset.
    const sim::Tick stream = m.delivered - m.established;
    EXPECT_EQ(stream, c.flitDelay +                 // first depart
                          payload * per_flit +      // gated flits
                          hops * c.flitDelay);      // FF transit
}

TEST(FlitLevel, DackCountMatchesPayload)
{
    // Every payload flit is Dacked; the FF is Facked instead.
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 3, true, 4));
    net.send(0, 5, 20);
    net.send(8, 13, 7);
    runToQuiescence(s, net);
    EXPECT_EQ(net.rmbStats().dacks, 20u + 7u);
}

TEST(FlitLevel, ContiguityHeldDuringCompaction)
{
    // The paper's claim: reconfiguration is transparent to the
    // flits.  Stream a long detailed message while churn drives
    // compaction; the built-in order/spacing asserts (Full verify)
    // plus the per-bus counters prove contiguity.
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4, true, 16));
    const auto big = net.send(0, 9, 400);
    for (net::NodeId i = 1; i < 8; ++i)
        net.send(i, (i + 4) % 16, 30);
    runToQuiescence(s, net);
    const net::Message &m = net.message(big);
    EXPECT_EQ(m.state, net::MessageState::Delivered);
    EXPECT_GT(net.rmbStats().compactionMoves, 0u);
}

TEST(FlitLevel, PermutationCompletesDetailed)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4, true, 8));
    sim::Random rng(5);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r = workload::runBatch(net, pairs, 24, 4'000'000);
    EXPECT_TRUE(r.completed);
}

TEST(FlitLevel, ZeroPayloadOnlyFinalFlit)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(8, 2, true, 4));
    const auto id = net.send(0, 3, 0);
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_EQ(net.rmbStats().dacks, 0u);
}

} // namespace
} // namespace core
} // namespace rmb
