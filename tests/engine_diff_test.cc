/**
 * @file
 * Differential tests pinning the two Engine backends to each other.
 *
 * The event engine (RmbNetwork) and the cycle kernel
 * (CycleKernelEngine) are intentionally different execution models
 * of the same protocol, so tick-for-tick trajectories are not
 * comparable: within-tick event order, per-INC cycle skew and the
 * order of RNG draws all differ.  What *is* comparable - and what
 * these tests sweep - is the outcome: with unbounded retries the
 * NackRetry protocol is deadlock-free, every message delivers, and
 * the canonical outcome digest (id, endpoints, payload, final state,
 * delivering path length) must be byte-identical across engines for
 * every seed, topology, load and fault schedule.  Both engines run
 * under lockstep invariant audits the whole way, so a divergence in
 * *mechanism* (not just outcome) still trips an assert.
 *
 * The harness must also be able to *fail*: the kernel's seeded
 * ShortCircuit mutation delivers every multi-hop message one node
 * early, which the digest catches via pathHops.  That is covered
 * twice - an in-process EXPECT_NE here, and the engine_diff_will_fail
 * ctest variant (WILL_FAIL) which sets RMB_KERNEL_MUTATE=1 and runs
 * the equality sweep against the mutated kernel.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rmb/engine.hh"
#include "rmb/kernel/kernel_engine.hh"
#include "rmb/network.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace {

using namespace rmb;

struct Send
{
    sim::Tick at;
    net::NodeId src;
    net::NodeId dst;
    std::uint32_t payload;
};

/**
 * A seed-derived open-loop workload, precomputed so both engines see
 * the exact same send() calls at the exact same ticks.
 */
std::vector<Send>
makeWorkload(const core::RmbConfig &cfg, std::uint64_t messages,
             sim::Tick horizon)
{
    sim::Random rng = sim::Random(cfg.seed).split(0x5e9d);
    std::vector<Send> sends;
    sends.reserve(messages);
    for (std::uint64_t i = 0; i < messages; ++i) {
        const auto src = static_cast<net::NodeId>(
            rng.uniformInt(cfg.numNodes));
        auto dst = static_cast<net::NodeId>(
            rng.uniformInt(cfg.numNodes - 1));
        if (dst >= src)
            ++dst; // uniform over the other n-1 nodes
        sends.push_back(Send{
            rng.uniformRange(0, horizon), src, dst,
            static_cast<std::uint32_t>(rng.uniformRange(1, 32))});
    }
    return sends;
}

bool
mutateViaEnv()
{
    const char *v = std::getenv("RMB_KERNEL_MUTATE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/**
 * Run @p cfg under both engines in lockstep chunks, auditing both
 * every chunk, until both reach full delivery (or a generous cap).
 * Returns the two outcome digests.
 */
std::pair<std::string, std::string>
runBoth(const core::RmbConfig &cfg, std::uint64_t messages,
        sim::Tick horizon,
        core::CycleKernelEngine::TestMutation mutation =
            core::CycleKernelEngine::TestMutation::None)
{
    core::RmbConfig event_cfg = cfg;
    event_cfg.engine = core::EngineKind::Event;
    core::RmbConfig kernel_cfg = cfg;
    kernel_cfg.engine = core::EngineKind::Kernel;

    sim::Simulator event_sim;
    sim::Simulator kernel_sim;
    auto event_net = core::makeEngine(event_sim, event_cfg);
    auto kernel_net = core::makeEngine(kernel_sim, kernel_cfg);
    auto *kernel = dynamic_cast<core::CycleKernelEngine *>(
        kernel_net.get());
    if (kernel == nullptr) {
        ADD_FAILURE() << "factory returned the wrong type";
        return {};
    }
    if (mutateViaEnv())
        mutation = core::CycleKernelEngine::TestMutation::
            ShortCircuit;
    kernel->setTestMutation(mutation);

    const auto sends = makeWorkload(cfg, messages, horizon);
    for (net::Network *net : {static_cast<net::Network *>(
                                  event_net.get()),
                              static_cast<net::Network *>(
                                  kernel_net.get())}) {
        for (const Send &s : sends) {
            net->simulator().schedule(s.at, [net, s] {
                net->send(s.src, s.dst, s.payload);
            });
        }
    }

    const sim::Tick chunk = 5000;
    const sim::Tick cap = horizon + 4'000'000;
    sim::Tick t = 0;
    bool done = false;
    while (!done && t < cap) {
        t += chunk;
        event_sim.runUntil(t);
        kernel_sim.runUntil(t);
        event_net->auditInvariants();
        kernel_net->auditInvariants();
        done = event_net->stats().delivered == messages &&
               kernel_net->stats().delivered == messages;
    }
    EXPECT_TRUE(done)
        << "engines did not quiesce by tick " << cap << " (event "
        << event_net->stats().delivered << "/" << messages
        << " delivered, kernel " << kernel_net->stats().delivered
        << "/" << messages << ")";
    return {core::outcomeDigest(*event_net),
            core::outcomeDigest(*kernel_net)};
}

core::RmbConfig
baseConfig(std::uint32_t nodes, std::uint32_t buses,
           std::uint64_t seed)
{
    core::RmbConfig cfg;
    cfg.numNodes = nodes;
    cfg.numBuses = buses;
    cfg.seed = seed;
    cfg.maxRetries = 0; // unbounded: NackRetry always delivers
    cfg.verify = core::VerifyLevel::Cheap;
    return cfg;
}

/** The tentpole sweep: N x k x load x seed, fault-free. */
TEST(EngineDiff, OutcomesMatchAcrossTopologiesAndLoads)
{
    for (const std::uint32_t nodes : {4u, 8u, 16u, 33u}) {
        for (const std::uint32_t buses : {2u, 4u}) {
            for (const std::uint64_t load : {40ull, 200ull}) {
                for (const std::uint64_t seed : {1ull, 99ull}) {
                    SCOPED_TRACE("n=" + std::to_string(nodes) +
                                 " k=" + std::to_string(buses) +
                                 " msgs=" + std::to_string(load) +
                                 " seed=" + std::to_string(seed));
                    const auto cfg =
                        baseConfig(nodes, buses, seed);
                    const auto [ev, kn] =
                        runBoth(cfg, load, 20'000);
                    EXPECT_EQ(ev, kn);
                }
            }
        }
    }
}

/** Straight-preference header policy takes different paths through
 *  the level-selection code; outcomes must still match. */
TEST(EngineDiff, OutcomesMatchWithStraightHeaders)
{
    core::RmbConfig cfg = baseConfig(16, 4, 7);
    cfg.headerPolicy = core::HeaderPolicy::PreferStraight;
    const auto [ev, kn] = runBoth(cfg, 120, 20'000);
    EXPECT_EQ(ev, kn);
}

/** Compaction off exercises the no-cycle paths of both engines. */
TEST(EngineDiff, OutcomesMatchWithoutCompaction)
{
    core::RmbConfig cfg = baseConfig(16, 3, 21);
    cfg.enableCompaction = false;
    const auto [ev, kn] = runBoth(cfg, 120, 20'000);
    EXPECT_EQ(ev, kn);
}

/**
 * Fault churn: both engines share the FaultSchedule process whose
 * draws depend only on prior *fault* state, so they see the same
 * (gap, level, time) fault sequence; severed messages retry until
 * they deliver.  The digest (path length of the delivering circuit)
 * is invariant to how many times a message was severed on the way.
 */
TEST(EngineDiff, OutcomesMatchUnderFaultChurn)
{
    for (const std::uint64_t seed : {3ull, 17ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        core::RmbConfig cfg = baseConfig(16, 4, seed);
        cfg.transientFaults = true;
        cfg.faultMtbf = 600;
        cfg.faultMttrMin = 200;
        cfg.faultMttrMax = 800;
        const auto [ev, kn] = runBoth(cfg, 100, 20'000);
        EXPECT_EQ(ev, kn);
    }
}

/** Multi-port sources/sinks change contention; outcomes match. */
TEST(EngineDiff, OutcomesMatchWithMultiplePorts)
{
    core::RmbConfig cfg = baseConfig(16, 4, 5);
    cfg.sendPorts = 2;
    cfg.receivePorts = 2;
    const auto [ev, kn] = runBoth(cfg, 160, 20'000);
    EXPECT_EQ(ev, kn);
}

/**
 * The harness detects divergence: a kernel that delivers one node
 * early produces a different digest.  If this ever passes with EQ,
 * the digest lost its discriminating power and the whole suite above
 * is vacuous.
 */
TEST(EngineDiff, MutationIsDetected)
{
    if (mutateViaEnv())
        GTEST_SKIP() << "env mutation already active";
    const auto cfg = baseConfig(16, 4, 1);
    const auto [ev, kn] = runBoth(
        cfg, 80, 20'000,
        core::CycleKernelEngine::TestMutation::ShortCircuit);
    EXPECT_NE(ev, kn);
}

/** Same engine, same seed: the kernel itself is deterministic. */
TEST(EngineDiff, KernelIsDeterministic)
{
    const auto cfg = baseConfig(16, 4, 13);
    const auto a = runBoth(cfg, 100, 20'000);
    const auto b = runBoth(cfg, 100, 20'000);
    EXPECT_EQ(a.second, b.second);
    EXPECT_EQ(a.first, b.first);
}

// --- kernel unit tests (exact behaviour, not just equivalence) ---

/**
 * One uncontended message: every protocol timestamp is closed-form,
 * and both engines must produce the exact same latency.
 */
TEST(KernelEngine, SingleMessageExactLatency)
{
    core::RmbConfig cfg = baseConfig(8, 2, 1);
    cfg.enableCompaction = false;
    for (const auto kind :
         {core::EngineKind::Event, core::EngineKind::Kernel}) {
        cfg.engine = kind;
        sim::Simulator sim;
        auto net = core::makeEngine(sim, cfg);
        const auto id = net->send(0, 3, 16);
        while (!net->quiescent())
            sim.run(1024);
        const net::Message &m = net->message(id);
        ASSERT_EQ(m.state, net::MessageState::Delivered)
            << core::engineKindName(kind);
        // 3 header hops + Hack back over 3 gaps + (16+1) flits from
        // the source + 3 pipeline stages for the final flit.
        const sim::Tick expect = 3 * cfg.headerHopDelay +
                                 3 * cfg.ackHopDelay +
                                 (16 + 1) * cfg.flitDelay +
                                 3 * cfg.flitDelay;
        EXPECT_EQ(m.delivered - m.firstAttempt, expect)
            << core::engineKindName(kind);
        EXPECT_EQ(m.pathHops, 3u) << core::engineKindName(kind);
    }
}

/** The kernel compacts: a bus parked below a finished one sinks. */
TEST(KernelEngine, CompactionMovesBusesDown)
{
    core::RmbConfig cfg = baseConfig(16, 4, 2);
    cfg.engine = core::EngineKind::Kernel;
    cfg.verify = core::VerifyLevel::Full;
    sim::Simulator sim;
    core::CycleKernelEngine net(sim, cfg);
    // A staggered random load: teardowns interleave with live
    // buses, so freed segments open legal Figure-7 moves.  (A
    // perfectly symmetric all-to-all burst would produce none: the
    // staircase packing leaves no hop with a free segment below it
    // and a conforming neighbour window.)
    sim::Random rng(5);
    const std::uint64_t messages = 200;
    for (std::uint64_t i = 0; i < messages; ++i) {
        const auto src =
            static_cast<net::NodeId>(rng.uniformInt(16));
        auto dst = static_cast<net::NodeId>(rng.uniformInt(15));
        if (dst >= src)
            ++dst;
        const auto pay =
            static_cast<std::uint32_t>(8 + rng.uniformInt(60));
        sim.schedule(rng.uniformInt(4000), [&net, src, dst, pay] {
            net.send(src, dst, pay);
        });
    }
    do {
        sim.run(1024);
    } while (!net.quiescent());
    EXPECT_EQ(net.stats().delivered, messages);
    EXPECT_GT(net.cycles(), 0u);
    EXPECT_GT(net.rmbStats().compactionMoves.value(), 0u);
    EXPECT_EQ(net.rmbStats().maxCycleSkew.value(), 0u);
    net.auditInvariants();
}

/** validate() refuses kernel-incompatible options by name. */
TEST(KernelEngine, ValidateRefusesUnsupportedOptions)
{
    core::RmbConfig cfg = baseConfig(8, 2, 1);
    cfg.engine = core::EngineKind::Kernel;
    ASSERT_TRUE(cfg.validate().empty());

    core::RmbConfig flits = cfg;
    flits.detailedFlits = true;
    const auto p1 = flits.validate();
    ASSERT_EQ(p1.size(), 1u);
    EXPECT_NE(p1[0].find("detailedFlits"), std::string::npos);
    flits.engine = core::EngineKind::Event;
    EXPECT_TRUE(flits.validate().empty());

    core::RmbConfig wait = cfg;
    wait.blocking = core::BlockingPolicy::Wait;
    const auto p2 = wait.validate();
    ASSERT_EQ(p2.size(), 1u);
    EXPECT_NE(p2[0].find("NackRetry"), std::string::npos);

    core::RmbConfig dog = cfg;
    dog.watchdogTimeout = 1000;
    const auto p3 = dog.validate();
    ASSERT_EQ(p3.size(), 1u);
    EXPECT_NE(p3[0].find("watchdog"), std::string::npos);
}

/** The factory dispatches on RmbConfig::engine. */
TEST(KernelEngine, FactoryBuildsTheRequestedBackend)
{
    sim::Simulator sim;
    core::RmbConfig cfg = baseConfig(8, 2, 1);
    cfg.engine = core::EngineKind::Event;
    auto ev = core::makeEngine(sim, cfg);
    EXPECT_NE(dynamic_cast<core::RmbNetwork *>(ev.get()), nullptr);
    sim::Simulator sim2;
    cfg.engine = core::EngineKind::Kernel;
    auto kn = core::makeEngine(sim2, cfg);
    EXPECT_NE(dynamic_cast<core::CycleKernelEngine *>(kn.get()),
              nullptr);
    EXPECT_EQ(std::string(core::engineKindName(cfg.engine)),
              "kernel");
}

} // namespace
