/**
 * @file
 * Tests for the buffered wormhole ring baseline (Dally, paper
 * reference [10]): timing, dateline deadlock freedom, tree
 * blocking.
 */

#include <gtest/gtest.h>

#include "baselines/wormhole_ring.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace baseline {
namespace {

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 2'000'000)
{
    while (!net.quiescent() && !s.idle() && s.now() < limit)
        s.run(256);
}

TEST(Wormhole, UnloadedTimingExact)
{
    // Head: hops * headerHopDelay; then (payload + tail) body flits
    // pipeline at flitDelay each.
    sim::Simulator s;
    WormholeConfig cfg;
    WormholeRingNetwork net(s, 8, cfg);
    const auto id = net.send(1, 5, 16); // 4 hops
    runToQuiescence(s, net);
    const net::Message &m = net.message(id);
    ASSERT_EQ(m.state, net::MessageState::Delivered);
    EXPECT_EQ(m.setupLatency(), 4u * 4u);
    EXPECT_EQ(m.totalLatency(), 16u + 17u);
}

TEST(Wormhole, NoSetupRoundTrip)
{
    // Unlike the RMB's circuit switching, wormhole needs no Hack:
    // for short messages it beats the RMB's unloaded setup alone.
    sim::Simulator s;
    WormholeConfig cfg;
    WormholeRingNetwork net(s, 16, cfg);
    const auto id = net.send(0, 8, 4);
    runToQuiescence(s, net);
    // RMB setup alone would be 8*(4+2) = 48; wormhole delivers in
    // 8*4 + 5 = 37.
    EXPECT_EQ(net.message(id).totalLatency(), 37u);
}

TEST(Wormhole, WrapAroundUsesDateline)
{
    sim::Simulator s;
    WormholeConfig cfg;
    WormholeRingNetwork net(s, 8, cfg);
    const auto id = net.send(6, 2, 8); // wraps the dateline
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_EQ(net.stats().pathLength.max(), 4.0);
}

TEST(Wormhole, TornadoAtSaturationDoesNotDeadlock)
{
    // Every message travels N/2 hops and the ring cycle is fully
    // loaded - the exact pattern the dateline exists for.
    sim::Simulator s;
    WormholeConfig cfg;
    WormholeRingNetwork net(s, 16, cfg);
    const auto pairs =
        workload::toPairs(workload::rotation(16, 8));
    const auto r = workload::runBatch(net, pairs, 64, 2'000'000);
    EXPECT_TRUE(r.completed);
}

TEST(Wormhole, RandomPermutationsComplete)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        sim::Simulator s;
        WormholeConfig cfg;
        WormholeRingNetwork net(s, 16, cfg);
        sim::Random rng(seed * 7);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 24,
                                          2'000'000);
        EXPECT_TRUE(r.completed) << "seed " << seed;
    }
}

TEST(Wormhole, MoreVcsRelieveBlocking)
{
    // Under heavy contention extra VCs per class reduce head-of-
    // line blocking; makespan must not get worse.
    double one = 0.0;
    double four = 0.0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        for (const std::uint32_t vcs : {1u, 4u}) {
            sim::Simulator s;
            WormholeConfig cfg;
            cfg.vcsPerClass = vcs;
            WormholeRingNetwork net(s, 16, cfg);
            sim::Random rng(seed * 13);
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(16, rng));
            const auto r = workload::runBatch(net, pairs, 48,
                                              2'000'000);
            EXPECT_TRUE(r.completed);
            (vcs == 1 ? one : four) +=
                static_cast<double>(r.makespan);
        }
    }
    EXPECT_LE(four, one);
}

TEST(Wormhole, SourceQueueIsFifo)
{
    sim::Simulator s;
    WormholeConfig cfg;
    WormholeRingNetwork net(s, 8, cfg);
    const auto a = net.send(0, 4, 32);
    const auto b = net.send(0, 2, 4);
    runToQuiescence(s, net);
    EXPECT_LT(net.message(a).established,
              net.message(b).established);
}

TEST(WormholeDeathTest, Validation)
{
    sim::Simulator s;
    WormholeConfig cfg;
    cfg.vcsPerClass = 0;
    EXPECT_EXIT(WormholeRingNetwork(s, 8, cfg),
                ::testing::ExitedWithCode(1), "virtual channel");
}

} // namespace
} // namespace baseline
} // namespace rmb
