/**
 * @file
 * Property-style parameterized sweeps of the RMB protocol across
 * ring sizes, bus counts, seeds and blocking policies - every run
 * executes under full invariant auditing, so each case re-verifies
 * Theorem 1's "transactions are maintained over all existing virtual
 * buses" structurally, plus Lemma 1 on the cycle counters.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/bitutils.hh"

#include "obs/sinks.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

using Params = std::tuple<std::uint32_t /*N*/, std::uint32_t /*k*/,
                          std::uint64_t /*seed*/>;

class RmbSweep : public ::testing::TestWithParam<Params>
{
  protected:
    RmbConfig
    config() const
    {
        const auto [n, k, seed] = GetParam();
        RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.seed = seed;
        cfg.verify = VerifyLevel::Full;
        return cfg;
    }
};

TEST_P(RmbSweep, RandomPermutationCompletesAndInvariantsHold)
{
    const auto [n, k, seed] = GetParam();
    sim::Simulator s;
    // Flight recorder: an auditInvariants panic in this sweep dumps
    // the last protocol events to stderr (declared before the
    // network so it outlives the panic-hook registration).
    obs::RingBufferSink recorder(256);
    RmbNetwork net(s, config());
    net.setTraceSink(&recorder);
    sim::Random rng(seed * 1000 + 17);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(n, rng));
    const auto r = workload::runBatch(net, pairs, 24, 4'000'000);
    EXPECT_TRUE(r.completed) << "N=" << n << " k=" << k;
    EXPECT_EQ(r.delivered, pairs.size());
    EXPECT_LE(net.rmbStats().maxCycleSkew, 1u);
    net.auditInvariants();
    // After the trailing Fack teardowns drain, every segment is
    // free again (delivery precedes the final hop releases).
    s.runFor(2000);
    net.auditInvariants();
    EXPECT_EQ(net.segments().occupiedCount(), 0u);
}

TEST_P(RmbSweep, HPermutationWithinCapacityCompletes)
{
    // Theorem 1 / section 3: an RMB with k buses supports any
    // k-permutation.  Build one whose max ring load is exactly <= k
    // and require completion.
    const auto [n, k, seed] = GetParam();
    sim::Simulator s;
    RmbNetwork net(s, config());
    sim::Random rng(seed * 77 + 3);
    workload::PairList pairs;
    for (int attempt = 0; attempt < 200; ++attempt) {
        const auto h = std::min<net::NodeId>(k, n / 2);
        auto candidate =
            workload::randomPartialPermutation(n, h, rng);
        if (workload::maxRingLoad(n, candidate) <= k) {
            pairs = std::move(candidate);
            break;
        }
    }
    ASSERT_FALSE(pairs.empty());
    const auto r = workload::runBatch(net, pairs, 24, 4'000'000);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.nacks, 0u); // distinct destinations: no dst Nacks
}

TEST_P(RmbSweep, AdversarialPatternsComplete)
{
    const auto [n, k, seed] = GetParam();
    (void)seed;
    sim::Simulator s;
    RmbNetwork net(s, config());
    std::vector<workload::Permutation> perms{
        workload::rotation(n, 1), workload::rotation(n, n / 2)};
    if (isPowerOfTwo(n))
        perms.push_back(workload::bitReversal(n));
    for (const auto &perm : perms) {
        const auto pairs = workload::toPairs(perm);
        const auto r = workload::runBatch(net, pairs, 16, 4'000'000);
        EXPECT_TRUE(r.completed) << "N=" << n << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RmbSweep,
    ::testing::Values(Params{4, 1, 1}, Params{4, 2, 2},
                      Params{8, 1, 1}, Params{8, 2, 2},
                      Params{8, 4, 3}, Params{16, 2, 1},
                      Params{16, 4, 2}, Params{16, 8, 3},
                      Params{32, 4, 1}, Params{13, 3, 5}),
    [](const ::testing::TestParamInfo<Params> &info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "k" +
               std::to_string(std::get<1>(info.param)) + "s" +
               std::to_string(std::get<2>(info.param));
    });

TEST(RmbProperty, MakeBeforeBreakDualCodesObservable)
{
    // During compaction the derived Table-1 codes must pass through
    // the dual-source states 011/110; sample the registers densely
    // while many long circuits compact.
    sim::Simulator s;
    RmbConfig cfg;
    cfg.numNodes = 16;
    cfg.numBuses = 4;
    cfg.seed = 5;
    cfg.verify = VerifyLevel::Full;
    RmbNetwork net(s, cfg);
    for (net::NodeId i = 0; i < 8; ++i)
        net.send(i, (i + 5) % 16, 3000);
    std::uint64_t dual_seen = 0;
    for (int step = 0; step < 4000; ++step) {
        s.runFor(1);
        for (net::NodeId node = 0; node < 16; ++node) {
            for (Level l = 0; l < 4; ++l) {
                const auto bits = net.outputStatus(node, l);
                if (bits == 0b011 || bits == 0b110)
                    ++dual_seen;
            }
        }
    }
    EXPECT_GT(dual_seen, 0u);
    while (!net.quiescent())
        s.run(256);
}

TEST(RmbProperty, MoreBusesNeverHurtMakespan)
{
    // Aggregate shape: across seeds, k = 8 beats k = 1 clearly.
    double makespan_k1 = 0.0;
    double makespan_k8 = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        for (std::uint32_t k : {1u, 8u}) {
            sim::Simulator s;
            RmbConfig cfg;
            cfg.numNodes = 16;
            cfg.numBuses = k;
            cfg.seed = seed;
            RmbNetwork net(s, cfg);
            sim::Random rng(seed);
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(16, rng));
            const auto r =
                workload::runBatch(net, pairs, 24, 4'000'000);
            ASSERT_TRUE(r.completed);
            (k == 1 ? makespan_k1 : makespan_k8) +=
                static_cast<double>(r.makespan);
        }
    }
    EXPECT_LT(makespan_k8, makespan_k1 * 0.7);
}

TEST(RmbProperty, CompactionUnblocksWaitingHeaders)
{
    // Theorem 1's full-utilization claim depends on compaction: a
    // blocked header can only take an output within one level of its
    // input, so when the free segments sit at the *bottom* of a gap
    // the header needs the live circuits (and its own head hop) to
    // sink before it can proceed.
    //
    // Deterministic scenario (N = 16, k = 3, top-bus headers, Wait):
    // three circuits stack up on every level of gap 8 -
    //   c2: 8 -> 12, *short*  (top of gap 8 at creation)
    //   c1: 7 -> 11, long
    //   c0: 6 -> 10, long
    // then a probe 4 -> 9 must cross the full gap 8.
    //
    // With compaction the blockers sink to the bottom levels, the
    // probe rides the (freed) top buses, blocks at gap 8's top, and
    // proceeds as soon as the short c2 ends.  Without compaction the
    // blockers pin the upper levels, the staircase forces the probe
    // to descend to level 0, and c2's freed *top* segment is
    // unreachable (inputs only reach outputs within one level): the
    // probe must wait out the long streams.
    sim::Tick done_with = 0;
    sim::Tick done_without = 0;
    for (const bool enable : {true, false}) {
        sim::Simulator s;
        RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 3;
        cfg.headerPolicy = HeaderPolicy::PreferStraight;
        cfg.blocking = BlockingPolicy::Wait;
        cfg.enableCompaction = enable;
        cfg.verify = VerifyLevel::Full;
        RmbNetwork net(s, cfg);
        net.send(8, 12, 4'000);  // c2 (short)
        s.runFor(40);
        net.send(7, 11, 40'000); // c1
        s.runFor(40);
        net.send(6, 10, 40'000); // c0
        s.runFor(1200);          // let compaction settle (if on)
        const auto probe = net.send(4, 9, 8);
        while (net.message(probe).state !=
                   net::MessageState::Delivered &&
               s.now() < 300'000) {
            s.run(256);
        }
        ASSERT_EQ(net.message(probe).state,
                  net::MessageState::Delivered)
            << "compaction=" << enable;
        (enable ? done_with : done_without) =
            net.message(probe).delivered;
        while (!net.quiescent() && s.now() < 800'000)
            s.run(4096);
    }
    // c2 ends around tick ~4200; the long blockers around ~40k.
    EXPECT_LT(done_with, 10'000u);
    EXPECT_GT(done_without, 20'000u);
}

TEST(RmbProperty, HeaderPoliciesBothComplete)
{
    for (const HeaderPolicy policy :
         {HeaderPolicy::PreferLowest, HeaderPolicy::PreferStraight}) {
        sim::Simulator s;
        RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 4;
        cfg.headerPolicy = policy;
        cfg.verify = VerifyLevel::Full;
        RmbNetwork net(s, cfg);
        sim::Random rng(9);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 24, 4'000'000);
        EXPECT_TRUE(r.completed);
    }
}

TEST(RmbProperty, WaitPolicyDeadlocksUnderOversubscription)
{
    // The reproduction's negative finding, pinned as a test: with
    // Wait blocking, no timeout, and ring load far above k, random
    // permutations can wedge permanently (a cycle of partial buses).
    // We assert that at least one of several seeds deadlocks, which
    // is what motivates the NackRetry default.
    int deadlocks = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        sim::Simulator s;
        RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 2;
        cfg.seed = seed;
        cfg.blocking = BlockingPolicy::Wait;
        RmbNetwork net(s, cfg);
        sim::Random rng(seed * 31);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 24, 150'000);
        if (!r.completed)
            ++deadlocks;
        // Drain what can drain; abandon the rest (simulator-local).
    }
    EXPECT_GT(deadlocks, 0);
}

} // namespace
} // namespace core
} // namespace rmb
