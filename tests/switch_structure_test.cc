/**
 * @file
 * Tests for the constructed INC switch structure (Figure 6).
 */

#include <gtest/gtest.h>

#include "analysis/cost_model.hh"
#include "analysis/switch_structure.hh"

namespace rmb {
namespace analysis {
namespace {

TEST(SwitchStructure, ConnectivityMatchesFigure6)
{
    const SwitchStructure sw(4);
    // Output l reachable from inputs l-1, l, l+1 only.
    for (std::uint32_t in = 0; in < 4; ++in) {
        for (std::uint32_t out = 0; out < 4; ++out) {
            const bool expected =
                in + 1 == out || in == out || in == out + 1;
            EXPECT_EQ(sw.connects(in, out), expected)
                << "in=" << in << " out=" << out;
        }
    }
}

TEST(SwitchStructure, ExactCrossPointsIs3kMinus2)
{
    for (std::uint32_t k : {1u, 2u, 3u, 4u, 8u, 16u}) {
        const SwitchStructure sw(k);
        EXPECT_EQ(sw.interIncCrossPoints(), 3 * k - 2) << "k=" << k;
        EXPECT_EQ(sw.peCrossPoints(), 2 * k) << "k=" << k;
    }
}

TEST(SwitchStructure, PaperFormulaIsTheAsymptote)
{
    // The paper's 3*N*k over-counts by exactly 2*N (the boundary
    // ports); the ratio approaches 1 as k grows.
    for (std::uint64_t k : {2ull, 4ull, 16ull, 32ull}) {
        const auto exact = exactRmbCrossPoints(32, k);
        const auto paper = rmbCosts(32, k).crossPoints;
        EXPECT_EQ(paper - exact, 2ull * 32ull) << "k=" << k;
    }
    EXPECT_GT(static_cast<double>(exactRmbCrossPoints(128, 64)) /
                  static_cast<double>(
                      rmbCosts(128, 64).crossPoints),
              0.98);
}

TEST(SwitchStructure, PeAccessAddsTwoKPerNode)
{
    EXPECT_EQ(exactRmbCrossPoints(16, 4, true) -
                  exactRmbCrossPoints(16, 4, false),
              16ull * 8ull);
}

TEST(SwitchStructure, StagesToReachIsLevelDistance)
{
    // The +-1 switch moves a signal one level per INC stage: the
    // minimum stages from input level a to output level b is
    // max(|a-b|, 1).  This is the structural fact behind both the
    // compaction rate (one level per ~2 cycles) and the E18 fault
    // traps (unreachable free levels).
    const SwitchStructure sw(8);
    EXPECT_EQ(sw.stagesToReach(0, 0), 1u);
    EXPECT_EQ(sw.stagesToReach(0, 1), 1u);
    EXPECT_EQ(sw.stagesToReach(0, 7), 7u);
    EXPECT_EQ(sw.stagesToReach(7, 0), 7u);
    EXPECT_EQ(sw.stagesToReach(3, 5), 2u);
}

TEST(SwitchStructure, SingleBusDegenerate)
{
    const SwitchStructure sw(1);
    EXPECT_TRUE(sw.connects(0, 0));
    EXPECT_EQ(sw.interIncCrossPoints(), 1u);
}

} // namespace
} // namespace analysis
} // namespace rmb
