/**
 * @file
 * Tests for the application communication kernels and the k-ary
 * n-cube baseline.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/kary_ncube.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/kernels.hh"

namespace rmb {
namespace {

using namespace rmb::workload;

// ------------------------------------------------ kernel shapes

TEST(Kernels, ButterflyStructure)
{
    const Kernel k = butterflyKernel(8);
    ASSERT_EQ(k.phases.size(), 3u); // log2(8)
    // Phase 0: exchange with i^1.
    for (const auto &[src, dst] : k.phases[0].pairs)
        EXPECT_EQ(src ^ 1u, dst);
    // Every phase is a perfect matching: N messages, each node
    // sends once and receives once.
    for (const KernelPhase &phase : k.phases) {
        EXPECT_EQ(phase.pairs.size(), 8u);
        std::set<net::NodeId> srcs;
        std::set<net::NodeId> dsts;
        for (const auto &[src, dst] : phase.pairs) {
            srcs.insert(src);
            dsts.insert(dst);
        }
        EXPECT_EQ(srcs.size(), 8u);
        EXPECT_EQ(dsts.size(), 8u);
    }
    EXPECT_EQ(k.numMessages(), 24u);
}

TEST(Kernels, AllToAllCoversEveryPair)
{
    const net::NodeId n = 6;
    const Kernel k = allToAllKernel(n);
    ASSERT_EQ(k.phases.size(), 5u); // N-1 rotations
    std::set<std::pair<net::NodeId, net::NodeId>> seen;
    for (const KernelPhase &phase : k.phases)
        for (const auto &pair : phase.pairs)
            seen.insert(pair);
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(n) * (n - 1));
}

TEST(Kernels, StencilPhaseShape)
{
    const Kernel k = stencilKernel(8, 3);
    ASSERT_EQ(k.phases.size(), 3u);
    // 2 messages per node per phase.
    EXPECT_EQ(k.phases[0].pairs.size(), 16u);
}

TEST(Kernels, ReductionHalvesSenders)
{
    const Kernel k = reductionKernel(16);
    ASSERT_EQ(k.phases.size(), 4u);
    EXPECT_EQ(k.phases[0].pairs.size(), 8u);
    EXPECT_EQ(k.phases[1].pairs.size(), 4u);
    EXPECT_EQ(k.phases[2].pairs.size(), 2u);
    EXPECT_EQ(k.phases[3].pairs.size(), 1u);
    // The last phase delivers to the root (node 0).
    EXPECT_EQ(k.phases[3].pairs[0].second, 0u);
}

TEST(Kernels, PrefixPhaseShape)
{
    const Kernel k = prefixKernel(8);
    ASSERT_EQ(k.phases.size(), 3u);
    EXPECT_EQ(k.phases[0].pairs.size(), 7u); // i -> i+1
    EXPECT_EQ(k.phases[1].pairs.size(), 6u); // i -> i+2
    EXPECT_EQ(k.phases[2].pairs.size(), 4u); // i -> i+4
}

TEST(Kernels, RunKernelOnRmbCompletes)
{
    for (const Kernel &kernel : allKernels(8)) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = 8;
        cfg.numBuses = 3;
        cfg.verify = core::VerifyLevel::Full;
        core::RmbNetwork net(s, cfg);
        const KernelResult r = runKernel(net, kernel, 16);
        EXPECT_TRUE(r.completed) << kernel.name;
        EXPECT_EQ(r.phaseTicks.size(), kernel.phases.size())
            << kernel.name;
        EXPECT_GT(r.makespan, 0u) << kernel.name;
    }
}

TEST(Kernels, PhasesAreBarrierSeparated)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    const Kernel kernel = reductionKernel(8);
    const KernelResult r = runKernel(net, kernel, 16);
    ASSERT_TRUE(r.completed);
    sim::Tick sum = 0;
    for (const sim::Tick t : r.phaseTicks) {
        EXPECT_GT(t, 0u);
        sum += t;
    }
    EXPECT_EQ(sum, r.makespan);
}

// ------------------------------------------------ k-ary n-cube

TEST(KaryNcube, GeometryAndNaming)
{
    sim::Simulator s;
    baseline::CircuitConfig cfg;
    baseline::KaryNcubeNetwork net(s, 4, 3, cfg);
    EXPECT_EQ(net.numNodes(), 64u);
    EXPECT_EQ(net.name(), "4-ary 3-cube");
    // 2 directed links per node per dimension.
    EXPECT_EQ(net.numLinks(), 64u * 3u * 2u);
    EXPECT_EQ(net.digit(37, 0), 1u); // 37 = 1 + 1*4 + 2*16
    EXPECT_EQ(net.digit(37, 1), 1u);
    EXPECT_EQ(net.digit(37, 2), 2u);
}

TEST(KaryNcube, ShortWayAroundEachDimension)
{
    sim::Simulator s;
    baseline::CircuitConfig cfg;
    baseline::KaryNcubeNetwork net(s, 8, 1, cfg);
    // 8-ary 1-cube = ring of 8 with both directions: 0 -> 6 goes
    // backwards (2 hops), 0 -> 3 forwards (3 hops).
    net.send(0, 6, 4);
    while (!net.quiescent() && s.now() < 100'000)
        s.run(256);
    EXPECT_EQ(net.stats().pathLength.max(), 2.0);
    net.send(0, 3, 4);
    while (!net.quiescent() && s.now() < 200'000)
        s.run(256);
    EXPECT_EQ(net.stats().pathLength.max(), 3.0);
}

TEST(KaryNcube, MatchesHypercubeWhenRadixTwo)
{
    sim::Simulator s;
    baseline::CircuitConfig cfg;
    baseline::KaryNcubeNetwork net(s, 2, 4, cfg);
    EXPECT_EQ(net.numNodes(), 16u);
    // 0 -> 15: Hamming distance 4.
    net.send(0, 15, 4);
    while (!net.quiescent() && s.now() < 100'000)
        s.run(256);
    EXPECT_EQ(net.stats().pathLength.max(), 4.0);
}

TEST(KaryNcube, KernelTrafficCompletes)
{
    sim::Simulator s;
    baseline::CircuitConfig cfg;
    baseline::KaryNcubeNetwork net(s, 4, 2, cfg);
    const KernelResult r =
        runKernel(net, butterflyKernel(16), 16);
    EXPECT_TRUE(r.completed);
}

TEST(KaryNcubeDeathTest, BadRadixFatal)
{
    sim::Simulator s;
    baseline::CircuitConfig cfg;
    EXPECT_EXIT(baseline::KaryNcubeNetwork(s, 1, 2, cfg),
                ::testing::ExitedWithCode(1), "radix");
}

} // namespace
} // namespace rmb
