/**
 * @file
 * Unit tests for the Simulator driver.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace rmb {
namespace sim {
namespace {

TEST(Simulator, TimeStartsAtZero)
{
    Simulator s;
    EXPECT_EQ(s.now(), 0u);
    EXPECT_TRUE(s.idle());
}

TEST(Simulator, ScheduleIsRelative)
{
    Simulator s;
    Tick seen = 0;
    s.schedule(10, [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(s.now(), 10u);
}

TEST(Simulator, NestedSchedulingAccumulates)
{
    Simulator s;
    Tick seen = 0;
    s.schedule(10, [&] {
        s.schedule(5, [&] { seen = s.now(); });
    });
    s.run();
    EXPECT_EQ(seen, 15u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive)
{
    Simulator s;
    int fired = 0;
    s.schedule(10, [&] { ++fired; });
    s.schedule(20, [&] { ++fired; });
    s.schedule(21, [&] { ++fired; });
    EXPECT_EQ(s.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), 20u);
    EXPECT_FALSE(s.idle());
}

TEST(Simulator, RunUntilAdvancesTimeWhenQueueDrains)
{
    Simulator s;
    s.schedule(3, [] {});
    s.runUntil(100);
    EXPECT_EQ(s.now(), 100u);
    EXPECT_TRUE(s.idle());
}

TEST(Simulator, RunForIsRelative)
{
    Simulator s;
    s.runFor(50);
    EXPECT_EQ(s.now(), 50u);
    s.runFor(50);
    EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, RunWithEventBudget)
{
    Simulator s;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        s.schedule(static_cast<Tick>(i), [&] { ++fired; });
    EXPECT_EQ(s.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(s.run(), 6u);
    EXPECT_EQ(fired, 10);
}

TEST(Simulator, ScheduleAtAbsolute)
{
    Simulator s;
    s.schedule(10, [] {});
    s.run();
    Tick seen = 0;
    s.scheduleAt(25, [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, 25u);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator s;
    bool fired = false;
    EventId id = s.schedule(5, [&] { fired = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, NumExecutedAccumulatesAcrossRuns)
{
    Simulator s;
    s.schedule(1, [] {});
    s.run();
    s.schedule(1, [] {});
    s.run();
    EXPECT_EQ(s.numExecuted(), 2u);
}

TEST(SimulatorDeathTest, ScheduleAtPastPanics)
{
    Simulator s;
    s.schedule(10, [] {});
    s.run();
    EXPECT_DEATH(s.scheduleAt(5, [] {}), "past");
}

TEST(Simulator, ZeroDelaySelfEventRunsThisInstant)
{
    Simulator s;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 3)
            s.schedule(0, chain);
    };
    s.schedule(0, chain);
    s.run();
    EXPECT_EQ(depth, 3);
    EXPECT_EQ(s.now(), 0u);
}

} // namespace
} // namespace sim
} // namespace rmb
