/**
 * @file
 * Retry-backoff tests: exponential doubling, retryBackoffCap
 * saturation with jitter, and determinism of the backoff draws
 * across sim::Random::split substreams.
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/trace.hh"
#include "rmb/network.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace rmb {
namespace core {
namespace {

/** Collects Backoff trace events so a test can read the schedule. */
class BackoffLog : public obs::TraceSink
{
  public:
    void
    onEvent(const obs::TraceEvent &event) override
    {
        if (event.kind == obs::EventKind::Backoff)
            events_.push_back(event);
    }

    /** Backoff delays (the event `a` payload) for @p id, in order. */
    std::vector<sim::Tick>
    delaysFor(net::MessageId id) const
    {
        std::vector<sim::Tick> out;
        for (const obs::TraceEvent &e : events_)
            if (e.message == id)
                out.push_back(e.a);
        return out;
    }

  private:
    std::vector<obs::TraceEvent> events_;
};

RmbConfig
cfg(std::uint32_t n, std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.seed = seed;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 2'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

/**
 * Pin a victim against a busy destination: a long-lived blocker holds
 * the single receive port of node 5, and the one-hop victim 4 -> 5
 * collects dest-busy Nacks until the blocker drains.  Every retry of
 * the victim emits one Backoff event.
 */
TEST(Backoff, ExponentialDoublingSaturatesAtJitteredCap)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2, 5);
    c.retryBackoffMin = 4; // degenerate range: no jitter below cap
    c.retryBackoffMax = 4;
    c.retryBackoffCap = 64;
    RmbNetwork net(s, c);
    BackoffLog log;
    net.setTraceSink(&log);

    net.send(1, 5, 20'000); // blocker: holds dst 5's receive port
    s.runFor(200);          // let it establish and start streaming
    const auto victim = net.send(4, 5, 16);
    runToQuiescence(s, net, 500'000);
    ASSERT_EQ(net.message(victim).state, net::MessageState::Delivered);

    const std::vector<sim::Tick> delays = log.delaysFor(victim);
    // retries 0..3 double deterministically: 4, 8, 16, 32.  From
    // retry 4 on, 4 << 4 = 64 hits the cap and every further draw is
    // jittered uniform in [cap/2, cap] to avoid phase-locking.
    ASSERT_GE(delays.size(), 8u);
    EXPECT_EQ(delays[0], 4u);
    EXPECT_EQ(delays[1], 8u);
    EXPECT_EQ(delays[2], 16u);
    EXPECT_EQ(delays[3], 32u);
    for (std::size_t i = 4; i < delays.size(); ++i) {
        EXPECT_GE(delays[i], 32u) << "delay " << i;
        EXPECT_LE(delays[i], 64u) << "delay " << i;
    }
    net.auditInvariants();
}

/** One pinned-victim run; returns the victim's backoff schedule. */
std::vector<sim::Tick>
backoffScheduleForSeed(std::uint64_t seed)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2, seed);
    c.retryBackoffMin = 2; // jittered draws: the schedule depends
    c.retryBackoffMax = 32; // on the RNG stream, not just the cap
    c.retryBackoffCap = 256;
    RmbNetwork net(s, c);
    BackoffLog log;
    net.setTraceSink(&log);
    net.send(1, 5, 20'000);
    s.runFor(200);
    const auto victim = net.send(4, 5, 16);
    runToQuiescence(s, net, 500'000);
    EXPECT_EQ(net.message(victim).state, net::MessageState::Delivered);
    std::vector<sim::Tick> delays = log.delaysFor(victim);
    EXPECT_GE(delays.size(), 4u);
    return delays;
}

TEST(Backoff, ScheduleIsDeterministicPerSplitStream)
{
    // Seeds drawn through sim::Random::split are pure functions of
    // (parent, streamId): the same stream must reproduce the same
    // backoff schedule exactly, and sibling streams must diverge.
    const std::uint64_t seed_a = sim::Random(7).split(3).next();
    const std::uint64_t seed_b = sim::Random(7).split(4).next();
    ASSERT_NE(seed_a, seed_b);
    const auto run1 = backoffScheduleForSeed(seed_a);
    const auto run2 = backoffScheduleForSeed(seed_a);
    const auto other = backoffScheduleForSeed(seed_b);
    EXPECT_EQ(run1, run2);
    EXPECT_NE(run1, other);
}

} // namespace
} // namespace core
} // namespace rmb
