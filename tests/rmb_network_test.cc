/**
 * @file
 * Integration tests of the full RMB protocol: injection on the top
 * bus, header propagation, Hack/Nack, streaming, Fack teardown, and
 * the compaction protocol - all with full invariant auditing on.
 */

#include <gtest/gtest.h>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
testConfig(std::uint32_t n, std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.seed = seed;
    cfg.verify = VerifyLevel::Full;
    return cfg;
}

void
runToQuiescence(sim::Simulator &s, RmbNetwork &net,
                sim::Tick limit = 1'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

TEST(RmbNetwork, SingleMessageDelivered)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    const auto id = net.send(1, 5, 16);
    runToQuiescence(s, net);
    ASSERT_TRUE(net.quiescent());
    const net::Message &m = net.message(id);
    EXPECT_EQ(m.state, net::MessageState::Delivered);
    EXPECT_EQ(m.nacks, 0u);
    EXPECT_EQ(m.retries, 0u);
}

TEST(RmbNetwork, UnloadedLatencyMatchesTimingModel)
{
    // On an idle network the message timing is deterministic:
    // setup = hops*(header + ack); stream = (payload+1+hops)*flit.
    sim::Simulator s;
    RmbConfig cfg = testConfig(8, 3);
    RmbNetwork net(s, cfg);
    const std::uint32_t hops = 4;   // 1 -> 5
    const std::uint32_t payload = 16;
    const auto id = net.send(1, 5, payload);
    runToQuiescence(s, net);
    const net::Message &m = net.message(id);
    EXPECT_EQ(m.setupLatency(),
              hops * cfg.headerHopDelay + hops * cfg.ackHopDelay);
    EXPECT_EQ(m.delivered - m.established,
              (payload + 1 + hops) * cfg.flitDelay);
}

TEST(RmbNetwork, InjectionUsesTopBusOnly)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(8, 4);
    // Slow the compaction clocks so we can observe the top-bus state
    // right after injection.
    cfg.cyclePeriodMin = cfg.cyclePeriodMax = 1000;
    RmbNetwork net(s, cfg);
    net.send(2, 6, 64);
    s.run(2); // process the zero-delay injection event only
    // The source hop must sit on level k-1 of gap 2.
    EXPECT_EQ(net.segments().occupant(2, 3), 1u);
    EXPECT_TRUE(net.segments().isFree(2, 0));
    EXPECT_TRUE(net.segments().isFree(2, 1));
    EXPECT_TRUE(net.segments().isFree(2, 2));
}

TEST(RmbNetwork, CompactionMovesLongLivedBusToBottom)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(8, 4);
    RmbNetwork net(s, cfg);
    // A very long message so the circuit lives through many cycles.
    net.send(0, 4, 4000);
    s.runFor(2000);
    const auto ids = net.liveBusIds();
    ASSERT_EQ(ids.size(), 1u);
    const VirtualBus *bus = net.bus(ids[0]);
    ASSERT_NE(bus, nullptr);
    EXPECT_EQ(bus->state, BusState::Streaming);
    // After plenty of cycles every hop has been compacted to the
    // bottom level.
    for (const Hop &h : bus->hops) {
        EXPECT_FALSE(h.inMove());
        EXPECT_EQ(h.level, 0) << "gap " << h.gap;
    }
    EXPECT_GT(net.rmbStats().compactionMoves, 0u);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
}

TEST(RmbNetwork, TopBusReleasedBeforeTeardown)
{
    // The whole point of compaction (paper section 2.3): the top bus
    // frees long before the message completes.
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 4));
    const auto id = net.send(0, 4, 4000);
    runToQuiescence(s, net);
    const net::Message &m = net.message(id);
    const auto &stats = net.rmbStats();
    ASSERT_EQ(stats.topReleaseLatency.count(), 1u);
    EXPECT_LT(stats.topReleaseLatency.max(),
              static_cast<double>(m.totalLatency()) / 2.0);
}

TEST(RmbNetwork, WithoutCompactionNoMovesHappen)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(8, 4);
    cfg.enableCompaction = false;
    RmbNetwork net(s, cfg);
    net.send(0, 4, 100);
    net.send(2, 7, 100);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.rmbStats().compactionMoves, 0u);
}

TEST(RmbNetwork, DestinationBusyNacksAndRetries)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 4));
    // First message occupies node 5's receive port for a long time.
    const auto a = net.send(1, 5, 2000);
    s.runFor(100); // a is established and streaming
    const auto b = net.send(0, 5, 8);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.message(a).state, net::MessageState::Delivered);
    EXPECT_EQ(net.message(b).state, net::MessageState::Delivered);
    EXPECT_GE(net.message(b).nacks, 1u);
    EXPECT_GE(net.message(b).retries, 1u);
    EXPECT_GE(net.stats().nacks, 1u);
}

TEST(RmbNetwork, BoundedRetriesFail)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(8, 4);
    cfg.maxRetries = 2;
    cfg.retryBackoffMin = 4;
    cfg.retryBackoffMax = 8;
    RmbNetwork net(s, cfg);
    const auto a = net.send(1, 5, 50000); // hogs the receiver
    s.runFor(100);
    const auto b = net.send(0, 5, 8);
    runToQuiescence(s, net, 200'000);
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.message(a).state, net::MessageState::Delivered);
    EXPECT_EQ(net.message(b).state, net::MessageState::Failed);
    EXPECT_EQ(net.message(b).retries, 2u);
    EXPECT_EQ(net.stats().failed, 1u);
}

TEST(RmbNetwork, PerSourceFifoOrder)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    const auto a = net.send(0, 3, 32);
    const auto b = net.send(0, 5, 32);
    const auto c = net.send(0, 2, 32);
    runToQuiescence(s, net);
    ASSERT_TRUE(net.quiescent());
    EXPECT_LT(net.message(a).delivered, net.message(b).delivered);
    EXPECT_LT(net.message(b).delivered, net.message(c).delivered);
}

TEST(RmbNetwork, DisjointPathsShareNothing)
{
    // Four neighbour messages on disjoint gaps complete without any
    // Nack or retry even with k = 1.
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 1));
    net.send(0, 1, 32);
    net.send(2, 3, 32);
    net.send(4, 5, 32);
    net.send(6, 7, 32);
    runToQuiescence(s, net);
    ASSERT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().nacks, 0u);
    EXPECT_EQ(net.stats().retries, 0u);
    // And they overlapped in time: 4 concurrent circuits > k = 1,
    // the paper's closing "not equivalent to a k bus system" claim.
    EXPECT_EQ(net.stats().activeCircuits.maximum(), 4);
}

TEST(RmbNetwork, MoreVirtualBusesThanPhysicalBuses)
{
    // Long-lived local traffic: N/2 simultaneous virtual buses on a
    // k = 2 RMB.
    sim::Simulator s;
    RmbNetwork net(s, testConfig(12, 2));
    for (net::NodeId i = 0; i < 12; i += 2)
        net.send(i, i + 1, 800);
    s.runFor(400);
    EXPECT_EQ(net.rmbStats().liveBuses.maximum(), 6);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
}

TEST(RmbNetwork, KOverlappingCircuitsCoexist)
{
    // Theorem 1's utilization claim: k messages crossing a common
    // gap can all hold circuits concurrently because compaction
    // stacks them on the k levels.
    sim::Simulator s;
    RmbConfig cfg = testConfig(12, 3);
    RmbNetwork net(s, cfg);
    // All three paths cross gaps 3..5; stagger them so compaction
    // has time to free the top bus between injections.
    net.send(1, 6, 6000);
    s.runFor(400);
    net.send(2, 7, 6000);
    s.runFor(400);
    net.send(3, 8, 6000);
    s.runFor(400);
    EXPECT_EQ(net.stats().activeCircuits.maximum(), 3);
    // Gap 3 carries all three on distinct levels.
    std::uint32_t used = 0;
    for (Level l = 0; l < 3; ++l)
        if (!net.segments().isFree(3, l))
            ++used;
    EXPECT_EQ(used, 3u);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
}

TEST(RmbNetwork, OutputStatusReflectsSettledBus)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    net.send(0, 3, 5000);
    s.runFor(1500); // established, streaming, fully compacted
    // Source port (gap 0) is PE-driven.
    bool pe_driven = false;
    (void)net.outputStatus(0, 0, &pe_driven);
    EXPECT_TRUE(pe_driven);
    // Intermediate INCs 1 and 2 route straight through at level 0.
    EXPECT_EQ(net.outputStatus(1, 0), 0b010);
    EXPECT_EQ(net.outputStatus(2, 0), 0b010);
    // Unoccupied ports read Unused.
    EXPECT_EQ(net.outputStatus(1, 2), 0b000);
    runToQuiescence(s, net);
}

TEST(RmbNetwork, Lemma1SkewBoundedOnIdleNetwork)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(16, 4));
    s.runFor(50'000);
    EXPECT_LE(net.rmbStats().maxCycleSkew, 1u);
    // Cycles actually progressed on every INC.
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_GT(net.inc(i).cycleCount(), 100u) << "INC " << i;
}

TEST(RmbNetwork, WaitPolicyCompletesUnderLightLoad)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(8, 4);
    cfg.blocking = BlockingPolicy::Wait;
    RmbNetwork net(s, cfg);
    net.send(0, 4, 64);
    net.send(1, 5, 64);
    net.send(2, 6, 64);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().nacks, 0u);
}

TEST(RmbNetwork, WaitPolicyWithTimeoutRecoversFromOverload)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(16, 2, 7);
    cfg.blocking = BlockingPolicy::Wait;
    cfg.headerTimeout = 300;
    RmbNetwork net(s, cfg);
    sim::Random rng(7);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r = workload::runBatch(net, pairs, 32, 2'000'000);
    EXPECT_TRUE(r.completed);
}

TEST(RmbNetwork, RandomPermutationsComplete)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        sim::Simulator s;
        RmbNetwork net(s, testConfig(16, 4, seed));
        sim::Random rng(seed * 13);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 32, 2'000'000);
        EXPECT_TRUE(r.completed) << "seed " << seed;
        EXPECT_EQ(r.delivered, pairs.size());
        EXPECT_LE(net.rmbStats().maxCycleSkew, 1u);
    }
}

TEST(RmbNetwork, DeliveryCallbackFires)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    int calls = 0;
    net.setDeliveryCallback([&](const net::Message &m) {
        ++calls;
        EXPECT_EQ(m.state, net::MessageState::Delivered);
    });
    net.send(0, 4, 8);
    net.send(3, 1, 8);
    runToQuiescence(s, net);
    EXPECT_EQ(calls, 2);
}

TEST(RmbNetwork, TimestampOrderingInvariants)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    const auto a = net.send(4, 2, 16);
    runToQuiescence(s, net);
    const net::Message &m = net.message(a);
    EXPECT_LE(m.created, m.firstAttempt);
    EXPECT_LE(m.firstAttempt, m.established);
    EXPECT_LT(m.established, m.delivered);
}

TEST(RmbNetwork, AuditPassesAfterHeavyChurn)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(12, 3, 3);
    cfg.verify = VerifyLevel::Cheap; // audit manually below
    RmbNetwork net(s, cfg);
    sim::Random rng(3);
    for (int round = 0; round < 5; ++round) {
        const auto pairs =
            workload::randomPartialPermutation(12, 8, rng);
        for (const auto &[src, dst] : pairs)
            net.send(src, dst, 24);
        s.runFor(500);
        net.auditInvariants();
    }
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    net.auditInvariants();
}

TEST(RmbNetworkDeathTest, SelfMessageRejected)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    EXPECT_DEATH(net.send(3, 3, 8), "self");
}

TEST(RmbNetworkDeathTest, OutOfRangeNodeRejected)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    EXPECT_DEATH(net.send(0, 8, 8), "out of range");
}

TEST(RmbNetworkDeathTest, ZeroBusesIsFatal)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(8, 3);
    cfg.numBuses = 0;
    EXPECT_EXIT(RmbNetwork(s, cfg), ::testing::ExitedWithCode(1),
                "at least one bus");
}

TEST(RmbNetwork, ZeroPayloadMessageStillDelivered)
{
    // A header + FF with no data flits is legal.
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    const auto id = net.send(0, 1, 0);
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
}

TEST(RmbNetwork, FullRingPathWorks)
{
    // dst = src - 1 (mod N): the longest clockwise path, N-1 hops.
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    const auto id = net.send(3, 2, 16);
    runToQuiescence(s, net);
    const net::Message &m = net.message(id);
    EXPECT_EQ(m.state, net::MessageState::Delivered);
    EXPECT_EQ(net.stats().pathLength.max(), 7.0);
}

} // namespace
} // namespace core
} // namespace rmb
