/**
 * @file
 * Tests for the workload drivers (batch and open loop), run against
 * both the RMB and a baseline so the harness is provably
 * network-agnostic.
 */

#include <gtest/gtest.h>

#include "baselines/multibus.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/traffic.hh"

namespace rmb {
namespace workload {
namespace {

TEST(RunBatch, EmptyBatchCompletesImmediately)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    const auto r = runBatch(net, {}, 16);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.delivered, 0u);
    EXPECT_EQ(r.makespan, 0u);
}

TEST(RunBatch, ReportsPerBatchCounters)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 4;
    core::RmbNetwork net(s, cfg);
    const PairList pairs{{0, 4}, {1, 5}, {2, 6}};
    const auto r = runBatch(net, pairs, 16);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.delivered, 3u);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(r.meanLatency, 0.0);
    EXPECT_LE(r.meanLatency, r.maxLatency);
    EXPECT_LE(r.maxLatency, static_cast<double>(r.makespan));
}

TEST(RunBatch, SequentialBatchesIsolateCounters)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    const auto r1 = runBatch(net, {{0, 4}, {1, 5}}, 16);
    const auto r2 = runBatch(net, {{2, 6}}, 16);
    EXPECT_TRUE(r1.completed);
    EXPECT_TRUE(r2.completed);
    EXPECT_EQ(r2.delivered, 1u);
}

TEST(RunBatch, TimeoutReportsPartialCompletion)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    // Absurdly short timeout: the messages cannot finish.
    const auto r = runBatch(net, {{0, 4}}, 5000, 10);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.delivered, 0u);
    // Drain so the fixture tears down cleanly.
    while (!net.quiescent())
        s.run(256);
}

TEST(RunBatch, WorksOnBaselineNetworks)
{
    sim::Simulator s;
    baseline::CircuitConfig cfg;
    baseline::MultiBusNetwork net(s, 8, 2, cfg);
    const PairList pairs{{0, 4}, {1, 5}, {2, 6}, {3, 7}};
    const auto r = runBatch(net, pairs, 8);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.delivered, 4u);
}

TEST(RunBatchDeathTest, RequiresQuiescentNetwork)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    net.send(0, 1, 50);
    EXPECT_DEATH(runBatch(net, {{2, 3}}, 8), "quiescent");
    while (!net.quiescent())
        s.run(256);
}

TEST(RunOpenLoop, DeliversAtLowLoad)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 4;
    core::RmbNetwork net(s, cfg);
    UniformTraffic pattern(8);
    sim::Random rng(1);
    const auto r =
        runOpenLoop(net, pattern, 0.002, 8, 20000, rng, 2000);
    EXPECT_GT(r.injected, 0u);
    EXPECT_GT(r.delivered, 0u);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.meanLatency, 0.0);
    EXPECT_LE(r.meanLatency, r.maxLatency);
    // At this trickle the network keeps up.
    EXPECT_NEAR(r.throughput, 0.002, 0.001);
}

TEST(RunOpenLoop, ThroughputSaturatesUnderOverload)
{
    sim::Simulator s1;
    sim::Simulator s2;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork low(s1, cfg);
    core::RmbNetwork high(s2, cfg);
    UniformTraffic pattern(8);
    sim::Random rng1(2);
    sim::Random rng2(2);
    const auto r_low =
        runOpenLoop(low, pattern, 0.001, 16, 30000, rng1, 3000);
    const auto r_high =
        runOpenLoop(high, pattern, 0.05, 16, 30000, rng2, 3000);
    // Overload cannot deliver proportionally more.
    EXPECT_LT(r_high.throughput, 0.05 * 0.9);
    EXPECT_GT(r_high.meanLatency, r_low.meanLatency);
}

TEST(RunOpenLoop, HonoursMeasurementWindow)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 4;
    core::RmbNetwork net(s, cfg);
    UniformTraffic pattern(8);
    sim::Random rng(3);
    const auto r =
        runOpenLoop(net, pattern, 0.005, 8, 10000, rng, 9000);
    // Only ~1000 ticks are measured: the in-window deliveries that
    // define throughput must be far fewer than total injections.
    const double measured =
        r.throughput * 1000.0 * 8.0;
    EXPECT_LT(measured, static_cast<double>(r.injected) / 2.0);
    EXPECT_GT(r.injected, 100u);
}

TEST(RunOpenLoopDeathTest, RateValidation)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    core::RmbNetwork net(s, cfg);
    UniformTraffic pattern(8);
    sim::Random rng(4);
    EXPECT_DEATH(runOpenLoop(net, pattern, 0.0, 8, 1000, rng), "rate");
    EXPECT_DEATH(runOpenLoop(net, pattern, 0.5, 8, 1000, rng, 2000),
                 "warmup");
}

} // namespace
} // namespace workload
} // namespace rmb
