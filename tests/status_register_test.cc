/**
 * @file
 * Tests of the Table-1 status register, including the full
 * make-before-break transition sequences of Figure 7.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "rmb/status_register.hh"

namespace rmb {
namespace core {
namespace {

TEST(StatusCodes, Table1ExhaustiveSweep)
{
    // All eight 3-bit codes, straight from Table 1: a legality bit
    // and the name statusName() must produce for each.
    struct Row
    {
        std::uint8_t bits;
        bool legal;
        const char *name;
    };
    static const Row kTable1[] = {
        {0b000, true, "unused"},
        {0b001, true, "from-below"},
        {0b010, true, "straight"},
        {0b011, true, "below+straight"},
        {0b100, true, "from-above"},
        {0b101, false, "illegal(0b101)"},
        {0b110, true, "above+straight"},
        {0b111, false, "illegal(0b111)"},
    };
    for (const Row &row : kTable1) {
        EXPECT_EQ(statusLegal(row.bits), row.legal)
            << "code " << int{row.bits};
        EXPECT_EQ(statusName(row.bits), row.name)
            << "code " << int{row.bits};
    }
    // Out-of-range values are illegal too, and statusName stays
    // diagnostic instead of panicking.
    EXPECT_FALSE(statusLegal(0b1000));
    EXPECT_EQ(statusName(0b1000), "illegal(0b1000)");
}

TEST(StatusRegister, StartsUnused)
{
    StatusRegister r;
    EXPECT_TRUE(r.unused());
    EXPECT_EQ(r.numSources(), 0);
    EXPECT_EQ(r.status(), PortStatus::Unused);
}

TEST(StatusRegister, SingleSourceConnections)
{
    StatusRegister below;
    below.connect(SourceDir::Below);
    EXPECT_EQ(below.status(), PortStatus::FromBelow);

    StatusRegister straight;
    straight.connect(SourceDir::Straight);
    EXPECT_EQ(straight.status(), PortStatus::Straight);

    StatusRegister above;
    above.connect(SourceDir::Above);
    EXPECT_EQ(above.status(), PortStatus::FromAbove);
}

TEST(StatusRegister, MakeBeforeBreakDualCodes)
{
    // The two legal dual-source states of Table 1.
    StatusRegister r1;
    r1.connect(SourceDir::Straight);
    r1.connect(SourceDir::Below);
    EXPECT_EQ(r1.status(), PortStatus::FromBelowAndStraight);
    EXPECT_EQ(r1.numSources(), 2);

    StatusRegister r2;
    r2.connect(SourceDir::Straight);
    r2.connect(SourceDir::Above);
    EXPECT_EQ(r2.status(), PortStatus::FromAboveAndStraight);
}

TEST(StatusRegisterDeathTest, AboveAndBelowIsIllegal)
{
    // 101 is "Not allowed" in Table 1.
    StatusRegister r;
    r.connect(SourceDir::Below);
    EXPECT_DEATH(r.connect(SourceDir::Above), "illegal");
}

TEST(StatusRegisterDeathTest, TripleSourceIsIllegal)
{
    StatusRegister r;
    r.connect(SourceDir::Below);
    r.connect(SourceDir::Straight);
    EXPECT_DEATH(r.connect(SourceDir::Above), "illegal");
}

TEST(StatusRegisterDeathTest, DoubleConnectPanics)
{
    StatusRegister r;
    r.connect(SourceDir::Straight);
    EXPECT_DEATH(r.connect(SourceDir::Straight), "already");
}

TEST(StatusRegisterDeathTest, DisconnectAbsentPanics)
{
    StatusRegister r;
    EXPECT_DEATH(r.disconnect(SourceDir::Below), "not connected");
}

TEST(StatusRegister, DisconnectRestoresSingleSource)
{
    StatusRegister r;
    r.connect(SourceDir::Straight);
    r.connect(SourceDir::Below);
    r.disconnect(SourceDir::Straight);
    EXPECT_EQ(r.status(), PortStatus::FromBelow);
    r.disconnect(SourceDir::Below);
    EXPECT_TRUE(r.unused());
}

TEST(StatusRegister, ClearForcesUnused)
{
    StatusRegister r;
    r.connect(SourceDir::Above);
    r.clear();
    EXPECT_TRUE(r.unused());
}

/**
 * Figure 7's transition condition (a): the bus on level l goes
 * straight through both switches; moving it down means switch i's
 * port l-1 goes 000 -> 100 (from above) while port l returns to 000,
 * and switch i+1's port l goes 010 -> 110 -> 010 ... expressed here
 * on the registers of the two ports involved at one INC.
 */
TEST(StatusRegister, Figure7StraightDownSequence)
{
    // Output l: receiving straight.  Output l-1: unused.
    StatusRegister out_l;
    StatusRegister out_lm1;
    out_l.connect(SourceDir::Straight);

    // Make: output l-1 additionally receives "from above" (input l).
    out_lm1.connect(SourceDir::Above);
    EXPECT_EQ(out_lm1.status(), PortStatus::FromAbove);
    EXPECT_EQ(out_l.status(), PortStatus::Straight);

    // Break: output l releases.
    out_l.disconnect(SourceDir::Straight);
    EXPECT_TRUE(out_l.unused());
    EXPECT_EQ(out_lm1.status(), PortStatus::FromAbove);
}

/**
 * Figure 7 downstream view: while the upstream INC moves the bus
 * from input l to input l-1, the downstream output port passes
 * through the dual code (make) and back to a single code (break).
 */
TEST(StatusRegister, Figure7DownstreamDualSequence)
{
    StatusRegister out;                    // downstream output at l
    out.connect(SourceDir::Straight);      // 010: from input l
    out.connect(SourceDir::Below);         // make: 011
    EXPECT_EQ(out.status(), PortStatus::FromBelowAndStraight);
    out.disconnect(SourceDir::Straight);   // break: 001
    EXPECT_EQ(out.status(), PortStatus::FromBelow);
}

} // namespace
} // namespace core
} // namespace rmb
