/**
 * @file
 * Cross-feature soak matrix: every combination of header policy,
 * blocking policy, compaction, detailed flits and multi-port PEs
 * runs a mixed workload (batch + multicast + faults) under full
 * structural auditing.  Catches interactions no single-feature test
 * exercises.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "obs/sinks.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

using Combo = std::tuple<HeaderPolicy, BlockingPolicy,
                         bool /*compaction*/, bool /*detailed*/,
                         std::uint32_t /*ports*/>;

class SoakMatrix : public ::testing::TestWithParam<Combo>
{
};

TEST_P(SoakMatrix, MixedWorkloadSurvivesFullAudit)
{
    const auto [header, blocking, compaction, detailed, ports] =
        GetParam();
    sim::Simulator s;
    RmbConfig cfg;
    cfg.numNodes = 16;
    cfg.numBuses = 4;
    cfg.seed = 99;
    cfg.headerPolicy = header;
    cfg.blocking = blocking;
    cfg.enableCompaction = compaction;
    cfg.detailedFlits = detailed;
    cfg.dackWindow = 6;
    cfg.sendPorts = ports;
    cfg.receivePorts = ports;
    // Wait policy needs the timeout safety valve under this load.
    if (blocking == BlockingPolicy::Wait)
        cfg.headerTimeout = 400;
    cfg.verify = VerifyLevel::Full;
    // Flight recorder: if any audit panics mid-soak, the last 256
    // protocol events land on stderr via the panic hook.  Declared
    // before the network so it outlives the hook registration.
    obs::RingBufferSink recorder(256);
    RmbNetwork net(s, cfg);
    net.setTraceSink(&recorder);

    // A scattered fault that both header policies can route around
    // (only one level of the gap dies).
    net.failSegment(5, 1);

    sim::Random rng(31);

    // Round 1: random batch.
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r1 = workload::runBatch(net, pairs, 24, 4'000'000);
    EXPECT_TRUE(r1.completed);

    // Round 2: broadcast + crossing unicasts, injected live.
    const auto group = net.broadcast(3, 64);
    for (net::NodeId i = 0; i < 16; i += 3)
        net.send(i, (i + 7) % 16, 40);
    while (!net.quiescent() && s.now() < 8'000'000)
        s.run(512);
    ASSERT_TRUE(net.quiescent());
    EXPECT_TRUE(net.multicastRecord(group).complete);

    // Round 3: bursts through every node.
    workload::PairList burst;
    for (net::NodeId i = 0; i < 16; ++i) {
        burst.emplace_back(i, (i + 2) % 16);
        burst.emplace_back(i, (i + 5) % 16);
    }
    const auto r3 = workload::runBatch(net, burst, 16, 4'000'000);
    EXPECT_TRUE(r3.completed);

    // Structural sanity after everything.
    net.auditInvariants();
    EXPECT_LE(net.rmbStats().maxCycleSkew, 1u);
    EXPECT_EQ(net.segments().occupiedCount() -
                  /* trailing teardowns may still hold cells */ 0,
              net.segments().occupiedCount());
    s.runFor(2000); // drain trailing Facks
    EXPECT_EQ(net.segments().occupiedCount(), 0u);
}

// ----------------------------------------------------------------
// Fault-churn soak: a live MTBF/MTTR fault process (FaultSchedule)
// keeps failing and repairing segments under sustained load, with
// the watchdog armed.  Every message must end in a terminal state
// and the structural audit must hold once the churn drains.
// ----------------------------------------------------------------

TEST(FaultChurnSoak, SustainedLoadSurvivesFaultChurn)
{
    sim::Simulator s;
    RmbConfig cfg;
    cfg.numNodes = 16;
    cfg.numBuses = 4;
    cfg.seed = 77;
    cfg.transientFaults = true;
    cfg.faultMtbf = 400; // aggressive churn: ~1 fault / 400 ticks
    cfg.faultMttrMin = 200;
    cfg.faultMttrMax = 1'000;
    cfg.watchdogTimeout = 800;
    cfg.maxRetries = 60;
    cfg.verify = VerifyLevel::Full;
    // Flight recorder for the fault-churn path: a watchdog or audit
    // panic dumps the recent event tail instead of dying silently.
    obs::RingBufferSink recorder(256);
    RmbNetwork net(s, cfg);
    net.setTraceSink(&recorder);

    sim::Random rng(41);
    std::vector<net::MessageId> ids;
    for (int round = 0; round < 4; ++round) {
        // A full random permutation per round, plus crossing
        // long-haul sends so some buses live long enough to be hit.
        const auto pairs =
            workload::toPairs(workload::randomFullTraffic(16, rng));
        for (const auto &[src, dst] : pairs)
            ids.push_back(net.send(src, dst, 48));
        for (net::NodeId i = 0; i < 16; i += 4)
            ids.push_back(net.send(i, (i + 9) % 16, 400));
        while (!net.quiescent() &&
               s.now() < static_cast<sim::Tick>(round + 1) * 4'000'000)
            s.run(512);
    }
    ASSERT_TRUE(net.quiescent());

    // Terminal accounting: every message delivered or explicitly
    // failed, and the recovery/loss split covers every severed one.
    const auto &ns = net.stats();
    EXPECT_EQ(ns.delivered + ns.failed, ns.injected);
    EXPECT_EQ(std::uint64_t{ns.injected}, ids.size());
    for (const net::MessageId id : ids) {
        const auto st = net.message(id).state;
        EXPECT_TRUE(st == net::MessageState::Delivered ||
                    st == net::MessageState::Failed);
    }

    // The churn must have actually exercised the recovery machinery.
    const RmbStats &rs = net.rmbStats();
    EXPECT_GT(rs.faultsInjected, 0u);
    EXPECT_GT(rs.faultsRepaired, 0u);
    EXPECT_GT(rs.busesSevered, 0u);
    EXPECT_EQ(std::uint64_t{rs.messagesRecovered},
              rs.recoveryLatency.count());

    net.auditInvariants();
    s.runFor(4'000); // drain trailing Facks and pending repairs
    EXPECT_EQ(net.segments().occupiedCount(), 0u);
    net.auditInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SoakMatrix,
    ::testing::Combine(
        ::testing::Values(HeaderPolicy::PreferLowest,
                          HeaderPolicy::PreferStraight),
        ::testing::Values(BlockingPolicy::NackRetry,
                          BlockingPolicy::Wait),
        ::testing::Bool(),  // compaction
        ::testing::Bool(),  // detailed flits
        ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<Combo> &info) {
        // NB: no structured bindings here - their bare commas would
        // split the macro's arguments.
        std::string name;
        name += std::get<0>(info.param) ==
                        HeaderPolicy::PreferLowest
                    ? "Low"
                    : "Top";
        name += std::get<1>(info.param) ==
                        BlockingPolicy::NackRetry
                    ? "Nack"
                    : "Wait";
        name += std::get<2>(info.param) ? "Comp" : "NoComp";
        name += std::get<3>(info.param) ? "Flit" : "Fast";
        name += "P" + std::to_string(std::get<4>(info.param));
        return name;
    });

} // namespace
} // namespace core
} // namespace rmb
