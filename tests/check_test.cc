/**
 * @file
 * Tests of the model checker (src/check): both layers verify clean
 * under the paper's rules, every seeded mutation is caught with a
 * reproducible minimal counterexample, and the explorer's mechanics
 * (canonical interning, truncation, trace rendering) behave.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/check.hh"
#include "check/cycle_model.hh"
#include "check/explorer.hh"
#include "check/net_model.hh"
#include "check/runner.hh"

namespace rmb {
namespace check {
namespace {

CheckConfig
smallConfig()
{
    CheckConfig cfg;
    cfg.nodes = 4;
    cfg.buses = 3;
    cfg.messages = 2;
    return cfg;
}

TEST(CycleModelCheck, Figure10RulesAreClean)
{
    for (std::uint32_t n = 3; n <= 6; ++n) {
        CheckConfig cfg = smallConfig();
        cfg.nodes = n;
        CycleModel model(cfg);
        const ExploreResult res = explore(model, cfg.maxStates);
        EXPECT_FALSE(res.truncated) << "N=" << n;
        EXPECT_FALSE(res.violation.has_value())
            << "N=" << n << ": " << res.violation->message;
        EXPECT_GT(res.numStates, 0u);
    }
}

TEST(CycleModelCheck, BodyTextRule3Deadlocks)
{
    // The paper's body text prints rule 3 as firing on LC = RC = 0;
    // the checker proves that reading stalls the ring (see the
    // cycle_fsm.hh header comment and docs/MODELCHECK.md).
    CheckConfig cfg = smallConfig();
    cfg.cycleVariant = core::CycleRuleVariant::OcRuleBodyText;
    CycleModel model(cfg);
    const ExploreResult res = explore(model, cfg.maxStates);
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->kind, "deadlock");
    ASSERT_FALSE(res.trace.empty());
    EXPECT_EQ(res.trace.front(), model.initial());
}

TEST(CycleModelCheck, UngatedRules4And5ViolateLemma1)
{
    CheckConfig cfg = smallConfig();
    cfg.cycleVariant = core::CycleRuleVariant::NoHandshakeGates;
    CycleModel model(cfg);
    const ExploreResult res = explore(model, cfg.maxStates);
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->kind, "lemma1-skew");
    EXPECT_NE(res.violation->message.find("Lemma 1"),
              std::string::npos);
}

TEST(NetModelCheck, Figure7RulesAreClean)
{
    CheckConfig cfg = smallConfig();
    cfg.nodes = 3;
    cfg.buses = 3;
    NetModel model(cfg);
    const ExploreResult res = explore(model, cfg.maxStates);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.violation.has_value())
        << res.violation->message;
}

TEST(NetModelCheck, IgnoringMoveNeighboursSeversABus)
{
    CheckConfig cfg = smallConfig();
    cfg.nodes = 3;
    cfg.buses = 4;
    cfg.messages = 1;
    cfg.moveVariant = core::MoveRuleVariant::IgnoreNeighbors;
    NetModel model(cfg);
    const ExploreResult res = explore(model, cfg.maxStates);
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_EQ(res.violation->kind, "severed-bus");
    // The counterexample replays from the initial state.
    const std::string text =
        renderTrace(model, res.trace, *res.violation);
    EXPECT_NE(text.find("severed"), std::string::npos);
    EXPECT_NE(text.find("step 0"), std::string::npos);
}

TEST(NetModelCheck, InitialStateIsAllIdleWithNoObligations)
{
    CheckConfig cfg = smallConfig();
    NetModel model(cfg);
    EXPECT_EQ(model.pendingBits(model.initial()), 0u);
    EXPECT_NE(model.describeState(model.initial()).find("idle"),
              std::string::npos);
}

TEST(CycleModelCheck, EveryIncIsALivenessObligation)
{
    CheckConfig cfg = smallConfig();
    CycleModel model(cfg);
    EXPECT_EQ(model.pendingBits(model.initial()),
              (1u << cfg.nodes) - 1);
}

TEST(ExplorerCheck, TruncationIsReportedNotSilentlyPassed)
{
    CheckConfig cfg = smallConfig();
    cfg.maxStates = 10;
    NetModel model(cfg);
    const ExploreResult res = explore(model, cfg.maxStates);
    EXPECT_TRUE(res.truncated);
    EXPECT_FALSE(res.violation.has_value());
}

TEST(ExplorerCheck, RotatedStatesInternAsOneCanonicalState)
{
    // A single-INC-symmetric model: from the initial state, the N
    // possible "INC i finishes its moves" successors are all the
    // same state up to rotation, so BFS must intern exactly one.
    CheckConfig cfg = smallConfig();
    CycleModel model(cfg);
    std::vector<Succ> succs;
    model.successors(model.initial(), succs, nullptr, nullptr);
    ASSERT_EQ(succs.size(), cfg.nodes);
    for (const Succ &sc : succs)
        EXPECT_EQ(sc.enc, succs.front().enc);
}

TEST(RunnerCheck, MutationNamesMapToRuleVariants)
{
    CheckConfig cfg;
    EXPECT_TRUE(applyMutation("", cfg));
    EXPECT_TRUE(applyMutation("none", cfg));
    EXPECT_TRUE(applyMutation("oc-rule-bodytext", cfg));
    EXPECT_EQ(cfg.cycleVariant,
              core::CycleRuleVariant::OcRuleBodyText);
    EXPECT_TRUE(applyMutation("no-handshake-gates", cfg));
    EXPECT_EQ(cfg.cycleVariant,
              core::CycleRuleVariant::NoHandshakeGates);
    EXPECT_TRUE(applyMutation("move-ignore-neighbors", cfg));
    EXPECT_EQ(cfg.moveVariant,
              core::MoveRuleVariant::IgnoreNeighbors);
    EXPECT_FALSE(applyMutation("frobnicate", cfg));
}

TEST(RunnerCheck, CleanRunPrintsOkPerLayer)
{
    CheckConfig cfg = smallConfig();
    cfg.nodes = 3;
    cfg.buses = 2;
    cfg.messages = 1;
    std::ostringstream os;
    const RunStatus st = runCheck(cfg, Layers::Both, os);
    EXPECT_EQ(st, RunStatus::Clean);
    EXPECT_NE(os.str().find("[cycle]"), std::string::npos);
    EXPECT_NE(os.str().find("[datapath]"), std::string::npos);
    EXPECT_NE(os.str().find("OK"), std::string::npos);
}

TEST(RunnerCheck, ViolationRunPrintsCounterexample)
{
    CheckConfig cfg = smallConfig();
    cfg.cycleVariant = core::CycleRuleVariant::OcRuleBodyText;
    std::ostringstream os;
    const RunStatus st = runCheck(cfg, Layers::CycleOnly, os);
    EXPECT_EQ(st, RunStatus::Violation);
    EXPECT_NE(os.str().find("counterexample"), std::string::npos);
    EXPECT_NE(os.str().find("deadlock"), std::string::npos);
}

} // namespace
} // namespace check
} // namespace rmb
