/**
 * @file
 * Direct tests of the netbase layer (message registry, lifecycle
 * hooks, callbacks) via a minimal test network.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "netbase/network.hh"
#include "sim/simulator.hh"

namespace rmb {
namespace net {
namespace {

/** Trivially-deliverable network: every send completes after a
 *  fixed delay. */
class LoopNetwork : public Network
{
  public:
    LoopNetwork(sim::Simulator &simulator, NodeId n,
                sim::Tick delay)
        : Network(simulator, "Loop", n), delay_(delay)
    {}

    MessageId
    send(NodeId src, NodeId dst, std::uint32_t flits) override
    {
        Message &m = createMessage(src, dst, flits);
        const MessageId id = m.id;
        noteFirstAttempt(m);
        events_[id].push_back(
            simulator().schedule(delay_ / 2, [this, id] {
                noteEstablished(messageRef(id));
                noteCircuit(+1);
            }));
        events_[id].push_back(
            simulator().schedule(delay_, [this, id] {
                noteCircuit(-1);
                noteDelivered(messageRef(id), 1);
            }));
        return id;
    }

    /** Fail a message (cancelling its pending lifecycle events). */
    void
    fail(MessageId id)
    {
        for (const auto event : events_[id])
            simulator().cancel(event);
        noteFailed(messageRef(id));
    }

  private:
    sim::Tick delay_;
    std::unordered_map<MessageId, std::vector<sim::EventId>>
        events_;
};

TEST(Netbase, MessageIdsAreOneBasedAndDense)
{
    sim::Simulator s;
    LoopNetwork net(s, 4, 10);
    EXPECT_EQ(net.send(0, 1, 5), 1u);
    EXPECT_EQ(net.send(1, 2, 5), 2u);
    EXPECT_EQ(net.send(2, 3, 5), 3u);
    EXPECT_EQ(net.numMessages(), 3u);
    EXPECT_EQ(net.message(2).src, 1u);
    s.run();
}

TEST(Netbase, LifecycleTimestampsAndStats)
{
    sim::Simulator s;
    LoopNetwork net(s, 4, 10);
    const auto id = net.send(0, 3, 7);
    s.run();
    const Message &m = net.message(id);
    EXPECT_EQ(m.state, MessageState::Delivered);
    EXPECT_EQ(m.established, 5u);
    EXPECT_EQ(m.delivered, 10u);
    EXPECT_EQ(m.payloadFlits, 7u);
    EXPECT_EQ(net.stats().delivered, 1u);
    EXPECT_DOUBLE_EQ(net.stats().totalLatency.mean(), 10.0);
    EXPECT_DOUBLE_EQ(net.stats().pathLength.mean(), 1.0);
    EXPECT_EQ(net.stats().activeCircuits.maximum(), 1);
    EXPECT_EQ(net.stats().activeCircuits.current(), 0);
}

TEST(Netbase, QuiescenceCountsFailures)
{
    sim::Simulator s;
    LoopNetwork net(s, 4, 10);
    EXPECT_TRUE(net.quiescent());
    const auto id = net.send(0, 1, 1);
    EXPECT_FALSE(net.quiescent());
    net.fail(id);
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().failed, 1u);
    s.run();
    EXPECT_TRUE(net.quiescent());
}

TEST(Netbase, DeliveryAndFailureCallbacks)
{
    sim::Simulator s;
    LoopNetwork net(s, 4, 10);
    int delivered = 0;
    int failed = 0;
    net.setDeliveryCallback([&](const Message &) { ++delivered; });
    net.setFailureCallback([&](const Message &) { ++failed; });
    net.send(0, 1, 1);
    const auto doomed = net.send(1, 2, 1);
    net.fail(doomed);
    s.runUntil(4); // before delivery events
    EXPECT_EQ(failed, 1);
    EXPECT_EQ(delivered, 0);
}

TEST(NetbaseDeathTest, Validation)
{
    sim::Simulator s;
    LoopNetwork net(s, 4, 10);
    EXPECT_DEATH(net.send(0, 0, 1), "self");
    EXPECT_DEATH(net.send(0, 4, 1), "range");
    EXPECT_DEATH(net.message(0), "unknown message");
    EXPECT_DEATH(net.message(1), "unknown message");
}

TEST(NetbaseDeathTest, TwoNodeMinimum)
{
    sim::Simulator s;
    EXPECT_DEATH(LoopNetwork(s, 1, 10), "at least two");
}

} // namespace
} // namespace net
} // namespace rmb
