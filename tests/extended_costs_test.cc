/**
 * @file
 * Tests for the extended cost models (dual ring, RMB torus, k-ary
 * n-cube) plus determinism guarantees of the whole simulator.
 */

#include <gtest/gtest.h>

#include "analysis/extended_costs.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace {

using namespace rmb::analysis;

TEST(ExtendedCosts, DualRingDoublesEverything)
{
    const Costs single = rmbCosts(64, 8);
    const Costs dual = dualRingRmbCosts(64, 8);
    EXPECT_EQ(dual.links, 2 * single.links);
    EXPECT_EQ(dual.crossPoints, 2 * single.crossPoints);
    EXPECT_EQ(dual.area, 2 * single.area);
    EXPECT_EQ(dual.bisection, 2 * single.bisection);
}

TEST(ExtendedCosts, TorusFormulas)
{
    // 8x4 torus, k = 2: 4 row rings * 16 + 8 column rings * 8.
    const Costs c = rmbTorusCosts(8, 4, 2);
    EXPECT_EQ(c.links, 4u * 16u + 8u * 8u);
    EXPECT_EQ(c.crossPoints, 3 * c.links);
    EXPECT_EQ(c.area, 2u * 32u * 2u);
    EXPECT_EQ(c.bisection, 4u * 2u);
}

TEST(ExtendedCosts, TorusMatchesTwoRingsPerNode)
{
    // Per node the torus spends exactly twice the single ring's
    // per-node hardware.
    const Costs torus = rmbTorusCosts(8, 8, 4);
    const Costs ring = rmbCosts(64, 4);
    EXPECT_EQ(torus.links, 2 * ring.links);
    EXPECT_EQ(torus.crossPoints, 2 * ring.crossPoints);
}

TEST(ExtendedCosts, KaryNcubeFormulas)
{
    // 4-ary 3-cube: N = 64, 2*64*3 links, 7^2 crosspoints/node.
    const Costs c = karyNcubeCosts(4, 3);
    EXPECT_EQ(c.links, 2u * 64u * 3u);
    EXPECT_EQ(c.crossPoints, 64u * 49u);
    EXPECT_EQ(c.bisection, 2u * 64u / 4u);
}

TEST(ExtendedCosts, RmbCheaperSwitchesThanKaryNcube)
{
    // The paper's simplicity pitch extends: at matched N the RMB's
    // per-node switch (3k cross points) undercuts the n-cube's
    // (2n+1)^2 crossbar for modest k.
    const Costs rmb = rmbCosts(64, 4);
    const Costs cube = karyNcubeCosts(4, 3);
    EXPECT_LT(rmb.crossPoints, cube.crossPoints);
}

TEST(ExtendedCostsDeathTest, Validation)
{
    EXPECT_DEATH(rmbTorusCosts(1, 4, 2), "width");
    EXPECT_DEATH(karyNcubeCosts(1, 2), "radix");
}

// ------------------------------------------------- determinism

TEST(Determinism, IdenticalSeedsIdenticalRuns)
{
    // The entire simulation - INC clock jitter, backoff draws,
    // event ordering - is a pure function of (config, workload).
    auto run = [](std::uint64_t seed) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 4;
        cfg.seed = seed;
        core::RmbNetwork net(s, cfg);
        sim::Random rng(42);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 32);
        std::vector<std::uint64_t> fingerprint{
            r.makespan, r.retries,
            net.rmbStats().compactionMoves,
            s.numExecuted()};
        for (net::MessageId id = 1; id <= net.numMessages(); ++id)
            fingerprint.push_back(net.message(id).delivered);
        return fingerprint;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8)); // different clock jitter/backoffs
}

TEST(Determinism, GoldenValuesForReferenceConfig)
{
    // Pin the exact behaviour of a reference configuration; any
    // unintended protocol change shows up here.
    sim::Simulator s;
    core::RmbConfig cfg; // all defaults, seed = 1
    core::RmbNetwork net(s, cfg);
    const auto a = net.send(0, 8, 64);
    const auto b = net.send(4, 12, 64);
    while (!net.quiescent())
        s.run(256);
    const net::Message &ma = net.message(a);
    const net::Message &mb = net.message(b);
    // Unloaded, non-overlapping-destination messages: exact timing.
    EXPECT_EQ(ma.setupLatency(), 8u * 4u + 8u * 2u);
    EXPECT_EQ(mb.setupLatency(), 8u * 4u + 8u * 2u);
    EXPECT_EQ(ma.delivered - ma.established, (64u + 1u + 8u) * 1u);
}

} // namespace
} // namespace rmb
