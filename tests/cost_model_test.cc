/**
 * @file
 * Tests of the section 3.2 analytic cost models, including the
 * paper's own worked relationships.
 */

#include <gtest/gtest.h>

#include "analysis/cost_model.hh"
#include "common/bitutils.hh"

namespace rmb {
namespace analysis {
namespace {

TEST(RmbCosts, MatchesPaperFormulas)
{
    // Paper: links = N*k, cross points = 3*N*k, area = Theta(N*k),
    // bisection = k*B.
    const Costs c = rmbCosts(64, 8);
    EXPECT_EQ(c.links, 64u * 8u);
    EXPECT_EQ(c.crossPoints, 3u * 64u * 8u);
    EXPECT_EQ(c.area, 64u * 8u);
    EXPECT_EQ(c.bisection, 8u);
}

TEST(RmbCosts, LinearInBothParameters)
{
    const Costs a = rmbCosts(32, 4);
    const Costs b = rmbCosts(64, 4);
    const Costs c = rmbCosts(32, 8);
    EXPECT_EQ(b.links, 2 * a.links);
    EXPECT_EQ(c.links, 2 * a.links);
    EXPECT_EQ(b.crossPoints, 2 * a.crossPoints);
    EXPECT_EQ(c.area, 2 * a.area);
}

TEST(HypercubeCosts, MatchesPaperFormulas)
{
    // N = 64 = 2^6: links N*log N = 384, cross points N*(log N)^2.
    const Costs c = hypercubeCosts(64);
    EXPECT_EQ(c.links, 64u * 6u);
    EXPECT_EQ(c.crossPoints, 64u * 36u);
    EXPECT_EQ(c.area, 64u * 64u);
    EXPECT_EQ(c.bisection, 32u);
}

TEST(EhcCosts, DegreePlusOne)
{
    // EHC: degree log N + 1 -> links N*(log N + 1), cross points
    // N*(log N + 1)^2 (paper section 3.2).
    const Costs c = ehcCosts(64);
    EXPECT_EQ(c.links, 64u * 7u);
    EXPECT_EQ(c.crossPoints, 64u * 49u);
    EXPECT_EQ(c.area, 64u * 64u);
}

TEST(FatTreeCosts, MatchesPaperFormula)
{
    // Paper: links = N*log2(k) + N - 2k.
    const Costs c = fatTreeCosts(64, 8);
    EXPECT_EQ(c.links, 64u * 3u + 64u - 16u);
    // Cross points: (N/k - 1)*6k^2 + (N/k)*6k^2 with N/k = 8.
    EXPECT_EQ(c.crossPoints, 7u * 6u * 64u + 8u * 6u * 64u);
    // Area: constant at least twelve times N*k.
    EXPECT_EQ(c.area, 12u * 64u * 8u);
    EXPECT_EQ(c.bisection, 8u);
}

TEST(MeshCosts, MatchesPaperAccounting)
{
    // Expanded by sqrt(k) per dimension: 16*N*k cross points and
    // N*k area.
    const Costs c = meshCosts(64, 4);
    EXPECT_EQ(c.links, 2u * 64u * 2u);
    EXPECT_EQ(c.crossPoints, 16u * 64u * 4u);
    EXPECT_EQ(c.area, 64u * 4u);
}

TEST(MeshCosts, UnitCapabilityIsPlainMesh)
{
    const Costs c = meshCosts(64, 1);
    EXPECT_EQ(c.links, 2u * 64u);
    EXPECT_EQ(c.crossPoints, 16u * 64u);
    EXPECT_EQ(c.area, 64u);
}

TEST(Comparison, RmbAreaBeatsHypercubeAtScale)
{
    // Section 3.2's headline: hypercube-family area is Theta(N^2),
    // the RMB's Theta(N*k) - for k = log N the RMB wins for all
    // N >= 16.
    for (std::uint64_t n : {16u, 64u, 256u, 1024u}) {
        const std::uint64_t k = log2Floor(n);
        EXPECT_LT(rmbCosts(n, k).area, hypercubeCosts(n).area)
            << "N=" << n;
    }
}

TEST(Comparison, FatTreeFewerLinksButMoreArea)
{
    // Paper: "The RMB has more links than ... a k-permutation
    // supporting fat tree" but the fat tree's area constant (>= 12)
    // exceeds the RMB's.
    for (std::uint64_t n : {64u, 256u}) {
        for (std::uint64_t k : {4u, 8u, 16u}) {
            const Costs rmb = rmbCosts(n, k);
            const Costs ft = fatTreeCosts(n, k);
            EXPECT_GT(rmb.links, ft.links)
                << "N=" << n << " k=" << k;
            EXPECT_LT(rmb.area, ft.area) << "N=" << n << " k=" << k;
        }
    }
}

TEST(Comparison, RmbCrossPointsBeatEhc)
{
    // 3Nk vs N(log N + 1)^2: for k = log N the RMB has fewer cross
    // points whenever 3 log N < (log N + 1)^2, i.e. always.
    for (std::uint64_t n : {16u, 64u, 256u, 1024u}) {
        const std::uint64_t k = log2Floor(n);
        EXPECT_LT(rmbCosts(n, k).crossPoints,
                  ehcCosts(n).crossPoints)
            << "N=" << n;
    }
}

TEST(Comparison, MeshAndRmbAreaComparable)
{
    // Paper: the RMB "is also comparable to the mesh using these
    // criteria" - identical area accounting.
    EXPECT_EQ(rmbCosts(256, 8).area, meshCosts(256, 8).area);
}

TEST(GfcCosts, LinkBoundShrinksWithK)
{
    const Costs loose = gfcCosts(256, 2);
    const Costs tight = gfcCosts(256, 32);
    EXPECT_GT(loose.links, tight.links);
}

TEST(AllArchitectures, RegistryCoversPaperSet)
{
    const auto &archs = allArchitectures();
    ASSERT_EQ(archs.size(), 6u);
    EXPECT_EQ(archs[0].name, "RMB (ring)");
    // Every entry must be callable at a valid design point.
    for (const auto &a : archs) {
        const Costs c = a.costs(64, 8);
        EXPECT_GT(c.links, 0u) << a.name;
        EXPECT_GT(c.area, 0u) << a.name;
    }
}

TEST(CostModelDeathTest, HypercubeRejectsNonPowerOfTwo)
{
    EXPECT_DEATH(hypercubeCosts(48), "2\\^n");
}

TEST(CostModelDeathTest, FatTreeRejectsBadK)
{
    EXPECT_DEATH(fatTreeCosts(64, 3), "");
    EXPECT_DEATH(fatTreeCosts(60, 4), "");
}

TEST(CostModelDeathTest, RejectsKAboveN)
{
    EXPECT_DEATH(rmbCosts(8, 9), "");
}

} // namespace
} // namespace analysis
} // namespace rmb
