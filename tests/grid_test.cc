/**
 * @file
 * Tests for n-dimensional grids of RMB rings (the 3-D case the
 * paper's section 4 names explicitly, plus higher dimensions).
 */

#include <gtest/gtest.h>

#include "rmb/grid.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
ringCfg(std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig c;
    c.numBuses = k;
    c.seed = seed;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 4'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

TEST(Grid, CoordinatesAreMixedRadix)
{
    sim::Simulator s;
    RmbGridNetwork net(s, {4, 3, 2}, ringCfg(2));
    EXPECT_EQ(net.numNodes(), 24u);
    EXPECT_EQ(net.numDims(), 3u);
    // node 23 = 3 + 4*(2 + 3*1).
    EXPECT_EQ(net.coordinate(23, 0), 3u);
    EXPECT_EQ(net.coordinate(23, 1), 2u);
    EXPECT_EQ(net.coordinate(23, 2), 1u);
    EXPECT_EQ(net.coordinate(0, 2), 0u);
}

TEST(Grid, RingGeometry)
{
    sim::Simulator s;
    RmbGridNetwork net(s, {4, 3, 2}, ringCfg(2));
    EXPECT_EQ(net.lineRing(0, 0).numNodes(), 4u);
    EXPECT_EQ(net.lineRing(1, 0).numNodes(), 3u);
    EXPECT_EQ(net.lineRing(2, 0).numNodes(), 2u);
    // Nodes in the same dim-0 line share a ring; others do not.
    EXPECT_EQ(&net.lineRing(0, 0), &net.lineRing(0, 3));
    EXPECT_NE(&net.lineRing(0, 0), &net.lineRing(0, 4));
}

TEST(Grid, ThreeDimensionalDelivery)
{
    sim::Simulator s;
    RmbGridNetwork net(s, {4, 4, 4}, ringCfg(2));
    EXPECT_EQ(net.numNodes(), 64u);
    // (0,0,0) -> (3,2,1) = 3 + 4*2 + 16*1 = 27:
    // legs of 3, 2 and 1 clockwise hops = 6 total.
    const auto id = net.send(0, 27, 16);
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_EQ(net.stats().pathLength.max(), 6.0);
    EXPECT_EQ(net.multiLegMessages(), 1u);
}

TEST(Grid, SingleDimensionIsARing)
{
    sim::Simulator s;
    RmbGridNetwork net(s, {8}, ringCfg(3));
    EXPECT_EQ(net.numNodes(), 8u);
    const auto id = net.send(5, 2, 16); // wraps: 5 hops
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_EQ(net.stats().pathLength.max(), 5.0);
    EXPECT_EQ(net.multiLegMessages(), 0u);
}

TEST(Grid, RandomPermutations3D)
{
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        sim::Simulator s;
        RmbGridNetwork net(s, {4, 2, 2}, ringCfg(2, seed));
        sim::Random rng(seed * 29);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 24);
        EXPECT_TRUE(r.completed) << "seed " << seed;
    }
}

TEST(Grid, HigherDimensionsCutPathLength)
{
    // 64 nodes: 1-D ring vs 2-D 8x8 vs 3-D 4x4x4 mean hop counts
    // must strictly decrease.
    sim::Random rng(7);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(64, rng));
    double mean_hops[3] = {0, 0, 0};
    int which = 0;
    for (const std::vector<std::uint32_t> &dims :
         {std::vector<std::uint32_t>{64},
          std::vector<std::uint32_t>{8, 8},
          std::vector<std::uint32_t>{4, 4, 4}}) {
        sim::Simulator s;
        RmbConfig cfg = ringCfg(4);
        cfg.verify = VerifyLevel::Off;
        RmbGridNetwork net(s, dims, cfg);
        const auto r = workload::runBatch(net, pairs, 16,
                                          20'000'000);
        ASSERT_TRUE(r.completed);
        mean_hops[which++] = net.stats().pathLength.mean();
    }
    EXPECT_GT(mean_hops[0], mean_hops[1]);
    EXPECT_GT(mean_hops[1], mean_hops[2]);
}

TEST(Grid, CompactionActiveInEveryDimension)
{
    sim::Simulator s;
    RmbGridNetwork net(s, {4, 2, 2}, ringCfg(3));
    for (net::NodeId i = 0; i < 16; ++i)
        net.send(i, (i + 7) % 16, 300);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_GT(net.totalCompactionMoves(), 0u);
}

TEST(GridDeathTest, Validation)
{
    sim::Simulator s;
    EXPECT_EXIT(RmbGridNetwork(s, {}, ringCfg(2)),
                ::testing::ExitedWithCode(1), "dimension");
    EXPECT_EXIT(RmbGridNetwork(s, {4, 1}, ringCfg(2)),
                ::testing::ExitedWithCode(1), ">= 2");
}

} // namespace
} // namespace core
} // namespace rmb
