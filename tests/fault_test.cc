/**
 * @file
 * Fault-injection tests: the RMB routes and compacts around
 * permanently failed bus segments, degrading capacity gracefully.
 */

#include <gtest/gtest.h>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
cfg(std::uint32_t n, std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.seed = seed;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 2'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

TEST(Fault, SingleFaultedSegmentIsAvoided)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4));
    net.failSegment(5, 1);
    EXPECT_TRUE(net.segments().isFaulty(5, 1));
    EXPECT_EQ(net.segments().faultyCount(), 1u);
    const auto id = net.send(2, 9, 64); // crosses gap 5
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    // The faulted cell never carried the bus.
    EXPECT_TRUE(net.segments().isFaulty(5, 1));
}

TEST(Fault, CompactionNeverMovesIntoAFault)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(12, 4));
    // Fault the bottom of every gap: circuits settle at level 1.
    for (GapId g = 0; g < 12; ++g)
        net.failSegment(g, 0);
    net.send(0, 6, 3'000);
    s.runFor(2'000);
    const auto ids = net.liveBusIds();
    ASSERT_EQ(ids.size(), 1u);
    for (const Hop &h : net.bus(ids[0])->hops) {
        EXPECT_GE(h.level, 1) << "gap " << h.gap;
        EXPECT_FALSE(net.segments().isFaulty(h.gap, h.level));
    }
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
}

TEST(Fault, ReducedCapacityStillServesWithinNewK)
{
    // k = 4 with one level faulted everywhere behaves like k = 3:
    // h-permutations of load <= 3 still complete.
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4, 3));
    for (GapId g = 0; g < 16; ++g)
        net.failSegment(g, 2);
    sim::Random rng(9);
    workload::PairList pairs;
    for (int attempt = 0; attempt < 300; ++attempt) {
        auto cand = workload::randomPartialPermutation(16, 6, rng);
        if (workload::maxRingLoad(16, cand) <= 3) {
            pairs = std::move(cand);
            break;
        }
    }
    ASSERT_FALSE(pairs.empty());
    const auto r = workload::runBatch(net, pairs, 24, 4'000'000);
    EXPECT_TRUE(r.completed);
}

TEST(Fault, FaultedTopDisablesInjectionAtThatNode)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2);
    c.maxRetries = 3;
    c.retryBackoffMin = 2;
    c.retryBackoffMax = 4;
    RmbNetwork net(s, c);
    net.failSegment(3, 1); // node 3's injection segment
    const auto blocked = net.send(3, 6, 8);
    const auto fine = net.send(2, 6, 8);
    s.runFor(200'000);
    // Node 3's message can never inject: it stays queued forever
    // (injection is not a Nack, so retries never accrue).
    EXPECT_EQ(net.message(blocked).state,
              net::MessageState::Queued);
    EXPECT_EQ(net.message(fine).state,
              net::MessageState::Delivered);
}

TEST(Fault, FullyFaultedGapPartitionsTheRing)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2);
    c.maxRetries = 4;
    c.retryBackoffMin = 2;
    c.retryBackoffMax = 4;
    RmbNetwork net(s, c);
    net.failSegment(4, 0);
    net.failSegment(4, 1);
    // 2 -> 6 must cross gap 4: fails after bounded retries.
    const auto doomed = net.send(2, 6, 8);
    // 5 -> 2 wraps the other way around (gaps 5,6,7,0,1): fine.
    const auto fine = net.send(5, 2, 8);
    runToQuiescence(s, net, 500'000);
    EXPECT_EQ(net.message(doomed).state,
              net::MessageState::Failed);
    EXPECT_EQ(net.message(fine).state,
              net::MessageState::Delivered);
    EXPECT_TRUE(net.quiescent());
}

TEST(Fault, ThroughputDegradesGracefullyWithFaults)
{
    // Random permutation makespan grows smoothly as random (non-top)
    // segments die.
    double makespan_0 = 0.0;
    double makespan_8 = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        for (const std::uint32_t faults : {0u, 8u}) {
            sim::Simulator s;
            RmbNetwork net(s, cfg(16, 4, seed));
            sim::Random frng(seed * 7);
            std::uint32_t injected = 0;
            while (injected < faults) {
                const auto g = static_cast<GapId>(
                    frng.uniformInt(16));
                const auto l = static_cast<Level>(
                    frng.uniformInt(3)); // never the top
                if (!net.segments().isFaulty(g, l)) {
                    net.failSegment(g, l);
                    ++injected;
                }
            }
            sim::Random rng(seed * 31);
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(16, rng));
            const auto r =
                workload::runBatch(net, pairs, 24, 4'000'000);
            ASSERT_TRUE(r.completed);
            (faults == 0 ? makespan_0 : makespan_8) +=
                static_cast<double>(r.makespan);
        }
    }
    EXPECT_GT(makespan_8, makespan_0);
    EXPECT_LT(makespan_8, makespan_0 * 6.0);
}

TEST(Fault, EagerDescentAvoidsLowLevelFaultTraps)
{
    // Historically a reproduction finding: with PreferLowest
    // headers, a gap whose *low* levels are faulted was a
    // deterministic trap - the header had eagerly descended to
    // level 0 by the time it arrived and could only reach {0, 1},
    // both dead, while levels 2..3 sat free.  The fault lookahead in
    // tryAdvance now skips descent targets whose onward levels are
    // all faulted, so both policies deliver.
    for (const HeaderPolicy policy :
         {HeaderPolicy::PreferLowest,
          HeaderPolicy::PreferStraight}) {
        sim::Simulator s;
        RmbConfig c = cfg(16, 4);
        c.headerPolicy = policy;
        c.maxRetries = 5;
        c.retryBackoffMin = 2;
        c.retryBackoffMax = 4;
        RmbNetwork net(s, c);
        net.failSegment(8, 0);
        net.failSegment(8, 1);
        const auto id = net.send(2, 12, 16);
        runToQuiescence(s, net, 500'000);
        EXPECT_EQ(net.message(id).state,
                  net::MessageState::Delivered)
            << "policy " << static_cast<int>(policy);
    }
}

// ----------------------------------------------------------------
// Transient faults: severing live buses and recovering the message
// (RmbConfig::transientFaults; docs/FAULTS.md).
// ----------------------------------------------------------------

TEST(Fault, TransientFaultSeversEstablishedBusAndRedelivers)
{
    sim::Simulator s;
    RmbConfig c = cfg(12, 3);
    c.transientFaults = true;
    c.maxRetries = 20;
    RmbNetwork net(s, c);
    const auto id = net.send(1, 7, 4'000);

    // Run until the circuit is established and streaming.
    while (net.message(id).state != net::MessageState::Streaming &&
           s.now() < 100'000) {
        s.run(16);
    }
    ASSERT_EQ(net.message(id).state, net::MessageState::Streaming);
    const auto ids = net.liveBusIds();
    ASSERT_EQ(ids.size(), 1u);

    // Fault a settled mid-path segment out from under the bus.
    Hop target{};
    bool found = false;
    for (const Hop &h : net.bus(ids[0])->hops) {
        if (!h.inMove()) {
            target = h;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);
    net.failSegment(target.gap, target.level);

    // Severed: hop-by-hop teardown, source notified, message
    // re-queued - and eventually redelivered around the fault.
    EXPECT_EQ(net.rmbStats().busesSevered, 1u);
    EXPECT_EQ(net.message(id).state, net::MessageState::Setup);
    runToQuiescence(s, net, 4'000'000);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_GE(net.message(id).retries, 1u);
    EXPECT_EQ(net.rmbStats().messagesRecovered, 1u);
    EXPECT_EQ(net.rmbStats().messagesLost, 0u);
    EXPECT_EQ(net.rmbStats().recoveryLatency.count(), 1u);
    net.auditInvariants();
    s.runFor(2'000); // drain the trailing Fack
    EXPECT_EQ(net.segments().occupiedCount(), 0u);
    EXPECT_EQ(net.segments().faultyCount(), 1u);
}

TEST(Fault, RepairRestoresInjectionAtThatNode)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(8, 2));
    net.failSegment(3, 1); // node 3's injection segment
    const auto id = net.send(3, 6, 8);
    s.runFor(5'000);
    EXPECT_EQ(net.message(id).state, net::MessageState::Queued);
    net.repairSegment(3, 1);
    EXPECT_FALSE(net.segments().isFaulty(3, 1));
    runToQuiescence(s, net, 500'000);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_EQ(net.rmbStats().faultsInjected, 1u);
    EXPECT_EQ(net.rmbStats().faultsRepaired, 1u);
}

TEST(Fault, MidMoveFaultOnTargetCancelsTheMove)
{
    sim::Simulator s;
    RmbConfig c = cfg(10, 4);
    c.transientFaults = true;
    c.cyclePeriodMin = 40; // long cycles: wide make->break window
    c.cyclePeriodMax = 60;
    RmbNetwork net(s, c);
    const auto id = net.send(1, 6, 100'000); // hold the bus a while

    // Catch a hop mid-move (make done, break still pending).
    GapId g = 0;
    Level from = kNoLevel;
    Level to = kNoLevel;
    for (int i = 0; i < 20'000 && to == kNoLevel; ++i) {
        s.run(1);
        for (const VirtualBusId bid : net.liveBusIds()) {
            for (const Hop &h : net.bus(bid)->hops) {
                if (h.inMove()) {
                    g = h.gap;
                    from = h.level;
                    to = h.dualLevel;
                    break;
                }
            }
        }
    }
    ASSERT_NE(to, kNoLevel) << "no compaction move observed";

    // Kill the move *target*: the move is cancelled, the hop stays
    // on its (live) old level, and the bus survives.
    net.failSegment(g, to);
    EXPECT_EQ(net.rmbStats().busesSevered, 0u);
    const auto ids = net.liveBusIds();
    ASSERT_EQ(ids.size(), 1u);
    for (const Hop &h : net.bus(ids[0])->hops) {
        if (h.gap == g) {
            EXPECT_EQ(h.level, from);
            EXPECT_FALSE(h.inMove());
        }
    }
    net.repairSegment(g, to);
    runToQuiescence(s, net, 4'000'000);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
}

TEST(Fault, MidMoveFaultOnOldLevelCompletesTheMove)
{
    sim::Simulator s;
    RmbConfig c = cfg(10, 4);
    c.transientFaults = true;
    c.cyclePeriodMin = 40;
    c.cyclePeriodMax = 60;
    RmbNetwork net(s, c);
    const auto id = net.send(1, 6, 100'000);

    GapId g = 0;
    Level from = kNoLevel;
    Level to = kNoLevel;
    for (int i = 0; i < 20'000 && to == kNoLevel; ++i) {
        s.run(1);
        for (const VirtualBusId bid : net.liveBusIds()) {
            for (const Hop &h : net.bus(bid)->hops) {
                if (h.inMove()) {
                    g = h.gap;
                    from = h.level;
                    to = h.dualLevel;
                    break;
                }
            }
        }
    }
    ASSERT_NE(to, kNoLevel) << "no compaction move observed";

    // Kill the *old* level mid-move: make-before-break means the new
    // segment already carries the signal, so the move completes
    // early instead of severing.
    net.failSegment(g, from);
    EXPECT_EQ(net.rmbStats().busesSevered, 0u);
    const auto ids = net.liveBusIds();
    ASSERT_EQ(ids.size(), 1u);
    for (const Hop &h : net.bus(ids[0])->hops) {
        if (h.gap == g) {
            EXPECT_EQ(h.level, to);
            EXPECT_FALSE(h.inMove());
        }
    }
    runToQuiescence(s, net, 4'000'000);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
}

TEST(Fault, WatchdogRescuesWaitModeDeadlock)
{
    // k = 1 with Wait blocking and three overlapping paths is a
    // textbook hold-and-wait cycle; without a timeout it wedges
    // forever.  The watchdog sees the blocked buses make no progress
    // and severs them; backoff jitter then breaks the symmetry.
    sim::Simulator s;
    RmbConfig c = cfg(6, 1);
    c.blocking = BlockingPolicy::Wait;
    c.transientFaults = true;
    c.watchdogTimeout = 300;
    RmbNetwork net(s, c);
    const auto a = net.send(0, 3, 16); // gaps 0,1,2
    const auto b = net.send(2, 5, 16); // gaps 2,3,4
    const auto d = net.send(4, 1, 16); // gaps 4,5,0
    runToQuiescence(s, net, 2'000'000);
    EXPECT_EQ(net.message(a).state, net::MessageState::Delivered);
    EXPECT_EQ(net.message(b).state, net::MessageState::Delivered);
    EXPECT_EQ(net.message(d).state, net::MessageState::Delivered);
    EXPECT_GE(net.rmbStats().watchdogFires, 1u);
    EXPECT_EQ(net.rmbStats().watchdogFires,
              net.rmbStats().busesSevered);
    net.auditInvariants();
}

TEST(FaultDeathTest, CannotFaultAnOccupiedSegment)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2);
    c.cyclePeriodMin = c.cyclePeriodMax = 1000; // freeze compaction
    RmbNetwork net(s, c);
    net.send(0, 4, 1'000);
    s.run(2); // injection done: (0, top) occupied
    EXPECT_DEATH(net.failSegment(0, 1), "free segment");
    // The refusal is actionable: it names the segment and the
    // occupying bus, and points at the transient-fault switch.
    EXPECT_DEATH(net.failSegment(0, 1), "held by virtual bus");
    EXPECT_DEATH(net.failSegment(0, 1), "transientFaults");
    while (!net.quiescent())
        s.run(1024);
}

} // namespace
} // namespace core
} // namespace rmb
