/**
 * @file
 * Fault-injection tests: the RMB routes and compacts around
 * permanently failed bus segments, degrading capacity gracefully.
 */

#include <gtest/gtest.h>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
cfg(std::uint32_t n, std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.seed = seed;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 2'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

TEST(Fault, SingleFaultedSegmentIsAvoided)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4));
    net.failSegment(5, 1);
    EXPECT_TRUE(net.segments().isFaulty(5, 1));
    EXPECT_EQ(net.segments().faultyCount(), 1u);
    const auto id = net.send(2, 9, 64); // crosses gap 5
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    // The faulted cell never carried the bus.
    EXPECT_TRUE(net.segments().isFaulty(5, 1));
}

TEST(Fault, CompactionNeverMovesIntoAFault)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(12, 4));
    // Fault the bottom of every gap: circuits settle at level 1.
    for (GapId g = 0; g < 12; ++g)
        net.failSegment(g, 0);
    net.send(0, 6, 3'000);
    s.runFor(2'000);
    const auto ids = net.liveBusIds();
    ASSERT_EQ(ids.size(), 1u);
    for (const Hop &h : net.bus(ids[0])->hops) {
        EXPECT_GE(h.level, 1) << "gap " << h.gap;
        EXPECT_FALSE(net.segments().isFaulty(h.gap, h.level));
    }
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
}

TEST(Fault, ReducedCapacityStillServesWithinNewK)
{
    // k = 4 with one level faulted everywhere behaves like k = 3:
    // h-permutations of load <= 3 still complete.
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4, 3));
    for (GapId g = 0; g < 16; ++g)
        net.failSegment(g, 2);
    sim::Random rng(9);
    workload::PairList pairs;
    for (int attempt = 0; attempt < 300; ++attempt) {
        auto cand = workload::randomPartialPermutation(16, 6, rng);
        if (workload::maxRingLoad(16, cand) <= 3) {
            pairs = std::move(cand);
            break;
        }
    }
    ASSERT_FALSE(pairs.empty());
    const auto r = workload::runBatch(net, pairs, 24, 4'000'000);
    EXPECT_TRUE(r.completed);
}

TEST(Fault, FaultedTopDisablesInjectionAtThatNode)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2);
    c.maxRetries = 3;
    c.retryBackoffMin = 2;
    c.retryBackoffMax = 4;
    RmbNetwork net(s, c);
    net.failSegment(3, 1); // node 3's injection segment
    const auto blocked = net.send(3, 6, 8);
    const auto fine = net.send(2, 6, 8);
    s.runFor(200'000);
    // Node 3's message can never inject: it stays queued forever
    // (injection is not a Nack, so retries never accrue).
    EXPECT_EQ(net.message(blocked).state,
              net::MessageState::Queued);
    EXPECT_EQ(net.message(fine).state,
              net::MessageState::Delivered);
}

TEST(Fault, FullyFaultedGapPartitionsTheRing)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2);
    c.maxRetries = 4;
    c.retryBackoffMin = 2;
    c.retryBackoffMax = 4;
    RmbNetwork net(s, c);
    net.failSegment(4, 0);
    net.failSegment(4, 1);
    // 2 -> 6 must cross gap 4: fails after bounded retries.
    const auto doomed = net.send(2, 6, 8);
    // 5 -> 2 wraps the other way around (gaps 5,6,7,0,1): fine.
    const auto fine = net.send(5, 2, 8);
    runToQuiescence(s, net, 500'000);
    EXPECT_EQ(net.message(doomed).state,
              net::MessageState::Failed);
    EXPECT_EQ(net.message(fine).state,
              net::MessageState::Delivered);
    EXPECT_TRUE(net.quiescent());
}

TEST(Fault, ThroughputDegradesGracefullyWithFaults)
{
    // Random permutation makespan grows smoothly as random (non-top)
    // segments die.
    double makespan_0 = 0.0;
    double makespan_8 = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        for (const std::uint32_t faults : {0u, 8u}) {
            sim::Simulator s;
            RmbNetwork net(s, cfg(16, 4, seed));
            sim::Random frng(seed * 7);
            std::uint32_t injected = 0;
            while (injected < faults) {
                const auto g = static_cast<GapId>(
                    frng.uniformInt(16));
                const auto l = static_cast<Level>(
                    frng.uniformInt(3)); // never the top
                if (!net.segments().isFaulty(g, l)) {
                    net.failSegment(g, l);
                    ++injected;
                }
            }
            sim::Random rng(seed * 31);
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(16, rng));
            const auto r =
                workload::runBatch(net, pairs, 24, 4'000'000);
            ASSERT_TRUE(r.completed);
            (faults == 0 ? makespan_0 : makespan_8) +=
                static_cast<double>(r.makespan);
        }
    }
    EXPECT_GT(makespan_8, makespan_0);
    EXPECT_LT(makespan_8, makespan_0 * 6.0);
}

TEST(Fault, EagerDescentTrapsOnLowLevelFaults)
{
    // A reproduction finding: with PreferLowest headers, a gap
    // whose *low* levels are faulted is a deterministic trap - the
    // header has eagerly descended to level 0 by the time it
    // arrives and can only reach {0, 1}, both dead, while levels
    // 2..3 sit free.  Every retry repeats the descent, so the
    // message fails permanently.  PreferStraight (top-bus) headers
    // are immune: the top level can never be faulted.
    for (const HeaderPolicy policy :
         {HeaderPolicy::PreferLowest,
          HeaderPolicy::PreferStraight}) {
        sim::Simulator s;
        RmbConfig c = cfg(16, 4);
        c.headerPolicy = policy;
        c.maxRetries = 5;
        c.retryBackoffMin = 2;
        c.retryBackoffMax = 4;
        RmbNetwork net(s, c);
        net.failSegment(8, 0);
        net.failSegment(8, 1);
        const auto id = net.send(2, 12, 16);
        runToQuiescence(s, net, 500'000);
        const auto expected =
            policy == HeaderPolicy::PreferLowest
                ? net::MessageState::Failed
                : net::MessageState::Delivered;
        EXPECT_EQ(net.message(id).state, expected)
            << "policy " << static_cast<int>(policy);
    }
}

TEST(FaultDeathTest, CannotFaultAnOccupiedSegment)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2);
    c.cyclePeriodMin = c.cyclePeriodMax = 1000; // freeze compaction
    RmbNetwork net(s, c);
    net.send(0, 4, 1'000);
    s.run(2); // injection done: (0, top) occupied
    EXPECT_DEATH(net.failSegment(0, 1), "free segment");
    while (!net.quiescent())
        s.run(1024);
}

} // namespace
} // namespace core
} // namespace rmb
