/**
 * @file
 * Tests of the observability subsystem: trace sinks and the event
 * stream a send produces, the unified metrics registry and its JSON
 * snapshot, run reports, and RmbConfig::validate().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"
#include "obs/sinks.hh"
#include "obs/trace.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
testConfig(std::uint32_t n, std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.seed = seed;
    cfg.verify = VerifyLevel::Full;
    return cfg;
}

void
runToQuiescence(sim::Simulator &s, RmbNetwork &net,
                sim::Tick limit = 1'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

/** Background kinds a quiet network still emits. */
bool
isBackground(obs::EventKind kind)
{
    return kind == obs::EventKind::CycleFlip ||
           kind == obs::EventKind::CompactionMake ||
           kind == obs::EventKind::CompactionBreak;
}

TEST(TraceSink, SingleSendEmitsCanonicalSequence)
{
    sim::Simulator s;
    RmbConfig cfg = testConfig(2, 2);
    cfg.detailedFlits = true;
    const std::uint32_t payload = 4;
    RmbNetwork net(s, cfg);
    obs::RingBufferSink sink(256);
    net.setTraceSink(&sink);

    const auto id = net.send(0, 1, payload);
    runToQuiescence(s, net);
    ASSERT_TRUE(net.quiescent());
    ASSERT_EQ(net.message(id).state, net::MessageState::Delivered);

    std::vector<obs::TraceEvent> protocol;
    for (const auto &e : sink.events()) {
        if (!isBackground(e.kind))
            protocol.push_back(e);
    }
    ASSERT_FALSE(protocol.empty());

    auto count = [&protocol](obs::EventKind kind) {
        return std::count_if(protocol.begin(), protocol.end(),
                             [kind](const obs::TraceEvent &e) {
                                 return e.kind == kind;
                             });
    };
    auto first = [&protocol](obs::EventKind kind) {
        return std::find_if(protocol.begin(), protocol.end(),
                            [kind](const obs::TraceEvent &e) {
                                return e.kind == kind;
                            }) -
               protocol.begin();
    };

    // One clean connection: no Nacks, retries, blocks or failures.
    EXPECT_EQ(count(obs::EventKind::Nack), 0);
    EXPECT_EQ(count(obs::EventKind::Retry), 0);
    EXPECT_EQ(count(obs::EventKind::Block), 0);
    EXPECT_EQ(count(obs::EventKind::Fail), 0);

    EXPECT_EQ(count(obs::EventKind::Inject), 1);
    EXPECT_GE(count(obs::EventKind::HeaderHop), 1);
    EXPECT_EQ(count(obs::EventKind::Hack), 1);
    // payload flits plus the final flit; the FF carries no Dack.
    EXPECT_EQ(count(obs::EventKind::DataFlit), payload + 1);
    EXPECT_EQ(count(obs::EventKind::Dack), payload);
    EXPECT_EQ(count(obs::EventKind::Deliver), 1);
    EXPECT_EQ(count(obs::EventKind::Teardown), 1);

    // Canonical ordering of the protocol phases.
    EXPECT_LT(first(obs::EventKind::Inject),
              first(obs::EventKind::HeaderHop));
    EXPECT_LT(first(obs::EventKind::HeaderHop),
              first(obs::EventKind::Hack));
    EXPECT_LT(first(obs::EventKind::Hack),
              first(obs::EventKind::DataFlit));
    EXPECT_LT(first(obs::EventKind::DataFlit),
              first(obs::EventKind::Deliver));
    EXPECT_LT(first(obs::EventKind::Deliver),
              first(obs::EventKind::Teardown));

    // The teardown of a delivered message is Fack-initiated.
    const auto &teardown =
        protocol[static_cast<std::size_t>(
            first(obs::EventKind::Teardown))];
    EXPECT_EQ(teardown.a, obs::kTeardownFack);

    // Every event carries the message id and a JSON-clean render.
    for (const auto &e : protocol) {
        EXPECT_EQ(e.message, id);
        EXPECT_TRUE(obs::jsonValid(obs::toJsonLine(e)))
            << obs::toJsonLine(e);
    }
}

TEST(TraceSink, CountingSinkTalliesPerKind)
{
    obs::CountingSink sink;
    obs::TraceEvent e;
    e.kind = obs::EventKind::Inject;
    sink.onEvent(e);
    sink.onEvent(e);
    e.kind = obs::EventKind::Dack;
    sink.onEvent(e);
    EXPECT_EQ(sink.count(obs::EventKind::Inject), 2u);
    EXPECT_EQ(sink.count(obs::EventKind::Dack), 1u);
    EXPECT_EQ(sink.count(obs::EventKind::Teardown), 0u);
    EXPECT_EQ(sink.total(), 3u);
    sink.reset();
    EXPECT_EQ(sink.total(), 0u);
}

TEST(TraceSink, RingBufferRetainsLastN)
{
    obs::RingBufferSink sink(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Inject;
        e.a = i;
        sink.onEvent(e);
    }
    EXPECT_EQ(sink.seen(), 10u);
    EXPECT_EQ(sink.capacity(), 4u);
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].a, 6 + i) << "slot " << i;

    std::ostringstream dump;
    sink.dump(dump);
    std::istringstream lines(dump.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        EXPECT_TRUE(obs::jsonValid(line)) << line;
        ++n;
    }
    EXPECT_EQ(n, 4u);
}

TEST(TraceSink, JsonlFileSinkWritesValidLines)
{
    const std::string path = "obs_test_trace.jsonl";
    {
        obs::JsonlFileSink sink(path);
        obs::TraceEvent e;
        e.kind = obs::EventKind::HeaderHop;
        e.message = 7;
        sink.onEvent(e);
        e.kind = obs::EventKind::Deliver;
        sink.onEvent(e);
        EXPECT_EQ(sink.written(), 2u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
        EXPECT_TRUE(obs::jsonValid(line)) << line;
        ++n;
    }
    EXPECT_EQ(n, 2u);
    std::remove(path.c_str());
}

TEST(MetricsRegistry, ReferencesAreStableAndShapesChecked)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("alpha");
    ++a;
    // Later registrations must not move earlier metrics.
    for (int i = 0; i < 100; ++i)
        reg.counter("bulk." + std::to_string(i));
    EXPECT_EQ(&a, &reg.counter("alpha"));
    EXPECT_EQ(reg.counter("alpha").value(), 1u);

    reg.sampler("dist").add(3.0);
    reg.level("lvl").adjust(0, 2);
    EXPECT_TRUE(reg.has("alpha"));
    EXPECT_TRUE(reg.has("dist"));
    EXPECT_TRUE(reg.has("lvl"));
    EXPECT_FALSE(reg.has("missing"));
    EXPECT_EQ(reg.size(), 103u);

    const auto names = reg.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(names.size(), reg.size());
}

TEST(MetricsRegistry, SnapshotIsValidJsonAndComplete)
{
    sim::Simulator s;
    RmbNetwork net(s, testConfig(8, 3));
    const auto id = net.send(1, 5, 16);
    runToQuiescence(s, net);
    ASSERT_EQ(net.message(id).state, net::MessageState::Delivered);

    const std::string snap = net.metrics().snapshot(s.now());
    EXPECT_TRUE(obs::jsonValid(snap)) << snap;

    // Every counter the typed stats views name must be present.
    for (const char *name :
         {"net.injected", "net.delivered", "net.failed",
          "net.nacks", "net.retries", "net.queue_delay",
          "net.setup_latency", "net.total_latency",
          "net.path_length", "net.active_circuits",
          "rmb.compaction.moves", "rmb.blocked.headers",
          "rmb.blocked.aborts", "rmb.timeout.aborts",
          "rmb.cycle.flips", "rmb.dacks", "rmb.cycle.max_skew",
          "rmb.multicasts", "rmb.top_release_latency",
          "rmb.multicast.member_latency", "rmb.blocked.time",
          "rmb.live_buses"}) {
        EXPECT_TRUE(net.metrics().has(name)) << name;
        EXPECT_NE(snap.find(std::string("\"") + name + "\""),
                  std::string::npos)
            << name << " missing from snapshot";
    }

    // The typed views alias the registry: same underlying storage.
    EXPECT_EQ(net.stats().delivered.value(),
              net.metrics().counter("net.delivered").value());
    EXPECT_EQ(net.stats().delivered.value(), 1u);
}

TEST(RunReport, RoundTripsThroughJson)
{
    obs::RunReport report("obs_test");
    report.set("alpha", std::uint64_t{3});
    report.set("beta", "quote\"and\\slash");
    report.set("gamma", 1.5);
    report.set("delta", true);
    report.setRaw("nested", "{\"x\":[1,2,3]}");
    const std::string json = report.toJson();
    EXPECT_TRUE(obs::jsonValid(json)) << json;
    // Tool identity first, fields in insertion order.
    EXPECT_EQ(json.rfind("{\"tool\":\"obs_test\"", 0), 0u);
    EXPECT_NE(json.find("\"nested\":{\"x\":[1,2,3]}"),
              std::string::npos);
}

TEST(RmbConfigValidate, AcceptsDefaultsRejectsNonsense)
{
    EXPECT_TRUE(RmbConfig{}.validate().empty());

    RmbConfig no_buses;
    no_buses.numBuses = 0;
    EXPECT_FALSE(no_buses.validate().empty());

    RmbConfig inverted;
    inverted.cyclePeriodMin = 12;
    inverted.cyclePeriodMax = 6;
    EXPECT_FALSE(inverted.validate().empty());

    RmbConfig closed_window;
    closed_window.detailedFlits = true;
    closed_window.dackWindow = 0;
    EXPECT_FALSE(closed_window.validate().empty());

    // Messages should be actionable: they name the offending value.
    const auto problems = no_buses.validate();
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("numBuses=0"), std::string::npos);
}

TEST(RmbConfigValidate, NetworkRefusesInvalidConfig)
{
    sim::Simulator s;
    RmbConfig bad = testConfig(8, 0);
    EXPECT_DEATH({ RmbNetwork net(s, bad); }, "numBuses=0");
}

} // namespace
} // namespace core
} // namespace rmb
