/**
 * @file
 * Tests for permutation workload generators.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workload/permutation.hh"

namespace rmb {
namespace workload {
namespace {

TEST(Permutation, IdentityIsPermutation)
{
    const Permutation p = identity(16);
    EXPECT_TRUE(isPermutation(p));
    for (net::NodeId i = 0; i < 16; ++i)
        EXPECT_EQ(p[i], i);
}

TEST(Permutation, IsPermutationRejectsDuplicates)
{
    EXPECT_FALSE(isPermutation({0, 1, 1, 3}));
    EXPECT_FALSE(isPermutation({0, 1, 2, 4}));
    EXPECT_TRUE(isPermutation({3, 1, 0, 2}));
}

TEST(Permutation, RandomPermutationValid)
{
    sim::Random rng(1);
    for (int trial = 0; trial < 20; ++trial)
        EXPECT_TRUE(isPermutation(randomPermutation(32, rng)));
}

TEST(Permutation, RandomFullTrafficHasNoFixedPoints)
{
    sim::Random rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const Permutation p = randomFullTraffic(16, rng);
        EXPECT_TRUE(isPermutation(p));
        for (net::NodeId i = 0; i < 16; ++i)
            EXPECT_NE(p[i], i);
    }
}

TEST(Permutation, BitReversalKnownValues)
{
    const Permutation p = bitReversal(8);
    EXPECT_TRUE(isPermutation(p));
    EXPECT_EQ(p[0], 0u);
    EXPECT_EQ(p[1], 4u);
    EXPECT_EQ(p[2], 2u);
    EXPECT_EQ(p[3], 6u);
    EXPECT_EQ(p[6], 3u);
}

TEST(Permutation, BitReversalIsInvolution)
{
    const Permutation p = bitReversal(64);
    for (net::NodeId i = 0; i < 64; ++i)
        EXPECT_EQ(p[p[i]], i);
}

TEST(Permutation, PerfectShuffleKnownValues)
{
    // Shuffle on 8 nodes: i -> rotate-left-3bits(i).
    const Permutation p = perfectShuffle(8);
    EXPECT_TRUE(isPermutation(p));
    EXPECT_EQ(p[1], 2u);
    EXPECT_EQ(p[4], 1u);  // 100 -> 001
    EXPECT_EQ(p[5], 3u);  // 101 -> 011
    EXPECT_EQ(p[7], 7u);
}

TEST(Permutation, TransposeKnownValues)
{
    // N = 16, 4 bits: (hi, lo) -> (lo, hi).
    const Permutation p = transpose(16);
    EXPECT_TRUE(isPermutation(p));
    EXPECT_EQ(p[0b0111], 0b1101u);
    EXPECT_EQ(p[0b0101], 0b0101u);
    for (net::NodeId i = 0; i < 16; ++i)
        EXPECT_EQ(p[p[i]], i);
}

TEST(Permutation, RotationWraps)
{
    const Permutation p = rotation(10, 3);
    EXPECT_TRUE(isPermutation(p));
    EXPECT_EQ(p[0], 3u);
    EXPECT_EQ(p[9], 2u);
}

TEST(Permutation, BitComplementIsInvolution)
{
    const Permutation p = bitComplement(32);
    EXPECT_TRUE(isPermutation(p));
    for (net::NodeId i = 0; i < 32; ++i) {
        EXPECT_EQ(p[i], 31u - i);
        EXPECT_EQ(p[p[i]], i);
    }
}

TEST(Permutation, ToPairsDropsFixedPoints)
{
    Permutation p = identity(8);
    p[2] = 5;
    p[5] = 2;
    const PairList pairs = toPairs(p);
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0], (std::pair<net::NodeId, net::NodeId>{2, 5}));
    EXPECT_EQ(pairs[1], (std::pair<net::NodeId, net::NodeId>{5, 2}));
}

TEST(Permutation, PartialPermutationRespectsH)
{
    sim::Random rng(3);
    for (net::NodeId h : {1u, 4u, 8u, 16u}) {
        const PairList pairs = randomPartialPermutation(16, h, rng);
        EXPECT_EQ(pairs.size(), h);
        std::set<net::NodeId> srcs;
        std::set<net::NodeId> dsts;
        for (const auto &[s, d] : pairs) {
            EXPECT_NE(s, d);
            srcs.insert(s);
            dsts.insert(d);
        }
        EXPECT_EQ(srcs.size(), h);
        EXPECT_EQ(dsts.size(), h);
    }
}

TEST(Permutation, MaxRingLoadSingleMessage)
{
    // One message 0 -> 3 on an 8-ring loads gaps 0, 1, 2.
    const PairList pairs{{0, 3}};
    EXPECT_EQ(maxRingLoad(8, pairs), 1u);
}

TEST(Permutation, MaxRingLoadOverlap)
{
    // 0->4 and 1->5 overlap on gaps 1..3.
    const PairList pairs{{0, 4}, {1, 5}};
    EXPECT_EQ(maxRingLoad(8, pairs), 2u);
}

TEST(Permutation, MaxRingLoadWrapAround)
{
    // 6 -> 2 wraps through gaps 6, 7, 0, 1.
    const PairList pairs{{6, 2}, {0, 2}};
    EXPECT_EQ(maxRingLoad(8, pairs), 2u);
}

TEST(Permutation, MaxRingLoadRotationIsUniform)
{
    // Rotation by s loads every gap exactly s times.
    const PairList pairs = toPairs(rotation(16, 5));
    EXPECT_EQ(maxRingLoad(16, pairs), 5u);
}

TEST(Permutation, TornadoLoadIsHalfN)
{
    const PairList pairs = toPairs(rotation(16, 8));
    EXPECT_EQ(maxRingLoad(16, pairs), 8u);
}


TEST(Permutation, HRelationDegreesExact)
{
    sim::Random rng(55);
    for (std::uint32_t h : {1u, 2u, 4u}) {
        const PairList pairs = randomHRelation(12, h, rng);
        EXPECT_EQ(pairs.size(), 12u * h);
        std::vector<std::uint32_t> out(12, 0);
        std::vector<std::uint32_t> in(12, 0);
        for (const auto &[src, dst] : pairs) {
            EXPECT_NE(src, dst);
            ++out[src];
            ++in[dst];
        }
        for (net::NodeId i = 0; i < 12; ++i) {
            EXPECT_EQ(out[i], h) << "node " << i;
            EXPECT_EQ(in[i], h) << "node " << i;
        }
    }
}

TEST(PermutationDeathTest, BitReversalNeedsPowerOfTwo)
{
    EXPECT_DEATH(bitReversal(12), "2\\^m");
}

TEST(PermutationDeathTest, TransposeNeedsEvenBits)
{
    EXPECT_DEATH(transpose(8), "even");
}

TEST(PermutationDeathTest, PartialNeedsHLeqN)
{
    sim::Random rng(1);
    EXPECT_DEATH(randomPartialPermutation(8, 9, rng), "h <= N");
}

} // namespace
} // namespace workload
} // namespace rmb
