/**
 * @file
 * Tests for multicast/broadcast (the paper's section-1 extension)
 * and multi-port PEs (the section-2.1 "enhanced" interface).
 */

#include <gtest/gtest.h>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
cfg(std::uint32_t n, std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.seed = seed;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 1'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

// -------------------------------------------------- multicast

TEST(Multicast, CarrierSpansToFarthestMember)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 3));
    const auto id = net.multicast(2, {5, 9, 4}, 32);
    runToQuiescence(s, net);
    const auto &record = net.multicastRecord(id);
    EXPECT_TRUE(record.complete);
    // Farthest member clockwise from 2 is 9.
    EXPECT_EQ(net.message(record.carrier).dst, 9u);
    EXPECT_EQ(net.stats().pathLength.max(), 7.0);
}

TEST(Multicast, MembersDeliverInDistanceOrder)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 3));
    const auto id = net.multicast(0, {4, 8, 12}, 64);
    runToQuiescence(s, net);
    const auto &record = net.multicastRecord(id);
    ASSERT_TRUE(record.complete);
    ASSERT_EQ(record.members.size(), 3u);
    // deliveredAt parallels members {4, 8, 12}: increasing with
    // distance, one flitDelay per extra hop.
    EXPECT_LT(record.deliveredAt[0], record.deliveredAt[1]);
    EXPECT_LT(record.deliveredAt[1], record.deliveredAt[2]);
    EXPECT_EQ(record.deliveredAt[1] - record.deliveredAt[0], 4u);
    // The farthest member's tap time equals the carrier delivery.
    EXPECT_EQ(record.deliveredAt[2],
              net.message(record.carrier).delivered);
}

TEST(Multicast, WrapAroundMembers)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(8, 2));
    const auto id = net.multicast(6, {0, 2}, 16);
    runToQuiescence(s, net);
    const auto &record = net.multicastRecord(id);
    EXPECT_TRUE(record.complete);
    EXPECT_EQ(net.message(record.carrier).dst, 2u);
}

TEST(Multicast, CheaperThanRepeatedUnicast)
{
    // One multicast to 6 members vs 6 sequential unicasts from the
    // same source (serialized by the single send port).
    sim::Simulator s1;
    RmbNetwork mc(s1, cfg(16, 3));
    const auto gid = mc.multicast(0, {2, 4, 6, 8, 10, 12}, 64);
    runToQuiescence(s1, mc);
    const auto &record = mc.multicastRecord(gid);
    sim::Tick mc_done = 0;
    for (const auto t : record.deliveredAt)
        mc_done = std::max(mc_done, t);

    sim::Simulator s2;
    RmbNetwork uc(s2, cfg(16, 3));
    for (net::NodeId member : {2, 4, 6, 8, 10, 12})
        uc.send(0, member, 64);
    runToQuiescence(s2, uc);
    sim::Tick uc_done = 0;
    for (net::MessageId id = 1; id <= uc.numMessages(); ++id)
        uc_done = std::max(uc_done, uc.message(id).delivered);

    EXPECT_LT(mc_done * 3, uc_done);
}

TEST(Multicast, BroadcastReachesEveryOtherNode)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(8, 2));
    const auto id = net.broadcast(3, 32);
    runToQuiescence(s, net);
    const auto &record = net.multicastRecord(id);
    ASSERT_TRUE(record.complete);
    EXPECT_EQ(record.members.size(), 7u);
    for (const auto t : record.deliveredAt)
        EXPECT_GT(t, 0u);
    // Carrier spans the whole ring: 7 hops.
    EXPECT_EQ(net.stats().pathLength.max(), 7.0);
    EXPECT_EQ(net.rmbStats().multicasts, 1u);
    EXPECT_EQ(net.rmbStats().multicastMemberLatency.count(), 7u);
}

TEST(Multicast, CoexistsWithUnicastTraffic)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4));
    net.broadcast(0, 128);
    net.send(5, 9, 32);
    net.send(10, 2, 32);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().delivered, 3u);
    EXPECT_TRUE(net.multicastRecord(1).complete);
}

TEST(MulticastDeathTest, Validation)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(8, 2));
    EXPECT_DEATH(net.multicast(0, {}, 8), "members");
    EXPECT_DEATH(net.multicast(0, {0, 3}, 8), "source");
    EXPECT_DEATH(net.multicast(0, {9}, 8), "range");
}

// -------------------------------------------------- multi-port PEs

TEST(MultiPort, ExtraSendPortsPipelineDistinctDestinations)
{
    // A burst from one source to *distinct* destinations: with one
    // send port the circuits serialize; with three ports (and
    // compaction freeing the top bus between injections) they
    // overlap.  Same-destination bursts would stay receiver-bound -
    // the receive port serializes them regardless of send ports.
    sim::Tick one_port = 0;
    sim::Tick three_ports = 0;
    for (const std::uint32_t ports : {1u, 3u}) {
        sim::Simulator s;
        RmbConfig c = cfg(16, 4);
        c.sendPorts = ports;
        RmbNetwork net(s, c);
        net.send(0, 4, 600);
        net.send(0, 8, 600);
        net.send(0, 12, 600);
        runToQuiescence(s, net);
        sim::Tick last = 0;
        for (net::MessageId id = 1; id <= net.numMessages(); ++id)
            last = std::max(last, net.message(id).delivered);
        (ports == 1 ? one_port : three_ports) = last;
    }
    EXPECT_LT(three_ports * 2, one_port);
}

TEST(MultiPort, TwoReceivePortsAcceptConcurrentStreams)
{
    sim::Simulator s;
    RmbConfig c = cfg(16, 4);
    c.receivePorts = 2;
    RmbNetwork net(s, c);
    const auto a = net.send(0, 8, 2'000);
    s.runFor(100);
    const auto b = net.send(12, 8, 100);
    runToQuiescence(s, net);
    // b must have been accepted while a was still streaming.
    EXPECT_EQ(net.message(b).nacks, 0u);
    EXPECT_LT(net.message(b).delivered, net.message(a).delivered);
    EXPECT_EQ(net.message(a).state, net::MessageState::Delivered);
}

TEST(MultiPort, SingleReceivePortNacksTheSecondStream)
{
    sim::Simulator s;
    RmbNetwork net(s, cfg(16, 4));
    net.send(0, 8, 2'000);
    s.runFor(100);
    const auto b = net.send(12, 8, 100);
    runToQuiescence(s, net);
    EXPECT_GE(net.message(b).nacks, 1u);
}

TEST(MultiPort, DistinctDestinationsOverlapFully)
{
    sim::Simulator s;
    RmbConfig c = cfg(16, 4);
    c.sendPorts = 3;
    RmbNetwork net(s, c);
    net.send(0, 4, 1'000);
    net.send(0, 8, 1'000);
    net.send(0, 12, 1'000);
    s.runFor(600);
    // All three circuits from node 0 open at once.
    EXPECT_EQ(net.stats().activeCircuits.current(), 3);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
}

TEST(MultiPortDeathTest, ZeroPortsFatal)
{
    sim::Simulator s;
    RmbConfig c = cfg(8, 2);
    c.sendPorts = 0;
    EXPECT_EXIT(RmbNetwork(s, c), ::testing::ExitedWithCode(1),
                "port");
}

} // namespace
} // namespace core
} // namespace rmb
