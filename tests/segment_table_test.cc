/**
 * @file
 * Tests for the physical segment occupancy table.
 */

#include <gtest/gtest.h>

#include "rmb/segment_table.hh"

namespace rmb {
namespace core {
namespace {

TEST(SegmentTable, StartsAllFree)
{
    SegmentTable t(8, 4);
    EXPECT_EQ(t.numGaps(), 8u);
    EXPECT_EQ(t.numLevels(), 4u);
    EXPECT_EQ(t.occupiedCount(), 0u);
    for (GapId g = 0; g < 8; ++g) {
        EXPECT_EQ(t.freeLevels(g), 4u);
        EXPECT_EQ(t.lowestFree(g), 0);
        for (Level l = 0; l < 4; ++l)
            EXPECT_TRUE(t.isFree(g, l));
    }
}

TEST(SegmentTable, OccupyAndRelease)
{
    SegmentTable t(4, 3);
    t.occupy(1, 2, 7, 10);
    EXPECT_FALSE(t.isFree(1, 2));
    EXPECT_EQ(t.occupant(1, 2), 7u);
    EXPECT_EQ(t.occupiedCount(), 1u);
    EXPECT_EQ(t.freeLevels(1), 2u);
    t.release(1, 2, 7, 20);
    EXPECT_TRUE(t.isFree(1, 2));
    EXPECT_EQ(t.occupiedCount(), 0u);
}

TEST(SegmentTable, LowestFreeSkipsOccupied)
{
    SegmentTable t(4, 3);
    t.occupy(0, 0, 1, 0);
    EXPECT_EQ(t.lowestFree(0), 1);
    t.occupy(0, 1, 2, 0);
    EXPECT_EQ(t.lowestFree(0), 2);
    t.occupy(0, 2, 3, 0);
    EXPECT_EQ(t.lowestFree(0), kNoLevel);
    EXPECT_EQ(t.freeLevels(0), 0u);
}

TEST(SegmentTable, GapsAreIndependent)
{
    SegmentTable t(4, 2);
    t.occupy(2, 1, 5, 0);
    EXPECT_TRUE(t.isFree(1, 1));
    EXPECT_TRUE(t.isFree(3, 1));
    EXPECT_FALSE(t.isFree(2, 1));
}

TEST(SegmentTable, UtilizationTracksBusyWindows)
{
    SegmentTable t(2, 2);
    t.occupy(0, 0, 1, 0);
    t.release(0, 0, 1, 50);
    EXPECT_DOUBLE_EQ(t.utilization(0, 0, 100), 0.5);
    EXPECT_DOUBLE_EQ(t.utilization(0, 1, 100), 0.0);
    // 1 of 4 segments busy half the time.
    EXPECT_DOUBLE_EQ(t.averageUtilization(100), 0.125);
}

TEST(SegmentTable, UtilizationOfOpenOccupancy)
{
    SegmentTable t(2, 1);
    t.occupy(1, 0, 9, 20);
    EXPECT_DOUBLE_EQ(t.utilization(1, 0, 100), 0.8);
}

TEST(SegmentTableDeathTest, DoubleOccupyPanics)
{
    SegmentTable t(4, 2);
    t.occupy(0, 0, 1, 0);
    EXPECT_DEATH(t.occupy(0, 0, 2, 1), "already held");
}

TEST(SegmentTableDeathTest, ReleaseByWrongOwnerPanics)
{
    SegmentTable t(4, 2);
    t.occupy(0, 0, 1, 0);
    EXPECT_DEATH(t.release(0, 0, 2, 1), "not by releasing bus");
}

TEST(SegmentTableDeathTest, ReleaseFreePanics)
{
    SegmentTable t(4, 2);
    EXPECT_DEATH(t.release(0, 0, 1, 0), "");
}

TEST(SegmentTableDeathTest, OutOfRangePanics)
{
    SegmentTable t(4, 2);
    EXPECT_DEATH(t.occupant(4, 0), "gap");
    EXPECT_DEATH(t.occupant(0, 2), "level");
    EXPECT_DEATH(t.occupant(0, -1), "level");
}

TEST(SegmentTableDeathTest, OccupyByNoBusPanics)
{
    SegmentTable t(4, 2);
    EXPECT_DEATH(t.occupy(0, 0, kNoBus, 0), "kNoBus");
}

} // namespace
} // namespace core
} // namespace rmb
