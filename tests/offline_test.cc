/**
 * @file
 * Tests for the offline scheduling bounds (competitiveness study).
 */

#include <gtest/gtest.h>

#include "offline/schedule.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace offline {
namespace {

TEST(TimingModel, MessageTimeComposition)
{
    TimingModel t;
    t.headerHopDelay = 4;
    t.ackHopDelay = 2;
    t.flitDelay = 1;
    // 3 hops, 10 flits: header 12 + hack 6 + stream (10+1+3) + fack 6.
    EXPECT_EQ(t.messageTime(3, 10), 12u + 6u + 14u + 6u);
    // Delivery excludes the trailing Fack walk.
    EXPECT_EQ(t.deliveryTime(3, 10), 12u + 6u + 14u);
}

TEST(MinRounds, MatchesMaxLoadOverK)
{
    // Rotation by 6 on a 16-ring: every gap loaded 6x.
    const auto pairs = workload::toPairs(workload::rotation(16, 6));
    EXPECT_EQ(minRounds(16, pairs, 2), 3u);
    EXPECT_EQ(minRounds(16, pairs, 3), 2u);
    EXPECT_EQ(minRounds(16, pairs, 6), 1u);
    EXPECT_EQ(minRounds(16, pairs, 7), 1u);
}

TEST(GreedySchedule, DisjointArcsOneRound)
{
    const workload::PairList pairs{{0, 2}, {2, 4}, {4, 6}, {6, 0}};
    const auto s = greedySchedule(8, pairs, 1);
    EXPECT_EQ(s.numRounds, 1u);
}

TEST(GreedySchedule, SerializesOverloadedGap)
{
    // Three arcs across gap 0 with k = 1 need 3 rounds.
    const workload::PairList pairs{{0, 1}, {7, 2}, {6, 3}};
    const auto s = greedySchedule(8, pairs, 1);
    EXPECT_EQ(s.numRounds, 3u);
    EXPECT_EQ(s.round.size(), 3u);
}

TEST(GreedySchedule, RespectsCapacityWithinRounds)
{
    sim::Random rng(5);
    const auto pairs = workload::toPairs(
        workload::randomFullTraffic(16, rng));
    const std::uint32_t k = 3;
    const auto s = greedySchedule(16, pairs, k);
    // Re-check feasibility: per round, per gap usage <= k.
    std::vector<std::vector<std::uint32_t>> usage(
        s.numRounds, std::vector<std::uint32_t>(16, 0));
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        for (net::NodeId g = pairs[i].first; g != pairs[i].second;
             g = (g + 1) % 16) {
            ++usage[s.round[i]][g];
        }
    }
    for (const auto &round : usage)
        for (std::uint32_t u : round)
            EXPECT_LE(u, k);
}

TEST(GreedySchedule, NeverWorseThanLoadBoundByMuch)
{
    // First-fit colouring of circular arcs is within a small factor
    // of the lower bound for random permutations.
    sim::Random rng(9);
    for (int trial = 0; trial < 10; ++trial) {
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(32, rng));
        const std::uint32_t k = 4;
        const auto s = greedySchedule(32, pairs, k);
        const auto lb = minRounds(32, pairs, k);
        EXPECT_GE(s.numRounds, lb);
        EXPECT_LE(s.numRounds, 3 * lb + 1) << "trial " << trial;
    }
}

TEST(LowerBound, EmptyBatchIsZero)
{
    TimingModel t;
    EXPECT_EQ(lowerBoundTicks(8, {}, 2, 16, t), 0u);
    EXPECT_EQ(greedyMakespanTicks(8, {}, 2, 16, t), 0u);
}

TEST(LowerBound, SingleMessageIsItsOwnBound)
{
    TimingModel t;
    const workload::PairList pairs{{0, 5}};
    EXPECT_EQ(lowerBoundTicks(8, pairs, 4, 16, t),
              t.deliveryTime(5, 16));
}

TEST(LowerBound, NeverExceedsGreedyMakespan)
{
    TimingModel t;
    sim::Random rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
            EXPECT_LE(lowerBoundTicks(16, pairs, k, 16, t),
                      greedyMakespanTicks(16, pairs, k, 16, t))
                << "trial " << trial << " k=" << k;
        }
    }
}

TEST(GreedyMakespan, MoreBusesNeverSlower)
{
    TimingModel t;
    sim::Random rng(33);
    const auto pairs = workload::toPairs(
        workload::randomFullTraffic(24, rng));
    sim::Tick prev = UINT64_MAX;
    for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
        const auto ms = greedyMakespanTicks(24, pairs, k, 16, t);
        EXPECT_LE(ms, prev) << "k=" << k;
        prev = ms;
    }
}


TEST(OptimalRounds, MatchesHandComputedCases)
{
    // Disjoint arcs: one round.
    EXPECT_EQ(optimalRounds(8, {{0, 2}, {2, 4}, {4, 6}}, 1), 1u);
    // Three arcs over one gap, k = 1: three rounds.
    EXPECT_EQ(optimalRounds(8, {{0, 1}, {7, 2}, {6, 3}}, 1), 3u);
    // Same with k = 3: one round.
    EXPECT_EQ(optimalRounds(8, {{0, 1}, {7, 2}, {6, 3}}, 3), 1u);
    EXPECT_EQ(optimalRounds(8, {}, 2), 0u);
}

TEST(OptimalRounds, CircularArcGapBeatsTheLoadBound)
{
    // The classic odd-cycle example where the chromatic number
    // exceeds the clique bound: on a 5-ring, length-2 arcs from
    // every node form a C5 overlap graph - max load 2 but 3 rounds
    // needed (the bandwidth lower bound is NOT tight here).
    const workload::PairList pairs{
        {0, 2}, {1, 3}, {2, 4}, {3, 0}, {4, 1}};
    EXPECT_EQ(workload::maxRingLoad(5, pairs), 2u);
    EXPECT_EQ(minRounds(5, pairs, 1), 2u);
    EXPECT_EQ(optimalRounds(5, pairs, 1), 3u);
}

TEST(OptimalRounds, SandwichedBetweenBounds)
{
    sim::Random rng(41);
    for (int trial = 0; trial < 8; ++trial) {
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(10, rng));
        for (std::uint32_t k : {1u, 2u, 3u}) {
            const auto lb = minRounds(10, pairs, k);
            const auto greedy = greedySchedule(10, pairs, k);
            const auto opt = optimalRounds(10, pairs, k);
            if (opt == 0)
                continue; // budget exhausted (rare at this size)
            EXPECT_GE(opt, lb) << "trial " << trial << " k=" << k;
            EXPECT_LE(opt, greedy.numRounds)
                << "trial " << trial << " k=" << k;
        }
    }
}

TEST(OptimalRounds, BudgetExhaustionReturnsZero)
{
    // A case where the bounds do not coincide (so search is really
    // needed - the C5 example) with a one-step budget.
    const workload::PairList pairs{
        {0, 2}, {1, 3}, {2, 4}, {3, 0}, {4, 1}};
    EXPECT_EQ(optimalRounds(5, pairs, 1, 1), 0u);
}

} // namespace
} // namespace offline
} // namespace rmb
