/**
 * @file
 * Tests for the stochastic traffic patterns.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/traffic.hh"

namespace rmb {
namespace workload {
namespace {

TEST(UniformTraffic, NeverReturnsSource)
{
    UniformTraffic t(16);
    sim::Random rng(1);
    for (net::NodeId src = 0; src < 16; ++src)
        for (int i = 0; i < 200; ++i)
            EXPECT_NE(t.pick(src, rng), src);
}

TEST(UniformTraffic, CoversAllOtherNodes)
{
    UniformTraffic t(8);
    sim::Random rng(2);
    std::map<net::NodeId, int> hits;
    for (int i = 0; i < 4000; ++i)
        ++hits[t.pick(3, rng)];
    EXPECT_EQ(hits.size(), 7u);
    // Roughly uniform: each ~571 expected.
    for (const auto &[node, count] : hits) {
        EXPECT_GT(count, 400) << "node " << node;
        EXPECT_LT(count, 750) << "node " << node;
    }
}

TEST(HotSpotTraffic, HotNodeGetsTheFraction)
{
    HotSpotTraffic t(16, 5, 0.5);
    sim::Random rng(3);
    int hot = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        if (t.pick(0, rng) == 5)
            ++hot;
    // 0.5 + 0.5/15 uniform leakage ~ 0.533.
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.533, 0.03);
}

TEST(HotSpotTraffic, HotSourceFallsBackToUniform)
{
    HotSpotTraffic t(16, 5, 1.0);
    sim::Random rng(4);
    for (int i = 0; i < 500; ++i)
        EXPECT_NE(t.pick(5, rng), 5u);
}

TEST(HotSpotTraffic, ZeroFractionIsUniform)
{
    HotSpotTraffic t(8, 0, 0.0);
    sim::Random rng(5);
    std::map<net::NodeId, int> hits;
    for (int i = 0; i < 2000; ++i)
        ++hits[t.pick(4, rng)];
    EXPECT_EQ(hits.size(), 7u);
}

TEST(LocalRingTraffic, RespectsMaxDistance)
{
    LocalRingTraffic t(16, 3);
    sim::Random rng(6);
    for (int i = 0; i < 2000; ++i) {
        const net::NodeId d = t.pick(14, rng);
        const net::NodeId dist = (d + 16 - 14) % 16;
        EXPECT_GE(dist, 1u);
        EXPECT_LE(dist, 3u);
    }
}

TEST(LocalRingTraffic, DistanceOneIsNeighbour)
{
    LocalRingTraffic t(8, 1);
    sim::Random rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.pick(7, rng), 0u);
}

TEST(TornadoTraffic, FixedHalfRingDestination)
{
    TornadoTraffic t(16);
    sim::Random rng(8);
    EXPECT_EQ(t.pick(0, rng), 8u);
    EXPECT_EQ(t.pick(10, rng), 2u);
}

TEST(TornadoTraffic, OddRingRoundsUp)
{
    TornadoTraffic t(7);
    sim::Random rng(9);
    EXPECT_EQ(t.pick(0, rng), 4u);
    EXPECT_NE(t.pick(3, rng), 3u);
}

TEST(BitComplementTraffic, Complements)
{
    BitComplementTraffic t(16);
    sim::Random rng(10);
    EXPECT_EQ(t.pick(0, rng), 15u);
    EXPECT_EQ(t.pick(5, rng), 10u);
}

TEST(TrafficDeathTest, HotSpotValidation)
{
    EXPECT_DEATH(HotSpotTraffic(8, 9, 0.5), "range");
    EXPECT_DEATH(HotSpotTraffic(8, 1, 1.5), "");
}

TEST(TrafficDeathTest, LocalRingValidation)
{
    EXPECT_DEATH(LocalRingTraffic(8, 0), "");
    EXPECT_DEATH(LocalRingTraffic(8, 8), "");
}

TEST(TrafficDeathTest, BitComplementNeedsPowerOfTwo)
{
    EXPECT_DEATH(BitComplementTraffic(12), "2\\^m");
}

} // namespace
} // namespace workload
} // namespace rmb
