/**
 * @file
 * Tests for the 2-D grid of RMB rings (paper section 4 future
 * work).
 */

#include <gtest/gtest.h>

#include "rmb/torus.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
ringCfg(std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig c;
    c.numBuses = k;
    c.seed = seed;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 4'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

TEST(Torus, RowOnlyMessage)
{
    sim::Simulator s;
    RmbTorusNetwork net(s, 4, 4, ringCfg(2));
    // (0,1) = node 4 -> (3,1) = node 7: row leg only, 3 hops.
    const auto id = net.send(4, 7, 16);
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_EQ(net.stats().pathLength.max(), 3.0);
    EXPECT_EQ(net.cornerTurns(), 0u);
}

TEST(Torus, ColumnOnlyMessage)
{
    sim::Simulator s;
    RmbTorusNetwork net(s, 4, 4, ringCfg(2));
    // (2,0) = node 2 -> (2,3) = node 14: column leg only, 3 hops.
    const auto id = net.send(2, 14, 16);
    runToQuiescence(s, net);
    EXPECT_EQ(net.message(id).state, net::MessageState::Delivered);
    EXPECT_EQ(net.stats().pathLength.max(), 3.0);
    EXPECT_EQ(net.cornerTurns(), 0u);
}

TEST(Torus, CornerTurnMessage)
{
    sim::Simulator s;
    RmbTorusNetwork net(s, 4, 4, ringCfg(2));
    // (0,0) -> (2,3) = node 14: 2 row hops + 3 column hops.
    const auto id = net.send(0, 14, 16);
    runToQuiescence(s, net);
    const net::Message &m = net.message(id);
    EXPECT_EQ(m.state, net::MessageState::Delivered);
    EXPECT_EQ(net.stats().pathLength.max(), 5.0);
    EXPECT_EQ(net.cornerTurns(), 1u);
    EXPECT_LE(m.created, m.firstAttempt);
    EXPECT_LT(m.firstAttempt, m.established);
    EXPECT_LT(m.established, m.delivered);
}

TEST(Torus, WrapAroundUsesRingGeometry)
{
    sim::Simulator s;
    RmbTorusNetwork net(s, 4, 4, ringCfg(2));
    // (3,0) -> (0,0): one clockwise row hop (3 -> 0 wraps).
    net.send(3, 0, 8);
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().pathLength.max(), 1.0);
}

TEST(Torus, RandomPermutationsComplete)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sim::Simulator s;
        RmbTorusNetwork net(s, 4, 4, ringCfg(2, seed));
        sim::Random rng(seed * 23);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 24);
        EXPECT_TRUE(r.completed) << "seed " << seed;
        EXPECT_EQ(r.delivered, pairs.size());
    }
}

TEST(Torus, RectangularGrid)
{
    sim::Simulator s;
    RmbTorusNetwork net(s, 8, 2, ringCfg(2));
    EXPECT_EQ(net.numNodes(), 16u);
    EXPECT_EQ(net.rowRing(0).numNodes(), 8u);
    EXPECT_EQ(net.columnRing(0).numNodes(), 2u);
    net.send(0, 15, 16); // (0,0) -> (7,1): 7 row + 1 column hops
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().pathLength.max(), 8.0);
}

TEST(Torus, ShorterPathsThanSingleRingAtScale)
{
    // 16 nodes as a 4x4 torus of rings vs one 16-ring: mean path
    // must drop (<= W/2-ish + H/2-ish vs N/2).
    sim::Simulator s1;
    RmbNetwork ring(s1, [] {
        RmbConfig c;
        c.numNodes = 16;
        c.numBuses = 2;
        return c;
    }());
    sim::Simulator s2;
    RmbTorusNetwork torus(s2, 4, 4, ringCfg(2));
    sim::Random rng(5);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r1 = workload::runBatch(ring, pairs, 24);
    const auto r2 = workload::runBatch(torus, pairs, 24);
    ASSERT_TRUE(r1.completed);
    ASSERT_TRUE(r2.completed);
    EXPECT_LT(torus.stats().pathLength.mean(),
              ring.stats().pathLength.mean());
    EXPECT_LT(r2.makespan, r1.makespan);
}

TEST(Torus, CompactionRunsInAllRings)
{
    sim::Simulator s;
    RmbTorusNetwork net(s, 4, 4, ringCfg(3));
    for (net::NodeId i = 0; i < 16; ++i)
        net.send(i, (i + 5) % 16, 200);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_GT(net.totalCompactionMoves(), 0u);
}

TEST(TorusDeathTest, DegenerateGridFatal)
{
    sim::Simulator s;
    EXPECT_EXIT(RmbTorusNetwork(s, 1, 4, ringCfg(2)),
                ::testing::ExitedWithCode(1), "width and height");
}

} // namespace
} // namespace core
} // namespace rmb
