/**
 * @file
 * Tests for the baseline networks: mesh, hypercube/EHC, fat tree,
 * arbitrated multibus and the ideal ring.
 */

#include <gtest/gtest.h>

#include "baselines/fattree.hh"
#include "baselines/hypercube.hh"
#include "baselines/mesh.hh"
#include "baselines/multibus.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace baseline {
namespace {

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 2'000'000)
{
    while (!net.quiescent() && !s.idle() && s.now() < limit)
        s.run(256);
}

CircuitConfig
cfg(std::uint64_t seed = 1)
{
    CircuitConfig c;
    c.seed = seed;
    return c;
}

// ---------------------------------------------------------- mesh

TEST(Mesh, SingleMessageXYRoute)
{
    sim::Simulator s;
    MeshNetwork net(s, 4, 4, cfg());
    EXPECT_EQ(net.numNodes(), 16u);
    const auto id = net.send(0, 15, 16);
    runToQuiescence(s, net);
    ASSERT_TRUE(net.quiescent());
    const net::Message &m = net.message(id);
    EXPECT_EQ(m.state, net::MessageState::Delivered);
    // XY route 0 -> 15: 3 east + 3 north = 6 hops.
    EXPECT_EQ(net.stats().pathLength.max(), 6.0);
}

TEST(Mesh, LinkCountMatchesTopology)
{
    sim::Simulator s;
    MeshNetwork net(s, 4, 4, cfg());
    // Directed links: 2 per internal edge; 2*4*3 edges * 2 = 48.
    EXPECT_EQ(net.numLinks(), 48u);
}

TEST(Mesh, AdjacentMessageOneHop)
{
    sim::Simulator s;
    MeshNetwork net(s, 4, 4, cfg());
    net.send(5, 6, 4);
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().pathLength.max(), 1.0);
}

TEST(Mesh, ContendingMessagesRetryAndComplete)
{
    sim::Simulator s;
    MeshNetwork net(s, 4, 1, cfg());
    // A row mesh: all traffic shares the single row of links.
    net.send(0, 3, 64);
    net.send(1, 3, 64);
    net.send(2, 3, 64);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_GE(net.stats().nacks + net.blockedAborts(), 1u);
}

TEST(Mesh, PermutationCompletes)
{
    sim::Simulator s;
    MeshNetwork net(s, 4, 4, cfg(3));
    sim::Random rng(3);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r = workload::runBatch(net, pairs, 16);
    EXPECT_TRUE(r.completed);
}

// ----------------------------------------------------- hypercube

TEST(Hypercube, EcubePathLengthIsHammingDistance)
{
    sim::Simulator s;
    HypercubeNetwork net(s, 4, cfg());
    EXPECT_EQ(net.numNodes(), 16u);
    net.send(0b0000, 0b1011, 8);
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().pathLength.max(), 3.0);
}

TEST(Hypercube, LinkCount)
{
    sim::Simulator s;
    HypercubeNetwork net(s, 4, cfg());
    // Directed: N * dim.
    EXPECT_EQ(net.numLinks(), 16u * 4u);
}

TEST(Hypercube, EnhancedDoublesDimensionZero)
{
    sim::Simulator s;
    HypercubeNetwork ehc(s, 3, cfg(), true);
    EXPECT_TRUE(ehc.enhanced());
    EXPECT_EQ(ehc.name(), "EHC");
    // Dimension-0 links have capacity 2, others 1.
    EXPECT_EQ(ehc.linkCapacity(0), 2u);
    EXPECT_EQ(ehc.linkCapacity(1), 1u);
}

TEST(Hypercube, PermutationCompletes)
{
    sim::Simulator s;
    HypercubeNetwork net(s, 4, cfg(5));
    sim::Random rng(5);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r = workload::runBatch(net, pairs, 16);
    EXPECT_TRUE(r.completed);
}

TEST(HypercubeDeathTest, BadDimensionFatal)
{
    sim::Simulator s;
    EXPECT_EXIT(HypercubeNetwork(s, 0, cfg()),
                ::testing::ExitedWithCode(1), "dimension");
}

// ------------------------------------------------------ fat tree

TEST(FatTree, RouteClimbsToLca)
{
    sim::Simulator s;
    FatTreeNetwork net(s, 8, 8, cfg());
    // 0 -> 1 share a parent: 2 hops.  0 -> 7 cross the root: 6 hops.
    net.send(0, 1, 4);
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().pathLength.max(), 2.0);
    net.send(0, 7, 4);
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().pathLength.max(), 6.0);
}

TEST(FatTree, CapacityGrowsTowardRootUpToCap)
{
    sim::Simulator s;
    FatTreeNetwork net(s, 16, 4, cfg());
    // Leaf edges capacity 1; the root's child edges capped at 4.
    std::uint32_t max_cap = 0;
    std::uint32_t min_cap = UINT32_MAX;
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        max_cap = std::max(max_cap, net.linkCapacity(l));
        min_cap = std::min(min_cap, net.linkCapacity(l));
    }
    EXPECT_EQ(min_cap, 1u);
    EXPECT_EQ(max_cap, 4u);
}

TEST(FatTree, FullCapPermutationHasNoContentionLoss)
{
    // With capacity cap N (Leiserson's doubling tree) a permutation
    // routes without dst-side congestion collapse.
    sim::Simulator s;
    FatTreeNetwork net(s, 16, 16, cfg(7));
    sim::Random rng(7);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r = workload::runBatch(net, pairs, 16);
    EXPECT_TRUE(r.completed);
}

TEST(FatTreeDeathTest, NonPowerOfTwoFatal)
{
    sim::Simulator s;
    EXPECT_EXIT(FatTreeNetwork(s, 12, 4, cfg()),
                ::testing::ExitedWithCode(1), "2\\^m");
}

// ------------------------------------------------------ multibus

TEST(MultiBus, SingleSharedMedium)
{
    sim::Simulator s;
    MultiBusNetwork net(s, 16, 4, cfg());
    EXPECT_EQ(net.numLinks(), 1u);
    EXPECT_EQ(net.linkCapacity(0), 4u);
}

TEST(MultiBus, AtMostKConcurrentCircuits)
{
    sim::Simulator s;
    MultiBusNetwork net(s, 16, 2, cfg());
    for (net::NodeId i = 0; i < 8; ++i)
        net.send(i, i + 8, 400);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_LE(net.stats().activeCircuits.maximum(), 2);
}

TEST(MultiBus, AllMessagesEventuallyServed)
{
    sim::Simulator s;
    MultiBusNetwork net(s, 8, 1, cfg(11));
    sim::Random rng(11);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(8, rng));
    const auto r = workload::runBatch(net, pairs, 8);
    EXPECT_TRUE(r.completed);
}

// ----------------------------------------------------- ideal ring

TEST(IdealRing, ClockwiseRoute)
{
    sim::Simulator s;
    IdealRingNetwork net(s, 8, 2, cfg());
    net.send(6, 1, 4); // wraps: gaps 6, 7, 0
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().pathLength.max(), 3.0);
}

TEST(IdealRing, KCircuitsPerGap)
{
    sim::Simulator s;
    IdealRingNetwork net(s, 8, 2, cfg());
    // Two long overlapping circuits fit; a third must retry.
    net.send(0, 4, 2000);
    net.send(1, 5, 2000);
    s.runFor(200);
    EXPECT_EQ(net.stats().activeCircuits.current(), 2);
    net.send(2, 6, 16);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
    EXPECT_GE(net.blockedAborts(), 1u);
}

TEST(IdealRing, PermutationCompletes)
{
    sim::Simulator s;
    IdealRingNetwork net(s, 16, 4, cfg(13));
    sim::Random rng(13);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(16, rng));
    const auto r = workload::runBatch(net, pairs, 16);
    EXPECT_TRUE(r.completed);
}

} // namespace
} // namespace baseline
} // namespace rmb
