/**
 * @file
 * Unit tests for the xoshiro256** RNG wrapper.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/random.hh"

namespace rmb {
namespace sim {
namespace {

TEST(Random, DeterministicForSeed)
{
    Random a(123);
    Random b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Random, UniformIntInBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.uniformInt(17), 17u);
}

TEST(Random, UniformIntBoundOneIsZero)
{
    Random r(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniformInt(1), 0u);
}

TEST(Random, UniformIntCoversRange)
{
    Random r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, UniformRangeInclusive)
{
    Random r(3);
    bool lo_seen = false;
    bool hi_seen = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniformRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        lo_seen |= v == 5;
        hi_seen |= v == 9;
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

TEST(Random, UniformRealInHalfOpenUnit)
{
    Random r(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, UniformRealMeanNearHalf)
{
    Random r(9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniformReal();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Random, BernoulliExtremes)
{
    Random r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Random, BernoulliFrequency)
{
    Random r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Random, GeometricAtPOneIsZero)
{
    Random r(19);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Random, GeometricMeanMatches)
{
    // Mean of the number of failures before success = (1-p)/p.
    Random r(23);
    const double p = 0.2;
    double sum = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.15);
}

TEST(Random, ShuffleIsAPermutation)
{
    Random r(29);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    r.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Random, ShuffleActuallyShuffles)
{
    Random r(31);
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i)
        v[static_cast<std::size_t>(i)] = i;
    const auto before = v;
    r.shuffle(v);
    EXPECT_NE(v, before);
}

TEST(Random, ForkProducesIndependentStream)
{
    Random a(37);
    Random child = a.fork();
    // The child must not replay the parent's stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == child.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RandomDeathTest, UniformIntZeroPanics)
{
    Random r(1);
    EXPECT_DEATH(r.uniformInt(0), "uniformInt");
}

TEST(RandomDeathTest, BadRangePanics)
{
    Random r(1);
    EXPECT_DEATH(r.uniformRange(9, 5), "uniformRange");
}

} // namespace
} // namespace sim
} // namespace rmb
