/**
 * @file
 * Tests of the odd/even cycle FSM: the five rules of section 2.5,
 * and Lemma 1 on simulated rings of FSMs with randomized clock
 * rates.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rmb/cycle_fsm.hh"
#include "sim/random.hh"

namespace rmb {
namespace core {
namespace {

TEST(CycleFsm, ResetState)
{
    // Rule 1: at reset OD = OC = 0.
    CycleFsm f;
    EXPECT_FALSE(f.od());
    EXPECT_FALSE(f.oc());
    EXPECT_EQ(f.cycleCount(), 0u);
    EXPECT_EQ(f.phase(), CyclePhase::Moving);
}

TEST(CycleFsm, OdNeedsIdAndClearNeighbours)
{
    CycleFsm f;
    // Without ID nothing happens.
    f.step(false, false, false, false);
    EXPECT_FALSE(f.od());
    f.setMovesDone();
    // Rule 2 blocked while a neighbour cycle flag is high.
    f.step(false, true, false, false);
    EXPECT_FALSE(f.od());
    f.step(false, false, false, true);
    EXPECT_FALSE(f.od());
    // Clear neighbours: OD rises.
    f.step(false, false, false, false);
    EXPECT_TRUE(f.od());
    EXPECT_EQ(f.phase(), CyclePhase::WaitNeighborsDone);
}

TEST(CycleFsm, OcNeedsBothNeighbourDs)
{
    CycleFsm f;
    f.setMovesDone();
    f.step(false, false, false, false); // OD=1
    // Rule 3: OC needs LD and RD.
    f.step(true, false, false, false);
    EXPECT_FALSE(f.oc());
    f.step(false, false, true, false);
    EXPECT_FALSE(f.oc());
    f.step(true, false, true, false);
    EXPECT_TRUE(f.oc());
    EXPECT_EQ(f.cycleCount(), 1u);
}

/**
 * Regression for the rule-3 reading documented in cycle_fsm.hh: the
 * paper's body text says OC rises "if LC = RC = 0", i.e. on the very
 * tick after OD rose, but Figure 10 gates it on LD = RD = 1.  We
 * implement Figure 10 - under the body-text reading OC could rise
 * before a neighbour ever saw our OD, and rmbcheck shows the ring
 * deadlocks.  This pins the implemented behaviour: with neighbour
 * cycles clear but neighbour dones low, OC must stay low.
 */
TEST(CycleFsm, Rule3FollowsFigure10NotBodyText)
{
    CycleFsm f;
    f.setMovesDone();
    f.step(false, false, false, false); // rule 2: OD=1
    ASSERT_TRUE(f.od());

    // Body text would fire here (LC = RC = 0); Figure 10 must not.
    f.step(false, false, false, false);
    EXPECT_FALSE(f.oc());
    EXPECT_EQ(f.cycleCount(), 0u);

    // Only LD = RD = 1 raises OC.
    f.step(true, false, true, false);
    EXPECT_TRUE(f.oc());
    EXPECT_EQ(f.cycleCount(), 1u);

    // The pure function agrees, and the body-text variant really is
    // different - that difference is what rmbcheck's
    // --mutate oc-rule-bodytext probe exercises.
    const CycleStep fig10 = stepCycle(CyclePhase::WaitNeighborsDone,
                                      false, false, false, false,
                                      false);
    EXPECT_FALSE(fig10.cycleFlipped);
    const CycleStep body = stepCycle(
        CyclePhase::WaitNeighborsDone, false, false, false, false,
        false, CycleRuleVariant::OcRuleBodyText);
    EXPECT_TRUE(body.cycleFlipped);
    EXPECT_EQ(body.phase, CyclePhase::WaitNeighborsCycle);
}

TEST(CycleFsm, OdClearsWhenNeighbourCyclesFlip)
{
    CycleFsm f;
    f.setMovesDone();
    f.step(false, false, false, false); // OD=1
    f.step(true, false, true, false);   // OC=1
    // Rule 4: OD falls once LC and RC are both high.
    f.step(true, false, true, true);
    EXPECT_TRUE(f.od());
    f.step(true, true, true, true);
    EXPECT_FALSE(f.od());
    EXPECT_TRUE(f.oc());
}

TEST(CycleFsm, OcClearsWhenNeighbourDsClearAndMovingResumes)
{
    CycleFsm f;
    f.setMovesDone();
    f.step(false, false, false, false); // OD=1
    f.step(true, false, true, false);   // OC=1, cycle 1
    f.step(true, true, true, true);     // OD=0
    // Rule 5: OC falls once LD and RD are low; Moving begins.
    EXPECT_FALSE(f.step(true, true, false, true));
    EXPECT_TRUE(f.oc());
    EXPECT_TRUE(f.step(false, true, false, true));
    EXPECT_FALSE(f.oc());
    EXPECT_EQ(f.phase(), CyclePhase::Moving);
    EXPECT_TRUE(f.moving());
}

TEST(CycleFsm, ConsideredParityAlternates)
{
    CycleFsm f;
    // Even INC, cycle 0 -> even levels; odd INC -> odd levels.
    EXPECT_EQ(f.consideredParity(0), 0);
    EXPECT_EQ(f.consideredParity(1), 1);
    EXPECT_EQ(f.consideredParity(2), 0);
    // Advance one cycle.
    f.setMovesDone();
    f.step(false, false, false, false);
    f.step(true, false, true, false);
    EXPECT_EQ(f.cycleCount(), 1u);
    EXPECT_EQ(f.consideredParity(0), 1);
    EXPECT_EQ(f.consideredParity(1), 0);
}

/**
 * Simulate a ring of FSMs where each node polls at a random rate and
 * completes its Moving phase after a random number of polls; check
 * Lemma 1 throughout: neighbouring cycle counts never differ by more
 * than one, and everyone keeps making progress.
 */
class CycleFsmRing : public ::testing::TestWithParam<int>
{
};

TEST_P(CycleFsmRing, Lemma1HoldsUnderRandomRates)
{
    const int n = GetParam();
    sim::Random rng(static_cast<std::uint64_t>(n) * 977 + 1);
    std::vector<CycleFsm> fsm(static_cast<std::size_t>(n));
    std::vector<int> move_polls_left(static_cast<std::size_t>(n));
    for (auto &m : move_polls_left)
        m = static_cast<int>(rng.uniformRange(0, 3));

    std::uint64_t total_steps = 0;
    for (int round = 0; round < 20000; ++round) {
        const auto i = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(n)));
        auto &f = fsm[i];
        if (f.phase() == CyclePhase::Moving && !f.moving()) {
            // moves already done
        } else if (f.phase() == CyclePhase::Moving) {
            if (move_polls_left[i]-- <= 0)
                f.setMovesDone();
        }
        const auto &l = fsm[(i + static_cast<std::size_t>(n) - 1) %
                            static_cast<std::size_t>(n)];
        const auto &r = fsm[(i + 1) % static_cast<std::size_t>(n)];
        const bool entered = f.step(l.od(), l.oc(), r.od(), r.oc());
        if (entered)
            move_polls_left[i] = static_cast<int>(
                rng.uniformRange(0, 3));
        ++total_steps;

        // Lemma 1 after every step.
        for (std::size_t j = 0;
             j < static_cast<std::size_t>(n); ++j) {
            const auto a = fsm[j].cycleCount();
            const auto b =
                fsm[(j + 1) % static_cast<std::size_t>(n)]
                    .cycleCount();
            const auto skew = a > b ? a - b : b - a;
            ASSERT_LE(skew, 1u)
                << "Lemma 1 violated at nodes " << j << "/"
                << (j + 1) % static_cast<std::size_t>(n);
        }
    }

    // Liveness: every node completed several cycles.
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
        EXPECT_GE(fsm[j].cycleCount(), 3u) << "node " << j;
    (void)total_steps;
}

INSTANTIATE_TEST_SUITE_P(RingSizes, CycleFsmRing,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 17));

} // namespace
} // namespace core
} // namespace rmb
