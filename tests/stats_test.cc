/**
 * @file
 * Unit tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

namespace rmb {
namespace sim {
namespace {

TEST(SampleStat, EmptyState)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_TRUE(std::isnan(s.mean()));
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isnan(s.percentile(50)));
}

TEST(SampleStat, SingleSample)
{
    SampleStat s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 4.0);
    EXPECT_EQ(s.min(), 4.0);
    EXPECT_EQ(s.max(), 4.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.percentile(0), 4.0);
    EXPECT_EQ(s.percentile(100), 4.0);
}

TEST(SampleStat, MomentsMatchClosedForm)
{
    SampleStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    // Population variance is 4; sample variance = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStat, PercentilesInterpolate)
{
    SampleStat s;
    for (int i = 1; i <= 5; ++i)
        s.add(static_cast<double>(i) * 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 30.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
    EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);
}

TEST(SampleStat, PercentileUnsortedInput)
{
    SampleStat s;
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
}

TEST(SampleStat, RetentionOffStillExactMoments)
{
    SampleStat s(false);
    for (int i = 0; i < 1000; ++i)
        s.add(static_cast<double>(i));
    EXPECT_EQ(s.count(), 1000u);
    EXPECT_NEAR(s.mean(), 499.5, 1e-9);
    EXPECT_TRUE(std::isnan(s.percentile(50)));
}

TEST(SampleStat, ResetClears)
{
    SampleStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(std::isnan(s.mean()));
    s.add(5.0);
    EXPECT_EQ(s.mean(), 5.0);
}

TEST(SampleStatDeathTest, BadPercentilePanics)
{
    SampleStat s;
    s.add(1.0);
    EXPECT_DEATH(s.percentile(101.0), "percentile");
}

TEST(BusyTracker, StartsFree)
{
    BusyTracker t;
    EXPECT_FALSE(t.busy());
    EXPECT_EQ(t.busyTicks(100), 0u);
    EXPECT_EQ(t.utilization(100), 0.0);
}

TEST(BusyTracker, AccumulatesBusyWindows)
{
    BusyTracker t;
    t.setBusy(10);
    t.setFree(30);
    t.setBusy(50);
    t.setFree(60);
    EXPECT_EQ(t.busyTicks(100), 30u);
    EXPECT_DOUBLE_EQ(t.utilization(100), 0.3);
}

TEST(BusyTracker, OpenWindowCountsUpToNow)
{
    BusyTracker t;
    t.setBusy(40);
    EXPECT_EQ(t.busyTicks(100), 60u);
    EXPECT_DOUBLE_EQ(t.utilization(100), 0.6);
    EXPECT_TRUE(t.busy());
}

TEST(BusyTracker, RedundantEdgesIgnored)
{
    BusyTracker t;
    t.setBusy(10);
    t.setBusy(20); // no-op
    t.setFree(30);
    t.setFree(40); // no-op
    EXPECT_EQ(t.busyTicks(50), 20u);
}

TEST(BusyTracker, ZeroWindowUtilizationIsZero)
{
    BusyTracker t;
    EXPECT_EQ(t.utilization(0), 0.0);
}

TEST(LevelTracker, TracksCurrentAndMax)
{
    LevelTracker t;
    t.adjust(0, 2);
    t.adjust(10, 3);
    t.adjust(20, -4);
    EXPECT_EQ(t.current(), 1);
    EXPECT_EQ(t.maximum(), 5);
}

TEST(LevelTracker, TimeWeightedAverage)
{
    LevelTracker t;
    t.set(0, 0);
    t.set(10, 4); // level 0 over [0,10)
    t.set(30, 2); // level 4 over [10,30)
    // Over [0,40): (0*10 + 4*20 + 2*10)/40 = 2.5
    EXPECT_DOUBLE_EQ(t.average(40), 2.5);
}

TEST(LevelTracker, AverageAtZeroIsCurrent)
{
    LevelTracker t;
    t.set(0, 7);
    EXPECT_DOUBLE_EQ(t.average(0), 7.0);
}

TEST(LevelTrackerDeathTest, TimeBackwardsPanics)
{
    LevelTracker t;
    t.set(10, 1);
    EXPECT_DEATH(t.set(5, 2), "backwards");
}

} // namespace
} // namespace sim
} // namespace rmb
