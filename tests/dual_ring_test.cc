/**
 * @file
 * Tests for the dual counter-rotating ring RMB (paper section 2.1's
 * "two parallel unidirectional rings").
 */

#include <gtest/gtest.h>

#include "rmb/dual_ring.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
cfg(std::uint32_t n, std::uint32_t k, std::uint64_t seed = 1)
{
    RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.seed = seed;
    c.verify = VerifyLevel::Full;
    return c;
}

void
runToQuiescence(sim::Simulator &s, net::Network &net,
                sim::Tick limit = 2'000'000)
{
    while (!net.quiescent() && s.now() < limit)
        s.run(256);
}

TEST(DualRing, ShortPathsPickTheRightPlane)
{
    sim::Simulator s;
    DualRingRmbNetwork net(s, cfg(16, 2));
    const auto cw = net.send(0, 3, 8);    // 3 hops CW vs 13 CCW
    const auto ccw = net.send(0, 13, 8);  // 13 CW vs 3 CCW
    const auto tie = net.send(0, 8, 8);   // 8 = 8: tie -> CW
    EXPECT_EQ(net.plane(cw), RingPlane::Clockwise);
    EXPECT_EQ(net.plane(ccw), RingPlane::CounterClockwise);
    EXPECT_EQ(net.plane(tie), RingPlane::Clockwise);
    runToQuiescence(s, net);
    EXPECT_TRUE(net.quiescent());
}

TEST(DualRing, DeliveryMirrorsPlaneTimestamps)
{
    sim::Simulator s;
    DualRingRmbNetwork net(s, cfg(16, 2));
    const auto id = net.send(5, 1, 16); // CCW (4 hops vs 12)
    runToQuiescence(s, net);
    const net::Message &m = net.message(id);
    EXPECT_EQ(m.state, net::MessageState::Delivered);
    EXPECT_LE(m.created, m.firstAttempt);
    EXPECT_LT(m.firstAttempt, m.established);
    EXPECT_LT(m.established, m.delivered);
    // 4 hops were used, not 12.
    EXPECT_EQ(net.stats().pathLength.max(), 4.0);
}

TEST(DualRing, HalvesWorstCaseDistance)
{
    // Tornado traffic (dst = src + N/2) is the ring's worst case;
    // the dual ring must beat the single ring clearly on everything
    // *shorter* than N/2.  Compare rotation by N/4: single ring
    // pays N/4 hops for half the... every message; dual ring routes
    // them all CW with N/4 hops but has double buses.  Use rotation
    // by 3N/4 where the single ring pays 3N/4 and the dual pays N/4.
    const std::uint32_t n = 16;
    sim::Simulator s1;
    RmbNetwork single(s1, cfg(n, 2, 3));
    sim::Simulator s2;
    DualRingRmbNetwork dual(s2, cfg(n, 2, 3));
    const auto pairs =
        workload::toPairs(workload::rotation(n, 12)); // 12 = 3N/4
    const auto r1 = workload::runBatch(single, pairs, 24);
    const auto r2 = workload::runBatch(dual, pairs, 24);
    ASSERT_TRUE(r1.completed);
    ASSERT_TRUE(r2.completed);
    EXPECT_LT(r2.makespan * 2, r1.makespan);
    EXPECT_EQ(dual.stats().pathLength.max(), 4.0);
}

TEST(DualRing, RandomPermutationsComplete)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sim::Simulator s;
        DualRingRmbNetwork net(s, cfg(16, 2, seed));
        sim::Random rng(seed * 17);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        const auto r = workload::runBatch(net, pairs, 24);
        EXPECT_TRUE(r.completed) << "seed " << seed;
        EXPECT_EQ(r.delivered, pairs.size());
    }
}

TEST(DualRing, PlanesShareNoState)
{
    sim::Simulator s;
    DualRingRmbNetwork net(s, cfg(8, 2));
    // Saturate the CW plane; CCW traffic must be unaffected.
    net.send(0, 2, 4'000);
    net.send(2, 4, 4'000);
    s.runFor(100);
    const auto id = net.send(4, 2, 8); // 6 CW vs 2 CCW -> CCW plane
    runToQuiescence(s, net, 100'000);
    const net::Message &m = net.message(id);
    EXPECT_EQ(m.state, net::MessageState::Delivered);
    EXPECT_EQ(m.nacks, 0u);
    runToQuiescence(s, net);
}

TEST(DualRing, StatsAggregateAcrossPlanes)
{
    sim::Simulator s;
    DualRingRmbNetwork net(s, cfg(16, 2));
    net.send(0, 4, 16);   // CW
    net.send(0, 12, 16);  // CCW
    runToQuiescence(s, net);
    EXPECT_EQ(net.stats().delivered, 2u);
    EXPECT_EQ(net.stats().injected, 2u);
    EXPECT_EQ(net.stats().setupLatency.count(), 2u);
    EXPECT_GT(net.totalCompactionMoves(), 0u);
}

TEST(DualRing, FailurePropagates)
{
    sim::Simulator s;
    RmbConfig c = cfg(16, 2);
    c.maxRetries = 1;
    c.retryBackoffMin = 2;
    c.retryBackoffMax = 4;
    DualRingRmbNetwork net(s, c);
    // Hog node 4's receive port, then force a same-plane rival.
    const auto hog = net.send(2, 4, 50'000);
    s.runFor(100);
    const auto rival = net.send(1, 4, 8);
    runToQuiescence(s, net, 300'000);
    EXPECT_EQ(net.message(hog).state, net::MessageState::Delivered);
    EXPECT_EQ(net.message(rival).state, net::MessageState::Failed);
    EXPECT_EQ(net.stats().failed, 1u);
    EXPECT_TRUE(net.quiescent());
}

} // namespace
} // namespace core
} // namespace rmb
