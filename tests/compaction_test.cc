/**
 * @file
 * Focused tests of compaction dynamics: Figure 5's two-cycle move,
 * the make-before-break dual window, and the staircase fixed point
 * this reproduction discovered.
 */

#include <gtest/gtest.h>

#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"

namespace rmb {
namespace core {
namespace {

RmbConfig
cfg(std::uint32_t n, std::uint32_t k)
{
    RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.headerPolicy = HeaderPolicy::PreferStraight;
    // Homogeneous clocks make the cycle arithmetic exact.
    c.cyclePeriodMin = c.cyclePeriodMax = 8;
    c.verify = VerifyLevel::Full;
    return c;
}

TEST(Compaction, FigureFiveMoveRate)
{
    // A single long-lived circuit injected on the top bus sinks one
    // level roughly every two odd/even cycles (Figure 5): with a
    // parity alternation each level's parity is considered every
    // other cycle, and a full cycle is 4 handshake phases of one
    // 8-tick period each.
    sim::Simulator s;
    RmbNetwork net(s, cfg(8, 8));
    net.send(0, 4, 100'000);
    // Sample the first hop's level over time.
    Level previous = 7;
    std::vector<sim::Tick> drop_time;
    while (drop_time.size() < 7 && s.now() < 50'000) {
        s.run(8);
        const auto ids = net.liveBusIds();
        ASSERT_EQ(ids.size(), 1u);
        const VirtualBus *bus = net.bus(ids[0]);
        const Level level = bus->hops.front().settledLevel();
        if (level < previous) {
            // Levels drop one at a time (make-before-break).
            EXPECT_EQ(level, previous - 1);
            drop_time.push_back(s.now());
            previous = level;
        }
    }
    ASSERT_EQ(drop_time.size(), 7u); // reached the bottom
    // Steady-state inter-drop spacing: at least one full cycle
    // (4 phases x 8 ticks), at most a few cycles.
    for (std::size_t i = 1; i < drop_time.size(); ++i) {
        const sim::Tick gap = drop_time[i] - drop_time[i - 1];
        EXPECT_GE(gap, 32u) << "drop " << i;
        EXPECT_LE(gap, 160u) << "drop " << i;
    }
    while (!net.quiescent() && s.now() < 300'000)
        s.run(4096);
}

TEST(Compaction, MakeBeforeBreakWindowIsHalfAPeriod)
{
    // During a move the hop owns both segments; the dual window
    // lasts half the INC's period (8 -> 4 ticks).
    sim::Simulator s;
    RmbNetwork net(s, cfg(8, 4));
    net.send(0, 4, 50'000);
    sim::Tick window_start = 0;
    sim::Tick window_len = 0;
    bool in_window = false;
    for (int step = 0; step < 4000 && window_len == 0; ++step) {
        s.runFor(1);
        const auto ids = net.liveBusIds();
        if (ids.empty())
            continue;
        const VirtualBus *bus = net.bus(ids[0]);
        bool dual = false;
        for (const Hop &h : bus->hops)
            dual |= h.inMove();
        if (dual && !in_window) {
            in_window = true;
            window_start = s.now();
        } else if (!dual && in_window) {
            window_len = s.now() - window_start;
        }
    }
    ASSERT_GT(window_len, 0u) << "no make-before-break observed";
    EXPECT_GE(window_len, 3u);
    EXPECT_LE(window_len, 6u);
    while (!net.quiescent() && s.now() < 300'000)
        s.run(4096);
}

TEST(Compaction, StaircaseIsARigidFixedPoint)
{
    // The finding documented in E9/EXPERIMENTS.md: eagerly-descended
    // circuits from consecutive sources pack into a staircase where
    // *no* hop satisfies Figure 7's four conditions, stranding the
    // bottom level.  Pin it so any protocol change that alters the
    // equilibrium is noticed.
    sim::Simulator s;
    RmbConfig c = cfg(16, 4);
    c.headerPolicy = HeaderPolicy::PreferLowest;
    RmbNetwork net(s, c);
    // Circuits i -> i+3 for all i: every gap carries 3 circuits.
    for (net::NodeId i = 0; i < 16; ++i)
        net.send(i, (i + 3) % 16, 30'000);
    s.runFor(5'000); // ample time for any possible move
    const auto moves_before = net.rmbStats().compactionMoves;
    s.runFor(5'000);
    // Established staircase: zero further moves.
    EXPECT_EQ(net.rmbStats().compactionMoves, moves_before);
    // And the bottom level is partially stranded: at least one gap
    // has level 0 free while 3 circuits sit above.
    bool stranded = false;
    for (GapId g = 0; g < 16; ++g) {
        stranded |= net.segments().isFree(g, 0) &&
                    !net.segments().isFree(g, 1) &&
                    !net.segments().isFree(g, 2) &&
                    !net.segments().isFree(g, 3);
    }
    EXPECT_TRUE(stranded);
    while (!net.quiescent() && s.now() < 500'000)
        s.run(4096);
}

TEST(Compaction, TeardownDissolvesTheStaircase)
{
    // Once circuits start finishing, compaction resumes and the
    // survivors sink.
    sim::Simulator s;
    RmbConfig c = cfg(16, 4);
    c.headerPolicy = HeaderPolicy::PreferLowest;
    RmbNetwork net(s, c);
    for (net::NodeId i = 0; i < 16; ++i)
        net.send(i, (i + 3) % 16, 2'000 + 1'000 * (i % 4));
    while (!net.quiescent() && s.now() < 200'000)
        s.run(1024);
    ASSERT_TRUE(net.quiescent());
    EXPECT_GT(net.rmbStats().compactionMoves, 0u);
}

TEST(Compaction, DisabledMeansZeroMovesEver)
{
    sim::Simulator s;
    RmbConfig c = cfg(16, 4);
    c.enableCompaction = false;
    RmbNetwork net(s, c);
    workload::PairList pairs;
    for (net::NodeId i = 0; i < 16; ++i)
        pairs.emplace_back(i, (i + 5) % 16);
    const auto r = workload::runBatch(net, pairs, 64, 4'000'000);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(net.rmbStats().compactionMoves, 0u);
    // The odd/even cycles still run (they are the INC's heartbeat).
    EXPECT_GT(net.inc(0).cycleCount(), 0u);
}

} // namespace
} // namespace core
} // namespace rmb
