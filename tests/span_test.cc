/**
 * @file
 * Tests of causal span reconstruction (obs::SpanBuilder), the
 * log-bucketed histogram, the offline causality checker and the
 * Chrome-trace exporter - mostly over synthetic event vectors so
 * each edge case (Nack-only messages, severed circuits, spans still
 * open at simulation end) is pinned exactly, plus one integration
 * pass over a real network trace.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "obs/histogram.hh"
#include "obs/json.hh"
#include "obs/perfetto.hh"
#include "obs/sinks.hh"
#include "obs/span.hh"
#include "obs/trace.hh"
#include "rmb/network.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace obs {
namespace {

TraceEvent
ev(EventKind kind, sim::Tick at, std::uint64_t msg = 0,
   std::uint64_t bus = 0, std::uint32_t node = 0,
   std::uint32_t gap = 0, std::int32_t level = -1,
   std::uint64_t a = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.at = at;
    e.message = msg;
    e.bus = bus;
    e.node = node;
    e.gap = gap;
    e.level = level;
    e.a = a;
    return e;
}

/** The minimal healthy life of one message on one segment. */
std::vector<TraceEvent>
cleanTrace()
{
    return {
        ev(EventKind::Inject, 10, 1, 0, 0),
        ev(EventKind::HeaderHop, 12, 1, 5, 0, 0, 1),
        ev(EventKind::Hack, 20, 1, 5, 1),
        ev(EventKind::Deliver, 50, 1, 5, 1),
        ev(EventKind::Teardown, 52, 1, 5, 1, 0, -1, kTeardownFack),
        ev(EventKind::SegmentFree, 54, 1, 5, 0, 0, 1,
           kFreeTeardown),
    };
}

const Span *
findSpan(const std::vector<Span> &spans, SpanKind kind,
         std::size_t nth = 0)
{
    for (const Span &s : spans) {
        if (s.kind != kind)
            continue;
        if (nth == 0)
            return &s;
        --nth;
    }
    return nullptr;
}

TEST(SpanBuilder, CleanMessageYieldsFourPhases)
{
    SpanBuilder b;
    for (const TraceEvent &e : cleanTrace())
        b.onEvent(e);
    b.finish(60);

    const Span *setup = findSpan(b.spans(), SpanKind::Setup);
    ASSERT_NE(setup, nullptr);
    EXPECT_EQ(setup->begin, 10u);
    EXPECT_EQ(setup->end, 20u);
    EXPECT_FALSE(setup->open);
    EXPECT_FALSE(setup->refused);

    const Span *stream = findSpan(b.spans(), SpanKind::Streaming);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->begin, 20u);
    EXPECT_EQ(stream->end, 50u);
    EXPECT_EQ(stream->bus, 5u);

    // Teardown runs from the Fack start to the last segment free.
    const Span *td = findSpan(b.spans(), SpanKind::Teardown);
    ASSERT_NE(td, nullptr);
    EXPECT_EQ(td->begin, 52u);
    EXPECT_EQ(td->end, 54u);
    EXPECT_FALSE(td->open);

    // The segment lane covers header claim -> teardown free.
    const Span *seg =
        findSpan(b.spans(), SpanKind::SegmentOccupancy);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->begin, 12u);
    EXPECT_EQ(seg->end, 54u);
    EXPECT_EQ(seg->gap, 0u);
    EXPECT_EQ(seg->level, 1);

    EXPECT_EQ(b.phaseStat(SpanKind::Setup).count(), 1u);
    EXPECT_DOUBLE_EQ(b.phaseStat(SpanKind::Setup).mean(), 10.0);
    EXPECT_EQ(b.phaseStat(SpanKind::Streaming).count(), 1u);
    EXPECT_TRUE(b.instants().empty());
}

TEST(SpanBuilder, NackOnlyMessageIsRefusedNeverStreams)
{
    // A message that only ever collects Nacks: every attempt's Setup
    // span closes refused, a Backoff span per backoff, and no
    // Streaming span at all.
    SpanBuilder b;
    b.onEvent(ev(EventKind::Inject, 0, 7, 0, 3));
    b.onEvent(ev(EventKind::Nack, 4, 7, 0, 3, 0, -1,
                 kNackNoSegment));
    b.onEvent(ev(EventKind::Backoff, 4, 7, 0, 3, 0, -1, 6));
    b.onEvent(ev(EventKind::Retry, 10, 7, 0, 3, 0, -1, 1));
    b.onEvent(ev(EventKind::Nack, 14, 7, 0, 3, 0, -1,
                 kNackNoSegment));
    b.onEvent(ev(EventKind::Fail, 14, 7, 0, 3));
    b.finish(20);

    std::size_t setups = 0;
    for (const Span &s : b.spans()) {
        EXPECT_NE(s.kind, SpanKind::Streaming);
        if (s.kind == SpanKind::Setup) {
            ++setups;
            EXPECT_TRUE(s.refused);
            EXPECT_FALSE(s.open);
        }
    }
    EXPECT_EQ(setups, 2u);

    const Span *back = findSpan(b.spans(), SpanKind::Backoff);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->begin, 4u);
    EXPECT_EQ(back->end, 10u);

    // Both Nacks and the Fail are plotted as instants.
    EXPECT_EQ(b.instants().size(), 3u);
}

TEST(SpanBuilder, SeveredThenRecoveredSplitsTheStream)
{
    // Attempt 1 establishes, gets severed mid-stream; the retry
    // establishes again and delivers.  The first Streaming span must
    // carry severed=true, the second must be clean.
    SpanBuilder b;
    b.onEvent(ev(EventKind::Inject, 0, 9, 0, 2));
    b.onEvent(ev(EventKind::Hack, 10, 9, 4, 2));
    b.onEvent(ev(EventKind::BusSevered, 30, 9, 4, 2, 0, -1,
                 kSeverFault));
    b.onEvent(ev(EventKind::Retry, 40, 9, 0, 2, 0, -1, 1));
    b.onEvent(ev(EventKind::Hack, 55, 9, 6, 2));
    b.onEvent(ev(EventKind::Deliver, 80, 9, 6, 2));
    b.finish(100);

    const Span *first = findSpan(b.spans(), SpanKind::Streaming, 0);
    const Span *second = findSpan(b.spans(), SpanKind::Streaming, 1);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_TRUE(first->severed);
    EXPECT_EQ(first->begin, 10u);
    EXPECT_EQ(first->end, 30u);
    EXPECT_EQ(first->bus, 4u);
    EXPECT_FALSE(second->severed);
    EXPECT_EQ(second->end, 80u);
    EXPECT_EQ(second->bus, 6u);

    // Severed spans still count toward the phase stat (they closed
    // with a real end time), and the sever shows up as an instant.
    EXPECT_EQ(b.phaseStat(SpanKind::Streaming).count(), 2u);
    ASSERT_EQ(b.instants().size(), 1u);
    EXPECT_EQ(b.instants()[0].kind, EventKind::BusSevered);
}

TEST(SpanBuilder, InFlightSpansAtFinishAreFlaggedNotDropped)
{
    SpanBuilder b;
    b.onEvent(ev(EventKind::Inject, 0, 3, 0, 1));
    b.onEvent(ev(EventKind::HeaderHop, 2, 3, 8, 1, 1, 0));
    b.onEvent(ev(EventKind::Hack, 9, 3, 8, 1));
    // Simulation ends mid-stream: no Deliver, no Teardown.
    b.finish(42);

    const Span *stream = findSpan(b.spans(), SpanKind::Streaming);
    ASSERT_NE(stream, nullptr);
    EXPECT_TRUE(stream->open);
    EXPECT_EQ(stream->end, 42u);

    const Span *seg =
        findSpan(b.spans(), SpanKind::SegmentOccupancy);
    ASSERT_NE(seg, nullptr);
    EXPECT_TRUE(seg->open);

    // Open spans are excluded from the clean phase statistics.
    EXPECT_EQ(b.phaseStat(SpanKind::Streaming).count(), 0u);
    EXPECT_EQ(b.phaseStat(SpanKind::SegmentOccupancy).count(), 0u);

    // finish() is idempotent and does not double-close.
    const std::size_t n = b.spans().size();
    b.finish(42);
    EXPECT_EQ(b.spans().size(), n);
}

TEST(LogHistogram, BucketBoundariesArePowersOfTwo)
{
    EXPECT_EQ(LogHistogram::bucketIndex(0), 0u);
    EXPECT_EQ(LogHistogram::bucketIndex(1), 1u);
    EXPECT_EQ(LogHistogram::bucketIndex(2), 2u);
    EXPECT_EQ(LogHistogram::bucketIndex(3), 2u);
    EXPECT_EQ(LogHistogram::bucketIndex(4), 3u);
    EXPECT_EQ(LogHistogram::bucketIndex(7), 3u);
    EXPECT_EQ(LogHistogram::bucketIndex(8), 4u);
    EXPECT_EQ(LogHistogram::bucketIndex((1ull << 62)), 63u);
    EXPECT_EQ(LogHistogram::bucketIndex(~0ull), 63u);

    EXPECT_EQ(LogHistogram::bucketLow(0), 0u);
    EXPECT_EQ(LogHistogram::bucketLow(1), 1u);
    EXPECT_EQ(LogHistogram::bucketLow(5), 16u);
    // Every boundary value lands in the bucket it opens.
    for (std::size_t i = 1; i < LogHistogram::kNumBuckets; ++i)
        EXPECT_EQ(LogHistogram::bucketIndex(LogHistogram::bucketLow(i)),
                  i);
}

TEST(LogHistogram, PercentilesInterpolateAndClamp)
{
    LogHistogram h;
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    EXPECT_TRUE(std::isnan(h.mean()));

    for (std::uint64_t v : {10u, 20u, 30u, 40u, 1000u})
        h.add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 220.0);

    // Percentiles are approximate but must be monotone in p and
    // clamped to the observed range.
    const double p50 = h.percentile(0.50);
    const double p90 = h.percentile(0.90);
    const double p99 = h.percentile(0.99);
    EXPECT_GE(p50, 10.0);
    EXPECT_LE(p99, 1000.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // p99 of 5 samples sits in the top bucket with the 1000.
    EXPECT_GE(p99, 512.0);

    const std::string json = h.toJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"count\":5"), std::string::npos);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(jsonValid(h.toJson()));
}

TEST(CheckTrace, HealthyTracePasses)
{
    EXPECT_TRUE(checkTrace(cleanTrace()).empty());
}

TEST(CheckTrace, DroppedHackAndInjectAreFlagged)
{
    auto events = cleanTrace();
    // Remove the Hack: the Deliver is now causally orphaned.
    events.erase(events.begin() + 2);
    const auto problems = checkTrace(events);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("without a prior hack"),
              std::string::npos);

    // A Hack with no Inject at all is likewise flagged.
    const auto orphan =
        checkTrace({ev(EventKind::Hack, 5, 2, 1, 0)});
    ASSERT_EQ(orphan.size(), 1u);
    EXPECT_NE(orphan[0].find("without a prior inject"),
              std::string::npos);
}

TEST(CheckTrace, SegmentDoubleClaimAndDoubleFree)
{
    std::vector<TraceEvent> events = {
        ev(EventKind::HeaderHop, 1, 1, 5, 0, 3, 2),
        ev(EventKind::HeaderHop, 2, 2, 6, 1, 3, 2), // double claim
        ev(EventKind::SegmentFree, 3, 1, 5, 0, 3, 2),
        ev(EventKind::SegmentFree, 4, 1, 5, 0, 3, 2), // double free
    };
    const auto problems = checkTrace(events);
    ASSERT_EQ(problems.size(), 2u);
    EXPECT_NE(problems[0].find("while held by bus 5"),
              std::string::npos);
    EXPECT_NE(problems[1].find("freed while already free"),
              std::string::npos);
}

TEST(CheckTrace, DroppedFackLeaksTheBus)
{
    auto events = cleanTrace();
    // Drop the Fack teardown (and the free it would have caused).
    events.resize(4);
    const auto problems = checkTrace(events);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("dropped Fack"), std::string::npos);
}

TEST(CheckTrace, TimeRegressionAndLemmaOneSkew)
{
    const auto regress = checkTrace({
        ev(EventKind::Inject, 10, 1),
        ev(EventKind::Inject, 5, 2),
    });
    ASSERT_EQ(regress.size(), 1u);
    EXPECT_NE(regress[0].find("goes back in time"),
              std::string::npos);

    // Adjacent INCs two cycles apart violate Lemma 1.
    const auto skew = checkTrace({
        ev(EventKind::CycleFlip, 1, 0, 0, 0, 0, -1, 5),
        ev(EventKind::CycleFlip, 2, 0, 0, 1, 1, -1, 3),
    });
    ASSERT_FALSE(skew.empty());
    EXPECT_NE(skew[0].find("Lemma 1"), std::string::npos);

    // One cycle apart is the systolic steady state: healthy.
    EXPECT_TRUE(checkTrace({
                    ev(EventKind::CycleFlip, 1, 0, 0, 0, 0, -1, 5),
                    ev(EventKind::CycleFlip, 2, 0, 0, 1, 1, -1, 4),
                }).empty());
}

TEST(ChromeTrace, SyntheticSpansExportValidJson)
{
    SpanBuilder b;
    for (const TraceEvent &e : cleanTrace())
        b.onEvent(e);
    b.onEvent(ev(EventKind::SegmentFail, 55, 0, 0, 2, 2, 0));
    b.finish(60);

    std::ostringstream out;
    writeChromeTrace(out, b.spans(), b.instants());
    const std::string json = out.str();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_EQ(json.rfind("[", 0), 0u);
    // Named tracks and at least one complete event and one instant.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("segment_fail"), std::string::npos);
}

TEST(SpanBuilder, RealNetworkTraceReconstructsAndChecksClean)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    cfg.seed = 11;
    cfg.verify = core::VerifyLevel::Full;
    core::RmbNetwork net(s, cfg);

    // Record the raw events and fold spans in one pass.
    struct VectorSink final : TraceSink
    {
        std::vector<TraceEvent> events;
        void
        onEvent(const TraceEvent &e) override
        {
            events.push_back(e);
        }
    } raw;
    SpanBuilder builder;
    TeeSink tee(&raw, &builder);
    net.setTraceSink(&tee);

    sim::Random rng(23);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(8, rng));
    const auto r = workload::runBatch(net, pairs, 12, 1'000'000);
    ASSERT_TRUE(r.completed);
    s.runFor(2000); // drain trailing Facks
    builder.finish(s.now());

    // Every delivered message produced a Setup and a Streaming
    // span; Nack-retry may add refused setups on top.
    const auto countKind = [&builder](SpanKind kind) {
        std::size_t n = 0;
        for (const Span &span : builder.spans())
            n += span.kind == kind ? 1 : 0;
        return n;
    };
    EXPECT_GE(countKind(SpanKind::Setup), pairs.size());
    EXPECT_EQ(countKind(SpanKind::Streaming), pairs.size());
    EXPECT_EQ(builder.phaseStat(SpanKind::Streaming).count(),
              pairs.size());

    // The live trace passes the offline causality checker.
    const auto problems = checkTrace(raw.events);
    for (const auto &p : problems)
        ADD_FAILURE() << p;

    // And exports a loadable Chrome trace.
    std::ostringstream out;
    writeChromeTrace(out, builder.spans(), builder.instants());
    EXPECT_TRUE(jsonValid(out.str()));
}

TEST(PanicHookDeath, AttachedSinkDumpsFlightRecorderOnPanic)
{
    // setTraceSink wires the sink's postMortem() into the panic
    // path: any invariant-audit panic must print the recent event
    // tail before aborting.
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = 8;
    cfg.numBuses = 2;
    cfg.seed = 1;
    obs::RingBufferSink recorder(16);
    core::RmbNetwork net(s, cfg);
    net.setTraceSink(&recorder);
    net.send(0, 3, 8);
    s.runFor(50);
    ASSERT_GT(recorder.seen(), 0u);
    EXPECT_DEATH(panic("synthetic failure"),
                 "trace flight recorder: last");
}

} // namespace
} // namespace obs
} // namespace rmb
