/**
 * @file
 * Experiments T1/F1-F3: protocol-level dynamics.
 *
 *  - Table 1 as behaviour: a census of the derived status-register
 *    codes sampled while a loaded RMB runs (the dual codes 011/110
 *    appear exactly during make-before-break windows, the illegal
 *    codes 101/111 never);
 *  - Figure 2's picture: per-level segment utilization, showing
 *    compaction keeps traffic pressed onto the low buses and the
 *    top bus nearly free for injections;
 *  - ack accounting: Hack/Dack/Fack/Nack counts per delivered
 *    message.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "rmb/status_register.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/traffic.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "T1/F1-F3", "status-register census and per-level"
                              " bus utilization");

    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    const sim::Tick duration = h.fast() ? 30'000 : 100'000;

    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.verify = core::VerifyLevel::Cheap;
    core::RmbNetwork net(s, cfg);

    workload::LocalRingTraffic pattern(n, 8);
    sim::Random rng(3);

    // Drive load and sample the status registers every few ticks.
    std::array<std::uint64_t, 8> census{};
    std::uint64_t pe_driven_count = 0;
    std::uint64_t samples = 0;

    // Start an open-loop run "by hand" so we can sample mid-flight.
    for (net::NodeId i = 0; i < n; ++i)
        net.send(i, pattern.pick(i, rng), 64);
    while (s.now() < duration) {
        s.runFor(7);
        for (net::NodeId node = 0; node < n; ++node) {
            for (core::Level l = 0;
                 l < static_cast<core::Level>(k); ++l) {
                bool pe = false;
                const auto bits = net.outputStatus(node, l, &pe);
                ++census[bits];
                pe_driven_count += pe ? 1 : 0;
                ++samples;
            }
        }
        // Keep the network loaded.
        if (net.quiescent()) {
            for (net::NodeId i = 0; i < n; ++i)
                net.send(i, pattern.pick(i, rng), 64);
        }
    }

    TextTable t1("Table 1 census: derived output-port codes over " +
                     std::to_string(samples) + " samples",
                 {"code", "meaning", "count", "share%"});
    for (std::uint8_t bits = 0; bits < 8; ++bits) {
        t1.addRow({std::to_string((bits >> 2) & 1) +
                       std::to_string((bits >> 1) & 1) +
                       std::to_string(bits & 1),
                   core::statusLegal(bits)
                       ? core::statusName(bits)
                       : "not allowed (never observed)",
                   TextTable::num(census[bits]),
                   TextTable::num(100.0 *
                                      static_cast<double>(
                                          census[bits]) /
                                      static_cast<double>(samples),
                                  3)});
    }
    h.table(t1);
    std::cout << "(PE-driven source ports, outside Table 1's"
                 " scope: "
              << pe_driven_count << " samples)\n\n";

    // Drain, then report per-level utilization.
    while (!net.quiescent() && s.now() < duration * 10)
        s.run(4096);

    TextTable util("Figure 2/3 shape: time-weighted utilization per"
                   " bus level (level k-1 = top/injection bus)",
                   {"level", "mean utilization%", "role"});
    for (core::Level l = static_cast<core::Level>(k) - 1; l >= 0;
         --l) {
        double sum = 0.0;
        for (core::GapId g = 0; g < n; ++g)
            sum += net.segments().utilization(g, l, s.now());
        util.addRow(
            {TextTable::num(static_cast<std::uint64_t>(l)),
             TextTable::num(100.0 * sum / n, 2),
             l == static_cast<core::Level>(k) - 1
                 ? "top (injection only, recycled by compaction)"
                 : (l == 0 ? "bottom (circuits settle here)"
                           : "middle")});
    }
    h.table(util);

    std::cout << "\nShape checks: codes 101/111 never occur"
                 " (Table 1); dual codes 011/110 occur rarely and"
                 " only during moves; utilization is bottom-heavy -"
                 " compaction presses circuits down and keeps the"
                 " top bus available (Figures 2-3).\n";
    return 0;
}
