/**
 * @file
 * Experiment E17 (paper section 1's motivating computations +
 * section 4's k-ary n-cube comparison): algorithm-shaped
 * communication kernels - butterfly (sorting/FFT), all-to-all
 * (transpose), stencil (image processing), reduction and parallel
 * prefix - executed on the RMB, the dual-ring RMB, and the k-ary
 * n-cube / multibus baselines with identical circuit timing.
 */

#include <iostream>
#include <memory>

#include "baselines/kary_ncube.hh"
#include "baselines/multibus.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "offline/schedule.hh"
#include "rmb/dual_ring.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/kernels.hh"

namespace {

using namespace rmb;

std::unique_ptr<net::Network>
make(int which, sim::Simulator &s, std::uint32_t n,
     std::uint32_t k)
{
    baseline::CircuitConfig circuit;
    switch (which) {
      case 0: {
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.verify = core::VerifyLevel::Off;
        return std::make_unique<core::RmbNetwork>(s, cfg);
      }
      case 1: {
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.verify = core::VerifyLevel::Off;
        return std::make_unique<core::DualRingRmbNetwork>(s, cfg);
      }
      case 2:
        // 4-ary 2-cube for N = 16, 4-ary 3-cube for N = 64.
        return std::make_unique<baseline::KaryNcubeNetwork>(
            s, 4, n == 16 ? 2 : 3, circuit);
      case 3:
        return std::make_unique<baseline::MultiBusNetwork>(
            s, n, k, circuit);
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E17", "algorithm kernels across networks"
                         " (sections 1 and 4)");

    const std::uint32_t payload = 32;

    for (const std::uint32_t n : {16u, 64u}) {
        const std::uint32_t k = 4;
        TextTable t("kernel makespan (ticks), N = " +
                        std::to_string(n) + ", k = 4, payload 32",
                    {"network", "butterfly", "all-to-all",
                     "stencil x4", "reduction", "prefix"});
        for (int which = 0; which < 4; ++which) {
            std::vector<std::string> row;
            std::string name;
            for (const auto &kernel : workload::allKernels(n)) {
                sim::Simulator s;
                auto net = make(which, s, n, k);
                name = net->name();
                const auto r =
                    workload::runKernel(*net, kernel, payload);
                row.push_back(
                    r.completed
                        ? TextTable::num(static_cast<std::uint64_t>(
                              r.makespan))
                        : std::string("DNF"));
            }
            row.insert(row.begin(), name);
            t.addRow(row);
        }
        h.table(t);
    }

    // Section 4's second competitiveness target: "communication
    // patterns emerging from practical applications".  Compare the
    // RMB's online kernel execution against the per-phase greedy
    // offline schedule (phases are barriers for both sides).
    {
        const std::uint32_t n = 16;
        const std::uint32_t k = 4;
        offline::TimingModel timing;
        TextTable c("application-trace competitiveness, N = 16,"
                    " k = 4 (online RMB vs per-phase offline"
                    " schedules)",
                    {"kernel", "online", "greedy offline",
                     "lower bound", "online/greedy"});
        for (const auto &kernel : workload::allKernels(n)) {
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = n;
            cfg.numBuses = k;
            cfg.verify = core::VerifyLevel::Off;
            core::RmbNetwork net(s, cfg);
            const auto r =
                workload::runKernel(net, kernel, payload);
            sim::Tick greedy = 0;
            sim::Tick lb = 0;
            for (const auto &phase : kernel.phases) {
                greedy += offline::greedyMakespanTicks(
                    n, phase.pairs, k, payload, timing);
                lb += offline::lowerBoundTicks(n, phase.pairs, k,
                                               payload, timing);
            }
            c.addRow(
                {kernel.name,
                 r.completed
                     ? TextTable::num(static_cast<std::uint64_t>(
                           r.makespan))
                     : std::string("DNF"),
                 TextTable::num(static_cast<std::uint64_t>(greedy)),
                 TextTable::num(static_cast<std::uint64_t>(lb)),
                 r.completed
                     ? TextTable::num(
                           static_cast<double>(r.makespan) /
                               static_cast<double>(greedy),
                           2)
                     : std::string("-")});
        }
        h.table(c);
    }

    std::cout << "Shape checks: the one-way ring is crippled by"
                 " *backward* neighbour traffic (stencil's i -> i-1"
                 " wraps the whole ring), which is precisely why"
                 " section 2.1 suggests two counter-rotating rings:"
                 " the dual-ring RMB wins stencil outright (it even"
                 " beats the k-ary n-cube at N = 64) and closes"
                 " most of the gap elsewhere.  The k-ary n-cube"
                 " dominates the bisection-heavy kernels"
                 " (butterfly, all-to-all), mirroring section 3's"
                 " cost/performance trade: the RMB's 3-crosspoint"
                 " switches and unit wires buy hardware simplicity,"
                 " not bisection.\n";
    return 0;
}
