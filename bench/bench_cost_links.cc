/**
 * @file
 * Experiment E1 + E4 (paper section 3.2, "Number of Links ..."):
 * regenerates the link-count and bisection-bandwidth comparison of
 * the RMB against the hypercube family, the fat tree and the mesh,
 * all sized to support a k-permutation.
 */

#include <iostream>

#include "analysis/cost_model.hh"
#include "bench/bench_util.hh"
#include "common/bitutils.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;
    using namespace rmb::analysis;

    bench::Harness h(argc, argv, "E1/E4", "number of links and bisection bandwidth"
                           " per architecture (section 3.2)");

    for (std::uint64_t n : {64ull, 256ull, 1024ull}) {
        TextTable t("links to support a k-permutation, N = " +
                        std::to_string(n),
                    {"k", "RMB", "Hypercube", "EHC", "GFC",
                     "FatTree", "Mesh"});
        for (std::uint64_t k = 2; k <= 2 * log2Floor(n); k *= 2) {
            t.addRow({TextTable::num(k),
                      TextTable::num(rmbCosts(n, k).links),
                      TextTable::num(hypercubeCosts(n).links),
                      TextTable::num(ehcCosts(n).links),
                      TextTable::num(gfcCosts(n, k).links),
                      TextTable::num(fatTreeCosts(n, k).links),
                      TextTable::num(meshCosts(n, k).links)});
        }
        h.table(t);
    }

    TextTable b("bisection bandwidth (units of link bandwidth B)",
                {"N", "k", "RMB (= k*B, paper)", "Hypercube", "EHC",
                 "FatTree", "Mesh"});
    for (std::uint64_t n : {64ull, 256ull}) {
        for (std::uint64_t k : {4ull, 8ull}) {
            b.addRow({TextTable::num(n), TextTable::num(k),
                      TextTable::num(rmbCosts(n, k).bisection),
                      TextTable::num(hypercubeCosts(n).bisection),
                      TextTable::num(ehcCosts(n).bisection),
                      TextTable::num(fatTreeCosts(n, k).bisection),
                      TextTable::num(meshCosts(n, k).bisection)});
        }
    }
    h.table(b);

    std::cout << "\nPaper shape check: RMB links = N*k exactly; the"
                 " fat tree needs fewer links (N*log2 k + N - 2k)"
                 " but see E3 for its larger area constant.\n";
    return 0;
}
