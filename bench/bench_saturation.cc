/**
 * @file
 * Experiment E10: throughput/latency versus offered load - the
 * standard interconnection-network characterization (the paper's
 * "ability to deliver data within a specified/acceptable time
 * delay", section 1).  Sweeps the per-node injection rate under
 * uniform and ring-local traffic and prints accepted throughput and
 * latency percentiles for the RMB and the arbitrated multibus.
 */

#include <iostream>
#include <memory>

#include "baselines/multibus.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/traffic.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E10", "throughput/latency vs offered load");

    const sim::Tick duration = h.fast() ? 40'000 : 150'000;
    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    const std::uint32_t payload = 16;

    for (const bool local : {false, true}) {
        TextTable t(std::string("open-loop load sweep, N = 32,"
                                " k = 4, ") +
                        (local ? "ring-local (d <= 4)" : "uniform") +
                        " traffic",
                    {"network", "offered", "throughput", "accepted%",
                     "mean lat", "p95 lat", "max lat"});
        for (const double rate :
             {0.0005, 0.001, 0.002, 0.004, 0.008, 0.016}) {
            for (const bool rmb_net : {true, false}) {
                sim::Simulator s;
                std::unique_ptr<net::Network> net;
                if (rmb_net) {
                    core::RmbConfig cfg;
                    cfg.numNodes = n;
                    cfg.numBuses = k;
                    cfg.verify = core::VerifyLevel::Off;
                    net = std::make_unique<core::RmbNetwork>(s, cfg);
                } else {
                    baseline::CircuitConfig cfg;
                    net = std::make_unique<
                        baseline::MultiBusNetwork>(s, n, k, cfg);
                }
                std::unique_ptr<workload::TrafficPattern> pattern;
                if (local) {
                    pattern = std::make_unique<
                        workload::LocalRingTraffic>(n, 4);
                } else {
                    pattern = std::make_unique<
                        workload::UniformTraffic>(n);
                }
                sim::Random rng(42);
                const auto r = workload::runOpenLoop(
                    *net, *pattern, rate, payload, duration, rng,
                    duration / 5);
                t.addRow(
                    {net->name(), TextTable::num(rate, 4),
                     TextTable::num(r.throughput, 4),
                     TextTable::num(100.0 * r.throughput / rate, 1),
                     TextTable::num(r.meanLatency, 0),
                     TextTable::num(r.p95Latency, 0),
                     TextTable::num(r.maxLatency, 0)});
            }
        }
        h.table(t);
    }

    std::cout << "Shape check: the RMB saturates far later than the"
                 " k-bus system (spatial reuse multiplies capacity),"
                 " especially under local traffic; latency knees at"
                 " the saturation point.\n";
    return 0;
}
