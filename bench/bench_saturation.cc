/**
 * @file
 * Experiment E10: throughput/latency versus offered load - the
 * standard interconnection-network characterization (the paper's
 * "ability to deliver data within a specified/acceptable time
 * delay", section 1).  Sweeps the per-node injection rate under
 * uniform and ring-local traffic and prints accepted throughput and
 * latency percentiles for the RMB and the arbitrated multibus.
 *
 * The grid runs through the experiment engine (exp::Runner): every
 * (traffic, rate, network) point is an isolated simulation with its
 * own RNG substream split from the bench seed, so `--jobs N` changes
 * only wall-clock time, never a number in the tables.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "baselines/multibus.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "exp/runner.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/traffic.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E10", "throughput/latency vs offered load");

    const sim::Tick duration = h.fast() ? 40'000 : 150'000;
    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    const std::uint32_t payload = 16;
    const std::vector<double> rates = {0.0005, 0.001, 0.002,
                                       0.004,  0.008, 0.016};

    // The grid: (traffic locality) x (rate) x (network), flattened
    // in table order so results land in stable row order no matter
    // which worker finishes first.
    struct Point
    {
        bool local;
        double rate;
        bool rmbNet;
    };
    std::vector<Point> grid;
    for (const bool local : {false, true})
        for (const double rate : rates)
            for (const bool rmb_net : {true, false})
                grid.push_back(Point{local, rate, rmb_net});

    struct Row
    {
        std::string name;
        workload::OpenLoopResult r;
    };
    std::vector<Row> rows(grid.size());

    const sim::Random root(h.seed(42));
    exp::Runner runner(h.jobs());
    runner.forEach(grid.size(), [&](std::size_t i) {
        const Point &pt = grid[i];
        sim::Simulator s;
        std::unique_ptr<net::Network> net;
        if (pt.rmbNet) {
            core::RmbConfig cfg;
            cfg.numNodes = n;
            cfg.numBuses = k;
            cfg.verify = core::VerifyLevel::Off;
            cfg.seed = root.split(2 * i).next();
            net = std::make_unique<core::RmbNetwork>(s, cfg);
        } else {
            baseline::CircuitConfig cfg;
            cfg.seed = root.split(2 * i).next();
            net = std::make_unique<baseline::MultiBusNetwork>(
                s, n, k, cfg);
        }
        std::unique_ptr<workload::TrafficPattern> pattern;
        if (pt.local)
            pattern =
                std::make_unique<workload::LocalRingTraffic>(n, 4);
        else
            pattern = std::make_unique<workload::UniformTraffic>(n);
        sim::Random rng = root.split(2 * i + 1);
        rows[i].name = net->name();
        rows[i].r = workload::runOpenLoop(*net, *pattern, pt.rate,
                                          payload, duration, rng,
                                          duration / 5);
    });

    std::size_t i = 0;
    for (const bool local : {false, true}) {
        TextTable t(std::string("open-loop load sweep, N = 32,"
                                " k = 4, ") +
                        (local ? "ring-local (d <= 4)" : "uniform") +
                        " traffic",
                    {"network", "offered", "throughput", "accepted%",
                     "mean lat", "p95 lat", "max lat"});
        for (std::size_t p = 0; p < rates.size() * 2; ++p, ++i) {
            const Row &row = rows[i];
            t.addRow({row.name, TextTable::num(grid[i].rate, 4),
                      TextTable::num(row.r.throughput, 4),
                      TextTable::num(
                          100.0 * row.r.throughput / grid[i].rate,
                          1),
                      TextTable::num(row.r.meanLatency, 0),
                      TextTable::num(row.r.p95Latency, 0),
                      TextTable::num(row.r.maxLatency, 0)});
        }
        h.table(t);
    }

    std::cout << "Shape check: the RMB saturates far later than the"
                 " k-bus system (spatial reuse multiplies capacity),"
                 " especially under local traffic; latency knees at"
                 " the saturation point.\n";
    return 0;
}
