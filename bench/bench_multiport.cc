/**
 * @file
 * Experiment E16 (paper sections 2.1 and 4: the "enhanced" PE
 * interface with multiple concurrent sends/receives per node, named
 * as future research): throughput of per-node bursts as a function
 * of the number of send/receive ports - and how the benefit depends
 * on compaction recycling the top bus.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"

namespace {

using namespace rmb;

/**
 * One source bursts 4 long messages to spread destinations; the
 * rest of the ring is idle, so the send ports (and the top bus's
 * recycling) are the binding resource, not ring capacity.
 */
sim::Tick
runBurst(std::uint32_t ports, bool compaction,
         std::uint32_t receive_ports)
{
    const std::uint32_t n = 16;
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = 4;
    cfg.sendPorts = ports;
    cfg.receivePorts = receive_ports;
    cfg.enableCompaction = compaction;
    cfg.verify = core::VerifyLevel::Off;
    core::RmbNetwork net(s, cfg);
    for (const net::NodeId dst : {4u, 8u, 12u, 14u})
        net.send(0, dst, 600);
    while (!net.quiescent() && s.now() < 10'000'000)
        s.run(1024);
    sim::Tick last = 0;
    for (net::MessageId id = 1; id <= net.numMessages(); ++id)
        last = std::max(last, net.message(id).delivered);
    return last;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E16", "multi-port PEs (enhanced interface,"
                         " sections 2.1/4)");

    TextTable t("single-source burst of 4 messages (payload 600),"
                " N = 16, k = 4: completion time (ticks)",
                {"send ports", "receive ports", "compaction on",
                 "compaction off", "on/off"});
    for (const std::uint32_t ports : {1u, 2u, 4u}) {
        for (const std::uint32_t rx : {1u, 2u}) {
            const auto on = runBurst(ports, true, rx);
            const auto off = runBurst(ports, false, rx);
            t.addRow({TextTable::num(std::uint64_t{ports}),
                      TextTable::num(std::uint64_t{rx}),
                      TextTable::num(static_cast<std::uint64_t>(
                          on)),
                      TextTable::num(static_cast<std::uint64_t>(
                          off)),
                      TextTable::num(static_cast<double>(on) /
                                         static_cast<double>(off),
                                     2)});
        }
    }
    h.table(t);

    std::cout << "\nShape check: extra send ports only pay once the"
                 " top bus recycles (compaction on) - a node's gap"
                 " has a single injection segment, so without"
                 " compaction the off-column is flat: the second"
                 " port starves behind the first circuit's whole"
                 " lifetime.  This is the cleanest quantitative"
                 " motivation for the compaction protocol: it is"
                 " what makes the paper's enhanced multi-port"
                 " interface (section 4) useful at all.\n";
    return 0;
}
