/**
 * @file
 * Experiment E5 (paper section 3 headline + Theorem 1): an RMB with
 * k buses supports any k-permutation.  For each (N, k) we route
 * random h-permutations whose maximum ring load fits in k buses and
 * report completion, Nacks and setup retries; we then overload the
 * ring (h-permutations with load > k) to show graceful serialization
 * rather than failure.
 *
 * All three grids run through exp::Runner: one point per
 * (config, trial), each with an RNG substream split from the bench
 * seed, so trials are independent of each other and of the worker
 * schedule (`--jobs N` never changes a result).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "exp/runner.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

/** One within-capacity or overload trial. */
struct Trial
{
    bool ran = false;
    bool completed = false;
    std::uint32_t h = 0;
    std::uint32_t load = 0;
    double setup = 0.0;
    double latency = 0.0;
    double retriesPerMsg = 0.0;
    double makespan = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E5", "k-permutation capability of the RMB"
                        " (Theorem 1)");

    const int trials = h.fast() ? 3 : 10;
    const std::uint32_t payload = 32;
    const sim::Random root(h.seed(2024));
    const exp::Runner runner(h.jobs());

    // --- within capacity: random h-permutations with load <= k ----
    const std::vector<std::uint32_t> all_n = {16u, 32u, 64u};
    const std::vector<std::uint32_t> all_k = {2u, 4u, 8u};
    {
        const sim::Random table_root = root.split(1);
        std::vector<Trial> results(all_n.size() * all_k.size() *
                                   trials);
        runner.forEach(results.size(), [&](std::size_t i) {
            const std::uint32_t n =
                all_n[i / (all_k.size() * trials)];
            const std::uint32_t k =
                all_k[(i / trials) % all_k.size()];
            const sim::Random point_root = table_root.split(i);
            sim::Random rng = point_root.split(0);

            workload::PairList pairs;
            for (int attempt = 0; attempt < 500; ++attempt) {
                auto cand = workload::randomPartialPermutation(
                    n, std::min(n / 2, 2 * k), rng);
                if (workload::maxRingLoad(n, cand) <= k) {
                    pairs = std::move(cand);
                    break;
                }
            }
            if (pairs.empty())
                return;
            Trial &t = results[i];
            t.ran = true;
            t.h = static_cast<std::uint32_t>(pairs.size());
            t.load = workload::maxRingLoad(n, pairs);
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = n;
            cfg.numBuses = k;
            cfg.seed = point_root.split(1).next();
            cfg.verify = core::VerifyLevel::Off;
            core::RmbNetwork net(s, cfg);
            const auto r = workload::runBatch(net, pairs, payload);
            t.completed = r.completed;
            t.setup = r.meanSetupLatency;
            t.latency = r.meanLatency;
            t.retriesPerMsg = static_cast<double>(r.retries) /
                              static_cast<double>(pairs.size());
        });

        TextTable t("random h-permutations on an RMB(N, k)",
                    {"N", "k", "h", "max ring load", "completed",
                     "mean setup", "mean latency", "retries/msg"});
        std::size_t i = 0;
        for (std::uint32_t n : all_n) {
            for (std::uint32_t k : all_k) {
                std::uint64_t completed = 0;
                std::uint64_t total = 0;
                double setup_sum = 0.0;
                double lat_sum = 0.0;
                double retry_sum = 0.0;
                std::uint32_t load_max = 0;
                std::uint32_t h_used = 0;
                for (int trial = 0; trial < trials; ++trial, ++i) {
                    const Trial &r = results[i];
                    if (!r.ran)
                        continue;
                    ++total;
                    if (r.completed)
                        ++completed;
                    h_used = r.h;
                    load_max = std::max(load_max, r.load);
                    setup_sum += r.setup;
                    lat_sum += r.latency;
                    retry_sum += r.retriesPerMsg;
                }
                t.addRow({TextTable::num(std::uint64_t{n}),
                          TextTable::num(std::uint64_t{k}),
                          TextTable::num(std::uint64_t{h_used}),
                          TextTable::num(std::uint64_t{load_max}),
                          std::to_string(completed) + "/" +
                              std::to_string(total),
                          TextTable::num(setup_sum / trials, 1),
                          TextTable::num(lat_sum / trials, 1),
                          TextTable::num(retry_sum / trials, 2)});
            }
        }
        h.table(t);
    }

    // --- overload: full random permutations, load >> k ------------
    const std::vector<std::uint32_t> over_n = {16u, 32u};
    const std::vector<std::uint32_t> over_k = {8u, 4u, 2u, 1u};
    {
        const sim::Random table_root = root.split(2);
        std::vector<Trial> results(over_n.size() * over_k.size() *
                                   trials);
        runner.forEach(results.size(), [&](std::size_t i) {
            const std::uint32_t n =
                over_n[i / (over_k.size() * trials)];
            const std::uint32_t k =
                over_k[(i / trials) % over_k.size()];
            const sim::Random point_root = table_root.split(i);
            sim::Random rng = point_root.split(0);
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(n, rng));
            Trial &t = results[i];
            t.ran = true;
            t.load = workload::maxRingLoad(n, pairs);
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = n;
            cfg.numBuses = k;
            cfg.seed = point_root.split(1).next();
            cfg.verify = core::VerifyLevel::Off;
            core::RmbNetwork net(s, cfg);
            const auto r = workload::runBatch(net, pairs, payload);
            t.completed = r.completed;
            t.makespan = static_cast<double>(r.makespan);
        });

        TextTable o("overloaded batches (full random permutations,"
                    " load >> k) still complete by serializing",
                    {"N", "k", "typical load", "completed",
                     "makespan", "makespan vs k=8"});
        std::size_t i = 0;
        for (std::uint32_t n : over_n) {
            double base = 0.0;
            for (std::uint32_t k : over_k) {
                double makespan = 0.0;
                std::uint32_t load = 0;
                std::uint64_t completed = 0;
                for (int trial = 0; trial < trials; ++trial, ++i) {
                    const Trial &r = results[i];
                    load = std::max(load, r.load);
                    if (r.completed)
                        ++completed;
                    makespan += r.makespan;
                }
                makespan /= trials;
                if (k == 8)
                    base = makespan;
                o.addRow({TextTable::num(std::uint64_t{n}),
                          TextTable::num(std::uint64_t{k}),
                          TextTable::num(std::uint64_t{load}),
                          std::to_string(completed) + "/" +
                              std::to_string(trials),
                          TextTable::num(makespan, 0),
                          TextTable::num(makespan / base, 2)});
            }
        }
        h.table(o);
    }

    // --- h-relations: every node sends AND receives exactly h -----
    const std::vector<std::uint32_t> all_h = {1u, 2u, 4u, 8u};
    {
        const sim::Random table_root = root.split(3);
        std::vector<Trial> results(all_h.size() * trials);
        runner.forEach(results.size(), [&](std::size_t i) {
            const std::uint32_t hr = all_h[i / trials];
            const sim::Random point_root = table_root.split(i);
            sim::Random rng = point_root.split(0);
            const auto pairs =
                workload::randomHRelation(32, hr, rng);
            Trial &t = results[i];
            t.ran = true;
            t.load = workload::maxRingLoad(32, pairs);
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = 32;
            cfg.numBuses = 4;
            cfg.seed = point_root.split(1).next();
            cfg.verify = core::VerifyLevel::Off;
            core::RmbNetwork net(s, cfg);
            const auto r = workload::runBatch(net, pairs, payload,
                                              20'000'000);
            t.completed = r.completed;
            t.makespan = static_cast<double>(r.makespan);
        });

        TextTable h_table("random h-relations on an RMB(32, 4),"
                          " payload 32",
                          {"h", "messages", "max ring load",
                           "makespan", "makespan/h", "completed"});
        double base_per_h = 0.0;
        std::size_t i = 0;
        for (const std::uint32_t hr : all_h) {
            double makespan = 0.0;
            std::uint32_t load = 0;
            std::uint64_t completed = 0;
            for (int trial = 0; trial < trials; ++trial, ++i) {
                const Trial &r = results[i];
                load = std::max(load, r.load);
                if (r.completed)
                    ++completed;
                makespan += r.makespan / trials;
            }
            if (hr == 1)
                base_per_h = makespan;
            h_table.addRow(
                {TextTable::num(std::uint64_t{hr}),
                 TextTable::num(std::uint64_t{32 * hr}),
                 TextTable::num(std::uint64_t{load}),
                 TextTable::num(makespan, 0),
                 TextTable::num(makespan / hr / base_per_h, 2),
                 std::to_string(completed) + "/" +
                     std::to_string(trials)});
        }
        h.table(h_table);
    }

    std::cout << "\nPaper shape check: within-capacity"
                 " h-permutations complete with zero destination"
                 " Nacks; oversubscribed batches degrade smoothly"
                 " as k shrinks.\n";
    return 0;
}
