/**
 * @file
 * Experiment E5 (paper section 3 headline + Theorem 1): an RMB with
 * k buses supports any k-permutation.  For each (N, k) we route
 * random h-permutations whose maximum ring load fits in k buses and
 * report completion, Nacks and setup retries; we then overload the
 * ring (h-permutations with load > k) to show graceful serialization
 * rather than failure.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E5", "k-permutation capability of the RMB"
                        " (Theorem 1)");

    const int trials = h.fast() ? 3 : 10;
    const std::uint32_t payload = 32;

    TextTable t("random h-permutations on an RMB(N, k)",
                {"N", "k", "h", "max ring load", "completed",
                 "mean setup", "mean latency", "retries/msg"});

    sim::Random meta_rng(2024);
    for (std::uint32_t n : {16u, 32u, 64u}) {
        for (std::uint32_t k : {2u, 4u, 8u}) {
            // Within capacity: load <= k.
            std::uint64_t completed = 0;
            std::uint64_t total = 0;
            double setup_sum = 0.0;
            double lat_sum = 0.0;
            double retry_sum = 0.0;
            std::uint32_t load_max = 0;
            std::uint32_t h_used = 0;
            for (int trial = 0; trial < trials; ++trial) {
                workload::PairList pairs;
                for (int attempt = 0; attempt < 500; ++attempt) {
                    auto cand = workload::randomPartialPermutation(
                        n, std::min(n / 2, 2 * k), meta_rng);
                    if (workload::maxRingLoad(n, cand) <= k) {
                        pairs = std::move(cand);
                        break;
                    }
                }
                if (pairs.empty())
                    continue;
                h_used = static_cast<std::uint32_t>(pairs.size());
                load_max = std::max(
                    load_max, workload::maxRingLoad(n, pairs));
                sim::Simulator s;
                core::RmbConfig cfg;
                cfg.numNodes = n;
                cfg.numBuses = k;
                cfg.seed = static_cast<std::uint64_t>(trial) * 7 + 1;
                cfg.verify = core::VerifyLevel::Off;
                core::RmbNetwork net(s, cfg);
                const auto r =
                    workload::runBatch(net, pairs, payload);
                ++total;
                if (r.completed)
                    ++completed;
                setup_sum += r.meanSetupLatency;
                lat_sum += r.meanLatency;
                retry_sum += static_cast<double>(r.retries) /
                             static_cast<double>(pairs.size());
            }
            t.addRow({TextTable::num(std::uint64_t{n}),
                      TextTable::num(std::uint64_t{k}),
                      TextTable::num(std::uint64_t{h_used}),
                      TextTable::num(std::uint64_t{load_max}),
                      std::to_string(completed) + "/" +
                          std::to_string(total),
                      TextTable::num(setup_sum / trials, 1),
                      TextTable::num(lat_sum / trials, 1),
                      TextTable::num(retry_sum / trials, 2)});
        }
    }
    h.table(t);

    TextTable o("overloaded batches (full random permutations,"
                " load >> k) still complete by serializing",
                {"N", "k", "typical load", "completed", "makespan",
                 "makespan vs k=8"});
    for (std::uint32_t n : {16u, 32u}) {
        double base = 0.0;
        for (std::uint32_t k : {8u, 4u, 2u, 1u}) {
            double makespan = 0.0;
            std::uint32_t load = 0;
            std::uint64_t completed = 0;
            for (int trial = 0; trial < trials; ++trial) {
                sim::Random rng(
                    static_cast<std::uint64_t>(trial) * 131 + n);
                const auto pairs = workload::toPairs(
                    workload::randomFullTraffic(n, rng));
                load = std::max(load,
                                workload::maxRingLoad(n, pairs));
                sim::Simulator s;
                core::RmbConfig cfg;
                cfg.numNodes = n;
                cfg.numBuses = k;
                cfg.seed = trial + 1;
                cfg.verify = core::VerifyLevel::Off;
                core::RmbNetwork net(s, cfg);
                const auto r =
                    workload::runBatch(net, pairs, payload);
                if (r.completed)
                    ++completed;
                makespan += static_cast<double>(r.makespan);
            }
            makespan /= trials;
            if (k == 8)
                base = makespan;
            o.addRow({TextTable::num(std::uint64_t{n}),
                      TextTable::num(std::uint64_t{k}),
                      TextTable::num(std::uint64_t{load}),
                      std::to_string(completed) + "/" +
                          std::to_string(trials),
                      TextTable::num(makespan, 0),
                      TextTable::num(makespan / base, 2)});
        }
    }
    h.table(o);

    // h-relations: every node sends AND receives exactly h messages
    // (the bulk-transfer generalization of the h-permutation).
    TextTable h_table("random h-relations on an RMB(32, 4),"
                      " payload 32",
                      {"h", "messages", "max ring load", "makespan",
                       "makespan/h", "completed"});
    double base_per_h = 0.0;
    for (const std::uint32_t h : {1u, 2u, 4u, 8u}) {
        double makespan = 0.0;
        std::uint32_t load = 0;
        std::uint64_t completed = 0;
        for (int trial = 0; trial < trials; ++trial) {
            sim::Random rng(
                static_cast<std::uint64_t>(trial) * 211 + h);
            const auto pairs =
                workload::randomHRelation(32, h, rng);
            load = std::max(load, workload::maxRingLoad(32, pairs));
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = 32;
            cfg.numBuses = 4;
            cfg.seed = trial + 1;
            cfg.verify = core::VerifyLevel::Off;
            core::RmbNetwork net(s, cfg);
            const auto r = workload::runBatch(net, pairs, payload,
                                              20'000'000);
            if (r.completed)
                ++completed;
            makespan += static_cast<double>(r.makespan) / trials;
        }
        if (h == 1)
            base_per_h = makespan;
        h_table.addRow(
            {TextTable::num(std::uint64_t{h}),
             TextTable::num(std::uint64_t{32 * h}),
             TextTable::num(std::uint64_t{load}),
             TextTable::num(makespan, 0),
             TextTable::num(makespan / h / base_per_h, 2),
             std::to_string(completed) + "/" +
                 std::to_string(trials)});
    }
    h.table(h_table);

    std::cout << "\nPaper shape check: within-capacity"
                 " h-permutations complete with zero destination"
                 " Nacks; oversubscribed batches degrade smoothly"
                 " as k shrinks.\n";
    return 0;
}
