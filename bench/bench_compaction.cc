/**
 * @file
 * Experiments F4/F5/T2 + L1: dynamics of the compaction protocol.
 *
 *  - make-before-break move rate and the two-cycle full-bus move of
 *    Figure 5 (cycles needed for a fresh top-bus circuit to settle
 *    at the bottom);
 *  - top-bus release latency (Figure 3's motivation: the top bus
 *    frees long before the message completes);
 *  - odd/even cycle behaviour across asynchronous INC clocks
 *    (Table 2 / Figures 9-10): cycle rate and Lemma-1 skew.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "F4/F5/T2/L1", "compaction protocol dynamics");

    // --- settle time of a single long-lived circuit ------------
    TextTable settle("ticks for a fresh circuit (injected on the top"
                     " bus) to compact to the bottom level",
                     {"N", "k", "path hops", "settle ticks",
                      "moves", "ticks/level"});
    for (std::uint32_t k : {2u, 4u, 8u}) {
        const std::uint32_t n = 16;
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.verify = core::VerifyLevel::Cheap;
        core::RmbNetwork net(s, cfg);
        net.send(0, 8, 1'000'000);
        // Wait until every hop reports level 0.
        sim::Tick settled_at = 0;
        while (settled_at == 0 && s.now() < 100'000) {
            s.run(16);
            const auto ids = net.liveBusIds();
            if (ids.empty())
                continue;
            const auto *bus = net.bus(ids[0]);
            if (bus->state != core::BusState::Streaming &&
                bus->state != core::BusState::AwaitHack &&
                bus->state != core::BusState::Advancing) {
                continue;
            }
            if (bus->hops.size() < 8)
                continue;
            bool all_bottom = true;
            for (const auto &h : bus->hops)
                all_bottom &= !h.inMove() && h.level == 0;
            if (all_bottom)
                settled_at = s.now();
        }
        settle.addRow(
            {TextTable::num(std::uint64_t{n}),
             TextTable::num(std::uint64_t{k}), TextTable::num(std::uint64_t{8}),
             TextTable::num(static_cast<std::uint64_t>(settled_at)),
             TextTable::num(net.rmbStats().compactionMoves),
             TextTable::num(static_cast<double>(settled_at) /
                                (k - 1),
                            1)});
    }
    h.table(settle);

    // --- top-bus release latency under batch load ---------------
    TextTable release("top-bus release latency vs message lifetime"
                      " (random permutations, N = 32, payload 128)",
                      {"k", "mean release", "p95 release",
                       "mean msg latency", "release/latency"});
    for (std::uint32_t k : {2u, 4u, 8u}) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = 32;
        cfg.numBuses = k;
        cfg.verify = core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        sim::Random rng(k);
        double lat = 0.0;
        int batches = h.fast() ? 2 : 5;
        for (int b = 0; b < batches; ++b) {
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(32, rng));
            const auto r =
                workload::runBatch(net, pairs, 128, 20'000'000);
            lat += r.meanLatency / batches;
        }
        const auto &tr = net.rmbStats().topReleaseLatency;
        release.addRow({TextTable::num(std::uint64_t{k}),
                        TextTable::num(tr.mean(), 1),
                        TextTable::num(tr.percentile(95), 1),
                        TextTable::num(lat, 1),
                        TextTable::num(tr.mean() / lat, 3)});
    }
    h.table(release);

    // --- odd/even cycling across asynchronous clocks -------------
    TextTable cyc("odd/even cycle statistics over 100k ticks of"
                  " loaded operation (Table 2 / Figures 9-10)",
                  {"N", "clock jitter", "min cycles", "max cycles",
                   "max skew", "moves"});
    for (const bool jitter : {false, true}) {
        const std::uint32_t n = 16;
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = 4;
        cfg.cyclePeriodMin = jitter ? 6 : 8;
        cfg.cyclePeriodMax = jitter ? 12 : 8;
        // Top-bus headers leave the sinking entirely to the
        // compaction protocol, so the move counter reflects it.
        cfg.headerPolicy = core::HeaderPolicy::PreferStraight;
        cfg.verify = core::VerifyLevel::Cheap;
        core::RmbNetwork net(s, cfg);
        // Staggered-lifetime local traffic: as short circuits die,
        // the longer ones above them sink - steady compaction churn.
        for (net::NodeId i = 0; i < n; ++i)
            net.send(i, (i + 3) % n,
                     2'000 + 1'500 * (i % 8));
        s.runFor(100'000);
        std::uint64_t min_c = UINT64_MAX;
        std::uint64_t max_c = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            min_c = std::min(min_c, net.inc(i).cycleCount());
            max_c = std::max(max_c, net.inc(i).cycleCount());
        }
        cyc.addRow({TextTable::num(std::uint64_t{n}),
                    jitter ? "6..12" : "none (8)",
                    TextTable::num(min_c), TextTable::num(max_c),
                    TextTable::num(net.rmbStats().maxCycleSkew),
                    TextTable::num(net.rmbStats().compactionMoves)});
        while (!net.quiescent() && s.now() < 2'000'000)
            s.run(4096);
    }
    h.table(cyc);

    std::cout << "\nShape checks: a circuit drops one level every"
                 " ~2 cycles (Figure 5's two-cycle move); top-bus"
                 " release is a small fraction of message lifetime"
                 " (Figure 3); neighbour cycle skew never exceeds 1"
                 " (Lemma 1) even with 2x clock-rate spread.\n";
    return 0;
}
