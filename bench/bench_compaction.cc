/**
 * @file
 * Experiments F4/F5/T2 + L1: dynamics of the compaction protocol.
 *
 *  - make-before-break move rate and the two-cycle full-bus move of
 *    Figure 5 (cycles needed for a fresh top-bus circuit to settle
 *    at the bottom);
 *  - top-bus release latency (Figure 3's motivation: the top bus
 *    frees long before the message completes);
 *  - odd/even cycle behaviour across asynchronous INC clocks
 *    (Table 2 / Figures 9-10): cycle rate and Lemma-1 skew.
 *
 * Each table's grid points are isolated simulations fanned across
 * exp::Runner workers (--jobs), with per-point RNG substreams split
 * from the bench seed.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "exp/runner.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "F4/F5/T2/L1", "compaction protocol dynamics");

    const sim::Random root(h.seed(7));
    const exp::Runner runner(h.jobs());
    const std::vector<std::uint32_t> all_k = {2u, 4u, 8u};

    // --- settle time of a single long-lived circuit ------------
    {
        struct Settle
        {
            sim::Tick settledAt = 0;
            std::uint64_t moves = 0;
        };
        std::vector<Settle> results(all_k.size());
        const sim::Random table_root = root.split(1);
        runner.forEach(results.size(), [&](std::size_t i) {
            const std::uint32_t k = all_k[i];
            const std::uint32_t n = 16;
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = n;
            cfg.numBuses = k;
            cfg.seed = table_root.split(i).next();
            cfg.verify = core::VerifyLevel::Cheap;
            core::RmbNetwork net(s, cfg);
            net.send(0, 8, 1'000'000);
            // Wait until every hop reports level 0.
            sim::Tick settled_at = 0;
            while (settled_at == 0 && s.now() < 100'000) {
                s.run(16);
                const auto ids = net.liveBusIds();
                if (ids.empty())
                    continue;
                const auto *bus = net.bus(ids[0]);
                if (bus->state != core::BusState::Streaming &&
                    bus->state != core::BusState::AwaitHack &&
                    bus->state != core::BusState::Advancing) {
                    continue;
                }
                if (bus->hops.size() < 8)
                    continue;
                bool all_bottom = true;
                for (const auto &hop : bus->hops)
                    all_bottom &= !hop.inMove() && hop.level == 0;
                if (all_bottom)
                    settled_at = s.now();
            }
            results[i].settledAt = settled_at;
            results[i].moves = net.rmbStats().compactionMoves;
        });

        TextTable settle("ticks for a fresh circuit (injected on the"
                         " top bus) to compact to the bottom level",
                         {"N", "k", "path hops", "settle ticks",
                          "moves", "ticks/level"});
        for (std::size_t i = 0; i < all_k.size(); ++i) {
            const std::uint32_t k = all_k[i];
            settle.addRow(
                {TextTable::num(std::uint64_t{16}),
                 TextTable::num(std::uint64_t{k}),
                 TextTable::num(std::uint64_t{8}),
                 TextTable::num(static_cast<std::uint64_t>(
                     results[i].settledAt)),
                 TextTable::num(results[i].moves),
                 TextTable::num(
                     static_cast<double>(results[i].settledAt) /
                         (k - 1),
                     1)});
        }
        h.table(settle);
    }

    // --- top-bus release latency under batch load ---------------
    {
        struct Release
        {
            double mean = 0.0;
            double p95 = 0.0;
            double latency = 0.0;
        };
        std::vector<Release> results(all_k.size());
        const sim::Random table_root = root.split(2);
        const int batches = h.fast() ? 2 : 5;
        runner.forEach(results.size(), [&](std::size_t i) {
            const std::uint32_t k = all_k[i];
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = 32;
            cfg.numBuses = k;
            cfg.seed = table_root.split(i).next();
            cfg.verify = core::VerifyLevel::Off;
            core::RmbNetwork net(s, cfg);
            sim::Random rng = table_root.split(i).split(1);
            double lat = 0.0;
            for (int b = 0; b < batches; ++b) {
                const auto pairs = workload::toPairs(
                    workload::randomFullTraffic(32, rng));
                const auto r =
                    workload::runBatch(net, pairs, 128, 20'000'000);
                lat += r.meanLatency / batches;
            }
            const auto &tr = net.rmbStats().topReleaseLatency;
            results[i].mean = tr.mean();
            results[i].p95 = tr.percentile(95);
            results[i].latency = lat;
        });

        TextTable release("top-bus release latency vs message"
                          " lifetime (random permutations, N = 32,"
                          " payload 128)",
                          {"k", "mean release", "p95 release",
                           "mean msg latency", "release/latency"});
        for (std::size_t i = 0; i < all_k.size(); ++i) {
            release.addRow(
                {TextTable::num(std::uint64_t{all_k[i]}),
                 TextTable::num(results[i].mean, 1),
                 TextTable::num(results[i].p95, 1),
                 TextTable::num(results[i].latency, 1),
                 TextTable::num(results[i].mean /
                                    results[i].latency,
                                3)});
        }
        h.table(release);
    }

    // --- odd/even cycling across asynchronous clocks -------------
    {
        struct Cycles
        {
            std::uint64_t minCycles = 0;
            std::uint64_t maxCycles = 0;
            std::uint64_t skew = 0;
            std::uint64_t moves = 0;
        };
        std::vector<Cycles> results(2);
        const sim::Random table_root = root.split(3);
        runner.forEach(results.size(), [&](std::size_t i) {
            const bool jitter = i == 1;
            const std::uint32_t n = 16;
            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = n;
            cfg.numBuses = 4;
            cfg.cyclePeriodMin = jitter ? 6 : 8;
            cfg.cyclePeriodMax = jitter ? 12 : 8;
            // Top-bus headers leave the sinking entirely to the
            // compaction protocol, so the move counter reflects it.
            cfg.headerPolicy = core::HeaderPolicy::PreferStraight;
            cfg.seed = table_root.split(i).next();
            cfg.verify = core::VerifyLevel::Cheap;
            core::RmbNetwork net(s, cfg);
            // Staggered-lifetime local traffic: as short circuits
            // die, the longer ones above them sink - steady
            // compaction churn.
            for (net::NodeId src = 0; src < n; ++src)
                net.send(src, (src + 3) % n,
                         2'000 + 1'500 * (src % 8));
            s.runFor(100'000);
            Cycles &c = results[i];
            c.minCycles = UINT64_MAX;
            for (std::uint32_t inc = 0; inc < n; ++inc) {
                c.minCycles = std::min(c.minCycles,
                                       net.inc(inc).cycleCount());
                c.maxCycles = std::max(c.maxCycles,
                                       net.inc(inc).cycleCount());
            }
            c.skew = net.rmbStats().maxCycleSkew;
            c.moves = net.rmbStats().compactionMoves;
            while (!net.quiescent() && s.now() < 2'000'000)
                s.run(4096);
        });

        TextTable cyc("odd/even cycle statistics over 100k ticks of"
                      " loaded operation (Table 2 / Figures 9-10)",
                      {"N", "clock jitter", "min cycles",
                       "max cycles", "max skew", "moves"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            cyc.addRow({TextTable::num(std::uint64_t{16}),
                        i == 1 ? "6..12" : "none (8)",
                        TextTable::num(results[i].minCycles),
                        TextTable::num(results[i].maxCycles),
                        TextTable::num(results[i].skew),
                        TextTable::num(results[i].moves)});
        }
        h.table(cyc);
    }

    std::cout << "\nShape checks: a circuit drops one level every"
                 " ~2 cycles (Figure 5's two-cycle move); top-bus"
                 " release is a small fraction of message lifetime"
                 " (Figure 3); neighbour cycle skew never exceeds 1"
                 " (Lemma 1) even with 2x clock-rate spread.\n";
    return 0;
}
