/**
 * @file
 * Experiment E18 (robustness, this reproduction): performance under
 * permanent bus-segment failures, as a function of *where* the
 * faults sit and of the header's level policy.
 *
 * Key finding: fault tolerance is a property of the header policy.
 * PreferStraight (the paper's literal top-bus propagation) is
 * naturally fault tolerant - the top level cannot be faulted, so a
 * header can always ride it - and degrades gracefully.  Eager
 * lowest-free descent is fault-*oblivious*: a gap whose low levels
 * are dead is a deterministic trap (the header arrives at level 0
 * and can only reach the dead {0, 1}), so scattered faults cause
 * permanent failures (pinned by Fault.EagerDescentTrapsOnLowLevel-
 * Faults in the test suite).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

enum class Placement { BottomAligned, Scattered };

struct Outcome
{
    double makespan = 0.0;
    int completed = 0;
    int trials = 0;
};

Outcome
run(const sim::Random &root, std::uint32_t faults,
    Placement placement, core::HeaderPolicy policy, int trials)
{
    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    Outcome out;
    out.trials = trials;
    for (int trial = 0; trial < trials; ++trial) {
        // One substream per (fault count, trial); the placement and
        // policy columns reuse it so each row compares identical
        // traffic on identically-seeded networks.
        const sim::Random trial_root =
            root.split(faults).split(
                static_cast<std::uint64_t>(trial));
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.seed = trial_root.split(0).next();
        cfg.headerPolicy = policy;
        cfg.maxRetries = 200; // bound the trap cases
        cfg.verify = core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);

        if (placement == Placement::BottomAligned) {
            // floor(faults / n) full bottom levels plus remainder.
            std::uint32_t left = faults;
            for (core::Level l = 0; left > 0 &&
                                    l < static_cast<core::Level>(
                                            k - 1);
                 ++l) {
                for (core::GapId g = 0; g < n && left > 0; ++g) {
                    net.failSegment(g, l);
                    --left;
                }
            }
        } else {
            sim::Random frng = trial_root.split(1);
            std::vector<std::uint32_t> per_gap(n, 0);
            std::uint32_t injected = 0;
            while (injected < faults) {
                const auto g = static_cast<core::GapId>(
                    frng.uniformInt(n));
                const auto l = static_cast<core::Level>(
                    frng.uniformInt(k - 1));
                if (per_gap[g] >= k - 2 ||
                    net.segments().isFaulty(g, l)) {
                    continue;
                }
                net.failSegment(g, l);
                ++per_gap[g];
                ++injected;
            }
        }

        sim::Random rng = trial_root.split(2);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(n, rng));
        const auto r =
            workload::runBatch(net, pairs, 32, 4'000'000);
        if (r.completed)
            ++out.completed;
        out.makespan += static_cast<double>(r.makespan) / trials;
    }
    return out;
}

std::string
cell(const Outcome &o)
{
    std::string s = TextTable::num(o.makespan, 0);
    if (o.completed != o.trials) {
        s += " (" + std::to_string(o.completed) + "/" +
             std::to_string(o.trials) + ")";
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E18", "segment faults: placement x header"
                         " policy (robustness)");

    const int trials = h.fast() ? 2 : 5;
    const sim::Random root(h.seed(18));

    TextTable t("random permutation makespan, N = 32, k = 4;"
                " '(c/t)' marks incomplete batches",
                {"faulted", "%", "eager+aligned", "eager+scattered",
                 "top-bus+aligned", "top-bus+scattered"});
    for (const std::uint32_t faults : {0u, 8u, 16u, 32u, 48u}) {
        t.addRow(
            {TextTable::num(std::uint64_t{faults}),
             TextTable::num(100.0 * faults / (32 * 4), 1),
             cell(run(root, faults, Placement::BottomAligned,
                      core::HeaderPolicy::PreferLowest, trials)),
             cell(run(root, faults, Placement::Scattered,
                      core::HeaderPolicy::PreferLowest, trials)),
             cell(run(root, faults, Placement::BottomAligned,
                      core::HeaderPolicy::PreferStraight, trials)),
             cell(run(root, faults, Placement::Scattered,
                      core::HeaderPolicy::PreferStraight,
                      trials))});
    }
    h.table(t);

    std::cout << "\nShape checks: bottom-aligned faults act as a"
                 " smaller k for either policy (compaction packs"
                 " circuits above the dead floor).  Scattered"
                 " faults trap eager-descent headers (failures in"
                 " parentheses) but leave top-bus headers degrading"
                 " smoothly - the paper's literal top-bus"
                 " propagation turns out to be the fault-tolerant"
                 " design point.\n";
    return 0;
}
