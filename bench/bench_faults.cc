/**
 * @file
 * Experiment E18 (robustness, this reproduction): availability under
 * a live transient-fault process - the MTBF/MTTR fail/repair engine
 * from src/rmb/fault.cc severing established circuits while an open
 * loop keeps offering traffic.
 *
 * The sweep crosses fault pressure (mean ticks between faults) with
 * bus count k and offered load, and reports availability (delivered
 * fraction), the recovery split (recovered vs lost after a sever)
 * and the watchdog's contribution.  The grid runs through the
 * experiment engine (exp::Runner): every point is an isolated
 * simulation with its own RNG substream split from the bench seed,
 * so `--jobs N` changes only wall-clock time, never a number in the
 * tables - and the JSON report doubles as a regression baseline for
 * `sweep compare` (tests/data/bench_faults_baseline.json).
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "exp/runner.hh"
#include "obs/json.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/traffic.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv,
                     "E18", "availability under transient faults");

    const std::uint32_t n = 24;
    const std::uint32_t payload = 16;
    const sim::Tick duration = h.fast() ? 30'000 : 120'000;

    // Fault pressure: mean ticks between segment faults (0 = fault
    // free); repairs take uniform [300, 1500] ticks.
    const std::vector<sim::Tick> mtbfs =
        h.fast() ? std::vector<sim::Tick>{0, 2'000}
                 : std::vector<sim::Tick>{0, 4'000, 2'000, 800};
    const std::vector<std::uint32_t> ks = {2, 4};
    const std::vector<double> rates = {0.001, 0.004};

    struct Point
    {
        sim::Tick mtbf;
        std::uint32_t k;
        double rate;
    };
    std::vector<Point> grid;
    for (const sim::Tick mtbf : mtbfs)
        for (const std::uint32_t k : ks)
            for (const double rate : rates)
                grid.push_back(Point{mtbf, k, rate});

    struct Row
    {
        workload::OpenLoopResult r;
        std::uint64_t injected = 0;
        std::uint64_t delivered = 0;
        std::uint64_t failed = 0;
        std::uint64_t faults = 0;
        std::uint64_t severed = 0;
        std::uint64_t recovered = 0;
        std::uint64_t lost = 0;
        std::uint64_t watchdog = 0;
    };
    std::vector<Row> rows(grid.size());

    const sim::Random root(h.seed(18));
    exp::Runner runner(h.jobs());
    runner.forEach(grid.size(), [&](std::size_t i) {
        const Point &pt = grid[i];
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = pt.k;
        cfg.seed = root.split(2 * i).next();
        cfg.verify = core::VerifyLevel::Off;
        if (pt.mtbf > 0) {
            cfg.transientFaults = true;
            cfg.faultMtbf = pt.mtbf;
            cfg.faultMttrMin = 300;
            cfg.faultMttrMax = 1'500;
        }
        cfg.watchdogTimeout = 600;
        cfg.maxRetries = 60; // bounded: losses become measurable
        core::RmbNetwork net(s, cfg);

        workload::UniformTraffic pattern(n);
        sim::Random rng = root.split(2 * i + 1);
        Row &row = rows[i];
        row.r = workload::runOpenLoop(net, pattern, pt.rate,
                                      payload, duration, rng,
                                      duration / 5);
        row.injected = net.stats().injected.value();
        row.delivered = net.stats().delivered.value();
        row.failed = net.stats().failed.value();
        const core::RmbStats &rs = net.rmbStats();
        row.faults = rs.faultsInjected.value();
        row.severed = rs.busesSevered.value();
        row.recovered = rs.messagesRecovered.value();
        row.lost = rs.messagesLost.value();
        row.watchdog = rs.watchdogFires.value();
    });

    const auto availability = [](const Row &row) {
        return row.injected == 0
                   ? 1.0
                   : static_cast<double>(row.delivered) /
                         static_cast<double>(row.injected);
    };

    obs::JsonWriter summary;
    summary.beginObject();
    std::size_t i = 0;
    for (const sim::Tick mtbf : mtbfs) {
        TextTable t(
            "uniform open loop, N = 24; fault MTBF = " +
                (mtbf == 0 ? std::string("inf (fault free)")
                           : TextTable::num(std::uint64_t{mtbf})) +
                ", repair in [300, 1500]",
            {"k", "rate", "avail%", "faults", "severed", "recovered",
             "lost", "watchdog", "mean lat"});
        for (std::size_t p = 0; p < ks.size() * rates.size();
             ++p, ++i) {
            const Point &pt = grid[i];
            const Row &row = rows[i];
            t.addRow({TextTable::num(std::uint64_t{pt.k}),
                      TextTable::num(pt.rate, 4),
                      TextTable::num(100.0 * availability(row), 2),
                      TextTable::num(row.faults),
                      TextTable::num(row.severed),
                      TextTable::num(row.recovered),
                      TextTable::num(row.lost),
                      TextTable::num(row.watchdog),
                      TextTable::num(row.r.meanLatency, 0)});

            const std::string key =
                "mtbf=" + std::to_string(mtbf) +
                ",k=" + std::to_string(pt.k) +
                ",rate=" + TextTable::num(pt.rate, 4);
            summary.beginObject(key);
            summary.field("availability", availability(row));
            summary.field("injected", row.injected);
            summary.field("delivered", row.delivered);
            summary.field("failed", row.failed);
            summary.field("faults_injected", row.faults);
            summary.field("buses_severed", row.severed);
            summary.field("messages_recovered", row.recovered);
            summary.field("messages_lost", row.lost);
            summary.field("watchdog_fires", row.watchdog);
            summary.endObject();
        }
        h.table(t);
    }
    summary.endObject();
    h.report().setRaw("availability", summary.str());

    std::cout << "\nShape checks: the fault-free table is each"
                 " (k, rate)'s availability ceiling (bounded retries"
                 " already shed a little at k = 2 under load); fault"
                 " churn pulls availability below that ceiling, more"
                 " so at lower MTBF and smaller k.  The RMB recovers"
                 " most severed messages through Nack-path"
                 " re-queueing (recovered >> lost), and the watchdog"
                 " only fires when a sever races an in-flight"
                 " acknowledgement.\n";
    return 0;
}
