/**
 * @file
 * Experiment E11: google-benchmark microbenchmarks of the simulator
 * substrate - event queue throughput, RNG, full RMB simulation rate
 * (protocol events per second) - so regressions in the kernel are
 * visible independently of the modelled results.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/sinks.hh"
#include "rmb/network.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto batch = static_cast<std::uint64_t>(state.range(0));
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < batch; ++i)
            q.schedule((i * 2654435761u) % 1024, [&sink] { ++sink; });
        while (!q.empty())
            q.runOne();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(256)->Arg(4096);

void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    sim::EventQueue q;
    for (auto _ : state) {
        std::vector<sim::EventId> ids;
        ids.reserve(1024);
        for (int i = 0; i < 1024; ++i)
            ids.push_back(q.schedule(static_cast<sim::Tick>(i),
                                     [] {}));
        for (std::size_t i = 0; i < ids.size(); i += 2)
            q.cancel(ids[i]);
        while (!q.empty())
            q.runOne();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void
BM_RandomNext(benchmark::State &state)
{
    sim::Random rng(42);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.next();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomNext);

void
BM_RandomUniformInt(benchmark::State &state)
{
    sim::Random rng(42);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.uniformInt(1000);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomUniformInt);

void
BM_RmbPermutationBatch(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const auto k = static_cast<std::uint32_t>(state.range(1));
    std::uint64_t events = 0;
    for (auto _ : state) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.verify = core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        sim::Random rng(7);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(n, rng));
        for (const auto &[src, dst] : pairs)
            net.send(src, dst, 32);
        while (!net.quiescent())
            s.run(1024);
        events += s.numExecuted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.SetLabel("simulated events/s");
}
BENCHMARK(BM_RmbPermutationBatch)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({64, 8});

void
BM_RmbFullVerifyOverhead(benchmark::State &state)
{
    const bool full = state.range(0) != 0;
    for (auto _ : state) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 4;
        cfg.verify = full ? core::VerifyLevel::Full
                          : core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        sim::Random rng(3);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        for (const auto &[src, dst] : pairs)
            net.send(src, dst, 16);
        while (!net.quiescent())
            s.run(1024);
    }
    state.SetLabel(full ? "VerifyLevel::Full" : "VerifyLevel::Off");
}
BENCHMARK(BM_RmbFullVerifyOverhead)->Arg(0)->Arg(1);

/**
 * Tracing-overhead gate: the same permutation batch with no sink
 * attached (the hot path must stay a single pointer test) versus a
 * NullSink (full event construction, discarded).  A widening gap
 * between Arg(0) here and its historical value means something
 * started paying trace costs unconditionally.
 */
void
BM_RmbTraceOverhead(benchmark::State &state)
{
    const bool traced = state.range(0) != 0;
    obs::NullSink null_sink;
    for (auto _ : state) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 4;
        cfg.verify = core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        if (traced)
            net.setTraceSink(&null_sink);
        sim::Random rng(3);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        for (const auto &[src, dst] : pairs)
            net.send(src, dst, 16);
        while (!net.quiescent())
            s.run(1024);
    }
    state.SetLabel(traced ? "NullSink attached" : "no sink");
}
BENCHMARK(BM_RmbTraceOverhead)->Arg(0)->Arg(1);

} // namespace

/**
 * Custom main: accept the common bench flags (--fast, --json <path>,
 * --seed <n>) so every bench binary shares one command line, mapping
 * them onto google-benchmark's own options before Initialize() sees
 * the rest.
 */
int
main(int argc, char **argv)
{
    // Own the storage for synthesised arguments; benchmark keeps
    // pointers into them during Initialize, so reserve up front to
    // pin the strings in place.
    std::vector<std::string> storage;
    storage.reserve(static_cast<std::size_t>(argc) + 3);
    auto synth = [&storage](std::string s) {
        storage.push_back(std::move(s));
        return storage.back().data();
    };
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fast") {
            args.push_back(synth("--benchmark_min_time=0.05"));
        } else if (arg == "--json" && i + 1 < argc) {
            args.push_back(synth(std::string("--benchmark_out=") +
                                 argv[++i]));
            args.push_back(synth("--benchmark_out_format=json"));
        } else if (arg == "--seed" && i + 1 < argc) {
            ++i; // accepted for interface uniformity; unused here
        } else {
            args.push_back(argv[i]);
        }
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
