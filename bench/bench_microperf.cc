/**
 * @file
 * Experiment E11: google-benchmark microbenchmarks of the simulator
 * substrate - event queue throughput, RNG, full RMB simulation rate
 * (protocol events per second) - so regressions in the kernel are
 * visible independently of the modelled results.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/sinks.hh"
#include "rmb/engine.hh"
#include "rmb/network.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto batch = static_cast<std::uint64_t>(state.range(0));
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < batch; ++i)
            q.schedule((i * 2654435761u) % 1024, [&sink] { ++sink; });
        while (!q.empty())
            q.runOne();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(256)->Arg(4096);

void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    sim::EventQueue q;
    for (auto _ : state) {
        std::vector<sim::EventId> ids;
        ids.reserve(1024);
        for (int i = 0; i < 1024; ++i)
            ids.push_back(q.schedule(static_cast<sim::Tick>(i),
                                     [] {}));
        for (std::size_t i = 0; i < ids.size(); i += 2)
            q.cancel(ids[i]);
        while (!q.empty())
            q.runOne();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void
BM_RandomNext(benchmark::State &state)
{
    sim::Random rng(42);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.next();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomNext);

void
BM_RandomUniformInt(benchmark::State &state)
{
    sim::Random rng(42);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.uniformInt(1000);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomUniformInt);

void
BM_RmbPermutationBatch(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const auto k = static_cast<std::uint32_t>(state.range(1));
    std::uint64_t events = 0;
    for (auto _ : state) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.verify = core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        sim::Random rng(7);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(n, rng));
        for (const auto &[src, dst] : pairs)
            net.send(src, dst, 32);
        while (!net.quiescent())
            s.run(1024);
        events += s.numExecuted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.SetLabel("simulated events/s");
}
BENCHMARK(BM_RmbPermutationBatch)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({64, 8});

/**
 * The engine-vs-engine heart of the bench: the same batch of random
 * full-traffic messages through either backend (selected by
 * range(0)), measured in delivered messages per second.  The
 * --report/--min-speedup machinery below reuses runEngineBatch for
 * the kernel-vs-event speedup gate.
 */
std::uint64_t
runEngineBatch(core::EngineKind kind, std::uint32_t n,
               std::uint32_t k, std::uint32_t rounds)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.engine = kind;
    cfg.verify = core::VerifyLevel::Off;
    auto net = core::makeEngine(s, cfg);
    sim::Random rng(7);
    for (std::uint32_t r = 0; r < rounds; ++r) {
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(n, rng));
        for (const auto &[src, dst] : pairs)
            net->send(src, dst, 32);
        while (!net->quiescent())
            s.run(1024);
    }
    return net->stats().delivered;
}

void
BM_RmbEngineBatch(benchmark::State &state)
{
    const auto kind = state.range(0) == 0
                          ? core::EngineKind::Event
                          : core::EngineKind::Kernel;
    const auto n = static_cast<std::uint32_t>(state.range(1));
    const auto k = static_cast<std::uint32_t>(state.range(2));
    std::uint64_t delivered = 0;
    for (auto _ : state)
        delivered += runEngineBatch(kind, n, k, 4);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(delivered));
    state.SetLabel(std::string(core::engineKindName(kind)) +
                   " messages/s");
}
BENCHMARK(BM_RmbEngineBatch)
    ->Args({0, 16, 4})
    ->Args({1, 16, 4})
    ->Args({0, 64, 4})
    ->Args({1, 64, 4})
    ->Args({0, 64, 8})
    ->Args({1, 64, 8});

void
BM_RmbFullVerifyOverhead(benchmark::State &state)
{
    const bool full = state.range(0) != 0;
    for (auto _ : state) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 4;
        cfg.verify = full ? core::VerifyLevel::Full
                          : core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        sim::Random rng(3);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        for (const auto &[src, dst] : pairs)
            net.send(src, dst, 16);
        while (!net.quiescent())
            s.run(1024);
    }
    state.SetLabel(full ? "VerifyLevel::Full" : "VerifyLevel::Off");
}
BENCHMARK(BM_RmbFullVerifyOverhead)->Arg(0)->Arg(1);

/**
 * Tracing-overhead gate: the same permutation batch with no sink
 * attached (the hot path must stay a single pointer test) versus a
 * NullSink (full event construction, discarded).  A widening gap
 * between Arg(0) here and its historical value means something
 * started paying trace costs unconditionally.
 */
void
BM_RmbTraceOverhead(benchmark::State &state)
{
    const bool traced = state.range(0) != 0;
    obs::NullSink null_sink;
    for (auto _ : state) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = 16;
        cfg.numBuses = 4;
        cfg.verify = core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        if (traced)
            net.setTraceSink(&null_sink);
        sim::Random rng(3);
        const auto pairs = workload::toPairs(
            workload::randomFullTraffic(16, rng));
        for (const auto &[src, dst] : pairs)
            net.send(src, dst, 16);
        while (!net.quiescent())
            s.run(1024);
    }
    state.SetLabel(traced ? "NullSink attached" : "no sink");
}
BENCHMARK(BM_RmbTraceOverhead)->Arg(0)->Arg(1);

/**
 * The sustained-streaming workload: an open-loop stream of
 * long-payload circuits at moderate load, the regime the paper
 * built the RMB for (section 2: multi-flit streams over pipelined
 * virtual buses).  This is where the cycle kernel's structural
 * advantage lives - the event engine keeps every INC's cycle FSM
 * firing for the whole simulated interval, while the kernel sleeps
 * through provably-idle stretches - so the default-config speedup
 * floor is measured here.
 */
std::uint64_t
runEngineStream(core::EngineKind kind, std::uint32_t n,
                std::uint32_t k, std::uint32_t payload,
                std::uint32_t msgs, std::uint32_t mean_gap)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.engine = kind;
    cfg.verify = core::VerifyLevel::Off;
    auto net = core::makeEngine(s, cfg);
    sim::Random rng(7);
    sim::Tick at = 0;
    for (std::uint32_t m = 0; m < msgs; ++m) {
        const auto src =
            static_cast<net::NodeId>(rng.uniformInt(n - 1));
        auto dst = static_cast<net::NodeId>(rng.uniformInt(n - 1));
        if (dst >= src)
            dst = (dst + 1) % n;
        at += rng.uniformInt(2 * mean_gap);
        s.scheduleAt(at, [&net, src, dst, payload] {
            net->send(src, dst, payload);
        });
    }
    do {
        s.run(4096);
    } while (!net->quiescent());
    return net->stats().delivered;
}

/**
 * Wall-clock seconds for one engine run, best of @p tries (the
 * minimum is the least noise-contaminated estimate).
 */
template <typename RunFn>
double
bestOf(int tries, RunFn &&run)
{
    double best = 1e300;
    for (int t = 0; t < tries; ++t) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t delivered = run();
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(delivered);
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/**
 * The kernel-vs-event speedup gate behind --report/--min-speedup:
 * measures both engines on a small config grid, writes a sweep
 * compare-able JSON report, and enforces the hard floor on the
 * default (16, 4) configuration.  Raw speedups are in the report
 * for humans; the *gated* leaves are the binary floor indicators,
 * which stay stable across machines (tests/data/BENCH_microperf.json
 * pins them with zero tolerance).
 */
int
runSpeedupReport(const std::string &path, double min_speedup,
                 bool fast)
{
    struct Point
    {
        std::uint32_t n;
        std::uint32_t k;
        bool stream;  //!< sustained streaming vs saturated batch
        double floor; //!< required speedup for the floor leaf
    };
    // The default config carries the 10x claim on the sustained
    // streaming regime; the saturated setup-storm batches (tiny
    // payloads, every node injecting at once) are the kernel's
    // worst case and hold conservative floors alongside.
    const std::vector<Point> grid = {
        {16, 4, true, min_speedup},
        {16, 4, false, 2.0},
        {64, 4, false, 5.0},
        {64, 8, false, 5.0},
    };
    const std::uint32_t rounds = fast ? 2 : 8;
    const std::uint32_t stream_msgs = fast ? 300 : 800;
    const int tries = fast ? 3 : 5;

    obs::JsonWriter w;
    w.beginObject();
    w.field("tool", std::string("bench_microperf"));
    w.field("experiment", std::string("E11"));
    w.field("fast", fast);
    w.beginObject("engine_speedup");
    bool ok = true;
    double default_speedup = 0.0;
    for (const Point &pt : grid) {
        auto time_engine = [&](core::EngineKind kind) {
            if (pt.stream) {
                return bestOf(tries, [&] {
                    return runEngineStream(kind, pt.n, pt.k, 512,
                                           stream_msgs, 250);
                });
            }
            return bestOf(tries, [&] {
                return runEngineBatch(kind, pt.n, pt.k, rounds);
            });
        };
        const double ev = time_engine(core::EngineKind::Event);
        const double kn = time_engine(core::EngineKind::Kernel);
        const double speedup = ev / kn;
        if (pt.stream)
            default_speedup = speedup;
        const bool holds = speedup >= pt.floor;
        ok = ok && holds;
        const std::string key =
            "n=" + std::to_string(pt.n) +
            ",k=" + std::to_string(pt.k) +
            (pt.stream ? ",stream" : ",batch");
        w.beginObject(key);
        w.field("event_seconds", ev);
        w.field("kernel_seconds", kn);
        w.field("speedup", speedup);
        w.field("required", pt.floor);
        w.field("floor_holds", holds ? 1.0 : 0.0);
        w.endObject();
        std::cout << "engine_speedup " << key << ": " << speedup
                  << "x (event " << ev << "s, kernel " << kn
                  << "s, floor " << pt.floor << "x "
                  << (holds ? "holds" : "VIOLATED") << ")\n";
    }
    w.endObject();
    w.endObject();

    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench_microperf: cannot write " << path
                  << "\n";
        return 1;
    }
    out << w.str() << "\n";

    if (!ok) {
        std::cerr << "bench_microperf: kernel speedup floor"
                     " violated (default config measured "
                  << default_speedup << "x)\n";
        return 1;
    }
    return 0;
}

} // namespace

/**
 * Custom main: accept the common bench flags (--fast, --json <path>,
 * --seed <n>) so every bench binary shares one command line, mapping
 * them onto google-benchmark's own options before Initialize() sees
 * the rest.  --report <file> [--min-speedup <x>] switches to the
 * kernel-vs-event speedup gate instead of the google-benchmark
 * suite (scripts/check_bench.sh and the bench_gate ctest use it).
 */
int
main(int argc, char **argv)
{
    // Own the storage for synthesised arguments; benchmark keeps
    // pointers into them during Initialize, so reserve up front to
    // pin the strings in place.
    std::vector<std::string> storage;
    storage.reserve(static_cast<std::size_t>(argc) + 3);
    auto synth = [&storage](std::string s) {
        storage.push_back(std::move(s));
        return storage.back().data();
    };
    bool fast = false;
    std::string report_path;
    double min_speedup = 10.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fast")
            fast = true;
        else if (arg == "--report" && i + 1 < argc)
            report_path = argv[++i];
        else if (arg == "--min-speedup" && i + 1 < argc)
            min_speedup = std::atof(argv[++i]);
    }
    if (!report_path.empty())
        return runSpeedupReport(report_path, min_speedup, fast);

    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fast") {
            args.push_back(synth("--benchmark_min_time=0.05"));
        } else if (arg == "--json" && i + 1 < argc) {
            args.push_back(synth(std::string("--benchmark_out=") +
                                 argv[++i]));
            args.push_back(synth("--benchmark_out_format=json"));
        } else if (arg == "--seed" && i + 1 < argc) {
            ++i; // accepted for interface uniformity; unused here
        } else if (arg == "--min-speedup" && i + 1 < argc) {
            ++i; // only meaningful together with --report
        } else {
            args.push_back(argv[i]);
        }
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
