/**
 * @file
 * Experiment E6 (paper section 3): permutation routing across the
 * RMB and every comparison architecture - hypercube, EHC, fat tree,
 * mesh - plus the arbitrated multibus, all simulated with identical
 * circuit timing so only topology and switching strategy differ.
 * Reports the makespan of random full permutations and of the
 * classical adversarial patterns.
 */

#include <functional>
#include <iostream>
#include <memory>

#include "baselines/fattree.hh"
#include "baselines/hypercube.hh"
#include "baselines/mesh.hh"
#include "baselines/multibus.hh"
#include "bench/bench_util.hh"
#include "common/bitutils.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

struct Candidate
{
    std::string name;
    std::function<std::unique_ptr<net::Network>(
        sim::Simulator &, std::uint32_t n, std::uint32_t k,
        std::uint64_t seed)>
        make;
};

std::vector<Candidate>
candidates()
{
    using baseline::CircuitConfig;
    auto circuit_cfg = [](std::uint64_t seed) {
        CircuitConfig c;
        c.seed = seed;
        return c;
    };
    return {
        {"RMB",
         [](sim::Simulator &s, std::uint32_t n, std::uint32_t k,
            std::uint64_t seed) -> std::unique_ptr<net::Network> {
             core::RmbConfig cfg;
             cfg.numNodes = n;
             cfg.numBuses = k;
             cfg.seed = seed;
             cfg.verify = core::VerifyLevel::Off;
             return std::make_unique<core::RmbNetwork>(s, cfg);
         }},
        {"IdealRing",
         [circuit_cfg](sim::Simulator &s, std::uint32_t n,
                       std::uint32_t k, std::uint64_t seed)
             -> std::unique_ptr<net::Network> {
             return std::make_unique<baseline::IdealRingNetwork>(
                 s, n, k, circuit_cfg(seed));
         }},
        {"Hypercube",
         [circuit_cfg](sim::Simulator &s, std::uint32_t n,
                       std::uint32_t, std::uint64_t seed)
             -> std::unique_ptr<net::Network> {
             return std::make_unique<baseline::HypercubeNetwork>(
                 s, log2Floor(n), circuit_cfg(seed));
         }},
        {"EHC",
         [circuit_cfg](sim::Simulator &s, std::uint32_t n,
                       std::uint32_t, std::uint64_t seed)
             -> std::unique_ptr<net::Network> {
             return std::make_unique<baseline::HypercubeNetwork>(
                 s, log2Floor(n), circuit_cfg(seed), true);
         }},
        {"FatTree",
         [circuit_cfg](sim::Simulator &s, std::uint32_t n,
                       std::uint32_t k, std::uint64_t seed)
             -> std::unique_ptr<net::Network> {
             return std::make_unique<baseline::FatTreeNetwork>(
                 s, n, k, circuit_cfg(seed));
         }},
        {"Mesh",
         [circuit_cfg](sim::Simulator &s, std::uint32_t n,
                       std::uint32_t, std::uint64_t seed)
             -> std::unique_ptr<net::Network> {
             const auto side = static_cast<std::uint32_t>(
                 1u << (log2Floor(n) / 2));
             return std::make_unique<baseline::MeshNetwork>(
                 s, side, n / side, circuit_cfg(seed));
         }},
        {"MultiBus",
         [circuit_cfg](sim::Simulator &s, std::uint32_t n,
                       std::uint32_t k, std::uint64_t seed)
             -> std::unique_ptr<net::Network> {
             return std::make_unique<baseline::MultiBusNetwork>(
                 s, n, k, circuit_cfg(seed));
         }},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E6", "permutation routing: RMB vs hypercube, EHC,"
                        " fat tree, mesh, multibus (section 3)");

    const int trials = h.fast() ? 2 : 6;
    const std::uint32_t payload = 32;

    for (std::uint32_t n : {16u, 64u}) {
        const std::uint32_t k = log2Floor(n); // paper's design point
        TextTable t("random permutation makespan (ticks), N = " +
                        std::to_string(n) + ", k = " +
                        std::to_string(k) + ", payload = " +
                        std::to_string(payload) + " flits",
                    {"network", "makespan", "mean latency",
                     "mean setup", "retries/msg", "completed"});
        for (const auto &c : candidates()) {
            double makespan = 0.0;
            double lat = 0.0;
            double setup = 0.0;
            double retries = 0.0;
            std::uint64_t completed = 0;
            for (int trial = 0; trial < trials; ++trial) {
                sim::Random rng(
                    static_cast<std::uint64_t>(trial) * 59 + 11);
                const auto pairs = workload::toPairs(
                    workload::randomFullTraffic(n, rng));
                sim::Simulator s;
                auto net = c.make(s, n, k,
                                  static_cast<std::uint64_t>(trial) +
                                      1);
                const auto r = workload::runBatch(*net, pairs,
                                                  payload,
                                                  20'000'000);
                if (r.completed)
                    ++completed;
                makespan += static_cast<double>(r.makespan);
                lat += r.meanLatency;
                setup += r.meanSetupLatency;
                retries += static_cast<double>(r.retries) /
                           static_cast<double>(pairs.size());
            }
            t.addRow({c.name, TextTable::num(makespan / trials, 0),
                      TextTable::num(lat / trials, 0),
                      TextTable::num(setup / trials, 0),
                      TextTable::num(retries / trials, 2),
                      std::to_string(completed) + "/" +
                          std::to_string(trials)});
        }
        h.table(t);
    }

    // Adversarial patterns at N = 32.
    const std::uint32_t n = 32;
    const std::uint32_t k = 5;
    struct Pattern
    {
        std::string name;
        workload::Permutation perm;
    };
    const std::vector<Pattern> patterns{
        {"neighbour (rot 1)", workload::rotation(n, 1)},
        {"tornado (rot N/2)", workload::rotation(n, n / 2)},
        {"bit-reversal", workload::bitReversal(n)},
        {"bit-complement", workload::bitComplement(n)},
        {"shuffle", workload::perfectShuffle(n)},
    };
    TextTable a("adversarial patterns, makespan (ticks), N = 32, "
                "k = 5 (4 for fat tree)",
                {"network", "neighbour", "tornado", "bit-rev",
                 "bit-compl", "shuffle"});
    for (const auto &c : candidates()) {
        std::vector<std::string> row{c.name};
        for (const auto &p : patterns) {
            sim::Simulator s;
            // Fat tree requires power-of-two capacity.
            const std::uint32_t kk =
                c.name == "FatTree" ? 4u : k;
            auto net = c.make(s, n, kk, 1);
            const auto r = workload::runBatch(
                *net, workload::toPairs(p.perm), payload,
                20'000'000);
            row.push_back(r.completed
                              ? TextTable::num(
                                    static_cast<std::uint64_t>(
                                        r.makespan))
                              : std::string("DNF"));
        }
        a.addRow(row);
    }
    h.table(a);

    std::cout << "\nPaper shape check: the RMB tracks the ideal"
                 " k-channel ring closely, beats the k-bus system"
                 " on every pattern with spatial reuse, and trades"
                 " blows with the log-diameter networks while using"
                 " a fraction of their cross points (see E2/E3).\n";
    return 0;
}
