/**
 * @file
 * Experiment E14 (paper section 1: "the RMB concept can also be
 * extended to support broadcasting and multicasting"): one
 * multicast virtual bus vs repeated unicasts, as a function of
 * group size, plus broadcast scaling with N.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"

namespace {

using namespace rmb;

core::RmbConfig
cfg(std::uint32_t n, std::uint32_t k)
{
    core::RmbConfig c;
    c.numNodes = n;
    c.numBuses = k;
    c.verify = core::VerifyLevel::Off;
    return c;
}

void
drain(sim::Simulator &s, net::Network &net)
{
    while (!net.quiescent() && s.now() < 10'000'000)
        s.run(1024);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E14", "multicast/broadcast vs repeated unicast"
                         " (section 1 extension)");

    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    const std::uint32_t payload = 64;

    TextTable t("time until the whole group has the data, N = 32,"
                " k = 4, payload 64",
                {"group size", "multicast", "unicast serial",
                 "speedup", "segments held (mc vs uni)"});
    for (const std::uint32_t group : {2u, 4u, 8u, 16u, 31u}) {
        // Members evenly spread clockwise from node 0.
        std::vector<net::NodeId> members;
        for (std::uint32_t i = 1; i <= group; ++i)
            members.push_back(static_cast<net::NodeId>(
                (i * n) / (group + 1) == 0
                    ? i
                    : (i * n) / (group + 1)));
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
        if (members.front() == 0)
            members.erase(members.begin());

        sim::Simulator s1;
        core::RmbNetwork mc(s1, cfg(n, k));
        const auto gid = mc.multicast(0, members, payload);
        drain(s1, mc);
        sim::Tick mc_done = 0;
        for (const auto tick : mc.multicastRecord(gid).deliveredAt)
            mc_done = std::max(mc_done, tick);
        const auto mc_segments =
            static_cast<std::uint64_t>(
                mc.stats().pathLength.max());

        sim::Simulator s2;
        core::RmbNetwork uc(s2, cfg(n, k));
        for (const auto member : members)
            uc.send(0, member, payload);
        drain(s2, uc);
        sim::Tick uc_done = 0;
        std::uint64_t uc_segments = 0;
        for (net::MessageId id = 1; id <= uc.numMessages(); ++id) {
            uc_done = std::max(uc_done, uc.message(id).delivered);
            uc_segments += static_cast<std::uint64_t>(
                (uc.message(id).dst + n - 0) % n);
        }

        t.addRow({TextTable::num(
                      static_cast<std::uint64_t>(members.size())),
                  TextTable::num(static_cast<std::uint64_t>(
                      mc_done)),
                  TextTable::num(static_cast<std::uint64_t>(
                      uc_done)),
                  TextTable::num(static_cast<double>(uc_done) /
                                     static_cast<double>(mc_done),
                                 2),
                  TextTable::num(mc_segments) + " vs " +
                      TextTable::num(uc_segments)});
    }
    h.table(t);

    TextTable b("broadcast completion time vs ring size, k = 4,"
                " payload 64",
                {"N", "broadcast done", "per-node slope (ticks)"});
    sim::Tick prev = 0;
    std::uint32_t prev_n = 0;
    for (const std::uint32_t nodes : {8u, 16u, 32u, 64u}) {
        sim::Simulator s;
        core::RmbNetwork net(s, cfg(nodes, k));
        const auto gid = net.broadcast(0, payload);
        drain(s, net);
        sim::Tick done = 0;
        for (const auto tick :
             net.multicastRecord(gid).deliveredAt)
            done = std::max(done, tick);
        b.addRow({TextTable::num(std::uint64_t{nodes}),
                  TextTable::num(static_cast<std::uint64_t>(done)),
                  prev_n == 0
                      ? std::string("-")
                      : TextTable::num(
                            static_cast<double>(done - prev) /
                                (nodes - prev_n),
                            2)});
        prev = done;
        prev_n = nodes;
    }
    h.table(b);

    std::cout << "\nShape check: multicast time is one circuit"
                 " lifetime regardless of group size (the tap"
                 " interface), so speedup grows ~linearly with"
                 " group size; broadcast scales linearly in N with"
                 " a slope of header+ack+flit per extra hop.\n";
    return 0;
}
