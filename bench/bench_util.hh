/**
 * @file
 * Shared helpers for the bench binaries.
 *
 * Every bench regenerates one artifact of the paper (see DESIGN.md's
 * experiment index) and prints it as a TextTable so outputs are
 * uniform and diffable.  Set the environment variable RMB_BENCH_FAST
 * to shrink the sweeps for smoke runs.
 */

#ifndef RMB_BENCH_BENCH_UTIL_HH
#define RMB_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"

namespace rmb {
namespace bench {

/** True when RMB_BENCH_FAST is set: smaller sweeps, same shapes. */
inline bool
fastMode()
{
    return std::getenv("RMB_BENCH_FAST") != nullptr;
}

/** Print the experiment banner (id + paper artifact). */
inline void
banner(const std::string &exp_id, const std::string &what)
{
    std::cout << "==============================================\n"
              << "Experiment " << exp_id << ": " << what << "\n"
              << "==============================================\n";
}

} // namespace bench
} // namespace rmb

#endif // RMB_BENCH_BENCH_UTIL_HH
