/**
 * @file
 * Shared harness for the bench binaries.
 *
 * Every bench regenerates one artifact of the paper (see DESIGN.md's
 * experiment index) and prints its TextTables through a
 * bench::Harness, which owns the common command line:
 *
 *   --fast         shrink the sweeps for smoke runs
 *   --json <path>  also write an obs::RunReport (banner fields plus
 *                  every printed table) as one JSON document
 *   --seed <n>     override the experiment's base RNG seed
 *   --jobs <n>     worker threads for benches that fan their grid
 *                  through exp::Runner (0 = all cores); results are
 *                  identical for every value, so it is deliberately
 *                  not recorded in the JSON report
 *
 * The old RMB_BENCH_FAST environment variable still works as a
 * deprecated fallback for --fast (with a stderr warning).
 */

#ifndef RMB_BENCH_BENCH_UTIL_HH
#define RMB_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "obs/json.hh"
#include "obs/run_report.hh"

namespace rmb {
namespace bench {

/**
 * Parses the common bench flags, prints the experiment banner, and
 * records every table printed through it; if --json was given, the
 * destructor writes the accumulated RunReport.
 */
class Harness
{
  public:
    Harness(int argc, char **argv, std::string exp_id,
            std::string what)
        : expId_(std::move(exp_id)), what_(std::move(what)),
          report_(toolName(argc, argv))
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--fast") {
                fast_ = true;
            } else if (arg == "--json") {
                if (i + 1 >= argc)
                    usage(argv[0], "--json needs a file path", 2);
                jsonPath_ = argv[++i];
            } else if (arg == "--seed") {
                if (i + 1 >= argc)
                    usage(argv[0], "--seed needs an integer", 2);
                seed_ = std::strtoull(argv[++i], nullptr, 10);
                seedSet_ = true;
            } else if (arg == "--jobs") {
                if (i + 1 >= argc)
                    usage(argv[0], "--jobs needs an integer", 2);
                jobs_ = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (arg == "--help" || arg == "-h") {
                usage(argv[0], "", 0);
            } else {
                usage(argv[0], "unknown option: " + arg, 2);
            }
        }
        if (!fast_ && std::getenv("RMB_BENCH_FAST") != nullptr) {
            fast_ = true;
            std::cerr << "warning: RMB_BENCH_FAST is deprecated;"
                         " pass --fast instead\n";
        }
        report_.set("experiment", expId_);
        report_.set("title", what_);
        report_.set("fast", fast_);
        if (seedSet_)
            report_.set("seed", seed_);

        std::cout
            << "==============================================\n"
            << "Experiment " << expId_ << ": " << what_ << "\n"
            << "==============================================\n";
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    ~Harness()
    {
        if (jsonPath_.empty())
            return;
        std::string tables = "[";
        for (std::size_t i = 0; i < tables_.size(); ++i) {
            if (i)
                tables += ',';
            tables += tables_[i];
        }
        tables += ']';
        report_.setRaw("tables", tables);
        report_.write(jsonPath_);
    }

    /** True under --fast (or legacy RMB_BENCH_FAST): smaller
     *  sweeps, same shapes. */
    bool fast() const { return fast_; }

    /** The --seed value, or @p fallback if none was given. */
    std::uint64_t
    seed(std::uint64_t fallback) const
    {
        return seedSet_ ? seed_ : fallback;
    }

    /** Worker threads for grid execution (1 unless --jobs given;
     *  --jobs 0 means one per core, resolved by exp::Runner). */
    unsigned jobs() const { return jobs_; }

    /** Print @p t to stdout and record it for the JSON report. */
    void
    table(const TextTable &t)
    {
        t.print(std::cout);
        std::cout << '\n';
        obs::JsonWriter json;
        json.beginObject();
        json.field("caption", t.caption());
        json.beginArray("headers");
        for (const auto &h : t.headers())
            json.element(h);
        json.endArray();
        json.beginArray("rows");
        for (const auto &row : t.rows()) {
            json.beginArray();
            for (const auto &cell : row)
                json.element(cell);
            json.endArray();
        }
        json.endArray();
        json.endObject();
        tables_.push_back(json.str());
    }

    /** Extra per-experiment report fields (parameters, notes). */
    obs::RunReport &report() { return report_; }

  private:
    static std::string
    toolName(int argc, char **argv)
    {
        if (argc < 1 || argv[0] == nullptr)
            return "bench";
        std::string name = argv[0];
        const auto slash = name.find_last_of('/');
        if (slash != std::string::npos)
            name = name.substr(slash + 1);
        return name.empty() ? "bench" : name;
    }

    [[noreturn]] static void
    usage(const char *argv0, const std::string &error, int code)
    {
        if (!error.empty())
            std::cerr << argv0 << ": " << error << '\n';
        (code == 0 ? std::cout : std::cerr)
            << "usage: " << argv0
            << " [--fast] [--json <path>] [--seed <n>]"
               " [--jobs <n>] [--help]\n";
        std::exit(code);
    }

    std::string expId_;
    std::string what_;
    bool fast_ = false;
    std::string jsonPath_;
    std::uint64_t seed_ = 0;
    bool seedSet_ = false;
    unsigned jobs_ = 1;
    obs::RunReport report_;
    /** Pre-serialised JSON object per printed table. */
    std::vector<std::string> tables_;
};

} // namespace bench
} // namespace rmb

#endif // RMB_BENCH_BENCH_UTIL_HH
