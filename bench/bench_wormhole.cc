/**
 * @file
 * Experiment E20 (paper section 2.2 vs reference [10]): circuit
 * switching on the RMB versus classical buffered wormhole on the
 * same one-way ring.
 *
 * The paper's protocol *chooses* not to be wormhole: "Data flits
 * are only transmitted after an acknowledgement is received for the
 * HF ... in order to avoid buffering of DFs at intermediate nodes
 * and is where our protocol differs from traditional wormhole
 * routing."  This bench quantifies the trade: the Hack round trip
 * the RMB pays per message, versus the k one-flit buffers per node
 * the wormhole router pays in hardware (and its in-network tree
 * blocking under load).
 */

#include <iostream>
#include <memory>

#include "baselines/wormhole_ring.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"
#include "workload/traffic.hh"

namespace {

using namespace rmb;

std::unique_ptr<net::Network>
makeNet(bool wormhole, sim::Simulator &s, std::uint32_t n,
        std::uint32_t k, std::uint64_t seed)
{
    if (wormhole) {
        baseline::WormholeConfig cfg;
        cfg.vcsPerClass = k / 2 ? k / 2 : 1; // match the k budget
        return std::make_unique<baseline::WormholeRingNetwork>(
            s, n, cfg);
    }
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.seed = seed;
    cfg.verify = core::VerifyLevel::Off;
    return std::make_unique<core::RmbNetwork>(s, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E20", "RMB circuit switching vs buffered"
                         " wormhole on the same ring (section 2.2"
                         " vs reference [10])");

    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    const int trials = h.fast() ? 2 : 6;

    // Payload sweep: the Hack round trip is a fixed cost, so the
    // circuit approach catches up as messages grow.
    TextTable t("random permutation makespan vs payload, N = 32"
                " (RMB: k = 4 buses; wormhole: 2 VCs/class, one-"
                "flit buffers)",
                {"payload", "RMB", "wormhole", "RMB/wormhole",
                 "unloaded RMB latency", "unloaded WH latency"});
    for (const std::uint32_t payload : {4u, 16u, 64u, 256u}) {
        double rmb_ms = 0.0;
        double wh_ms = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
            sim::Random rng(
                static_cast<std::uint64_t>(trial) * 71 + payload);
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(n, rng));
            for (const bool wormhole : {false, true}) {
                sim::Simulator s;
                auto net = makeNet(wormhole, s, n, k,
                                   static_cast<std::uint64_t>(
                                       trial) +
                                       1);
                const auto r = workload::runBatch(*net, pairs,
                                                  payload,
                                                  20'000'000);
                (wormhole ? wh_ms : rmb_ms) +=
                    static_cast<double>(r.makespan) / trials;
            }
        }
        // Unloaded single-message latency at the mean distance
        // (16 hops): RMB = 16*(4+2) + (p+1+16); WH = 16*4 + p+1.
        const std::uint64_t rmb_lat = 16 * 6 + payload + 1 + 16;
        const std::uint64_t wh_lat = 16 * 4 + payload + 1;
        t.addRow({TextTable::num(std::uint64_t{payload}),
                  TextTable::num(rmb_ms, 0),
                  TextTable::num(wh_ms, 0),
                  TextTable::num(rmb_ms / wh_ms, 2),
                  TextTable::num(rmb_lat),
                  TextTable::num(wh_lat)});
    }
    h.table(t);

    // Open-loop local traffic: standing circuits vs buffer reuse.
    TextTable o("open-loop ring-local (d <= 4) traffic, payload 16,"
                " N = 32",
                {"rate/node", "RMB throughput", "WH throughput",
                 "RMB mean lat", "WH mean lat"});
    for (const double rate : {0.002, 0.008, 0.02}) {
        double thr[2] = {0, 0};
        double lat[2] = {0, 0};
        for (const bool wormhole : {false, true}) {
            sim::Simulator s;
            auto net = makeNet(wormhole, s, n, k, 1);
            workload::LocalRingTraffic pattern(n, 4);
            sim::Random rng(9);
            const auto r = workload::runOpenLoop(
                *net, pattern, rate, 16,
                h.fast() ? 30'000 : 100'000, rng, 5'000);
            thr[wormhole] = r.throughput;
            lat[wormhole] = r.meanLatency;
        }
        o.addRow({TextTable::num(rate, 3),
                  TextTable::num(thr[0], 4),
                  TextTable::num(thr[1], 4),
                  TextTable::num(lat[0], 0),
                  TextTable::num(lat[1], 0)});
    }
    h.table(o);

    std::cout << "\nShape checks: a real crossover.  Wormhole wins"
                 " short messages outright (no Hack round trip);"
                 " the RMB overtakes it as payload grows (its"
                 " dedicated circuits stream at full link rate"
                 " while worms time-share every link they cross)."
                 "  Under heavy local load wormhole's in-network"
                 " tree blocking collapses throughput while the"
                 " RMB keeps accepting (a Nacked RMB request holds"
                 " nothing).  Plus the hardware argument section"
                 " 2.2 actually makes: the RMB buffers no data"
                 " flits at intermediate nodes at all.\n";
    return 0;
}
