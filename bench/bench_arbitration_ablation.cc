/**
 * @file
 * Experiment E9 (ablations of the design choices in DESIGN.md):
 *
 *  (a) reconfiguration vs central arbitration - RMB against the
 *      conventional k-bus system on traffic of varying locality;
 *  (b) compaction on vs off - quantifies how much of the RMB's
 *      throughput comes from recycling the top bus;
 *  (c) restricted 3-way switches vs an ideal k-channel ring -
 *      the price of the paper's "simple routing hardware".
 */

#include <iostream>
#include <memory>

#include "baselines/multibus.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"
#include "workload/traffic.hh"

namespace {

using namespace rmb;

enum class Kind {
    Rmb,
    RmbNoCompaction,
    RmbStraight,
    RmbStraightNoCompaction,
    MultiBus,
    IdealRing,
};

std::unique_ptr<net::Network>
make(Kind kind, sim::Simulator &s, std::uint32_t n, std::uint32_t k,
     std::uint64_t seed)
{
    switch (kind) {
      case Kind::Rmb:
      case Kind::RmbNoCompaction:
      case Kind::RmbStraight:
      case Kind::RmbStraightNoCompaction: {
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.seed = seed;
        cfg.enableCompaction = kind == Kind::Rmb ||
                               kind == Kind::RmbStraight;
        cfg.headerPolicy =
            (kind == Kind::RmbStraight ||
             kind == Kind::RmbStraightNoCompaction)
                ? core::HeaderPolicy::PreferStraight
                : core::HeaderPolicy::PreferLowest;
        cfg.verify = core::VerifyLevel::Off;
        return std::make_unique<core::RmbNetwork>(s, cfg);
      }
      case Kind::MultiBus: {
        baseline::CircuitConfig cfg;
        cfg.seed = seed;
        return std::make_unique<baseline::MultiBusNetwork>(s, n, k,
                                                           cfg);
      }
      case Kind::IdealRing: {
        baseline::CircuitConfig cfg;
        cfg.seed = seed;
        return std::make_unique<baseline::IdealRingNetwork>(s, n, k,
                                                            cfg);
      }
    }
    return nullptr;
}

const char *
name(Kind kind)
{
    switch (kind) {
      case Kind::Rmb:
        return "RMB (eager headers)";
      case Kind::RmbNoCompaction:
        return "RMB (eager, no compaction)";
      case Kind::RmbStraight:
        return "RMB (top-bus headers)";
      case Kind::RmbStraightNoCompaction:
        return "RMB (top-bus, no compaction)";
      case Kind::MultiBus:
        return "MultiBus (arbitrated)";
      case Kind::IdealRing:
        return "IdealRing (free switch)";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E9", "ablations: reconfiguration vs arbitration,"
                        " compaction on/off, 3-way vs ideal"
                        " switches");

    const int trials = h.fast() ? 2 : 6;
    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    const std::uint32_t payload = 32;

    struct Workload
    {
        std::string label;
        workload::PairList pairs;
    };
    sim::Random rng(7);
    std::vector<Workload> workloads;
    workloads.push_back(
        {"neighbour", workload::toPairs(workload::rotation(n, 1))});
    workloads.push_back(
        {"local (rot 4)",
         workload::toPairs(workload::rotation(n, 4))});
    workloads.push_back(
        {"tornado", workload::toPairs(workload::rotation(n, n / 2))});
    workloads.push_back(
        {"random perm",
         workload::toPairs(workload::randomFullTraffic(n, rng))});
    // Queued bursts: four messages per source.  This is where
    // compaction's top-bus recycling pays - without it a source's
    // next injection waits for the previous message's full
    // teardown.
    workload::PairList burst;
    for (net::NodeId i = 0; i < n; ++i)
        for (int m = 0; m < 4; ++m)
            burst.emplace_back(i, (i + 3) % n);
    workloads.push_back({"burst x4 local", std::move(burst)});

    TextTable t("batch makespan (ticks), N = 32, k = 4, payload 32"
                " (burst: payload 256)",
                {"network", "neighbour", "local (rot 4)", "tornado",
                 "random perm", "burst x4 local"});
    for (Kind kind :
         {Kind::Rmb, Kind::RmbNoCompaction, Kind::RmbStraight,
          Kind::RmbStraightNoCompaction, Kind::MultiBus,
          Kind::IdealRing}) {
        std::vector<std::string> row{name(kind)};
        for (const auto &w : workloads) {
            double makespan = 0.0;
            bool all_completed = true;
            const std::uint32_t w_payload =
                w.label == "burst x4 local" ? 256 : payload;
            for (int trial = 0; trial < trials; ++trial) {
                sim::Simulator s;
                auto net = make(kind, s, n, k,
                                static_cast<std::uint64_t>(trial) +
                                    1);
                const auto r = workload::runBatch(*net, w.pairs,
                                                  w_payload,
                                                  20'000'000);
                all_completed &= r.completed;
                makespan += static_cast<double>(r.makespan);
            }
            row.push_back(all_completed
                              ? TextTable::num(makespan / trials, 0)
                              : std::string("DNF"));
        }
        t.addRow(row);
    }
    h.table(t);

    std::cout << "\nShape checks:\n"
                 "  (a) the RMB beats the arbitrated k-bus system"
                 " on every spatially-local pattern;\n"
                 "  (b) disabling compaction slows the RMB toward"
                 " serial top-bus reuse;\n"
                 "  (c) the gap between RMB and IdealRing is the"
                 " cost of 3-way switches + top-bus injection -"
                 " the hardware simplicity the paper sells.\n";
    return 0;
}
