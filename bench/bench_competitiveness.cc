/**
 * @file
 * Experiment E7 (paper section 4, "Concluding Remarks"): the
 * competitiveness of the on-line RMB routing protocol - the ratio of
 * its makespan to an optimal off-line schedule's - for random
 * communication patterns.  The paper proposes this study as future
 * work; we carry it out against two offline references:
 *
 *  - a makespan *lower bound* (bandwidth bound vs longest message),
 *    so online/LB upper-bounds the true competitive ratio, and
 *  - the greedy first-fit offline schedule, a feasible (possibly
 *    suboptimal) schedule an offline scheduler could actually run.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "offline/schedule.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E7", "on-line vs off-line schedule"
                        " (competitiveness, section 4)");

    const int trials = h.fast() ? 3 : 10;
    const std::uint32_t payload = 32;
    const sim::Random root(h.seed(7));

    offline::TimingModel timing;

    TextTable t("random full permutations: online makespan vs"
                " offline references (mean over " +
                    std::to_string(trials) + " trials)",
                {"N", "k", "online", "greedy offline", "lower bound",
                 "online/greedy", "online/LB"});

    for (std::uint32_t n : {16u, 32u, 64u}) {
        for (std::uint32_t k : {2u, 4u, 8u}) {
            double online_sum = 0.0;
            double greedy_sum = 0.0;
            double lb_sum = 0.0;
            for (int trial = 0; trial < trials; ++trial) {
                const sim::Random trial_root =
                    root.split(n).split(k).split(
                        static_cast<std::uint64_t>(trial));
                sim::Random rng = trial_root.split(0);
                const auto pairs = workload::toPairs(
                    workload::randomFullTraffic(n, rng));

                sim::Simulator s;
                core::RmbConfig cfg;
                cfg.numNodes = n;
                cfg.numBuses = k;
                cfg.seed = trial_root.split(1).next();
                cfg.verify = core::VerifyLevel::Off;
                core::RmbNetwork net(s, cfg);
                const auto r = workload::runBatch(net, pairs,
                                                  payload,
                                                  20'000'000);
                if (!r.completed)
                    continue;
                online_sum += static_cast<double>(r.makespan);
                greedy_sum += static_cast<double>(
                    offline::greedyMakespanTicks(n, pairs, k,
                                                 payload, timing));
                lb_sum += static_cast<double>(
                    offline::lowerBoundTicks(n, pairs, k, payload,
                                             timing));
            }
            t.addRow({TextTable::num(std::uint64_t{n}),
                      TextTable::num(std::uint64_t{k}),
                      TextTable::num(online_sum / trials, 0),
                      TextTable::num(greedy_sum / trials, 0),
                      TextTable::num(lb_sum / trials, 0),
                      TextTable::num(online_sum / greedy_sum, 2),
                      TextTable::num(online_sum / lb_sum, 2)});
        }
    }
    h.table(t);

    // Structured patterns where the offline optimum is easy to
    // reason about.
    TextTable p("structured patterns, N = 32, k = 4",
                {"pattern", "online", "greedy offline",
                 "lower bound", "online/LB"});
    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    struct Pattern
    {
        std::string name;
        workload::Permutation perm;
    };
    for (const auto &[name, perm] :
         {Pattern{"rotation-1", workload::rotation(n, 1)},
          Pattern{"rotation-8", workload::rotation(n, 8)},
          Pattern{"tornado", workload::rotation(n, n / 2)},
          Pattern{"bit-reversal", workload::bitReversal(n)}}) {
        const auto pairs = workload::toPairs(perm);
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numNodes = n;
        cfg.numBuses = k;
        cfg.verify = core::VerifyLevel::Off;
        core::RmbNetwork net(s, cfg);
        const auto r =
            workload::runBatch(net, pairs, payload, 20'000'000);
        const auto greedy = offline::greedyMakespanTicks(
            n, pairs, k, payload, timing);
        const auto lb = offline::lowerBoundTicks(n, pairs, k,
                                                 payload, timing);
        p.addRow({name,
                  TextTable::num(
                      static_cast<std::uint64_t>(r.makespan)),
                  TextTable::num(static_cast<std::uint64_t>(greedy)),
                  TextTable::num(static_cast<std::uint64_t>(lb)),
                  TextTable::num(static_cast<double>(r.makespan) /
                                     static_cast<double>(lb),
                                 2)});
    }
    h.table(p);

    // Small instances: the branch-and-bound gives the *provably
    // optimal* round count, so the offline reference is exact.
    TextTable e("small instances with exact optimal rounds"
                " (branch-and-bound), payload 32",
                {"N", "k", "LB rounds", "optimal rounds",
                 "greedy rounds", "online makespan",
                 "opt-rounds makespan", "online/optimal"});
    sim::Random erng = root.split(99);
    for (std::uint32_t n : {8u, 10u, 12u}) {
        for (std::uint32_t k : {1u, 2u}) {
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(n, erng));
            const auto lb_rounds = offline::minRounds(n, pairs, k);
            const auto opt = offline::optimalRounds(n, pairs, k);
            const auto greedy =
                offline::greedySchedule(n, pairs, k).numRounds;

            sim::Simulator s;
            core::RmbConfig cfg;
            cfg.numNodes = n;
            cfg.numBuses = k;
            cfg.verify = core::VerifyLevel::Off;
            core::RmbNetwork net(s, cfg);
            const auto r = workload::runBatch(net, pairs, payload,
                                              20'000'000);
            // An idealized executor running `opt` rounds of the
            // slowest message each.
            sim::Tick longest = 0;
            for (const auto &[src, dst] : pairs) {
                const std::uint32_t h = (dst + n - src) % n;
                longest = std::max(longest,
                                   timing.messageTime(h, payload));
            }
            const sim::Tick opt_ms =
                static_cast<sim::Tick>(opt) * longest;
            e.addRow(
                {TextTable::num(std::uint64_t{n}),
                 TextTable::num(std::uint64_t{k}),
                 TextTable::num(std::uint64_t{lb_rounds}),
                 opt ? TextTable::num(std::uint64_t{opt})
                     : std::string("budget"),
                 TextTable::num(std::uint64_t{greedy}),
                 TextTable::num(
                     static_cast<std::uint64_t>(r.makespan)),
                 TextTable::num(
                     static_cast<std::uint64_t>(opt_ms)),
                 opt ? TextTable::num(
                           static_cast<double>(r.makespan) /
                               static_cast<double>(opt_ms),
                           2)
                     : std::string("-")});
        }
    }
    h.table(e);

    std::cout << "\nShape check: the online protocol stays within a"
                 " small constant factor of the offline lower bound"
                 " for random patterns (the paper conjectured good"
                 " competitiveness; this harness measures it).\n";
    return 0;
}
