/**
 * @file
 * Experiment E13 (paper section 2.1: "for efficiency reasons, one
 * may like to organize the communication as two parallel
 * unidirectional rings"): single one-way RMB vs the dual
 * counter-rotating ring system.
 *
 * The dual ring spends 2k buses (k per direction); we therefore
 * also include a single ring with 2k buses so the comparison
 * separates *direction choice* from raw bus count.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/dual_ring.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

double
runSingle(std::uint32_t n, std::uint32_t k,
          const workload::PairList &pairs, std::uint32_t payload,
          std::uint64_t seed)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.seed = seed;
    cfg.verify = core::VerifyLevel::Off;
    core::RmbNetwork net(s, cfg);
    const auto r = workload::runBatch(net, pairs, payload,
                                      20'000'000);
    return r.completed ? static_cast<double>(r.makespan) : -1.0;
}

double
runDual(std::uint32_t n, std::uint32_t k,
        const workload::PairList &pairs, std::uint32_t payload,
        std::uint64_t seed)
{
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = k;
    cfg.seed = seed;
    cfg.verify = core::VerifyLevel::Off;
    core::DualRingRmbNetwork net(s, cfg);
    const auto r = workload::runBatch(net, pairs, payload,
                                      20'000'000);
    return r.completed ? static_cast<double>(r.makespan) : -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E13", "one-way ring vs two counter-rotating"
                         " rings (section 2.1)");

    const std::uint32_t n = 32;
    const std::uint32_t k = 4;
    const std::uint32_t payload = 32;
    const int trials = h.fast() ? 2 : 6;

    TextTable t("batch makespan (ticks), N = 32; dual ring = k=" +
                    std::to_string(k) + " per direction",
                {"pattern", "single k=4", "single k=8",
                 "dual 2x4", "dual/single-k8"});

    struct Pattern
    {
        std::string name;
        workload::PairList pairs;
    };
    std::vector<Pattern> patterns;
    for (std::uint32_t shift : {1u, 8u, 16u, 24u, 31u}) {
        patterns.push_back({"rotation-" + std::to_string(shift),
                            workload::toPairs(
                                workload::rotation(n, shift))});
    }
    {
        sim::Random rng(77);
        patterns.push_back({"random perm",
                            workload::toPairs(
                                workload::randomFullTraffic(n,
                                                            rng))});
    }

    for (const auto &p : patterns) {
        double single4 = 0.0;
        double single8 = 0.0;
        double dual = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
            const auto seed =
                static_cast<std::uint64_t>(trial) + 1;
            single4 += runSingle(n, 4, p.pairs, payload, seed);
            single8 += runSingle(n, 8, p.pairs, payload, seed);
            dual += runDual(n, 4, p.pairs, payload, seed);
        }
        t.addRow({p.name, TextTable::num(single4 / trials, 0),
                  TextTable::num(single8 / trials, 0),
                  TextTable::num(dual / trials, 0),
                  TextTable::num(dual / single8, 2)});
    }
    h.table(t);

    std::cout << "\nShape check: for rotations past N/2 the dual"
                 " ring routes counter-clockwise and wins by the"
                 " distance ratio (e.g. rotation-31 -> 1 hop instead"
                 " of 31); at equal total buses (2x4 vs 1x8) the"
                 " dual ring wins everywhere distance can be"
                 " halved, tying only truly bidirectional-neutral"
                 " patterns like tornado (rotation-16).\n";
    return 0;
}
