/**
 * @file
 * Experiment E15 (paper section 4: RMB for 2-D grid connected
 * computers): the torus of RMB rings vs a single large RMB ring and
 * vs the circuit-switched 2-D mesh baseline, at matched node
 * counts.
 */

#include <iostream>

#include "baselines/mesh.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/grid.hh"
#include "rmb/network.hh"
#include "rmb/torus.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E15", "2-D grid of RMB rings vs one large ring"
                         " vs mesh (section 4 future work)");

    const std::uint32_t payload = 32;
    const int trials = h.fast() ? 2 : 5;
    const sim::Random root(h.seed(15));

    TextTable t("random permutation makespan (ticks); torus rings"
                " and single ring both use k = 4",
                {"nodes", "layout", "RMB torus", "RMB single ring",
                 "Mesh (1 ch)", "torus mean hops",
                 "ring mean hops"});
    struct Shape
    {
        std::uint32_t w;
        std::uint32_t h;
    };
    for (const Shape shape : {Shape{4, 4}, Shape{8, 4},
                              Shape{8, 8}}) {
        const std::uint32_t n = shape.w * shape.h;
        double torus_ms = 0.0;
        double ring_ms = 0.0;
        double mesh_ms = 0.0;
        double torus_hops = 0.0;
        double ring_hops = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
            // All three networks in a row share the trial substream:
            // same permutation, same network seed.
            const sim::Random trial_root =
                root.split(n).split(
                    static_cast<std::uint64_t>(trial));
            const std::uint64_t net_seed =
                trial_root.split(1).next();
            sim::Random rng = trial_root.split(0);
            const auto pairs = workload::toPairs(
                workload::randomFullTraffic(n, rng));
            {
                sim::Simulator s;
                core::RmbConfig cfg;
                cfg.numBuses = 4;
                cfg.seed = net_seed;
                cfg.verify = core::VerifyLevel::Off;
                core::RmbTorusNetwork net(s, shape.w, shape.h,
                                          cfg);
                const auto r = workload::runBatch(net, pairs,
                                                  payload,
                                                  20'000'000);
                torus_ms += static_cast<double>(r.makespan);
                torus_hops += net.stats().pathLength.mean();
            }
            {
                sim::Simulator s;
                core::RmbConfig cfg;
                cfg.numNodes = n;
                cfg.numBuses = 4;
                cfg.seed = net_seed;
                cfg.verify = core::VerifyLevel::Off;
                core::RmbNetwork net(s, cfg);
                const auto r = workload::runBatch(net, pairs,
                                                  payload,
                                                  20'000'000);
                ring_ms += static_cast<double>(r.makespan);
                ring_hops += net.stats().pathLength.mean();
            }
            {
                sim::Simulator s;
                baseline::CircuitConfig cfg;
                cfg.seed = net_seed;
                baseline::MeshNetwork net(s, shape.w, shape.h,
                                          cfg);
                const auto r = workload::runBatch(net, pairs,
                                                  payload,
                                                  20'000'000);
                mesh_ms += static_cast<double>(r.makespan);
            }
        }
        t.addRow({TextTable::num(std::uint64_t{n}),
                  std::to_string(shape.w) + "x" +
                      std::to_string(shape.h),
                  TextTable::num(torus_ms / trials, 0),
                  TextTable::num(ring_ms / trials, 0),
                  TextTable::num(mesh_ms / trials, 0),
                  TextTable::num(torus_hops / trials, 2),
                  TextTable::num(ring_hops / trials, 2)});
    }
    h.table(t);

    // 1-D vs 2-D vs 3-D at 64 nodes (the paper names 3-D grids
    // explicitly).
    TextTable d("64 nodes, k = 4 rings: dimensionality sweep,"
                " random permutation",
                {"layout", "makespan", "mean hops", "rings",
                 "multi-leg msgs"});
    sim::Random rng = root.split(99);
    const auto pairs =
        workload::toPairs(workload::randomFullTraffic(64, rng));
    struct Layout
    {
        std::string name;
        std::vector<std::uint32_t> dims;
    };
    for (const Layout &layout :
         {Layout{"1-D ring (64)", {64}},
          Layout{"2-D torus (8x8)", {8, 8}},
          Layout{"3-D grid (4x4x4)", {4, 4, 4}}}) {
        sim::Simulator s;
        core::RmbConfig cfg;
        cfg.numBuses = 4;
        cfg.verify = core::VerifyLevel::Off;
        core::RmbGridNetwork net(s, layout.dims, cfg);
        const auto r =
            workload::runBatch(net, pairs, payload, 20'000'000);
        std::uint32_t rings = 0;
        for (std::uint32_t dim = 0;
             dim < net.numDims(); ++dim) {
            rings += net.numNodes() / net.dimExtent(dim);
        }
        d.addRow({layout.name,
                  r.completed
                      ? TextTable::num(static_cast<std::uint64_t>(
                            r.makespan))
                      : std::string("DNF"),
                  TextTable::num(net.stats().pathLength.mean(), 2),
                  TextTable::num(std::uint64_t{rings}),
                  TextTable::num(net.multiLegMessages())});
    }
    h.table(d);

    std::cout << "\nShape check: composing RMB rings into a grid"
                 " cuts mean path from ~N/2 to ~(W+H)/2 and the"
                 " makespan gap to the mesh shrinks accordingly -"
                 " the scalability route sections 1 and 4 sketch"
                 " (ring modules interconnected into larger"
                 " topologies).\n";
    return 0;
}
