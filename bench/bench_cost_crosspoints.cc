/**
 * @file
 * Experiment E2 (paper section 3.2, cross points): the number of
 * wire intersections each architecture needs to support a
 * k-permutation.  The paper's headline: RMB = 3*N*k beats the
 * hypercube family's N*(log N + 1)^2 and is comparable to the
 * fat tree's O(N*k) with a larger constant.
 */

#include <iostream>

#include "analysis/cost_model.hh"
#include "bench/bench_util.hh"
#include "common/bitutils.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;
    using namespace rmb::analysis;

    bench::Harness h(argc, argv, "E2", "cross points per architecture"
                        " (section 3.2)");

    for (std::uint64_t n : {64ull, 256ull, 1024ull}) {
        TextTable t("cross points, N = " + std::to_string(n),
                    {"k", "RMB (3Nk)", "Hypercube", "EHC", "FatTree",
                     "Mesh (16Nk)", "RMB/EHC"});
        for (std::uint64_t k = 2; k <= 2 * log2Floor(n); k *= 2) {
            const auto rmb = rmbCosts(n, k).crossPoints;
            const auto ehc = ehcCosts(n).crossPoints;
            t.addRow({TextTable::num(k), TextTable::num(rmb),
                      TextTable::num(hypercubeCosts(n).crossPoints),
                      TextTable::num(ehc),
                      TextTable::num(fatTreeCosts(n, k).crossPoints),
                      TextTable::num(meshCosts(n, k).crossPoints),
                      TextTable::num(static_cast<double>(rmb) /
                                         static_cast<double>(ehc),
                                     3)});
        }
        h.table(t);
    }

    std::cout << "Paper shape check: for k = log N the RMB/EHC ratio"
                 " stays well below 1 and shrinks with N.\n";
    return 0;
}
