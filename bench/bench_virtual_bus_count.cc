/**
 * @file
 * Experiment E8 (paper section 4): "an RMB with k buses should not
 * be considered equivalent of a k bus system ... it will support
 * [many more than] k virtual buses simultaneously."  We measure the
 * peak and average number of concurrently open virtual buses under
 * ring-local traffic of varying locality and compare with k.
 */

#include <iostream>
#include <memory>

#include "baselines/multibus.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/traffic.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E8", "virtual buses vs physical buses"
                        " (section 4 closing remark)");

    const sim::Tick duration = h.fast() ? 30'000 : 120'000;
    const std::uint32_t n = 32;
    const std::uint32_t payload = 64;

    TextTable t("concurrent circuits under open-loop load, N = 32",
                {"network", "k", "locality", "rate/node",
                 "peak circuits", "avg circuits", "peak/k"});

    for (std::uint32_t k : {2u, 4u}) {
        for (std::uint32_t max_dist : {2u, 4u, 16u}) {
            for (bool rmb_net : {true, false}) {
                sim::Simulator s;
                std::unique_ptr<net::Network> net;
                if (rmb_net) {
                    core::RmbConfig cfg;
                    cfg.numNodes = n;
                    cfg.numBuses = k;
                    cfg.verify = core::VerifyLevel::Off;
                    net = std::make_unique<core::RmbNetwork>(s, cfg);
                } else {
                    baseline::CircuitConfig cfg;
                    net = std::make_unique<
                        baseline::MultiBusNetwork>(s, n, k, cfg);
                }
                workload::LocalRingTraffic pattern(n, max_dist);
                sim::Random rng(k * 100 + max_dist);
                const double rate = 0.01;
                (void)workload::runOpenLoop(*net, pattern, rate,
                                            payload, duration, rng,
                                            duration / 10);
                const auto &cs = net->stats().activeCircuits;
                t.addRow(
                    {net->name(), TextTable::num(std::uint64_t{k}),
                     "d<=" + std::to_string(max_dist),
                     TextTable::num(rate, 3),
                     TextTable::num(static_cast<std::uint64_t>(
                         cs.maximum())),
                     TextTable::num(cs.average(s.now()), 2),
                     TextTable::num(static_cast<double>(
                                        cs.maximum()) /
                                        k,
                                    2)});
            }
        }
    }
    h.table(t);

    std::cout << "\nPaper shape check: under local traffic the RMB"
                 " sustains several times k concurrent virtual"
                 " buses (spatial reuse along the ring), while the"
                 " conventional k-bus system is pinned at k.\n";
    return 0;
}
