/**
 * @file
 * Experiment E3 (paper section 3.2, VLSI area): layout area per
 * architecture.  Shape: hypercube-family area Theta(N^2) crosses the
 * RMB's Theta(N*k) and loses for every realistic N; the fat tree's
 * O(N*k) carries a constant of at least 12 against the RMB's ~1;
 * the expanded mesh matches the RMB's order.
 */

#include <iostream>

#include "analysis/cost_model.hh"
#include "bench/bench_util.hh"
#include "common/bitutils.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace rmb;
    using namespace rmb::analysis;

    bench::Harness h(argc, argv, "E3", "VLSI layout area per architecture"
                        " (section 3.2)");

    TextTable t("layout area (unit squares), k = 8 permutation"
                " capability",
                {"N", "k", "RMB (Nk)", "Hypercube (N^2)",
                 "FatTree (12Nk)", "Mesh (Nk)", "Hypercube/RMB"});
    for (std::uint64_t n : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
        const std::uint64_t k = 8;
        const auto rmb = rmbCosts(n, k).area;
        const auto hc = hypercubeCosts(n).area;
        t.addRow({TextTable::num(n), TextTable::num(k),
                  TextTable::num(rmb), TextTable::num(hc),
                  TextTable::num(fatTreeCosts(n, k).area),
                  TextTable::num(meshCosts(n, k).area),
                  TextTable::num(static_cast<double>(hc) /
                                     static_cast<double>(rmb),
                                 1)});
    }
    h.table(t);

    std::cout << "\nPaper shape check: the hypercube/RMB area ratio"
                 " grows ~ N / log N; the fat tree costs ~12x the"
                 " RMB at equal (N, k).\n";
    return 0;
}
