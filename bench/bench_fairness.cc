/**
 * @file
 * Experiment E19 (paper section 2.2): the top-bus-only injection
 * rule "has the potential of causing long delays for header flits
 * and being unfair in providing network access to different PEs.
 * These drawbacks are alleviated by allowing the compaction process
 * to start even before any acknowledgement to the header is
 * received."
 *
 * We measure exactly that: per-node *network access delay* (message
 * creation to first header injection, i.e. time spent waiting for
 * the local top segment) under sustained load, with compaction on
 * and off, summarized by Jain's fairness index and the worst/best
 * node ratio.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/traffic.hh"

namespace {

using namespace rmb;

struct Fairness
{
    double jain = 0.0;      //!< 1.0 = perfectly fair
    double worst = 0.0;     //!< worst node's mean access delay
    double best = 0.0;      //!< best node's mean access delay
    double mean = 0.0;
};

Fairness
run(bool compaction, core::HeaderPolicy policy, sim::Tick duration,
    double rate, std::uint32_t payload)
{
    const std::uint32_t n = 32;
    sim::Simulator s;
    core::RmbConfig cfg;
    cfg.numNodes = n;
    cfg.numBuses = 4;
    cfg.enableCompaction = compaction;
    cfg.headerPolicy = policy;
    cfg.verify = core::VerifyLevel::Off;
    core::RmbNetwork net(s, cfg);

    // Ring-local traffic keeps many long circuits alive across
    // every gap, so passing circuits regularly sit on top segments.
    workload::LocalRingTraffic pattern(n, 6);
    sim::Random rng(11);
    (void)workload::runOpenLoop(net, pattern, rate, payload,
                                duration, rng, duration / 10);

    // Per-source mean access delay (created -> first injection).
    std::vector<double> sum(n, 0.0);
    std::vector<std::uint64_t> count(n, 0);
    for (net::MessageId id = 1; id <= net.numMessages(); ++id) {
        const net::Message &m = net.message(id);
        if (m.state != net::MessageState::Delivered)
            continue;
        sum[m.src] += static_cast<double>(m.firstAttempt -
                                          m.created);
        ++count[m.src];
    }
    std::vector<double> per_node;
    for (std::uint32_t i = 0; i < n; ++i)
        if (count[i] > 0)
            per_node.push_back(sum[i] /
                               static_cast<double>(count[i]));

    Fairness f;
    double total = 0.0;
    double total_sq = 0.0;
    f.best = per_node.empty() ? 0.0 : per_node.front();
    for (const double v : per_node) {
        total += v;
        total_sq += v * v;
        f.worst = std::max(f.worst, v);
        f.best = std::min(f.best, v);
    }
    const auto m = static_cast<double>(per_node.size());
    f.jain = total_sq > 0.0 ? (total * total) / (m * total_sq)
                            : 1.0;
    f.mean = total / m;
    return f;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E19", "network-access fairness of top-bus"
                         " injection (section 2.2)");

    const sim::Tick duration =
        h.fast() ? 60'000 : 200'000;

    TextTable t("per-node access delay (creation -> injection),"
                " N = 32, k = 4, ring-local (d<=6), top-bus"
                " headers",
                {"load", "compaction", "mean", "best node",
                 "worst node", "Jain index"});
    struct Load
    {
        std::string name;
        double rate;
        std::uint32_t payload;
    };
    for (const Load &load :
         {Load{"light (r=0.0005, p=200)", 0.0005, 200},
          Load{"moderate (r=0.001, p=200)", 0.001, 200},
          Load{"heavy (r=0.001, p=400)", 0.001, 400}}) {
        for (const bool compaction : {true, false}) {
            const Fairness f =
                run(compaction, core::HeaderPolicy::PreferStraight,
                    duration, load.rate, load.payload);
            t.addRow({load.name, compaction ? "on" : "OFF",
                      TextTable::num(f.mean, 1),
                      TextTable::num(f.best, 1),
                      TextTable::num(f.worst, 1),
                      TextTable::num(f.jain, 3)});
        }
    }
    h.table(t);

    std::cout << "\nShape check (the section 2.2 claim): releasing"
                 " the top bus early roughly *halves* every node's"
                 " mean access delay at all load points - the"
                 " \"long delays for header flits\" the paper"
                 " worries about are exactly the no-compaction"
                 " rows.  On fairness the picture is subtler than"
                 " the paper implies: at light load no-compaction"
                 " is uniformly slow (high Jain but bad delays),"
                 " while under pressure compaction both lowers"
                 " delays and preserves fairness (heavier rows)."
                 "\n";
    return 0;
}
