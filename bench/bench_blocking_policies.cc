/**
 * @file
 * Experiment E12 (a finding of this reproduction, beyond the
 * paper): behaviour of a blocked header flit.  The paper asserts
 * top-bus injection "avoids any deadlocks while establishing
 * virtual bus connection"; we show that *holding* a partial virtual
 * bus while blocked (Wait) deadlocks once the ring is
 * oversubscribed - a cycle of partial buses each waiting on
 * segments held by the next - while tearing down and retrying
 * (NackRetry, our default, matching Theorem 1's wording) and
 * Wait-with-timeout both complete every batch.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "rmb/network.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"

namespace {

using namespace rmb;

struct Policy
{
    std::string name;
    core::BlockingPolicy blocking;
    sim::Tick timeout;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rmb;

    bench::Harness h(argc, argv, "E12", "blocked-header policies: deadlock"
                         " frequency and cost");

    const int trials = h.fast() ? 4 : 12;
    const std::uint32_t n = 16;
    const std::uint32_t payload = 24;
    const sim::Random root(h.seed(12));

    const std::vector<Policy> policies{
        {"Wait (hold bus)", core::BlockingPolicy::Wait, 0},
        {"Wait + timeout 400", core::BlockingPolicy::Wait, 400},
        {"NackRetry (default)", core::BlockingPolicy::NackRetry, 0},
    };

    TextTable t("random full permutations, N = 16 (ring load >> k"
                " when k is small)",
                {"policy", "k", "completed", "deadlocked",
                 "mean makespan (done)", "aborts/msg"});
    for (const auto &p : policies) {
        for (std::uint32_t k : {2u, 4u, 8u}) {
            int completed = 0;
            int deadlocked = 0;
            double makespan = 0.0;
            double aborts = 0.0;
            for (int trial = 0; trial < trials; ++trial) {
                sim::Simulator s;
                core::RmbConfig cfg;
                cfg.numNodes = n;
                cfg.numBuses = k;
                // Same trial -> same permutation and network seed
                // for every policy/k cell, so rows differ only by
                // the policy under test.
                const sim::Random trial_root =
                    root.split(static_cast<std::uint64_t>(trial));
                cfg.seed = trial_root.split(0).next();
                cfg.blocking = p.blocking;
                cfg.headerTimeout = p.timeout;
                cfg.verify = core::VerifyLevel::Off;
                core::RmbNetwork net(s, cfg);
                sim::Random rng = trial_root.split(1);
                const auto pairs = workload::toPairs(
                    workload::randomFullTraffic(n, rng));
                const auto r = workload::runBatch(net, pairs,
                                                  payload, 400'000);
                if (r.completed) {
                    ++completed;
                    makespan += static_cast<double>(r.makespan);
                } else {
                    ++deadlocked;
                }
                const auto &rs = net.rmbStats();
                aborts += static_cast<double>(rs.blockedAborts +
                                              rs.timeoutAborts) /
                          static_cast<double>(pairs.size());
            }
            t.addRow({p.name, TextTable::num(std::uint64_t{k}),
                      std::to_string(completed) + "/" +
                          std::to_string(trials),
                      std::to_string(deadlocked),
                      completed
                          ? TextTable::num(makespan / completed, 0)
                          : std::string("-"),
                      TextTable::num(aborts / trials, 2)});
        }
    }
    h.table(t);

    std::cout << "\nFinding: pure Wait wedges at small k (all"
                 " segments held by mutually-blocked partial"
                 " buses); both recovery mechanisms complete every"
                 " batch, with NackRetry needing no tuned timeout."
                 " See EXPERIMENTS.md.\n";
    return 0;
}
