#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace rmb {
namespace sim {

void
SampleStat::add(double v)
{
    ++count_;
    sum_ += v;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    // Welford's online mean/variance update.
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    if (keepSamples_) {
        samples_.push_back(v);
        sorted_ = false;
    }
}

double
SampleStat::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double
SampleStat::max() const
{
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double
SampleStat::mean() const
{
    return count_ ? mean_ : std::numeric_limits<double>::quiet_NaN();
}

double
SampleStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
SampleStat::stddev() const
{
    return std::sqrt(variance());
}

double
SampleStat::percentile(double p) const
{
    rmb_assert(p >= 0.0 && p <= 100.0, "percentile(", p, ")");
    if (!keepSamples_ || samples_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    // Nearest-rank with linear interpolation.
    const double rank = p / 100.0 *
        static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void
SampleStat::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
    mean_ = m2_ = 0.0;
    samples_.clear();
    sorted_ = true;
}

void
BusyTracker::setBusy(Tick now)
{
    if (busy_)
        return;
    busy_ = true;
    since_ = now;
}

void
BusyTracker::setFree(Tick now)
{
    if (!busy_)
        return;
    rmb_assert(now >= since_, "time ran backwards in BusyTracker");
    accumulated_ += now - since_;
    busy_ = false;
}

Tick
BusyTracker::busyTicks(Tick now) const
{
    Tick total = accumulated_;
    if (busy_ && now > since_)
        total += now - since_;
    return total;
}

double
BusyTracker::utilization(Tick now) const
{
    if (now == 0)
        return 0.0;
    return static_cast<double>(busyTicks(now)) /
           static_cast<double>(now);
}

void
LevelTracker::set(Tick now, std::int64_t value)
{
    rmb_assert(now >= lastChange_, "time ran backwards in LevelTracker");
    weighted_ += static_cast<double>(value_) *
                 static_cast<double>(now - lastChange_);
    lastChange_ = now;
    value_ = value;
    max_ = std::max(max_, value_);
}

void
LevelTracker::adjust(Tick now, std::int64_t delta)
{
    set(now, value_ + delta);
}

double
LevelTracker::average(Tick now) const
{
    if (now == 0)
        return static_cast<double>(value_);
    double weighted = weighted_ +
        static_cast<double>(value_) *
        static_cast<double>(now - lastChange_);
    return weighted / static_cast<double>(now);
}

} // namespace sim
} // namespace rmb
