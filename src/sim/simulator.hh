/**
 * @file
 * The simulation driver: owns the clock and the event queue.
 */

#ifndef RMB_SIM_SIMULATOR_HH
#define RMB_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace rmb {
namespace sim {

/**
 * Single-threaded discrete-event simulator.
 *
 * Components keep a reference to the Simulator, schedule work with
 * schedule()/scheduleAt(), and read the current time with now().  The
 * owner drives the simulation with run(), runUntil() or runFor().
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    schedule(Tick delay, EventQueue::Callback cb)
    {
        return events_.schedule(now_ + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute time @p when (>= now). */
    EventId scheduleAt(Tick when, EventQueue::Callback cb);

    /** Cancel a pending event; see EventQueue::cancel. */
    bool cancel(EventId id) { return events_.cancel(id); }

    /**
     * Run until the event queue drains or @p max_events fire.
     * @return number of events executed by this call.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * Run all events with tick <= @p until; afterwards now() == until
     * even if the queue drained early.
     * @return number of events executed by this call.
     */
    std::uint64_t runUntil(Tick until);

    /** Run for @p duration ticks from the current time. */
    std::uint64_t runFor(Tick duration) {
        return runUntil(now_ + duration);
    }

    /** @return true once no live events remain. */
    bool idle() const { return events_.empty(); }

    /**
     * Advance the clock to @p to without executing events, provided
     * nothing is pending at or before @p to and the active run
     * horizon (runUntil/runFor) does not end first.
     *
     * This is the fast path for self-clocked components: inside an
     * event callback they may consume their own future work directly
     * instead of bouncing every tick through the event heap.  The
     * horizon guard keeps runUntil() exact — a component can never
     * advance time past the caller's stopping point.
     *
     * @return true when the clock moved to @p to.
     */
    bool
    advanceIfIdle(Tick to)
    {
        if (to <= now_ || to > horizon_)
            return false;
        if (!events_.empty() && events_.nextTick() <= to)
            return false;
        now_ = to;
        return true;
    }

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t numExecuted() const { return events_.numExecuted(); }

    /** Direct queue access (tests and advanced schedulers). */
    EventQueue &eventQueue() { return events_; }

  private:
    EventQueue events_;
    Tick now_ = 0;
    /** Stopping point of the innermost runUntil(); limits advanceIfIdle. */
    Tick horizon_ = kMaxTick;
};

} // namespace sim
} // namespace rmb

#endif // RMB_SIM_SIMULATOR_HH
