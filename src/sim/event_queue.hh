/**
 * @file
 * The discrete-event queue underlying every simulation in this
 * repository.
 *
 * Events are arbitrary callables scheduled at absolute ticks.  Events
 * scheduled for the same tick fire in scheduling order (a stable FIFO
 * within a tick), which keeps simulations deterministic for a given
 * seed.  Events can be cancelled through the handle returned at
 * scheduling time.
 */

#ifndef RMB_SIM_EVENT_QUEUE_HH
#define RMB_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace rmb {
namespace sim {

/** Identifies a scheduled event so it can be cancelled. */
using EventId = std::uint64_t;

/** An event id that is never allocated. */
constexpr EventId kInvalidEventId = 0;

/**
 * Time-ordered queue of callbacks.  Not thread safe; the entire
 * simulator is single threaded by design.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to fire at absolute time @p when. */
    EventId schedule(Tick when, Callback cb);

    /**
     * Cancel a previously scheduled event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already fired, was already cancelled, or the
     *         id is invalid.
     */
    bool cancel(EventId id);

    /** @return true if no live (non-cancelled) events remain. */
    bool empty() const { return pending_.empty(); }

    /** Number of live pending events. */
    std::uint64_t size() const { return pending_.size(); }

    /** Tick of the earliest live event; kMaxTick when empty. */
    Tick nextTick() const;

    /**
     * Pop and run the earliest live event.  Must not be called on an
     * empty queue.
     * @return the tick the event fired at.
     */
    Tick runOne();

    /** Total number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;   //!< tie-break: FIFO within a tick
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries sitting at the head of the heap. */
    void skipCancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t numExecuted_ = 0;
};

} // namespace sim
} // namespace rmb

#endif // RMB_SIM_EVENT_QUEUE_HH
