/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We implement xoshiro256** (Blackman & Vigna) rather than relying on
 * std::mt19937 so simulation results are bit-identical across standard
 * library implementations.  Seeding uses SplitMix64 as recommended by
 * the xoshiro authors.
 */

#ifndef RMB_SIM_RANDOM_HH
#define RMB_SIM_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace rmb {
namespace sim {

/**
 * xoshiro256** generator with convenience distributions.  All
 * simulations in this repository draw exclusively from this class, so
 * a (seed, config) pair fully determines a run.
 */
class Random
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Raw 64 random bits. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); @p bound must be non-zero. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with success probability @p p. */
    bool bernoulli(double p);

    /**
     * Geometric inter-arrival gap (number of failures before the first
     * success) for per-tick injection probability @p p; the discrete
     * analogue of an exponential inter-arrival time.
     */
    std::uint64_t geometric(double p);

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for per-INC clocks). */
    Random fork();

    /**
     * Derive the @p streamId-th child generator without advancing
     * this one.  The child seed is produced by running the parent
     * state and the stream id through SplitMix64, so children for
     * distinct ids are decorrelated even when the ids are small
     * consecutive integers - use this instead of ad-hoc `seed + i`
     * offsets, which hand correlated state expansions to xoshiro.
     *
     * split() is a pure function of (parent state, streamId):
     * calling it repeatedly with the same id yields the same child,
     * and reordering split() calls cannot change any child stream.
     * That is the property the experiment engine relies on to make
     * sweep results independent of worker scheduling; fork() by
     * contrast consumes parent state and therefore depends on call
     * order.
     */
    Random split(std::uint64_t streamId) const;

  private:
    std::array<std::uint64_t, 4> s_;
};

} // namespace sim
} // namespace rmb

#endif // RMB_SIM_RANDOM_HH
