#include "sim/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace rmb {
namespace sim {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Random::uniformInt(std::uint64_t bound)
{
    rmb_assert(bound != 0, "uniformInt(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::uint64_t
Random::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    rmb_assert(lo <= hi, "uniformRange(", lo, ",", hi, ")");
    return lo + uniformInt(hi - lo + 1);
}

double
Random::uniformReal()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::bernoulli(double p)
{
    return uniformReal() < p;
}

std::uint64_t
Random::geometric(double p)
{
    rmb_assert(p > 0.0 && p <= 1.0, "geometric(p=", p, ")");
    if (p >= 1.0)
        return 0;
    double u = uniformReal();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

Random
Random::fork()
{
    return Random(next());
}

Random
Random::split(std::uint64_t streamId) const
{
    // Fold the full parent state into one word (rotations keep the
    // four lanes from cancelling), offset by the stream id scaled
    // with the golden-ratio constant, then scramble twice with
    // SplitMix64.  The child constructor expands the result again,
    // so even adjacent ids land in unrelated xoshiro states.
    std::uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^
                       rotl(s_[3], 47);
    sm += (streamId + 1) * 0x9e3779b97f4a7c15ull;
    const std::uint64_t a = splitMix64(sm);
    const std::uint64_t b = splitMix64(sm);
    return Random(a ^ rotl(b, 32));
}

} // namespace sim
} // namespace rmb
