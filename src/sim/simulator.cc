#include "sim/simulator.hh"

#include "common/logging.hh"

namespace rmb {
namespace sim {

EventId
Simulator::scheduleAt(Tick when, EventQueue::Callback cb)
{
    rmb_assert(when >= now_, "scheduling into the past: when=", when,
               " now=", now_);
    return events_.schedule(when, std::move(cb));
}

std::uint64_t
Simulator::run(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!events_.empty() && executed < max_events) {
        now_ = events_.nextTick();
        events_.runOne();
        ++executed;
    }
    return executed;
}

std::uint64_t
Simulator::runUntil(Tick until)
{
    const Tick saved_horizon = horizon_;
    horizon_ = until;
    std::uint64_t executed = 0;
    while (!events_.empty() && events_.nextTick() <= until) {
        now_ = events_.nextTick();
        events_.runOne();
        ++executed;
    }
    if (now_ < until)
        now_ = until;
    horizon_ = saved_horizon;
    return executed;
}

} // namespace sim
} // namespace rmb
