/**
 * @file
 * Fundamental simulation types.
 */

#ifndef RMB_SIM_TYPES_HH
#define RMB_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace rmb {
namespace sim {

/** Simulated time, in abstract ticks. */
using Tick = std::uint64_t;

/** A tick value that no event will ever reach. */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

} // namespace sim
} // namespace rmb

#endif // RMB_SIM_TYPES_HH
