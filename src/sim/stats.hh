/**
 * @file
 * Statistics primitives used by all networks and benches.
 */

#ifndef RMB_SIM_STATS_HH
#define RMB_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace rmb {
namespace sim {

/**
 * Scalar sample accumulator: count / sum / min / max / mean / variance
 * (Welford) plus exact percentiles from retained samples.
 *
 * Retention can be disabled for very large runs; percentiles then
 * return NaN but the moments remain exact.
 */
class SampleStat
{
  public:
    explicit SampleStat(bool keep_samples = true)
        : keepSamples_(keep_samples)
    {}

    /** Record one sample. */
    void add(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;

    /**
     * Exact percentile from retained samples; @p p in [0, 100].
     * Returns NaN if retention is off or no samples were added.
     */
    double percentile(double p) const;

    /** Reset to the empty state. */
    void reset();

  private:
    bool keepSamples_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Tracks the busy fraction of a binary resource over simulated time
 * (e.g. one physical bus segment).  Feed it setBusy()/setFree() edges
 * and ask for the time-weighted utilization.
 */
class BusyTracker
{
  public:
    /** Mark the resource busy at time @p now (idempotent). */
    void setBusy(Tick now);

    /** Mark the resource free at time @p now (idempotent). */
    void setFree(Tick now);

    /** Busy fraction of the window [0, now]. */
    double utilization(Tick now) const;

    /** Total ticks spent busy up to @p now. */
    Tick busyTicks(Tick now) const;

    bool busy() const { return busy_; }

  private:
    bool busy_ = false;
    Tick since_ = 0;
    Tick accumulated_ = 0;
};

/**
 * Integer-valued level that changes over time (e.g. number of live
 * virtual buses); tracks the time-weighted average and the maximum.
 */
class LevelTracker
{
  public:
    /** Record a level change to @p value at time @p now. */
    void set(Tick now, std::int64_t value);

    /** Adjust by @p delta at time @p now. */
    void adjust(Tick now, std::int64_t delta);

    std::int64_t current() const { return value_; }
    std::int64_t maximum() const { return max_; }

    /** Time-weighted mean level over [0, now]. */
    double average(Tick now) const;

  private:
    std::int64_t value_ = 0;
    std::int64_t max_ = 0;
    Tick lastChange_ = 0;
    double weighted_ = 0.0;
};

} // namespace sim
} // namespace rmb

#endif // RMB_SIM_STATS_HH
