#include "sim/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace rmb {
namespace sim {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    rmb_assert(cb, "scheduling a null callback");
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(cb)});
    pending_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Cancellation is lazy: the heap entry stays buried and is skipped
    // when it surfaces.  An id absent from pending_ already fired or
    // was already cancelled.
    return pending_.erase(id) == 1;
}

void
EventQueue::skipCancelled()
{
    while (!heap_.empty() &&
           pending_.find(heap_.top().id) == pending_.end()) {
        heap_.pop();
    }
}

Tick
EventQueue::nextTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return heap_.empty() ? kMaxTick : heap_.top().when;
}

Tick
EventQueue::runOne()
{
    skipCancelled();
    rmb_assert(!heap_.empty(), "runOne() on an empty event queue");
    // Copy the entry out before popping so the callback can freely
    // schedule new events (which may reallocate the heap).
    Entry top = heap_.top();
    heap_.pop();
    pending_.erase(top.id);
    ++numExecuted_;
    top.cb();
    return top.when;
}

} // namespace sim
} // namespace rmb
