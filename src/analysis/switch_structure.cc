#include "analysis/switch_structure.hh"

#include <queue>

#include "common/logging.hh"

namespace rmb {
namespace analysis {

SwitchStructure::SwitchStructure(std::uint32_t k) : k_(k)
{
    rmb_assert(k >= 1, "a switch needs at least one level");
    matrix_.assign(k_, std::vector<bool>(k_, false));
    for (std::uint32_t out = 0; out < k_; ++out) {
        // Output port `out` selects among inputs out-1, out, out+1
        // (paper section 2.2 / Figure 6), clamped at the edges.
        for (int d = -1; d <= 1; ++d) {
            const int in = static_cast<int>(out) + d;
            if (in >= 0 && in < static_cast<int>(k_))
                matrix_[static_cast<std::uint32_t>(in)][out] = true;
        }
    }
}

bool
SwitchStructure::connects(std::uint32_t in, std::uint32_t out) const
{
    rmb_assert(in < k_ && out < k_, "port out of range");
    return matrix_[in][out];
}

std::uint32_t
SwitchStructure::interIncCrossPoints() const
{
    std::uint32_t count = 0;
    for (std::uint32_t in = 0; in < k_; ++in)
        for (std::uint32_t out = 0; out < k_; ++out)
            count += matrix_[in][out] ? 1 : 0;
    return count;
}

std::uint32_t
SwitchStructure::stagesToReach(std::uint32_t from,
                               std::uint32_t to) const
{
    rmb_assert(from < k_ && to < k_, "port out of range");
    if (from == to)
        return 1; // one switch stage passes it straight through
    // BFS over "apply one switch stage" steps.
    std::vector<std::uint32_t> dist(k_, UINT32_MAX);
    std::queue<std::uint32_t> frontier;
    dist[from] = 0;
    frontier.push(from);
    while (!frontier.empty()) {
        const std::uint32_t level = frontier.front();
        frontier.pop();
        for (std::uint32_t next = 0; next < k_; ++next) {
            if (matrix_[level][next] &&
                dist[next] == UINT32_MAX) {
                dist[next] = dist[level] + 1;
                if (next == to)
                    return dist[next];
                frontier.push(next);
            }
        }
    }
    panic("switch graph is disconnected");
}

std::uint64_t
exactRmbCrossPoints(std::uint64_t n, std::uint64_t k,
                    bool include_pe)
{
    const SwitchStructure sw(static_cast<std::uint32_t>(k));
    std::uint64_t per_node = sw.interIncCrossPoints();
    if (include_pe)
        per_node += sw.peCrossPoints();
    return n * per_node;
}

} // namespace analysis
} // namespace rmb
