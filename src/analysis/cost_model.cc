#include "analysis/cost_model.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rmb {
namespace analysis {

namespace {

void
checkCommon(std::uint64_t n, std::uint64_t k)
{
    rmb_assert(n >= 2, "need at least 2 nodes, got ", n);
    rmb_assert(k >= 1 && k <= n, "permutation capability k=", k,
               " must be in [1, N=", n, "]");
}

} // namespace

Costs
rmbCosts(std::uint64_t n, std::uint64_t k)
{
    checkCommon(n, k);
    Costs c;
    c.links = n * k;
    c.crossPoints = 3 * n * k;
    c.area = n * k;
    c.bisection = k;
    return c;
}

Costs
hypercubeCosts(std::uint64_t n)
{
    rmb_assert(isPowerOfTwo(n), "hypercube needs N = 2^n, got ", n);
    const std::uint64_t dim = log2Floor(n);
    Costs c;
    c.links = n * dim;
    c.crossPoints = n * dim * dim;
    c.area = n * n;
    c.bisection = n / 2;
    return c;
}

Costs
ehcCosts(std::uint64_t n)
{
    rmb_assert(isPowerOfTwo(n), "EHC needs N = 2^n, got ", n);
    const std::uint64_t deg = log2Floor(n) + 1;
    Costs c;
    c.links = n * deg;
    c.crossPoints = n * deg * deg;
    c.area = n * n;
    c.bisection = n / 2 + n / 2; // doubled links in one dimension
    return c;
}

Costs
gfcCosts(std::uint64_t n, std::uint64_t k)
{
    checkCommon(n, k);
    rmb_assert(isPowerOfTwo(n), "GFC needs N = 2^n, got ", n);
    const std::uint64_t clusters = std::max<std::uint64_t>(n / k, 2);
    Costs c;
    // Paper's bound: fewer than (N/k) * log2(N/k) links.
    c.links = clusters * log2Ceil(clusters);
    const std::uint64_t deg = log2Ceil(clusters);
    c.crossPoints = clusters * (deg + 1) * (deg + 1);
    c.area = clusters * clusters;
    c.bisection = k;
    return c;
}

Costs
fatTreeCosts(std::uint64_t n, std::uint64_t k)
{
    checkCommon(n, k);
    rmb_assert(n % k == 0, "fat tree needs k | N; N=", n, " k=", k);
    rmb_assert(isPowerOfTwo(k), "fat tree leaf groups need k = 2^i");
    rmb_assert(isPowerOfTwo(n / k),
               "fat tree needs a power-of-two number of leaf groups");
    const std::uint64_t groups = n / k;
    Costs c;
    // Paper: N*log2(k) links inside the leaf groups plus
    // (N/k - 2)*k = N - 2k links in the tree above them.
    c.links = n * log2Floor(std::max<std::uint64_t>(k, 2)) + n -
              2 * k;
    c.crossPoints = (groups - 1) * 6 * k * k + groups * 6 * k * k;
    c.area = 12 * n * k;
    c.bisection = k;
    return c;
}

Costs
meshCosts(std::uint64_t n, std::uint64_t k)
{
    checkCommon(n, k);
    Costs c;
    const double root_k = std::sqrt(static_cast<double>(k));
    const auto expand =
        static_cast<std::uint64_t>(std::ceil(root_k));
    c.links = 2 * n * expand;
    c.crossPoints = 16 * n * k;
    c.area = n * k;
    const auto side = static_cast<std::uint64_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    c.bisection = side * expand;
    return c;
}

const std::vector<Architecture> &
allArchitectures()
{
    static const std::vector<Architecture> archs = {
        {"RMB (ring)", [](std::uint64_t n, std::uint64_t k) {
             return rmbCosts(n, k);
         },
         "k buses"},
        {"Hypercube", [](std::uint64_t n, std::uint64_t) {
             return hypercubeCosts(n);
         },
         "N = 2^n"},
        {"EHC", [](std::uint64_t n, std::uint64_t) {
             return ehcCosts(n);
         },
         "N = 2^n, full permutation"},
        {"GFC (scaled)", [](std::uint64_t n, std::uint64_t k) {
             return gfcCosts(n, k);
         },
         "N = 2^n"},
        {"Fat tree", [](std::uint64_t n, std::uint64_t k) {
             return fatTreeCosts(n, k);
         },
         "k | N, k = 2^i"},
        {"Mesh", [](std::uint64_t n, std::uint64_t k) {
             return meshCosts(n, k);
         },
         "expanded sqrt(k) per dim"},
    };
    return archs;
}

} // namespace analysis
} // namespace rmb
