/**
 * @file
 * Structural model of the INC switch.
 *
 * Section 3.2 counts the RMB's cross points as 3*N*k ("each output
 * has three cross points").  Here the switch is *constructed* - the
 * input-to-output connection matrix the paper's Figure 6 draws -
 * and the cross points are counted from the structure.  This both
 * cross-validates the paper's formula and refines it: boundary
 * ports (levels 0 and k-1) have only two inter-INC sources, so the
 * exact count is N*(3k-2), approaching 3*N*k from below as k grows.
 * The PE access muxes (write to any output, read from any input,
 * section 2.1) add 2k per node and are counted separately, since
 * the paper's figure excludes them.
 */

#ifndef RMB_ANALYSIS_SWITCH_STRUCTURE_HH
#define RMB_ANALYSIS_SWITCH_STRUCTURE_HH

#include <cstdint>
#include <vector>

namespace rmb {
namespace analysis {

/** The constructed connection matrix of one INC with k levels. */
class SwitchStructure
{
  public:
    /** Build the Figure-6 structure for @p k bus levels. */
    explicit SwitchStructure(std::uint32_t k);

    std::uint32_t numLevels() const { return k_; }

    /** Can input level @p in drive output level @p out? */
    bool connects(std::uint32_t in, std::uint32_t out) const;

    /** Inter-INC cross points of this switch (= 3k - 2). */
    std::uint32_t interIncCrossPoints() const;

    /** PE access cross points (write-any + read-any = 2k). */
    std::uint32_t peCrossPoints() const { return 2 * k_; }

    /**
     * Minimum number of consecutive INCs a signal must traverse to
     * get from input level @p from to output level @p to (BFS over
     * repeated switch stages); the RMB's +-1 switching reaches any
     * level in |from - to| stages.
     */
    std::uint32_t stagesToReach(std::uint32_t from,
                                std::uint32_t to) const;

  private:
    std::uint32_t k_;
    std::vector<std::vector<bool>> matrix_;
};

/**
 * Exact RMB cross-point count from the constructed switches:
 * N * (3k - 2), plus N * 2k when @p include_pe.
 */
std::uint64_t exactRmbCrossPoints(std::uint64_t n, std::uint64_t k,
                                  bool include_pe = false);

} // namespace analysis
} // namespace rmb

#endif // RMB_ANALYSIS_SWITCH_STRUCTURE_HH
