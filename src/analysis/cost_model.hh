/**
 * @file
 * Analytic hardware-cost models from section 3.2 of the paper.
 *
 * For each architecture the paper counts, as a function of the node
 * count N and the permutation capability k (the network must route any
 * k-permutation):
 *
 *  - number of links,
 *  - number of cross points (wire intersections in the switches),
 *  - VLSI layout area, and
 *  - bisection bandwidth (in units of a single link bandwidth B).
 *
 * The formulas below follow the paper's own accounting, including its
 * constants (e.g. the fat tree's >= 6 cross points per k x k switch
 * stage and >= 12 area constant), so the generated tables reproduce
 * section 3.2 rather than some other textbook's numbers.  Where the
 * paper gives only an order (e.g. hypercube area Theta(N^2)) we use
 * constant 1 and say so in the bench output.
 */

#ifndef RMB_ANALYSIS_COST_MODEL_HH
#define RMB_ANALYSIS_COST_MODEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rmb {
namespace analysis {

/** Cost summary of one architecture at one (N, k) design point. */
struct Costs
{
    std::uint64_t links = 0;
    std::uint64_t crossPoints = 0;
    std::uint64_t area = 0;       //!< layout area, unit squares
    std::uint64_t bisection = 0;  //!< in units of link bandwidth B
};

/**
 * RMB on a ring: k buses between each adjacent INC pair.
 * links = N*k (all unit length), cross points = 3*N*k (each output
 * port selects among 3 inputs), area = Theta(N*k), bisection = k*B.
 */
Costs rmbCosts(std::uint64_t n, std::uint64_t k);

/**
 * Binary hypercube with N = 2^n nodes; paper accounting:
 * links = N*log2(N), cross points = N*(log2(N))^2, area = Theta(N^2).
 * Supports (at least) log2(N)-permutations without a known
 * contention-free embedding.
 */
Costs hypercubeCosts(std::uint64_t n);

/**
 * Enhanced hypercube (Choi & Somani): duplicate links in one
 * dimension; degree log2(N)+1, embeds any full permutation.
 * links = N*(log2(N)+1), cross points = N*(log2(N)+1)^2,
 * area = Theta(N^2).
 */
Costs ehcCosts(std::uint64_t n);

/**
 * Generalized folding cube scaled down to k-permutation capability;
 * the paper bounds its links by (N/k)*log2(N/k) and notes area and
 * cross points comparable to the EHC (Theta(N^2) area).
 */
Costs gfcCosts(std::uint64_t n, std::uint64_t k);

/**
 * Fat tree sized for k-permutations (paper Figure 11): N/k leaf
 * nodes of k PEs, k links per level above.
 * links = N*log2(k) + N - 2k,
 * cross points = (N/k - 1)*6*k^2 + (N/k)*6*k^2,
 * area = 12*N*k.
 */
Costs fatTreeCosts(std::uint64_t n, std::uint64_t k);

/**
 * 2-D mesh expanded by sqrt(k) per dimension so k wires cross any
 * submesh boundary: links = 2*N*sqrt(k) (rounded up), cross points =
 * 16*N*k, area = N*k, bisection = sqrt(N)*sqrt(k).
 */
Costs meshCosts(std::uint64_t n, std::uint64_t k);

/** A named architecture cost function of (N, k), for table loops. */
struct Architecture
{
    std::string name;
    std::function<Costs(std::uint64_t, std::uint64_t)> costs;
    /** Constraint note printed with the tables (e.g. "N = 2^n"). */
    std::string constraint;
};

/** All architectures compared in section 3.2, in the paper's order. */
const std::vector<Architecture> &allArchitectures();

} // namespace analysis
} // namespace rmb

#endif // RMB_ANALYSIS_COST_MODEL_HH
