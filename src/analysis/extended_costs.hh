/**
 * @file
 * Hardware-cost models for the systems this reproduction builds
 * beyond the paper's own comparison set, using the same accounting
 * style as section 3.2 (unit-cost links, cross points as switch
 * wire intersections, order-of-magnitude layout area).  The paper
 * names all three structures - two counter-rotating rings (section
 * 2.1), 2-D grids of RMBs and the k-ary n-cube (section 4) - but
 * costs none of them; these formulas are this reproduction's
 * extension and each choice is documented at the definition.
 */

#ifndef RMB_ANALYSIS_EXTENDED_COSTS_HH
#define RMB_ANALYSIS_EXTENDED_COSTS_HH

#include "analysis/cost_model.hh"

namespace rmb {
namespace analysis {

/**
 * Dual counter-rotating RMB: two independent planes of the ring
 * RMB.  links = 2*N*k, cross points = 6*N*k, area = 2*N*k (two
 * parallel unit-width bus bundles), bisection = 2*k (one k-bundle
 * per direction crosses each cut).
 */
Costs dualRingRmbCosts(std::uint64_t n, std::uint64_t k);

/**
 * W x H torus of RMB rings (k buses per ring): H row rings of W*k
 * links plus W column rings of H*k links = 2*N*k links and 6*N*k
 * cross points (every link still terminates in a 3-source port).
 * Area = 2*N*k (each node hosts a row-ring and a column-ring INC);
 * bisection = min(W, H) * k (cutting the torus across the narrow
 * dimension severs one one-way ring per row or column).
 */
Costs rmbTorusCosts(std::uint64_t width, std::uint64_t height,
                    std::uint64_t k);

/**
 * r-ary n-cube with bidirectional channels: links = 2*N*n (two
 * directed links per node per dimension); cross points: each node
 * is a (2n+1)-port crossbar, (2n+1)^2 per node; bisection = 2*N/r
 * (Dally's accounting: the cut crosses N/r rings, two directions
 * each); area = Theta(N * (2n)^2) for the per-node crossbars (wire
 * length effects, which favour low n, are left to the discussion -
 * the same simplification section 3.2 applies to the hypercube).
 */
Costs karyNcubeCosts(std::uint64_t radix, std::uint64_t dims);

} // namespace analysis
} // namespace rmb

#endif // RMB_ANALYSIS_EXTENDED_COSTS_HH
