#include "analysis/extended_costs.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rmb {
namespace analysis {

Costs
dualRingRmbCosts(std::uint64_t n, std::uint64_t k)
{
    const Costs single = rmbCosts(n, k);
    Costs c;
    c.links = 2 * single.links;
    c.crossPoints = 2 * single.crossPoints;
    c.area = 2 * single.area;
    c.bisection = 2 * single.bisection;
    return c;
}

Costs
rmbTorusCosts(std::uint64_t width, std::uint64_t height,
              std::uint64_t k)
{
    rmb_assert(width >= 2 && height >= 2,
               "torus needs width and height >= 2");
    rmb_assert(k >= 1, "torus needs k >= 1");
    const std::uint64_t n = width * height;
    Costs c;
    // H row rings of W*k links + W column rings of H*k links.
    c.links = height * (width * k) + width * (height * k);
    c.crossPoints = 3 * c.links;
    c.area = 2 * n * k;
    c.bisection = std::min(width, height) * k;
    return c;
}

Costs
karyNcubeCosts(std::uint64_t radix, std::uint64_t dims)
{
    rmb_assert(radix >= 2, "k-ary n-cube needs radix >= 2");
    rmb_assert(dims >= 1, "k-ary n-cube needs >= 1 dimension");
    std::uint64_t n = 1;
    for (std::uint64_t d = 0; d < dims; ++d)
        n *= radix;
    Costs c;
    c.links = 2 * n * dims;
    const std::uint64_t ports = 2 * dims + 1;
    c.crossPoints = n * ports * ports;
    c.area = n * (2 * dims) * (2 * dims);
    c.bisection = 2 * n / radix;
    return c;
}

} // namespace analysis
} // namespace rmb
