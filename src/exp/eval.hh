/**
 * @file
 * Point evaluation, sweep execution and report aggregation.
 *
 * runPoint() turns one PointConfig into one isolated simulation: its
 * own sim::Simulator, its own network, its own RNG substream (split
 * from the master seed at spec materialisation) - nothing shared, so
 * points can run concurrently and in any order.  Failures (invalid
 * configuration, simulated-tick timeout, runtime exception) are
 * captured in the PointResult instead of killing the sweep.
 *
 * runSweep() fans a spec's points across a Runner and aggregate()
 * merges the results into one obs::RunReport whose point array is in
 * grid order regardless of completion order, so the artifact is
 * byte-identical for every --jobs value.
 */

#ifndef RMB_EXP_EVAL_HH
#define RMB_EXP_EVAL_HH

#include <string>
#include <utility>
#include <vector>

#include "exp/runner.hh"
#include "exp/spec.hh"
#include "obs/run_report.hh"

namespace rmb {
namespace exp {

/** Outcome of one grid point. */
struct PointResult
{
    std::size_t index = 0;
    bool ok = false;
    /** Why the point failed; empty when ok. */
    std::string error;
    /** (metric name, serialised JSON value) in fixed emission
     *  order - the deterministic payload of the point. */
    std::vector<std::pair<std::string, std::string>> metrics;
};

/** Run one point in isolation; never throws on config/sim errors. */
PointResult runPoint(const PointConfig &point);

/** Everything a finished sweep produced, in grid order. */
struct SweepOutcome
{
    std::vector<PointConfig> points;
    std::vector<PointResult> results; //!< index-aligned with points
    std::size_t failures = 0;
};

/**
 * Materialise @p spec and execute every point on @p jobs workers
 * (0 = all cores).  @p progress, if set, observes completions as
 * they happen (wall-clock timings live only there).
 */
SweepOutcome runSweep(const SweepSpec &spec, unsigned jobs,
                      const ProgressFn &progress = {});

/**
 * Merge a sweep's per-point results into one RunReport: header
 * fields, the canonical spec (self-describing artifact), and a
 * "points" array in stable grid order.  Contains no wall-clock or
 * host information by design.
 */
obs::RunReport aggregate(const SweepSpec &spec,
                         const SweepOutcome &outcome);

} // namespace exp
} // namespace rmb

#endif // RMB_EXP_EVAL_HH
