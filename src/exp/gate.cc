#include "exp/gate.hh"

#include <cmath>

namespace rmb {
namespace exp {

namespace {

/** Tolerance table from the baseline's "tolerances" object. */
struct Tolerances
{
    std::vector<std::pair<std::string, double>> entries;

    static Tolerances
    load(const obs::JsonValue &baseline, GateOutcome &outcome)
    {
        Tolerances t;
        const obs::JsonValue *table = baseline.find("tolerances");
        if (table == nullptr)
            return t;
        if (!table->isObject()) {
            outcome.problems.push_back(
                "baseline 'tolerances' must be an object of"
                " name -> relative tolerance");
            return t;
        }
        for (const auto &[key, value] : table->members()) {
            if (!value.isNumber() || value.number() < 0.0) {
                outcome.problems.push_back(
                    "tolerance for '" + key +
                    "' must be a non-negative number, got " +
                    value.serialize());
                continue;
            }
            t.entries.emplace_back(key, value.number());
        }
        return t;
    }

    /**
     * Relative tolerance for the leaf at @p path whose final
     * segment is @p leaf: exact path beats bare metric name beats
     * "*" beats the command-line default.
     */
    double
    resolve(const std::string &path, const std::string &leaf,
            double fallback) const
    {
        const std::pair<std::string, double> *star = nullptr;
        const std::pair<std::string, double> *by_leaf = nullptr;
        for (const auto &entry : entries) {
            if (entry.first == path)
                return entry.second;
            if (entry.first == leaf)
                by_leaf = &entry;
            else if (entry.first == "*")
                star = &entry;
        }
        if (by_leaf != nullptr)
            return by_leaf->second;
        if (star != nullptr)
            return star->second;
        return fallback;
    }
};

class Gate
{
  public:
    Gate(const GateOptions &options, const Tolerances &tolerances,
         GateOutcome &outcome)
        : options_(options), tolerances_(tolerances),
          outcome_(outcome)
    {
    }

    void
    walk(const obs::JsonValue &base, const obs::JsonValue *live,
         const std::string &path, const std::string &leaf)
    {
        if (live == nullptr) {
            outcome_.problems.push_back(
                path + ": present in baseline but missing from the"
                       " fresh report");
            return;
        }
        switch (base.kind()) {
          case obs::JsonValue::Kind::Object:
            for (const auto &[key, value] : base.members()) {
                walk(value, live->find(key),
                     path.empty() ? key : path + '.' + key, key);
            }
            return;
          case obs::JsonValue::Kind::Array: {
            if (!live->isArray()) {
                outcome_.problems.push_back(
                    path + ": baseline has an array, fresh report"
                           " has " +
                    live->kindName());
                return;
            }
            if (live->array().size() != base.array().size()) {
                outcome_.problems.push_back(
                    path + ": baseline has " +
                    std::to_string(base.array().size()) +
                    " elements, fresh report has " +
                    std::to_string(live->array().size()));
                return;
            }
            for (std::size_t i = 0; i < base.array().size(); ++i) {
                walk(base.array()[i], &live->array()[i],
                     path + '[' + std::to_string(i) + ']', leaf);
            }
            return;
          }
          case obs::JsonValue::Kind::Number:
            compareNumber(base, *live, path, leaf);
            return;
          default:
            compareExact(base, *live, path);
            return;
        }
    }

  private:
    void
    compareNumber(const obs::JsonValue &base,
                  const obs::JsonValue &live,
                  const std::string &path, const std::string &leaf)
    {
        ++outcome_.compared;
        if (!live.isNumber()) {
            outcome_.problems.push_back(
                path + ": baseline has number " + base.serialize() +
                ", fresh report has " + live.kindName() + " " +
                live.serialize());
            return;
        }
        const double b = base.number();
        const double f = live.number();
        const double rtol =
            tolerances_.resolve(path, leaf, options_.rtol);
        const double budget =
            options_.atol + rtol * std::fabs(b);
        if (std::fabs(f - b) <= budget)
            return;
        outcome_.problems.push_back(
            path + ": fresh " + live.serialize() + " vs baseline " +
            base.serialize() + " drifts past tolerance (|delta| " +
            std::to_string(std::fabs(f - b)) + " > " +
            std::to_string(budget) + ")");
    }

    void
    compareExact(const obs::JsonValue &base,
                 const obs::JsonValue &live, const std::string &path)
    {
        ++outcome_.compared;
        if (base.serialize() != live.serialize()) {
            outcome_.problems.push_back(
                path + ": fresh " + live.serialize() +
                " != baseline " + base.serialize());
        }
    }

    const GateOptions &options_;
    const Tolerances &tolerances_;
    GateOutcome &outcome_;
};

} // namespace

GateOutcome
compareReports(const obs::JsonValue &fresh,
               const obs::JsonValue &baseline,
               const GateOptions &options)
{
    GateOutcome outcome;
    const Tolerances tolerances =
        Tolerances::load(baseline, outcome);
    Gate gate(options, tolerances, outcome);
    if (!baseline.isObject()) {
        outcome.problems.push_back(
            "baseline must be a JSON object, got " +
            std::string(baseline.kindName()));
    } else {
        for (const auto &[key, value] : baseline.members()) {
            if (key == "tolerances")
                continue; // gate configuration, not data
            gate.walk(value, fresh.find(key), key, key);
        }
    }
    outcome.pass = outcome.problems.empty();
    return outcome;
}

GateOutcome
compareReportTexts(const std::string &fresh_json,
                   const std::string &baseline_json,
                   const GateOptions &options)
{
    GateOutcome outcome;
    obs::JsonValue fresh;
    obs::JsonValue baseline;
    std::string error;
    if (!obs::jsonParse(fresh_json, fresh, error)) {
        outcome.problems.push_back("fresh report is not valid"
                                   " JSON: " +
                                   error);
    }
    if (!obs::jsonParse(baseline_json, baseline, error)) {
        outcome.problems.push_back("baseline is not valid JSON: " +
                                   error);
    }
    if (!outcome.problems.empty()) {
        outcome.pass = false;
        return outcome;
    }
    return compareReports(fresh, baseline, options);
}

} // namespace exp
} // namespace rmb
