#include "exp/eval.hh"

#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "baselines/fattree.hh"
#include "baselines/hypercube.hh"
#include "baselines/mesh.hh"
#include "baselines/multibus.hh"
#include "baselines/wormhole_ring.hh"
#include "common/bitutils.hh"
#include "obs/json.hh"
#include "obs/sinks.hh"
#include "obs/trace.hh"
#include "rmb/dual_ring.hh"
#include "rmb/engine.hh"
#include "rmb/network.hh"
#include "rmb/torus.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "workload/driver.hh"
#include "workload/permutation.hh"
#include "workload/traffic.hh"

namespace rmb {
namespace exp {

namespace {

std::string
num(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null";
    std::ostringstream out;
    out << v;
    return out.str();
}

std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

/** A failed PointResult with one actionable message. */
PointResult
failPoint(const PointConfig &pt, std::string why)
{
    PointResult r;
    r.index = pt.index;
    r.ok = false;
    r.error = std::move(why);
    return r;
}

core::RmbConfig
rmbConfig(const PointConfig &pt, std::uint64_t net_seed)
{
    core::RmbConfig cfg;
    cfg.numNodes = pt.nodes;
    cfg.numBuses = pt.buses;
    cfg.seed = net_seed;
    cfg.enableCompaction = pt.compaction;
    cfg.sendPorts = pt.sendPorts;
    cfg.receivePorts = pt.receivePorts;
    cfg.detailedFlits = pt.detailedFlits;
    if (pt.faultMtbf > 0) {
        cfg.transientFaults = true;
        cfg.faultMtbf = pt.faultMtbf;
        cfg.faultMttrMin = pt.faultMttrMin;
        cfg.faultMttrMax = pt.faultMttrMax;
    }
    cfg.watchdogTimeout = pt.watchdog;
    cfg.maxRetries = pt.maxRetries;
    cfg.verify = core::VerifyLevel::Off;
    cfg.headerPolicy = pt.header == "straight"
                           ? core::HeaderPolicy::PreferStraight
                           : core::HeaderPolicy::PreferLowest;
    if (pt.blocking == "wait") {
        cfg.blocking = core::BlockingPolicy::Wait;
    } else if (pt.blocking.rfind("wait:", 0) == 0) {
        cfg.blocking = core::BlockingPolicy::Wait;
        cfg.headerTimeout = std::stoull(pt.blocking.substr(5));
    } else {
        cfg.blocking = core::BlockingPolicy::NackRetry;
    }
    return cfg;
}

/**
 * Build the point's network, or return nullptr with @p error set.
 * Mirrors rmbsim's factory, but reports problems instead of calling
 * fatal() so one bad point cannot take down the sweep.
 */
std::unique_ptr<net::Network>
makeNetwork(const PointConfig &pt, sim::Simulator &simulator,
            std::uint64_t net_seed, std::string &error)
{
    const bool torus_like =
        pt.network == "torus" || pt.network == "mesh";
    const std::uint32_t nodes =
        torus_like ? pt.width * pt.height : pt.nodes;
    if (nodes < 2) {
        error = "network needs at least 2 nodes, got " +
                std::to_string(nodes);
        return nullptr;
    }

    if (pt.network == "rmb" || pt.network == "dualring" ||
        pt.network == "torus") {
        core::RmbConfig cfg = rmbConfig(pt, net_seed);
        if (pt.network == "rmb") {
            cfg.engine = pt.engine == "kernel"
                             ? core::EngineKind::Kernel
                             : core::EngineKind::Event;
        } else if (pt.engine != "event") {
            error = "network '" + pt.network +
                    "' only supports engine=event (the cycle"
                    " kernel backs the plain rmb ring)";
            return nullptr;
        }
        if (pt.network == "torus")
            cfg.numNodes = pt.width; // per-ring size; ctor resets it
        const auto problems = cfg.validate();
        if (!problems.empty()) {
            error = problems.front();
            for (std::size_t i = 1; i < problems.size(); ++i)
                error += "; " + problems[i];
            return nullptr;
        }
        if (pt.network == "rmb")
            return core::makeEngine(simulator, cfg);
        if (pt.network == "dualring")
            return std::make_unique<core::DualRingRmbNetwork>(
                simulator, cfg);
        return std::make_unique<core::RmbTorusNetwork>(
            simulator, pt.width, pt.height, cfg);
    }

    baseline::CircuitConfig circuit;
    circuit.seed = net_seed;
    if (pt.network == "ring")
        return std::make_unique<baseline::IdealRingNetwork>(
            simulator, nodes, pt.buses, circuit);
    if (pt.network == "mesh")
        return std::make_unique<baseline::MeshNetwork>(
            simulator, pt.width, pt.height, circuit);
    if (pt.network == "hypercube" || pt.network == "ehc") {
        if (!isPowerOfTwo(nodes)) {
            error = "network '" + pt.network +
                    "' needs nodes = 2^n, got " +
                    std::to_string(nodes);
            return nullptr;
        }
        return std::make_unique<baseline::HypercubeNetwork>(
            simulator, log2Floor(nodes), circuit,
            pt.network == "ehc");
    }
    if (pt.network == "fattree")
        return std::make_unique<baseline::FatTreeNetwork>(
            simulator, nodes, pt.buses, circuit);
    if (pt.network == "multibus")
        return std::make_unique<baseline::MultiBusNetwork>(
            simulator, nodes, pt.buses, circuit);
    if (pt.network == "wormhole") {
        baseline::WormholeConfig cfg;
        cfg.vcsPerClass = pt.buses / 2 ? pt.buses / 2 : 1;
        return std::make_unique<baseline::WormholeRingNetwork>(
            simulator, nodes, cfg);
    }
    error = "unknown network '" + pt.network + "'";
    return nullptr;
}

/** Batch pairs for permutation-style workloads; empty if the
 *  workload is stochastic.  Sets @p error for shape problems. */
workload::PairList
batchPairs(const PointConfig &pt, net::NodeId n, sim::Random &rng,
           std::string &error)
{
    const std::string &w = pt.workload;
    const bool pow2 = isPowerOfTwo(n);
    if ((w == "bitrev" || w == "shuffle" || w == "transpose") &&
        !pow2) {
        error = "workload '" + w + "' needs nodes = 2^n, got " +
                std::to_string(n);
        return {};
    }
    if (w == "transpose" && pow2 && log2Floor(n) % 2 != 0) {
        error = "workload 'transpose' needs an even number of"
                " address bits, got nodes = " +
                std::to_string(n);
        return {};
    }
    if (w == "randperm")
        return workload::toPairs(
            workload::randomFullTraffic(n, rng));
    if (w == "bitrev")
        return workload::toPairs(workload::bitReversal(n));
    if (w == "shuffle")
        return workload::toPairs(workload::perfectShuffle(n));
    if (w == "transpose")
        return workload::toPairs(workload::transpose(n));
    if (w == "tornado")
        return workload::toPairs(workload::rotation(n, n / 2));
    if (w.rfind("rot:", 0) == 0)
        return workload::toPairs(workload::rotation(
            n, static_cast<net::NodeId>(
                   std::stoul(w.substr(4)) % n)));
    if (w.rfind("hrel:", 0) == 0)
        return workload::randomHRelation(
            n, static_cast<std::uint32_t>(std::stoul(w.substr(5))),
            rng);
    return {};
}

std::unique_ptr<workload::TrafficPattern>
stochasticPattern(const PointConfig &pt, net::NodeId n)
{
    const std::string &w = pt.workload;
    if (w == "uniform")
        return std::make_unique<workload::UniformTraffic>(n);
    if (w.rfind("local:", 0) == 0)
        return std::make_unique<workload::LocalRingTraffic>(
            n, static_cast<net::NodeId>(std::stoul(w.substr(6))));
    if (w.rfind("hotspot:", 0) == 0)
        return std::make_unique<workload::HotSpotTraffic>(
            n, 0, std::stod(w.substr(8)));
    return nullptr;
}

void
appendNetworkMetrics(PointResult &r, const net::Network &network)
{
    const auto &s = network.stats();
    r.metrics.emplace_back("injected", num(s.injected.value()));
    r.metrics.emplace_back("delivered", num(s.delivered.value()));
    r.metrics.emplace_back("failed", num(s.failed.value()));
    r.metrics.emplace_back("nacks", num(s.nacks.value()));
    r.metrics.emplace_back("retries", num(s.retries.value()));
    r.metrics.emplace_back("mean_hops", num(s.pathLength.mean()));
    r.metrics.emplace_back(
        "peak_circuits",
        num(static_cast<std::uint64_t>(s.activeCircuits.maximum())));
    if (const auto *rmb =
            dynamic_cast<const core::Engine *>(&network)) {
        r.metrics.emplace_back(
            "compaction_moves",
            num(rmb->rmbStats().compactionMoves.value()));
        r.metrics.emplace_back(
            "max_cycle_skew",
            num(rmb->rmbStats().maxCycleSkew.value()));
        const core::RmbStats &rs = rmb->rmbStats();
        if (rs.faultsInjected.value() > 0 ||
            rs.watchdogFires.value() > 0) {
            r.metrics.emplace_back("faults_injected",
                                   num(rs.faultsInjected.value()));
            r.metrics.emplace_back("faults_repaired",
                                   num(rs.faultsRepaired.value()));
            r.metrics.emplace_back("buses_severed",
                                   num(rs.busesSevered.value()));
            r.metrics.emplace_back(
                "messages_recovered",
                num(rs.messagesRecovered.value()));
            r.metrics.emplace_back("messages_lost",
                                   num(rs.messagesLost.value()));
            r.metrics.emplace_back("watchdog_fires",
                                   num(rs.watchdogFires.value()));
            r.metrics.emplace_back(
                "mean_recovery_latency",
                num(rs.recoveryLatency.mean()));
        }
    }
}

/**
 * Per-kind protocol event counters as `trace.events.<kind>` metrics,
 * in EventKind order.  Zero counts are skipped so points on networks
 * that never emit a kind (baselines, no-fault runs) stay compact;
 * the set of emitted keys is a pure function of the point config and
 * seed, so sweep output stays byte-deterministic for any --jobs.
 */
void
appendTraceMetrics(PointResult &r, const obs::CountingSink &counts)
{
    for (std::size_t k = 0; k < obs::kNumEventKinds; ++k) {
        const auto kind = static_cast<obs::EventKind>(k);
        if (counts.count(kind) == 0)
            continue;
        r.metrics.emplace_back(
            "trace.events." + std::string(obs::eventKindName(kind)),
            num(counts.count(kind)));
    }
}

} // namespace

PointResult
runPoint(const PointConfig &pt)
{
    try {
        if (pt.payload == 0)
            return failPoint(pt, "payload must be >= 1 flit");

        // Independent substreams per concern, all pure functions of
        // the point seed: one for the network's internal randomness
        // (clock jitter, backoff), one for workload generation.
        const sim::Random point_root(pt.seed);
        const std::uint64_t net_seed = point_root.split(0).next();
        sim::Random wl_rng = point_root.split(1);

        sim::Simulator simulator;
        std::string error;
        // Declared before the network so the sink outlives it.
        obs::CountingSink trace_counts;
        auto network = makeNetwork(pt, simulator, net_seed, error);
        if (!network)
            return failPoint(pt, error);
        network->setTraceSink(&trace_counts);

        PointResult r;
        r.index = pt.index;

        const auto pairs =
            batchPairs(pt, network->numNodes(), wl_rng, error);
        if (!error.empty())
            return failPoint(pt, error);

        if (!pairs.empty()) {
            const auto b = workload::runBatch(*network, pairs,
                                              pt.payload, pt.timeout);
            r.metrics.emplace_back(
                "ticks",
                num(static_cast<std::uint64_t>(simulator.now())));
            r.metrics.emplace_back("completed",
                                   b.completed ? "true" : "false");
            r.metrics.emplace_back(
                "makespan",
                num(static_cast<std::uint64_t>(b.makespan)));
            r.metrics.emplace_back("mean_latency",
                                   num(b.meanLatency));
            r.metrics.emplace_back("max_latency", num(b.maxLatency));
            r.metrics.emplace_back("mean_setup",
                                   num(b.meanSetupLatency));
            appendNetworkMetrics(r, *network);
            appendTraceMetrics(r, trace_counts);
            // A timed-out batch is a captured failure, not a crash:
            // the metrics above still describe how far it got.
            r.ok = b.completed;
            if (!b.completed)
                r.error = "batch incomplete after " +
                          std::to_string(pt.timeout) +
                          " simulated ticks (timeout)";
            return r;
        }

        auto pattern = stochasticPattern(pt, network->numNodes());
        if (!pattern)
            return failPoint(pt, "unknown workload '" + pt.workload +
                                     "'");
        const auto o = workload::runOpenLoop(
            *network, *pattern, pt.rate, pt.payload, pt.duration,
            wl_rng, pt.duration / 5, pt.timeout);
        r.metrics.emplace_back(
            "ticks", num(static_cast<std::uint64_t>(simulator.now())));
        r.metrics.emplace_back("offered_load", num(o.offeredLoad));
        r.metrics.emplace_back("throughput", num(o.throughput));
        r.metrics.emplace_back("mean_latency", num(o.meanLatency));
        r.metrics.emplace_back("p95_latency", num(o.p95Latency));
        r.metrics.emplace_back("max_latency", num(o.maxLatency));
        r.metrics.emplace_back("mean_setup",
                               num(o.meanSetupLatency));
        appendNetworkMetrics(r, *network);
        appendTraceMetrics(r, trace_counts);
        r.ok = true;
        return r;
    } catch (const std::exception &e) {
        return failPoint(pt, std::string("exception: ") + e.what());
    }
}

SweepOutcome
runSweep(const SweepSpec &spec, unsigned jobs,
         const ProgressFn &progress)
{
    SweepOutcome outcome;
    outcome.points = spec.points();
    outcome.results.resize(outcome.points.size());

    std::mutex progress_mutex;
    std::size_t completed = 0;

    Runner runner(jobs);
    runner.forEach(outcome.points.size(), [&](std::size_t i) {
        const auto start = std::chrono::steady_clock::now();
        outcome.results[i] = runPoint(outcome.points[i]);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            Progress p;
            p.completed = ++completed;
            p.total = outcome.points.size();
            p.index = i;
            p.ok = outcome.results[i].ok;
            p.label = outcome.points[i].label;
            p.wallMillis = wall_ms;
            progress(p);
        }
    });

    for (const PointResult &r : outcome.results)
        if (!r.ok)
            ++outcome.failures;
    return outcome;
}

obs::RunReport
aggregate(const SweepSpec &spec, const SweepOutcome &outcome)
{
    obs::RunReport report("sweep");
    report.set("sweep", spec.name());
    report.set("seed", spec.masterSeed());
    report.set("points_total",
               static_cast<std::uint64_t>(outcome.points.size()));
    report.set("points_failed",
               static_cast<std::uint64_t>(outcome.failures));
    report.setRaw("spec", spec.canonicalJson());

    std::vector<std::string> docs;
    docs.reserve(outcome.points.size());
    for (std::size_t i = 0; i < outcome.points.size(); ++i) {
        const PointConfig &pt = outcome.points[i];
        const PointResult &r = outcome.results[i];
        obs::JsonWriter json;
        json.beginObject();
        json.field("index", static_cast<std::uint64_t>(pt.index));
        json.field("label", pt.label);
        json.field("seed", pt.seed);
        json.beginObject("params");
        for (const auto &[field, value] : pt.params)
            json.raw(field, value);
        json.endObject();
        json.field("ok", r.ok);
        json.field("error", r.error);
        json.beginObject("metrics");
        for (const auto &[name, value] : r.metrics)
            json.raw(name, value);
        json.endObject();
        json.endObject();
        docs.push_back(json.str());
    }
    report.setRaw("points", obs::jsonArray(docs));
    return report;
}

} // namespace exp
} // namespace rmb
