/**
 * @file
 * Declarative sweep specifications.
 *
 * A SweepSpec describes a grid of independent simulator
 * configurations - the shape behind every figure of the paper
 * (saturation curves, k-sweeps, ablations): a base point, a list of
 * axes over its fields, and a combination mode (cartesian product or
 * zipped tuples).  Specs load from JSON (see docs/SWEEPS.md for the
 * schema) and validate with one actionable message per problem, in
 * the style of RmbConfig::validate().
 *
 * Each materialised PointConfig carries its own seed, derived from
 * the spec's master seed with sim::Random::split(index), so any
 * subset of points can be re-run in any order - or on any number of
 * worker threads - without changing a single result.
 */

#ifndef RMB_EXP_SPEC_HH
#define RMB_EXP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_value.hh"
#include "sim/types.hh"

namespace rmb {
namespace exp {

/**
 * One grid point: a complete, self-contained simulation recipe.
 * Defaults mirror rmbsim's.
 */
struct PointConfig
{
    /** Position in the materialised grid (stable output order). */
    std::size_t index = 0;

    /** Human-readable "field=value" summary of the axis choices. */
    std::string label;

    /** Per-point seed split from the spec's master seed. */
    std::uint64_t seed = 1;

    std::string network = "rmb";
    std::uint32_t nodes = 16;
    std::uint32_t buses = 4;
    std::uint32_t width = 4;  //!< torus / mesh only
    std::uint32_t height = 4; //!< torus / mesh only

    std::string workload = "randperm";
    double rate = 0.001;          //!< stochastic workloads
    std::uint32_t payload = 32;   //!< data flits per message
    sim::Tick duration = 50'000;  //!< stochastic generation window

    bool compaction = true;
    std::string engine = "event";  //!< rmb backend: event | kernel
    std::string blocking = "nack"; //!< nack | wait | wait:<t>
    std::string header = "lowest"; //!< lowest | straight
    std::uint32_t sendPorts = 1;
    std::uint32_t receivePorts = 1;
    bool detailedFlits = false;

    /** Transient-fault process (rmb-family networks): 0 = off. */
    sim::Tick faultMtbf = 0;
    sim::Tick faultMttrMin = 500;
    sim::Tick faultMttrMax = 2'000;
    sim::Tick watchdog = 0;       //!< source watchdog, 0 = off
    std::uint32_t maxRetries = 0; //!< 0 = unlimited

    /**
     * Simulated-tick budget: batch workloads abort (point marked
     * incomplete, sweep continues) after this many ticks; stochastic
     * workloads use it as the post-generation drain bound.  This is
     * what keeps one diverging configuration from hanging a sweep.
     */
    sim::Tick timeout = 10'000'000;

    /** Axis assignments applied to this point, in axis order, as
     *  (field, serialised JSON value) - for report "params". */
    std::vector<std::pair<std::string, std::string>> params;

    /**
     * Assign @p value to the field named @p field.
     * @return empty string on success, else one actionable error
     * ("unknown field", "expects a number", ...).
     */
    std::string set(const std::string &field,
                    const obs::JsonValue &value);

    /** All settable field names, for error messages and docs. */
    static const std::vector<std::string> &knownFields();
};

/** One swept dimension: a field name and its candidate values. */
struct Axis
{
    std::string field;
    std::vector<obs::JsonValue> values;
};

/** How axes combine into grid points. */
enum class SweepMode
{
    Cartesian, //!< every combination; last axis varies fastest
    Zip,       //!< i-th values of all axes together (equal lengths)
};

/** A declarative sweep: base point + axes + combination mode. */
class SweepSpec
{
  public:
    /**
     * Parse @p text.  @return true and fill @p out on success; on
     * failure @p errors gets one actionable message per problem
     * (syntax, unknown fields, zip length mismatch, ...).
     */
    static bool fromJson(const std::string &text, SweepSpec &out,
                         std::vector<std::string> &errors);

    /** fromJson() over the contents of @p path. */
    static bool fromFile(const std::string &path, SweepSpec &out,
                         std::vector<std::string> &errors);

    const std::string &name() const { return name_; }
    SweepMode mode() const { return mode_; }
    std::uint64_t masterSeed() const { return masterSeed_; }
    const PointConfig &base() const { return base_; }
    const std::vector<Axis> &axes() const { return axes_; }

    /** Override the master seed (CLI --seed). */
    void setMasterSeed(std::uint64_t seed) { masterSeed_ = seed; }

    /** Number of points the spec materialises to. */
    std::size_t pointCount() const;

    /**
     * Materialise the grid: apply each axis combination to a copy of
     * the base point, label it, and split its seed from the master
     * seed.  Points come back in stable grid order.
     */
    std::vector<PointConfig> points() const;

    /** Compact canonical serialisation (embedded in reports so a
     *  sweep artifact is self-describing). */
    std::string canonicalJson() const;

  private:
    std::string name_ = "sweep";
    SweepMode mode_ = SweepMode::Cartesian;
    std::uint64_t masterSeed_ = 1;
    PointConfig base_;
    std::vector<Axis> axes_;
};

} // namespace exp
} // namespace rmb

#endif // RMB_EXP_SPEC_HH
