/**
 * @file
 * Baseline regression gate.
 *
 * Diffs a fresh RunReport (usually a sweep artifact) against a
 * stored baseline JSON with per-metric tolerances, so CI can fail a
 * change that drifts a metric past its budget.  The baseline is any
 * JSON document - typically a previous report, optionally extended
 * with a top-level "tolerances" object:
 *
 *   "tolerances": { "mean_latency": 0.05, "*": 0.01 }
 *
 * Every leaf of the baseline (except the "tolerances" subtree) must
 * exist in the fresh report; numbers must agree within tolerance,
 * everything else exactly.  Leaves only the fresh report has are
 * ignored, so adding metrics never breaks existing baselines.
 * Relative tolerance per leaf resolves most-specific-first: exact
 * dotted path, then bare metric name, then "*", then the
 * command-line default.
 */

#ifndef RMB_EXP_GATE_HH
#define RMB_EXP_GATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_value.hh"

namespace rmb {
namespace exp {

/** Command-line defaults for leaves without a baseline tolerance. */
struct GateOptions
{
    double rtol = 0.0; //!< relative tolerance (fraction of baseline)
    double atol = 0.0; //!< absolute tolerance floor
};

/** What the gate found. */
struct GateOutcome
{
    bool pass = false;
    std::size_t compared = 0; //!< baseline leaves checked
    /** One actionable message per mismatch. */
    std::vector<std::string> problems;
};

/** Diff @p fresh against @p baseline (parsed documents). */
GateOutcome compareReports(const obs::JsonValue &fresh,
                           const obs::JsonValue &baseline,
                           const GateOptions &options = {});

/**
 * Parse and diff two report texts.  Parse failures come back as a
 * failing outcome whose problems describe which document is broken.
 */
GateOutcome compareReportTexts(const std::string &fresh_json,
                               const std::string &baseline_json,
                               const GateOptions &options = {});

} // namespace exp
} // namespace rmb

#endif // RMB_EXP_GATE_HH
