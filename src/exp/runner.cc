#include "exp/runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rmb {
namespace exp {

Runner::Runner(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

unsigned
Runner::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
Runner::forEach(std::size_t count,
                const std::function<void(std::size_t)> &fn) const
{
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto work = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace exp
} // namespace rmb
