#include "exp/spec.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hh"
#include "sim/random.hh"

namespace rmb {
namespace exp {

namespace {

/** Workload name prefixes that carry a parameter suffix. */
bool
hasPrefix(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
knownNetwork(const std::string &n)
{
    static const std::set<std::string> names = {
        "rmb",  "dualring",  "torus", "multibus", "ring",
        "mesh", "hypercube", "ehc",   "fattree",  "wormhole"};
    return names.count(n) != 0;
}

bool
knownWorkload(const std::string &w)
{
    static const std::set<std::string> names = {
        "randperm", "bitrev",  "shuffle", "transpose",
        "tornado",  "uniform"};
    return names.count(w) != 0 || hasPrefix(w, "rot:") ||
           hasPrefix(w, "hrel:") || hasPrefix(w, "local:") ||
           hasPrefix(w, "hotspot:");
}

std::string
typeError(const std::string &field, const char *want,
          const obs::JsonValue &got)
{
    return "field '" + field + "' expects " + want + ", got " +
           got.kindName() + " " + got.serialize();
}

bool
getU32(const obs::JsonValue &v, std::uint32_t &out)
{
    std::uint64_t wide = 0;
    if (!v.asUint64(wide) || wide > UINT32_MAX)
        return false;
    out = static_cast<std::uint32_t>(wide);
    return true;
}

} // namespace

std::string
PointConfig::set(const std::string &field, const obs::JsonValue &value)
{
    auto u32 = [&](std::uint32_t &slot) -> std::string {
        if (!getU32(value, slot))
            return typeError(field, "a non-negative integer", value);
        return "";
    };
    auto u64 = [&](std::uint64_t &slot) -> std::string {
        if (!value.asUint64(slot))
            return typeError(field, "a non-negative integer", value);
        return "";
    };
    auto str = [&](std::string &slot) -> std::string {
        if (!value.isString())
            return typeError(field, "a string", value);
        slot = value.string();
        return "";
    };
    auto boolean = [&](bool &slot) -> std::string {
        if (!value.isBool())
            return typeError(field, "a boolean", value);
        slot = value.boolean();
        return "";
    };

    if (field == "network") {
        const std::string err = str(network);
        if (!err.empty())
            return err;
        if (!knownNetwork(network)) {
            return "unknown network '" + network +
                   "' (try rmb, dualring, torus, multibus, ring,"
                   " mesh, hypercube, ehc, fattree or wormhole)";
        }
        return "";
    }
    if (field == "workload") {
        const std::string err = str(workload);
        if (!err.empty())
            return err;
        if (!knownWorkload(workload)) {
            return "unknown workload '" + workload +
                   "' (try randperm, bitrev, shuffle, transpose,"
                   " tornado, rot:<s>, hrel:<h>, uniform, local:<d>"
                   " or hotspot:<f>)";
        }
        return "";
    }
    if (field == "nodes")
        return u32(nodes);
    if (field == "buses")
        return u32(buses);
    if (field == "width")
        return u32(width);
    if (field == "height")
        return u32(height);
    if (field == "rate") {
        if (!value.isNumber() || value.number() <= 0.0 ||
            value.number() > 1.0) {
            return typeError(field, "a number in (0, 1]", value);
        }
        rate = value.number();
        return "";
    }
    if (field == "payload")
        return u32(payload);
    if (field == "duration")
        return u64(duration);
    if (field == "timeout")
        return u64(timeout);
    if (field == "compaction")
        return boolean(compaction);
    if (field == "engine") {
        const std::string err = str(engine);
        if (!err.empty())
            return err;
        if (engine != "event" && engine != "kernel") {
            return "field 'engine' expects event or kernel, got '" +
                   engine + "'";
        }
        return "";
    }
    if (field == "blocking") {
        const std::string err = str(blocking);
        if (!err.empty())
            return err;
        if (blocking != "nack" && blocking != "wait" &&
            !hasPrefix(blocking, "wait:")) {
            return "field 'blocking' expects nack, wait or"
                   " wait:<timeout>, got '" +
                   blocking + "'";
        }
        return "";
    }
    if (field == "header") {
        const std::string err = str(header);
        if (!err.empty())
            return err;
        if (header != "lowest" && header != "straight") {
            return "field 'header' expects lowest or straight,"
                   " got '" +
                   header + "'";
        }
        return "";
    }
    if (field == "send_ports")
        return u32(sendPorts);
    if (field == "receive_ports")
        return u32(receivePorts);
    if (field == "detailed_flits")
        return boolean(detailedFlits);
    if (field == "fault_mtbf")
        return u64(faultMtbf);
    if (field == "fault_mttr_min")
        return u64(faultMttrMin);
    if (field == "fault_mttr_max")
        return u64(faultMttrMax);
    if (field == "watchdog")
        return u64(watchdog);
    if (field == "max_retries")
        return u32(maxRetries);

    std::string known;
    for (const auto &f : knownFields())
        known += (known.empty() ? "" : ", ") + f;
    return "unknown field '" + field + "' (known fields: " + known +
           ")";
}

const std::vector<std::string> &
PointConfig::knownFields()
{
    static const std::vector<std::string> fields = {
        "network",    "nodes",         "buses",
        "width",      "height",        "workload",
        "rate",       "payload",       "duration",
        "timeout",    "compaction",    "engine",
        "blocking",
        "header",     "send_ports",    "receive_ports",
        "detailed_flits",
        "fault_mtbf", "fault_mttr_min", "fault_mttr_max",
        "watchdog",   "max_retries"};
    return fields;
}

bool
SweepSpec::fromJson(const std::string &text, SweepSpec &out,
                    std::vector<std::string> &errors)
{
    out = SweepSpec();
    obs::JsonValue doc;
    std::string parse_error;
    if (!obs::jsonParse(text, doc, parse_error)) {
        errors.push_back("spec is not valid JSON: " + parse_error);
        return false;
    }
    if (!doc.isObject()) {
        errors.push_back("spec must be a JSON object, got " +
                         std::string(doc.kindName()));
        return false;
    }

    for (const auto &[key, value] : doc.members()) {
        if (key == "name") {
            if (!value.isString()) {
                errors.push_back(typeError("name", "a string", value));
                continue;
            }
            out.name_ = value.string();
        } else if (key == "mode") {
            if (value.isString() && value.string() == "cartesian") {
                out.mode_ = SweepMode::Cartesian;
            } else if (value.isString() && value.string() == "zip") {
                out.mode_ = SweepMode::Zip;
            } else {
                errors.push_back(
                    "field 'mode' expects \"cartesian\" or \"zip\","
                    " got " +
                    value.serialize());
            }
        } else if (key == "seed") {
            if (!value.asUint64(out.masterSeed_)) {
                errors.push_back(typeError(
                    "seed", "a non-negative integer", value));
            }
        } else if (key == "base") {
            if (!value.isObject()) {
                errors.push_back(
                    typeError("base", "an object", value));
                continue;
            }
            for (const auto &[field, fv] : value.members()) {
                const std::string err = out.base_.set(field, fv);
                if (!err.empty())
                    errors.push_back("base: " + err);
            }
        } else if (key == "axes") {
            if (!value.isArray()) {
                errors.push_back(
                    typeError("axes", "an array", value));
                continue;
            }
            for (std::size_t i = 0; i < value.array().size(); ++i) {
                const obs::JsonValue &av = value.array()[i];
                const std::string where =
                    "axes[" + std::to_string(i) + "]";
                if (!av.isObject()) {
                    errors.push_back(where + " must be an object"
                                             " {\"field\", \"values\"}");
                    continue;
                }
                Axis axis;
                const obs::JsonValue *field = av.find("field");
                const obs::JsonValue *values = av.find("values");
                if (field == nullptr || !field->isString()) {
                    errors.push_back(where +
                                     " needs a string 'field'");
                    continue;
                }
                axis.field = field->string();
                if (values == nullptr || !values->isArray() ||
                    values->array().empty()) {
                    errors.push_back(
                        where + " ('" + axis.field +
                        "') needs a non-empty 'values' array");
                    continue;
                }
                axis.values = values->array();
                out.axes_.push_back(std::move(axis));
            }
        } else {
            errors.push_back(
                "unknown spec key '" + key +
                "' (known keys: name, mode, seed, base, axes)");
        }
    }

    // Semantic checks over the assembled spec.
    std::set<std::string> seen;
    for (const Axis &axis : out.axes_) {
        if (!seen.insert(axis.field).second) {
            errors.push_back("axis field '" + axis.field +
                             "' appears more than once");
        }
        for (const obs::JsonValue &v : axis.values) {
            PointConfig probe = out.base_;
            const std::string err = probe.set(axis.field, v);
            if (!err.empty())
                errors.push_back("axis '" + axis.field +
                                 "': " + err);
        }
    }
    if (out.mode_ == SweepMode::Zip && !out.axes_.empty()) {
        const std::size_t len = out.axes_.front().values.size();
        for (const Axis &axis : out.axes_) {
            if (axis.values.size() != len) {
                errors.push_back(
                    "zip mode needs equal-length axes, but '" +
                    out.axes_.front().field + "' has " +
                    std::to_string(len) + " values and '" +
                    axis.field + "' has " +
                    std::to_string(axis.values.size()));
            }
        }
    }
    return errors.empty();
}

bool
SweepSpec::fromFile(const std::string &path, SweepSpec &out,
                    std::vector<std::string> &errors)
{
    std::ifstream in(path);
    if (!in) {
        errors.push_back("cannot open spec file '" + path + "'");
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return fromJson(text.str(), out, errors);
}

std::size_t
SweepSpec::pointCount() const
{
    if (axes_.empty())
        return 1;
    if (mode_ == SweepMode::Zip)
        return axes_.front().values.size();
    std::size_t n = 1;
    for (const Axis &axis : axes_)
        n *= axis.values.size();
    return n;
}

std::vector<PointConfig>
SweepSpec::points() const
{
    const std::size_t count = pointCount();
    std::vector<PointConfig> points;
    points.reserve(count);
    const sim::Random root(masterSeed_);

    for (std::size_t i = 0; i < count; ++i) {
        PointConfig pt = base_;
        pt.index = i;
        // Decompose i into one index per axis: cartesian treats the
        // last axis as the fastest-varying digit, zip uses i for all.
        std::size_t rest = i;
        std::vector<std::size_t> choice(axes_.size(), i);
        if (mode_ == SweepMode::Cartesian) {
            for (std::size_t a = axes_.size(); a-- > 0;) {
                choice[a] = rest % axes_[a].values.size();
                rest /= axes_[a].values.size();
            }
        }
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const obs::JsonValue &v = axes_[a].values[choice[a]];
            const std::string err = pt.set(axes_[a].field, v);
            // fromJson probed every axis value against the base, so
            // this cannot fail for a validated spec.
            if (!err.empty())
                continue;
            pt.params.emplace_back(axes_[a].field, v.serialize());
            if (!pt.label.empty())
                pt.label += ',';
            pt.label += axes_[a].field + '=' +
                        (v.isString() ? v.string() : v.serialize());
        }
        // One SplitMix64-derived seed per grid index, a pure
        // function of (masterSeed, index) - independent of job
        // count, completion order and which subset of points runs.
        pt.seed = root.split(i).next();
        points.push_back(std::move(pt));
    }
    return points;
}

std::string
SweepSpec::canonicalJson() const
{
    obs::JsonWriter json;
    json.beginObject();
    json.field("name", name_);
    json.field("mode", mode_ == SweepMode::Zip
                           ? std::string("zip")
                           : std::string("cartesian"));
    json.field("seed", masterSeed_);
    json.beginObject("base");
    json.field("network", base_.network);
    json.field("nodes", std::uint64_t{base_.nodes});
    json.field("buses", std::uint64_t{base_.buses});
    json.field("width", std::uint64_t{base_.width});
    json.field("height", std::uint64_t{base_.height});
    json.field("workload", base_.workload);
    json.field("rate", base_.rate);
    json.field("payload", std::uint64_t{base_.payload});
    json.field("duration", std::uint64_t{base_.duration});
    json.field("timeout", std::uint64_t{base_.timeout});
    json.field("compaction", base_.compaction);
    json.field("blocking", base_.blocking);
    json.field("header", base_.header);
    json.field("send_ports", std::uint64_t{base_.sendPorts});
    json.field("receive_ports", std::uint64_t{base_.receivePorts});
    json.field("detailed_flits", base_.detailedFlits);
    json.field("fault_mtbf", std::uint64_t{base_.faultMtbf});
    json.field("fault_mttr_min", std::uint64_t{base_.faultMttrMin});
    json.field("fault_mttr_max", std::uint64_t{base_.faultMttrMax});
    json.field("watchdog", std::uint64_t{base_.watchdog});
    json.field("max_retries", std::uint64_t{base_.maxRetries});
    json.endObject();
    json.beginArray("axes");
    for (const Axis &axis : axes_) {
        json.beginObject();
        json.field("field", axis.field);
        json.beginArray("values");
        for (const obs::JsonValue &v : axis.values)
            json.elementRaw(v.serialize());
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

} // namespace exp
} // namespace rmb
