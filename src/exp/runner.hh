/**
 * @file
 * Parallel execution of independent grid points.
 *
 * Runner is a dynamic-load-balancing thread pool: workers claim the
 * next unclaimed index from a shared atomic counter, so long points
 * never serialise behind short ones (the "work stealing" that
 * matters for a grid of identical tasks with wildly different run
 * times, e.g. a saturation sweep where the loaded points take 100x
 * longer than the idle ones).
 *
 * The pool knows nothing about simulations; it runs fn(i) for every
 * i in [0, count).  Determinism is the caller's contract: each index
 * must touch only its own state (own Simulator, own RNG substream
 * via sim::Random::split, own results slot), which is exactly how
 * runSweep() and the converted benches use it - so the assembled
 * output is byte-identical for every job count.
 */

#ifndef RMB_EXP_RUNNER_HH
#define RMB_EXP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>

namespace rmb {
namespace exp {

/** One completed point, as seen by a progress observer. */
struct Progress
{
    std::size_t completed = 0; //!< points finished so far
    std::size_t total = 0;     //!< points in the run
    std::size_t index = 0;     //!< grid index that just finished
    bool ok = true;            //!< did the point succeed
    std::string label;         //!< point label (may be empty)
    double wallMillis = 0.0;   //!< wall-clock cost of the point
};

/**
 * TraceSink-style observer for sweep progress.  Called serially
 * (under the runner's lock) after each point completes; wall-clock
 * timings are reported here and only here, never in artifacts, so
 * reports stay byte-identical across machines and job counts.
 */
using ProgressFn = std::function<void(const Progress &)>;

/** Thread pool over an index range. */
class Runner
{
  public:
    /** @param jobs worker threads; 0 means defaultJobs(). */
    explicit Runner(unsigned jobs = 1);

    /** std::thread::hardware_concurrency, floored at 1. */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(i) for every i in [0, count), spread over min(jobs,
     * count) workers; with one job everything runs inline on the
     * calling thread.  Returns when all indices completed.  If fn
     * throws, the first exception is rethrown here after the pool
     * drains (callers that need per-point failure capture wrap fn -
     * runSweep() records failures in the point result instead).
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn) const;

  private:
    unsigned jobs_;
};

} // namespace exp
} // namespace rmb

#endif // RMB_EXP_RUNNER_HH
