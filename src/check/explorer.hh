/**
 * @file
 * The explicit-state exploration engine behind tools/rmbcheck.
 *
 * Breadth-first search over a Model's canonical state graph with
 * three analyses layered on top:
 *
 *   - safety: every newly generated state runs Model::inspect; the
 *     first failure (in BFS order, hence at minimal depth) becomes a
 *     counterexample trace via the BFS parent chain;
 *   - deadlock: a state with no outgoing transition at all;
 *   - liveness ("possibility"): for each state, the set of goal bits
 *     still achievable on some outgoing path is computed by a
 *     backward fixpoint over the full edge relation; a state whose
 *     pendingBits are not all achievable is a livelock witness.  The
 *     fixpoint rotates goal masks along edges (Succ::rot) so
 *     INC-indexed goals stay aligned across the symmetry-reduced
 *     frames.
 */

#ifndef RMB_CHECK_EXPLORER_HH
#define RMB_CHECK_EXPLORER_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hh"

namespace rmb {
namespace check {

/** Everything one exploration produced. */
struct ExploreResult
{
    /** True if maxStates was hit; analyses are then incomplete. */
    bool truncated = false;

    /** The first safety/deadlock/liveness failure, if any. */
    std::optional<Violation> violation;

    /**
     * Canonical encodings from the initial state to the violating
     * state (inclusive); empty when no violation.
     */
    std::vector<std::string> trace;

    std::size_t numStates = 0;
    std::size_t numEdges = 0;
    /** BFS depth of the deepest state reached. */
    std::size_t depth = 0;
};

/** Exhaustively explore @p model up to @p max_states states. */
ExploreResult explore(const Model &model, std::size_t max_states);

/**
 * Render a counterexample trace as prose: one line per step with the
 * action taken and the resulting state.  Re-simulates the trace in
 * concrete (unrotated) frames so consecutive lines stay comparable.
 */
std::string renderTrace(const Model &model,
                        const std::vector<std::string> &trace,
                        const Violation &violation);

} // namespace check
} // namespace rmb

#endif // RMB_CHECK_EXPLORER_HH
