#include "check/net_model.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "rmb/status_register.hh"

namespace rmb {
namespace check {

NetModel::NetModel(const CheckConfig &cfg) : cfg_(cfg)
{
    rmb_assert(cfg.nodes >= 2 && cfg.nodes <= kMaxCheckNodes,
               "datapath model supports 2..", kMaxCheckNodes,
               " nodes");
    rmb_assert(cfg.buses >= 1 && cfg.buses <= 8,
               "datapath model supports 1..8 buses");
    rmb_assert(cfg.messages >= 1 && cfg.messages <= kMaxCheckMessages,
               "datapath model supports 1..", kMaxCheckMessages,
               " message slots");
}

std::string
NetModel::encode(const St &s) const
{
    std::string enc;
    for (const Slot &slot : s.slots) {
        enc.push_back(static_cast<char>(slot.kind));
        if (slot.kind == SlotKind::Idle)
            continue;
        enc.push_back(static_cast<char>(slot.src));
        enc.push_back(static_cast<char>(slot.dst));
        if (slot.kind == SlotKind::Pending)
            continue;
        enc.push_back(static_cast<char>(slot.phase));
        enc.push_back(static_cast<char>(slot.hops.size()));
        for (const Hp &h : slot.hops)
            enc.push_back(static_cast<char>(
                static_cast<unsigned>(h.level) |
                (h.move ? 0x40u : 0u)));
    }
    return enc;
}

NetModel::St
NetModel::decode(const std::string &enc) const
{
    St s;
    s.slots.resize(cfg_.messages);
    std::size_t p = 0;
    const auto next = [&]() -> std::uint8_t {
        rmb_assert(p < enc.size(), "truncated datapath encoding");
        return static_cast<std::uint8_t>(enc[p++]);
    };
    for (Slot &slot : s.slots) {
        slot.kind = static_cast<SlotKind>(next());
        if (slot.kind == SlotKind::Idle)
            continue;
        slot.src = next();
        slot.dst = next();
        if (slot.kind == SlotKind::Pending)
            continue;
        slot.phase = static_cast<BusPhase>(next());
        slot.hops.resize(next());
        for (Hp &h : slot.hops) {
            const std::uint8_t b = next();
            h.level = static_cast<std::int8_t>(b & 0x3f);
            h.move = (b & 0x40) != 0;
        }
    }
    rmb_assert(p == enc.size(), "trailing bytes in encoding");
    return s;
}

std::pair<std::string, std::uint8_t>
NetModel::canon(const St &s) const
{
    const std::uint32_t n = cfg_.nodes;
    std::string best;
    std::uint8_t best_rot = 0;
    St t = s;
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < s.slots.size(); ++i) {
            if (s.slots[i].kind == SlotKind::Idle)
                continue;
            t.slots[i].src = static_cast<std::uint8_t>(
                (s.slots[i].src + n - r) % n);
            t.slots[i].dst = static_cast<std::uint8_t>(
                (s.slots[i].dst + n - r) % n);
        }
        std::string enc = encode(t);
        if (r == 0 || enc < best) {
            best = std::move(enc);
            best_rot = static_cast<std::uint8_t>(r);
        }
    }
    return {best, best_rot};
}

std::string
NetModel::initial() const
{
    St s;
    s.slots.resize(cfg_.messages);
    return canon(s).first;
}

void
NetModel::occupancy(const St &s, std::vector<std::uint8_t> &occ) const
{
    const std::uint32_t n = cfg_.nodes;
    occ.assign(static_cast<std::size_t>(n) * cfg_.buses, 0);
    for (const Slot &slot : s.slots) {
        if (slot.kind != SlotKind::Active)
            continue;
        for (std::size_t j = 0; j < slot.hops.size(); ++j) {
            const std::uint32_t gap =
                (slot.src + static_cast<std::uint32_t>(j)) % n;
            const Hp &h = slot.hops[j];
            ++occ[gap * cfg_.buses +
                  static_cast<std::uint32_t>(h.level)];
            if (h.move)
                ++occ[gap * cfg_.buses +
                      static_cast<std::uint32_t>(h.level - 1)];
        }
    }
}

core::VirtualBus
NetModel::busView(const Slot &slot) const
{
    core::VirtualBus vb;
    vb.id = 1;
    vb.src = slot.src;
    vb.dst = slot.dst;
    switch (slot.phase) {
      case BusPhase::Advancing:
        vb.state = core::BusState::Advancing;
        break;
      case BusPhase::Established:
        vb.state = core::BusState::Streaming;
        break;
      case BusPhase::NackTeardown:
        vb.state = core::BusState::NackTeardown;
        break;
      case BusPhase::FackTeardown:
        vb.state = core::BusState::FackTeardown;
        break;
    }
    for (std::size_t j = 0; j < slot.hops.size(); ++j) {
        core::Hop h;
        h.gap = (slot.src + static_cast<std::uint32_t>(j)) %
                cfg_.nodes;
        h.level = slot.hops[j].level;
        h.dualLevel = slot.hops[j].move
                          ? static_cast<core::Level>(
                                slot.hops[j].level - 1)
                          : core::kNoLevel;
        vb.hops.push_back(h);
    }
    return vb;
}

std::uint32_t
NetModel::pathLength(const Slot &slot) const
{
    return (slot.dst + cfg_.nodes - slot.src) % cfg_.nodes;
}

void
NetModel::successors(const std::string &enc, std::vector<Succ> &out,
                     std::vector<std::string> *labels,
                     std::vector<std::string> *raws) const
{
    const std::uint32_t n = cfg_.nodes;
    const auto k = static_cast<core::Level>(cfg_.buses);
    const St s = decode(enc);

    std::vector<std::uint8_t> occ;
    occupancy(s, occ);
    const auto free = [&](std::uint32_t gap, core::Level level) {
        return occ[gap * cfg_.buses +
                   static_cast<std::uint32_t>(level)] == 0;
    };

    const auto emit = [&](const St &t, std::uint16_t progress,
                          const std::string &label) {
        auto [cenc, rot] = canon(t);
        out.push_back(Succ{std::move(cenc), progress, rot});
        if (labels)
            labels->push_back(label);
        if (raws)
            raws->push_back(encode(t));
    };

    const auto inject = [&](std::size_t si, std::uint32_t src,
                            std::uint32_t dst, const char *how) {
        St t = s;
        Slot &slot = t.slots[si];
        slot.kind = SlotKind::Active;
        slot.src = static_cast<std::uint8_t>(src);
        slot.dst = static_cast<std::uint8_t>(dst);
        slot.phase = BusPhase::Advancing;
        slot.hops = {Hp{static_cast<std::int8_t>(k - 1), false}};
        std::ostringstream os;
        os << "slot " << si << ": " << how << " " << src << " -> "
           << dst << " on the top bus (claims gap " << src
           << " level " << k - 1 << ")";
        emit(t, 0, os.str());
    };

    for (std::size_t si = 0; si < s.slots.size(); ++si) {
        const Slot &slot = s.slots[si];

        if (slot.kind == SlotKind::Idle) {
            for (std::uint32_t src = 0; src < n; ++src) {
                if (!free(src, k - 1))
                    continue;
                for (std::uint32_t dst = 0; dst < n; ++dst)
                    if (dst != src)
                        inject(si, src, dst, "inject");
            }
            continue;
        }
        if (slot.kind == SlotKind::Pending) {
            if (free(slot.src, k - 1))
                inject(si, slot.src, slot.dst, "retry");
            continue;
        }

        const core::VirtualBus vb = busView(slot);
        const auto len = static_cast<std::uint32_t>(slot.hops.size());

        if (slot.phase == BusPhase::Advancing) {
            const std::uint32_t head = (slot.src + len) % n;
            if (head == slot.dst) {
                St t = s;
                t.slots[si].phase = BusPhase::Established;
                std::ostringstream os;
                os << "slot " << si << ": header accepted at node "
                   << head << " (Hack; bus established)";
                emit(t, static_cast<std::uint16_t>(1u << si),
                     os.str());
            } else {
                const std::vector<core::Level> prefs =
                    core::reachableOutputLevels(vb.hops.back(), k,
                                                cfg_.headerPolicy);
                core::Level chosen = core::kNoLevel;
                for (core::Level l : prefs) {
                    if (free(head, l)) {
                        chosen = l;
                        break;
                    }
                }
                if (chosen != core::kNoLevel) {
                    St t = s;
                    t.slots[si].hops.push_back(
                        Hp{static_cast<std::int8_t>(chosen), false});
                    std::ostringstream os;
                    os << "slot " << si
                       << ": header advances through INC " << head
                       << " (claims gap " << head << " level "
                       << chosen << ")";
                    emit(t, 0, os.str());
                } else {
                    St t = s;
                    t.slots[si].phase = BusPhase::NackTeardown;
                    std::ostringstream os;
                    os << "slot " << si << ": header blocked at INC "
                       << head
                       << " (no free reachable segment); Nack "
                          "teardown begins";
                    emit(t, 0, os.str());
                }
            }
        } else if (slot.phase == BusPhase::Established) {
            St t = s;
            t.slots[si].phase = BusPhase::FackTeardown;
            std::ostringstream os;
            os << "slot " << si
               << ": final flit delivered; Fack teardown begins";
            emit(t, 0, os.str());
        } else {
            // Teardown: the travelling Fack/Nack frees the hop
            // nearest the head, one gap per step.
            St t = s;
            Slot &ts = t.slots[si];
            const std::uint32_t gap = (slot.src + len - 1) % n;
            ts.hops.pop_back();
            std::ostringstream os;
            const bool fack = slot.phase == BusPhase::FackTeardown;
            os << "slot " << si << ": " << (fack ? "Fack" : "Nack")
               << " frees gap " << gap;
            if (ts.hops.empty()) {
                if (fack) {
                    ts = Slot{};
                    os << "; message complete";
                } else {
                    ts.kind = SlotKind::Pending;
                    ts.phase = BusPhase::Advancing;
                    os << "; source will retry";
                }
            }
            emit(t, 0, os.str());
        }

        // Compaction: make / break per hop, straight from Figure 7.
        if (slot.kind != SlotKind::Active)
            continue;
        for (std::size_t j = 0; j < slot.hops.size(); ++j) {
            const std::uint32_t gap =
                (slot.src + static_cast<std::uint32_t>(j)) % n;
            if (slot.hops[j].move) {
                St t = s;
                Hp &h = t.slots[si].hops[j];
                h.level = static_cast<std::int8_t>(h.level - 1);
                h.move = false;
                std::ostringstream os;
                os << "slot " << si << ": break of hop " << j
                   << " (releases gap " << gap << " level "
                   << slot.hops[j].level << ")";
                emit(t, 0, os.str());
            } else if (core::hopMovableRule(vb, j, free,
                                            cfg_.moveVariant)) {
                St t = s;
                t.slots[si].hops[j].move = true;
                std::ostringstream os;
                os << "slot " << si << ": make of hop " << j
                   << " (claims gap " << gap << " level "
                   << slot.hops[j].level - 1
                   << "; dual-source window opens)";
                emit(t, 0, os.str());
            }
        }
    }
}

std::optional<Violation>
NetModel::inspect(const std::string &enc) const
{
    const std::uint32_t n = cfg_.nodes;
    const auto k = static_cast<core::Level>(cfg_.buses);
    const St s = decode(enc);

    // Segment exclusivity: no physical segment claimed twice.
    std::vector<std::uint8_t> occ;
    occupancy(s, occ);
    for (std::uint32_t g = 0; g < n; ++g)
        for (core::Level l = 0; l < k; ++l)
            if (occ[g * cfg_.buses + static_cast<std::uint32_t>(l)] >
                1) {
                std::ostringstream os;
                os << "segment (gap " << g << ", level " << l
                   << ") claimed by more than one connection";
                return {Violation{"segment-clash", os.str()}};
            }

    for (std::size_t si = 0; si < s.slots.size(); ++si) {
        const Slot &slot = s.slots[si];
        if (slot.kind != SlotKind::Active)
            continue;
        const auto len = static_cast<std::uint32_t>(slot.hops.size());
        const std::uint32_t path = pathLength(slot);

        if (len == 0 || len > path) {
            std::ostringstream os;
            os << "slot " << si << ": bus holds " << len
               << " hops on a " << path << "-gap path";
            return {Violation{"bad-extent", os.str()}};
        }
        if (slot.phase == BusPhase::Established && len != path) {
            std::ostringstream os;
            os << "slot " << si << ": established bus spans " << len
               << " of " << path << " gaps";
            return {Violation{"bad-extent", os.str()}};
        }

        for (std::uint32_t j = 0; j < len; ++j) {
            const Hp &h = slot.hops[j];
            if (h.level < 0 || h.level >= k ||
                (h.move && h.level < 1)) {
                std::ostringstream os;
                os << "slot " << si << ": hop " << j
                   << " at impossible level " << int{h.level};
                return {Violation{"bad-level", os.str()}};
            }
            // Section 2.4's pairwise agreement serializes moves of
            // adjacent hops; two neighbours mid-move at once means
            // the serialization broke.
            if (j + 1 < len && h.move && slot.hops[j + 1].move) {
                std::ostringstream os;
                os << "slot " << si << ": hops " << j << " and "
                   << j + 1
                   << " are mid-move at the same time (adjacent "
                      "moves must serialize)";
                return {Violation{"concurrent-adjacent-moves",
                                  os.str()}};
            }
        }

        // Derive every intermediate INC's output-port status codes
        // from the hop chain and hold them against Table 1.
        for (std::uint32_t j = 1; j < len; ++j) {
            const Hp &a = slot.hops[j - 1]; // input side
            const Hp &b = slot.hops[j];     // output side
            const std::uint32_t inc = (slot.src + j) % n;
            std::vector<core::Level> ins{a.level};
            if (a.move)
                ins.push_back(static_cast<core::Level>(a.level - 1));
            std::vector<core::Level> outs{b.level};
            if (b.move)
                outs.push_back(static_cast<core::Level>(b.level - 1));
            for (core::Level o : outs) {
                std::uint8_t bits = 0;
                for (core::Level i : ins) {
                    if (!core::levelsReachable(i, o)) {
                        std::ostringstream os;
                        os << "slot " << si << ": severed at INC "
                           << inc << " - input level " << i
                           << " cannot reach output level " << o
                           << " (Figure 6 allows only +-1)";
                        return {Violation{"severed-bus", os.str()}};
                    }
                    bits |= core::dirBit(core::sourceDirOf(i, o));
                }
                if (!core::statusLegal(bits)) {
                    std::ostringstream os;
                    os << "slot " << si << ": INC " << inc
                       << " output level " << o
                       << " holds forbidden status code "
                       << core::statusName(bits);
                    return {Violation{"illegal-status", os.str()}};
                }
                int nsrc = 0;
                for (std::uint8_t bb = bits; bb; bb >>= 1)
                    nsrc += bb & 1;
                if (nsrc > 1 && !a.move) {
                    std::ostringstream os;
                    os << "slot " << si << ": INC " << inc
                       << " sees two sources outside a "
                          "make-before-break window";
                    return {Violation{"dual-outside-move",
                                      os.str()}};
                }
            }
        }
    }
    return std::nullopt;
}

std::uint16_t
NetModel::pendingBits(const std::string &enc) const
{
    const St s = decode(enc);
    std::uint16_t bits = 0;
    for (std::size_t si = 0; si < s.slots.size(); ++si) {
        const Slot &slot = s.slots[si];
        if (slot.kind == SlotKind::Pending ||
            (slot.kind == SlotKind::Active &&
             slot.phase == BusPhase::Advancing))
            bits |= static_cast<std::uint16_t>(1u << si);
    }
    return bits;
}

std::string
NetModel::describeState(const std::string &enc) const
{
    const St s = decode(enc);
    std::ostringstream os;
    for (std::size_t si = 0; si < s.slots.size(); ++si) {
        const Slot &slot = s.slots[si];
        if (si)
            os << " | ";
        os << "slot" << si << ": ";
        switch (slot.kind) {
          case SlotKind::Idle:
            os << "idle";
            break;
          case SlotKind::Pending:
            os << "retry " << int{slot.src} << "->" << int{slot.dst};
            break;
          case SlotKind::Active: {
            os << "bus " << int{slot.src} << "->" << int{slot.dst}
               << " ";
            switch (slot.phase) {
              case BusPhase::Advancing:
                os << "advancing";
                break;
              case BusPhase::Established:
                os << "established";
                break;
              case BusPhase::NackTeardown:
                os << "nack-teardown";
                break;
              case BusPhase::FackTeardown:
                os << "fack-teardown";
                break;
            }
            os << " [";
            for (std::size_t j = 0; j < slot.hops.size(); ++j) {
                if (j)
                    os << " ";
                os << "g"
                   << (slot.src + static_cast<std::uint32_t>(j)) %
                          cfg_.nodes
                   << ":L" << int{slot.hops[j].level};
                if (slot.hops[j].move)
                    os << "*";
            }
            os << "]";
            break;
          }
        }
    }
    return os.str();
}

std::string
NetModel::describeGoal(unsigned bit) const
{
    return "slot " + std::to_string(bit) +
           "'s pending request is granted (header accepted)";
}

} // namespace check
} // namespace rmb
