#include "check/explorer.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace rmb {
namespace check {

namespace {

/** One stored transition of the canonical graph (CSR arena). */
struct Edge
{
    std::uint32_t to;
    std::uint16_t progress;
    std::uint8_t rot;
};

constexpr std::uint32_t kNoParent = 0xffffffffu;

} // namespace

ExploreResult
explore(const Model &model, std::size_t max_states)
{
    ExploreResult res;

    // Interned canonical states.  BFS order == insertion order, so
    // the frontier is just a cursor over the states vector.
    std::unordered_map<std::string, std::uint32_t> index;
    std::vector<const std::string *> states;
    std::vector<std::uint32_t> parent;
    std::vector<std::uint32_t> depth;

    const auto intern = [&](std::string enc, std::uint32_t par) {
        const auto next = static_cast<std::uint32_t>(states.size());
        auto [it, fresh] = index.emplace(std::move(enc), next);
        if (fresh) {
            states.push_back(&it->first);
            parent.push_back(par);
            depth.push_back(par == kNoParent ? 0 : depth[par] + 1);
        }
        return std::make_pair(it->second, fresh);
    };

    const auto chain = [&](std::uint32_t v) {
        std::vector<std::string> tr;
        for (std::uint32_t x = v;; x = parent[x]) {
            tr.push_back(*states[x]);
            if (parent[x] == kNoParent)
                break;
        }
        std::reverse(tr.begin(), tr.end());
        return tr;
    };

    intern(model.initial(), kNoParent);
    if (auto viol = model.inspect(*states[0])) {
        res.violation = viol;
        res.trace = chain(0);
        res.numStates = 1;
        return res;
    }

    std::vector<Succ> succs;
    for (std::uint32_t v = 0; v < states.size(); ++v) {
        succs.clear();
        model.successors(*states[v], succs);
        res.numEdges += succs.size();
        if (succs.empty()) {
            res.violation = Violation{
                "deadlock",
                "deadlock: no INC or message can take any step from "
                "this state"};
            res.trace = chain(v);
            res.numStates = states.size();
            return res;
        }
        for (Succ &sc : succs) {
            const auto [w, fresh] = intern(std::move(sc.enc), v);
            if (!fresh)
                continue;
            res.depth = std::max(res.depth,
                                 static_cast<std::size_t>(depth[w]));
            if (auto viol = model.inspect(*states[w])) {
                res.violation = viol;
                res.trace = chain(w);
                res.numStates = states.size();
                return res;
            }
            if (states.size() >= max_states) {
                res.truncated = true;
                res.numStates = states.size();
                return res;
            }
        }
    }
    const auto nstates = static_cast<std::uint32_t>(states.size());
    res.numStates = nstates;

    // Liveness: achievable-goal masks by backward fixpoint over the
    // stored edge relation.
    std::vector<Edge> edges;
    edges.reserve(res.numEdges);
    std::vector<std::uint32_t> eoff(nstates + 1, 0);
    for (std::uint32_t v = 0; v < nstates; ++v) {
        eoff[v] = static_cast<std::uint32_t>(edges.size());
        succs.clear();
        model.successors(*states[v], succs);
        for (const Succ &sc : succs) {
            const auto it = index.find(sc.enc);
            rmb_assert(it != index.end(),
                       "successor escaped the completed BFS");
            edges.push_back(Edge{it->second, sc.progress, sc.rot});
        }
    }
    eoff[nstates] = static_cast<std::uint32_t>(edges.size());

    // Reverse adjacency in CSR form, for the worklist.
    std::vector<std::uint32_t> roff(nstates + 1, 0);
    for (const Edge &e : edges)
        ++roff[e.to + 1];
    for (std::uint32_t v = 0; v < nstates; ++v)
        roff[v + 1] += roff[v];
    std::vector<std::uint32_t> preds(edges.size());
    {
        std::vector<std::uint32_t> pos(roff.begin(),
                                       roff.end() - 1);
        for (std::uint32_t v = 0; v < nstates; ++v)
            for (std::uint32_t e = eoff[v]; e < eoff[v + 1]; ++e)
                preds[pos[edges[e].to]++] = v;
    }

    const bool rotate = model.goalsRotate();
    std::vector<std::uint16_t> mask(nstates, 0);
    std::vector<std::uint8_t> queued(nstates, 1);
    std::deque<std::uint32_t> work;
    for (std::uint32_t v = nstates; v-- > 0;)
        work.push_back(v); // deepest first converges faster
    while (!work.empty()) {
        const std::uint32_t v = work.front();
        work.pop_front();
        queued[v] = 0;
        std::uint16_t m = 0;
        for (std::uint32_t e = eoff[v]; e < eoff[v + 1]; ++e) {
            const Edge &ed = edges[e];
            m |= ed.progress;
            m |= rotate ? model.rotateGoals(mask[ed.to], ed.rot)
                        : mask[ed.to];
        }
        if (m == mask[v])
            continue;
        mask[v] = m;
        for (std::uint32_t p = roff[v]; p < roff[v + 1]; ++p) {
            if (!queued[preds[p]]) {
                queued[preds[p]] = 1;
                work.push_back(preds[p]);
            }
        }
    }

    for (std::uint32_t v = 0; v < nstates; ++v) {
        const std::uint16_t missing =
            static_cast<std::uint16_t>(model.pendingBits(*states[v]) &
                                       ~mask[v]);
        if (!missing)
            continue;
        unsigned bit = 0;
        while (!(missing & (1u << bit)))
            ++bit;
        std::ostringstream os;
        os << "livelock: from this state there is no path on which "
           << model.describeGoal(bit);
        res.violation = Violation{"livelock", os.str()};
        res.trace = chain(v);
        return res;
    }
    return res;
}

std::string
renderTrace(const Model &model, const std::vector<std::string> &trace,
            const Violation &violation)
{
    std::ostringstream os;
    if (trace.empty())
        return os.str();
    std::string cur = trace.front();
    os << "    step 0: " << model.describeState(cur) << "\n";
    std::vector<Succ> succs;
    std::vector<std::string> labels;
    std::vector<std::string> raws;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        succs.clear();
        labels.clear();
        raws.clear();
        model.successors(cur, succs, &labels, &raws);
        bool found = false;
        for (std::size_t j = 0; j < succs.size(); ++j) {
            if (succs[j].enc == trace[i]) {
                cur = raws[j];
                os << "    step " << i << ": " << labels[j] << "\n"
                   << "            " << model.describeState(cur)
                   << "\n";
                found = true;
                break;
            }
        }
        rmb_assert(found, "counterexample step ", i,
                   " not reproducible");
    }
    os << "    => " << violation.message << "\n";
    return os.str();
}

} // namespace check
} // namespace rmb
