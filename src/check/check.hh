/**
 * @file
 * Common vocabulary of the bounded explicit-state model checker
 * (docs/MODELCHECK.md, tools/rmbcheck).
 *
 * The checker composes the *pure* protocol rules the simulator runs -
 * core::stepCycle, core::reachableOutputLevels, core::hopMovableRule,
 * core::statusLegal - into a ring of N INCs by k segments and
 * enumerates every reachable state under asynchronous interleaving.
 * Two models cover the protocol's two layers:
 *
 *   CycleModel (cycle_model.hh) - the section-2.5 odd/even handshake
 *       ring; proves Lemma 1's skew bound, deadlock freedom and
 *       per-INC progress.
 *   NetModel (net_model.hh) - virtual buses, header advance,
 *       make-before-break compaction; proves Table-1 legality of
 *       every derived status register, that dual codes appear only
 *       mid-move, that no move severs a bus, and that pending
 *       requests can always still be granted.
 *
 * States are canonicalized under ring rotation before hashing, so the
 * checker explores one representative per orbit; every transition
 * remembers the rotation it applied, which the liveness analysis
 * needs to keep INC-indexed progress bits aligned across frames.
 */

#ifndef RMB_CHECK_CHECK_HH
#define RMB_CHECK_CHECK_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rmb/compaction_rules.hh"
#include "rmb/cycle_fsm.hh"
#include "rmb/types.hh"

namespace rmb {
namespace check {

/** Largest ring the fixed-size state arrays accept. */
constexpr std::uint32_t kMaxCheckNodes = 8;

/** Parameters of one model-checking run. */
struct CheckConfig
{
    /** Ring size N; the checker supports 2..8. */
    std::uint32_t nodes = 4;

    /** Segments per gap k (level k-1 is the top/injection bus). */
    std::uint32_t buses = 3;

    /** Concurrent message slots in the datapath model (1..4). */
    std::uint32_t messages = 2;

    /** Header level preference, as in the simulator. */
    core::HeaderPolicy headerPolicy = core::HeaderPolicy::PreferLowest;

    /** Section-2.5 rule reading (--mutate oc-rule-bodytext etc.). */
    core::CycleRuleVariant cycleVariant =
        core::CycleRuleVariant::Figure10;

    /** Figure-7 move-rule reading (--mutate move-ignore-neighbors). */
    core::MoveRuleVariant moveVariant = core::MoveRuleVariant::Figure7;

    /** Abort (exit TRUNCATED) past this many stored states. */
    std::size_t maxStates = 1000 * 1000;
};

/** One invariant or liveness failure, plus its prose explanation. */
struct Violation
{
    /** Stable machine-readable tag, e.g. "lemma1-skew", "deadlock". */
    std::string kind;

    /** Human-readable one-paragraph description. */
    std::string message;
};

/** One outgoing transition of a state, in canonical form. */
struct Succ
{
    /** Canonical encoding of the successor state. */
    std::string enc;

    /**
     * Liveness goals this transition itself achieves, as a bitmask in
     * the *source* state's frame (CycleModel: bit i = INC i completed
     * a cycle; NetModel: bit s = slot s's request was granted).
     */
    std::uint16_t progress = 0;

    /**
     * Rotation r the canonicalization applied: index j in the
     * successor's canonical frame is index (j + r) mod N in the
     * source state's frame.
     */
    std::uint8_t rot = 0;
};

/**
 * A protocol layer presented to the explorer: states are opaque
 * encodings (any encoding a Model hands out can be decoded again, so
 * the explorer and the trace renderer never see the concrete
 * structs).
 */
class Model
{
  public:
    virtual ~Model() = default;

    /** Canonical encoding of the initial state. */
    virtual std::string initial() const = 0;

    /**
     * Expand @p enc (canonical or not) into its successor states in a
     * deterministic order.  @p labels, when given, receives one
     * human-readable action description per successor; @p raws, when
     * given, receives each successor's *pre-canonicalization*
     * encoding (same frame as @p enc) for trace rendering.
     */
    virtual void successors(const std::string &enc,
                            std::vector<Succ> &out,
                            std::vector<std::string> *labels = nullptr,
                            std::vector<std::string> *raws =
                                nullptr) const = 0;

    /** Check the safety invariants of one state. */
    virtual std::optional<Violation>
    inspect(const std::string &enc) const = 0;

    /**
     * Liveness obligations of a state: the goal bits that must remain
     * achievable on some path out of it.
     */
    virtual std::uint16_t pendingBits(const std::string &enc) const = 0;

    /** True if goal bits are INC-indexed and rotate with the frame. */
    virtual bool goalsRotate() const = 0;

    /**
     * Translate an achievable-goals mask from a successor's canonical
     * frame into the source frame, given the edge's rotation.
     */
    virtual std::uint16_t rotateGoals(std::uint16_t bits,
                                      unsigned rot) const = 0;

    /** One-line rendering of a state for counterexample traces. */
    virtual std::string describeState(const std::string &enc) const = 0;

    /** Prose name of liveness goal @p bit ("INC 2 completes ..."). */
    virtual std::string describeGoal(unsigned bit) const = 0;

    /** Short name of the layer ("cycle" / "datapath") for reports. */
    virtual std::string name() const = 0;
};

} // namespace check
} // namespace rmb

#endif // RMB_CHECK_CHECK_HH
