#include "check/cycle_model.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace rmb {
namespace check {

namespace {

const char *
phaseName(core::CyclePhase p)
{
    switch (p) {
      case core::CyclePhase::Moving:
        return "Moving";
      case core::CyclePhase::WaitNeighborsDone:
        return "WaitDone";
      case core::CyclePhase::WaitNeighborsCycle:
        return "WaitCycle";
      case core::CyclePhase::WaitNeighborsClear:
        return "WaitClear";
    }
    return "?";
}

} // namespace

CycleModel::CycleModel(const CheckConfig &cfg) : cfg_(cfg)
{
    rmb_assert(cfg.nodes >= 2 && cfg.nodes <= kMaxCheckNodes,
               "cycle model supports 2..", kMaxCheckNodes, " nodes");
}

std::string
CycleModel::encode(const St &s) const
{
    std::string enc(cfg_.nodes, '\0');
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        enc[i] = static_cast<char>(
            static_cast<unsigned>(s.phase[i]) |
            (static_cast<unsigned>(s.id[i]) << 2) |
            (static_cast<unsigned>(s.rel[i]) << 3));
    }
    return enc;
}

CycleModel::St
CycleModel::decode(const std::string &enc) const
{
    rmb_assert(enc.size() == cfg_.nodes, "bad cycle encoding");
    St s{};
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        const auto b = static_cast<std::uint8_t>(enc[i]);
        s.phase[i] = static_cast<core::CyclePhase>(b & 0x3);
        s.id[i] = (b >> 2) & 0x1;
        s.rel[i] = (b >> 3) & 0xf;
    }
    return s;
}

std::pair<std::string, std::uint8_t>
CycleModel::canon(const St &s) const
{
    const std::uint32_t n = cfg_.nodes;
    std::string best;
    std::uint8_t best_rot = 0;
    St t{};
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t j = (i + r) % n;
            t.phase[i] = s.phase[j];
            t.id[i] = s.id[j];
            t.rel[i] = s.rel[j];
        }
        std::string enc = encode(t);
        if (r == 0 || enc < best) {
            best = std::move(enc);
            best_rot = static_cast<std::uint8_t>(r);
        }
    }
    return {best, best_rot};
}

std::string
CycleModel::initial() const
{
    St s{};
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        s.phase[i] = core::CyclePhase::Moving;
        s.id[i] = 0;
        s.rel[i] = 0;
    }
    return canon(s).first;
}

void
CycleModel::successors(const std::string &enc, std::vector<Succ> &out,
                       std::vector<std::string> *labels,
                       std::vector<std::string> *raws) const
{
    const std::uint32_t n = cfg_.nodes;
    const St s = decode(enc);

    const auto emit = [&](const St &t, std::uint16_t progress,
                          const std::string &label) {
        auto [cenc, rot] = canon(t);
        out.push_back(Succ{std::move(cenc), progress, rot});
        if (labels)
            labels->push_back(label);
        if (raws)
            raws->push_back(encode(t));
    };

    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t li = (i + n - 1) % n;
        const std::uint32_t ri = (i + 1) % n;

        // The INC finishes this cycle's datapath moves (raises ID).
        if (s.phase[i] == core::CyclePhase::Moving && !s.id[i]) {
            St t = s;
            t.id[i] = 1;
            emit(t, 0,
                 "INC " + std::to_string(i) +
                     ": datapath moves complete (ID := 1)");
        }

        // One evaluation of the section-2.5 rules at INC i against
        // its neighbours' current flags.
        const core::CycleStep r = core::stepCycle(
            s.phase[i], s.id[i] != 0, core::cycleOd(s.phase[li]),
            core::cycleOc(s.phase[li]), core::cycleOd(s.phase[ri]),
            core::cycleOc(s.phase[ri]), cfg_.cycleVariant);
        if (r.phase == s.phase[i])
            continue; // no rule fired: not a transition
        St t = s;
        t.phase[i] = r.phase;
        std::uint16_t progress = 0;
        std::string label = "INC " + std::to_string(i) + ": ";
        if (r.cycleFlipped) {
            progress = static_cast<std::uint16_t>(1u << i);
            label += "rule 3 fires (OC := 1, cycle flips)";
            t.rel[i] = static_cast<std::uint8_t>(t.rel[i] + 1);
            // Renormalize so the ring minimum stays at zero.
            std::uint8_t m = t.rel[0];
            for (std::uint32_t j = 1; j < n; ++j)
                m = std::min(m, t.rel[j]);
            for (std::uint32_t j = 0; j < n; ++j)
                t.rel[j] = static_cast<std::uint8_t>(t.rel[j] - m);
        } else if (r.enteredMoving) {
            t.id[i] = 0;
            label += "rule 5 fires (OC := 0, next Moving phase)";
        } else if (r.phase == core::CyclePhase::WaitNeighborsDone) {
            label += "rule 2 fires (OD := 1)";
        } else {
            label += "rule 4 fires (OD := 0)";
        }
        emit(t, progress, label);
    }
}

std::optional<Violation>
CycleModel::inspect(const std::string &enc) const
{
    const std::uint32_t n = cfg_.nodes;
    const St s = decode(enc);
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t j = (i + 1) % n;
        const int skew = s.rel[i] > s.rel[j] ? s.rel[i] - s.rel[j]
                                             : s.rel[j] - s.rel[i];
        if (skew > 1) {
            std::ostringstream os;
            os << "Lemma 1 violated: cycle-count skew " << skew
               << " between adjacent INC " << i << " and INC " << j;
            return Violation{"lemma1-skew", os.str()};
        }
    }
    return std::nullopt;
}

std::uint16_t
CycleModel::pendingBits(const std::string &) const
{
    // Every INC must always be able to complete another cycle.
    return static_cast<std::uint16_t>((1u << cfg_.nodes) - 1);
}

std::uint16_t
CycleModel::rotateGoals(std::uint16_t bits, unsigned rot) const
{
    const std::uint32_t n = cfg_.nodes;
    std::uint16_t out = 0;
    for (std::uint32_t j = 0; j < n; ++j)
        if (bits & (1u << j))
            out |= static_cast<std::uint16_t>(1u << ((j + rot) % n));
    return out;
}

std::string
CycleModel::describeState(const std::string &enc) const
{
    const St s = decode(enc);
    std::ostringstream os;
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        if (i)
            os << " | ";
        os << "INC" << i << "=" << phaseName(s.phase[i]);
        if (s.phase[i] == core::CyclePhase::Moving)
            os << (s.id[i] ? "(done)" : "(moving)");
        os << " c+" << int{s.rel[i]};
    }
    return os.str();
}

std::string
CycleModel::describeGoal(unsigned bit) const
{
    return "INC " + std::to_string(bit) +
           " completes another odd/even cycle";
}

} // namespace check
} // namespace rmb
