#include "check/runner.hh"

#include <chrono>
#include <iomanip>
#include <memory>
#include <ostream>

#include "check/cycle_model.hh"
#include "check/explorer.hh"
#include "check/net_model.hh"

namespace rmb {
namespace check {

namespace {

RunStatus
runLayer(const Model &model, const CheckConfig &cfg,
         std::ostream &os)
{
    const auto t0 = std::chrono::steady_clock::now();
    const ExploreResult res = explore(model, cfg.maxStates);
    const auto dt =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    os << "  [" << model.name() << "] states=" << res.numStates
       << " edges=" << res.numEdges << " depth=" << res.depth
       << " time=" << std::fixed << std::setprecision(2)
       << static_cast<double>(dt) / 1000.0 << "s";
    if (res.truncated) {
        os << "  TRUNCATED at " << cfg.maxStates
           << " states; nothing proven (raise --max-states)\n";
        return RunStatus::Truncated;
    }
    if (!res.violation) {
        os << "  OK\n";
        return RunStatus::Clean;
    }
    os << "  VIOLATION (" << res.violation->kind << ")\n";
    os << "  counterexample (" << res.trace.size() - 1
       << " steps):\n"
       << renderTrace(model, res.trace, *res.violation);
    return RunStatus::Violation;
}

} // namespace

RunStatus
worse(RunStatus a, RunStatus b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

RunStatus
runCheck(const CheckConfig &cfg, Layers layers, std::ostream &os)
{
    os << "rmbcheck: N=" << cfg.nodes << " k=" << cfg.buses
       << " messages=" << cfg.messages << "\n";
    RunStatus status = RunStatus::Clean;
    if (layers != Layers::DatapathOnly) {
        CycleModel cycle(cfg);
        status = worse(status, runLayer(cycle, cfg, os));
    }
    if (layers != Layers::CycleOnly) {
        NetModel net(cfg);
        status = worse(status, runLayer(net, cfg, os));
    }
    return status;
}

RunStatus
runAll(std::size_t max_states, std::ostream &os)
{
    RunStatus status = RunStatus::Clean;
    for (std::uint32_t n = 3; n <= 6; ++n) {
        for (std::uint32_t k = 2; k <= 4; ++k) {
            CheckConfig cfg;
            cfg.nodes = n;
            cfg.buses = k;
            // Two interacting messages cover contention, blocking
            // and Nack-retry; beyond N=4 the product state space
            // outgrows a CI budget, so the larger rings run one
            // message (geometry coverage) - printed, not silent.
            cfg.messages = n <= 4 ? 2 : 1;
            cfg.maxStates = max_states;
            status = worse(status, runCheck(cfg, Layers::Both, os));
        }
    }
    if (status == RunStatus::Clean)
        os << "rmbcheck: all configurations clean\n";
    else
        os << "rmbcheck: FAILURES in the sweep above\n";
    return status;
}

bool
applyMutation(const std::string &name, CheckConfig &cfg)
{
    if (name.empty() || name == "none")
        return true;
    if (name == "oc-rule-bodytext") {
        cfg.cycleVariant = core::CycleRuleVariant::OcRuleBodyText;
        return true;
    }
    if (name == "no-handshake-gates") {
        cfg.cycleVariant = core::CycleRuleVariant::NoHandshakeGates;
        return true;
    }
    if (name == "move-ignore-neighbors") {
        cfg.moveVariant = core::MoveRuleVariant::IgnoreNeighbors;
        return true;
    }
    return false;
}

} // namespace check
} // namespace rmb
