/**
 * @file
 * Model of the section-2.5 odd/even cycle handshake: a ring of N
 * copies of the pure core::stepCycle rules, stepped one INC at a time
 * (asynchronous interleaving - the INCs run on independent clocks).
 *
 * State per INC: the CyclePhase, the internal ID bit ("this cycle's
 * datapath moves are done") and the completed-cycle count *relative
 * to the ring minimum* (Lemma 1 bounds the spread, so relative
 * counts keep the state space finite without losing any behaviour).
 *
 * Checked properties:
 *   - safety: Lemma 1 - neighbouring cycle counts never differ by
 *     more than one;
 *   - deadlock freedom: some INC can always act;
 *   - progress: from every reachable state, every INC can still
 *     complete another cycle.
 */

#ifndef RMB_CHECK_CYCLE_MODEL_HH
#define RMB_CHECK_CYCLE_MODEL_HH

#include <array>
#include <cstdint>

#include "check/check.hh"

namespace rmb {
namespace check {

class CycleModel : public Model
{
  public:
    explicit CycleModel(const CheckConfig &cfg);

    std::string initial() const override;
    void successors(const std::string &enc, std::vector<Succ> &out,
                    std::vector<std::string> *labels,
                    std::vector<std::string> *raws) const override;
    std::optional<Violation>
    inspect(const std::string &enc) const override;
    std::uint16_t pendingBits(const std::string &enc) const override;
    bool goalsRotate() const override { return true; }
    std::uint16_t rotateGoals(std::uint16_t bits,
                              unsigned rot) const override;
    std::string describeState(const std::string &enc) const override;
    std::string describeGoal(unsigned bit) const override;
    std::string name() const override { return "cycle"; }

  private:
    /** Decoded ring state (index = INC position). */
    struct St
    {
        std::array<core::CyclePhase, kMaxCheckNodes> phase;
        std::array<std::uint8_t, kMaxCheckNodes> id;
        std::array<std::uint8_t, kMaxCheckNodes> rel;
    };

    St decode(const std::string &enc) const;
    std::string encode(const St &s) const;
    /** Minimal encoding over all rotations, and the rotation used. */
    std::pair<std::string, std::uint8_t> canon(const St &s) const;

    CheckConfig cfg_;
};

} // namespace check
} // namespace rmb

#endif // RMB_CHECK_CYCLE_MODEL_HH
