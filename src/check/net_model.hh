/**
 * @file
 * Model of the datapath layer: M message slots injecting, advancing,
 * streaming and tearing down virtual buses on a ring of N gaps by k
 * segments, with make-before-break compaction interleaved.
 *
 * Every guard is the simulator's own pure rule:
 *   - header advance uses core::reachableOutputLevels (Figure 6 +
 *     the header policy), taking the first free level it offers;
 *   - moves use core::hopMovableRule (Figure 7) on a real
 *     core::VirtualBus view of the state, split into separate "make"
 *     (claim the lower segment) and "break" (release the upper one)
 *     transitions so the dual-source Table-1 codes are reachable
 *     states the invariants can look at;
 *   - blocked headers follow BlockingPolicy::NackRetry (the repo
 *     default): tear down and retry the same (src, dst) request.
 *
 * Status registers are not stored: each state derives every INC's
 * output-port codes from the hop chains and checks them against
 * core::statusLegal - an illegal or non-adjacent connection is
 * exactly what "a compaction move severed a virtual bus" looks like.
 *
 * The odd/even cycle layer is deliberately absent here: interleaved
 * atomic moves already serialize adjacent INCs, and the handshake
 * that achieves the same in hardware is verified separately by
 * CycleModel (the composition argument is spelled out in
 * docs/MODELCHECK.md).
 */

#ifndef RMB_CHECK_NET_MODEL_HH
#define RMB_CHECK_NET_MODEL_HH

#include <cstdint>
#include <vector>

#include "check/check.hh"
#include "rmb/virtual_bus.hh"

namespace rmb {
namespace check {

/** Largest number of message slots the model accepts. */
constexpr std::uint32_t kMaxCheckMessages = 4;

class NetModel : public Model
{
  public:
    explicit NetModel(const CheckConfig &cfg);

    std::string initial() const override;
    void successors(const std::string &enc, std::vector<Succ> &out,
                    std::vector<std::string> *labels,
                    std::vector<std::string> *raws) const override;
    std::optional<Violation>
    inspect(const std::string &enc) const override;
    std::uint16_t pendingBits(const std::string &enc) const override;
    bool goalsRotate() const override { return false; }
    std::uint16_t
    rotateGoals(std::uint16_t bits, unsigned) const override
    {
        return bits; // goals are slot-indexed; slots do not rotate
    }
    std::string describeState(const std::string &enc) const override;
    std::string describeGoal(unsigned bit) const override;
    std::string name() const override { return "datapath"; }

  private:
    /** What a message slot is currently doing. */
    enum class SlotKind : std::uint8_t
    {
        Idle,    //!< no request; may inject any (src, dst)
        Pending, //!< nacked; must retry the same (src, dst)
        Active,  //!< owns a live virtual bus
    };

    /** Protocol phase of a slot's bus (folded from core::BusState:
     *  AwaitHack + Streaming collapse into Established). */
    enum class BusPhase : std::uint8_t
    {
        Advancing,
        Established,
        NackTeardown,
        FackTeardown,
    };

    /** One hop: its level, and whether it is mid-move (also owning
     *  level-1, the make-before-break dual).  The gap is implicit:
     *  hop j of a bus from src sits in gap (src + j) mod N. */
    struct Hp
    {
        std::int8_t level = 0;
        bool move = false;
    };

    struct Slot
    {
        SlotKind kind = SlotKind::Idle;
        std::uint8_t src = 0;
        std::uint8_t dst = 0;
        BusPhase phase = BusPhase::Advancing;
        std::vector<Hp> hops;
    };

    struct St
    {
        std::vector<Slot> slots;
    };

    St decode(const std::string &enc) const;
    std::string encode(const St &s) const;
    std::pair<std::string, std::uint8_t> canon(const St &s) const;

    /** Occupancy grid: occ[gap * k + level] = number of claims. */
    void occupancy(const St &s, std::vector<std::uint8_t> &occ) const;

    /** Rebuild a real core::VirtualBus view of one slot's bus, so
     *  the shared rules can be driven unmodified. */
    core::VirtualBus busView(const Slot &slot) const;

    std::uint32_t pathLength(const Slot &slot) const;

    CheckConfig cfg_;
};

} // namespace check
} // namespace rmb

#endif // RMB_CHECK_NET_MODEL_HH
