/**
 * @file
 * Orchestration of model-checking runs: one layer on one
 * configuration, or the full --all sweep over the paper-sized rings.
 */

#ifndef RMB_CHECK_RUNNER_HH
#define RMB_CHECK_RUNNER_HH

#include <iosfwd>
#include <string>

#include "check/check.hh"

namespace rmb {
namespace check {

/** Which protocol layers a run covers. */
enum class Layers : std::uint8_t
{
    Both,
    CycleOnly,
    DatapathOnly,
};

/** Process exit codes of tools/rmbcheck. */
enum class RunStatus : int
{
    Clean = 0,     //!< every invariant held, liveness proven
    Violation = 1, //!< a counterexample was found and printed
    Usage = 2,     //!< bad command line
    Truncated = 3, //!< state budget hit; nothing was proven
};

/** Worse-of combinator for aggregating statuses. */
RunStatus worse(RunStatus a, RunStatus b);

/**
 * Check one configuration; prints a per-layer summary (and any
 * counterexample) to @p os.
 */
RunStatus runCheck(const CheckConfig &cfg, Layers layers,
                   std::ostream &os);

/**
 * The --all sweep: N in {3..6} x k in {2..4}, both layers, unmutated
 * rules.  The datapath layer runs 2 concurrent messages up to N=4
 * and 1 beyond (the printed lines say so), keeping the sweep inside
 * a CI-sized time budget.
 */
RunStatus runAll(std::size_t max_states, std::ostream &os);

/**
 * Map a --mutate argument onto the rule variants it perturbs.
 * Returns false (leaving @p cfg untouched) for an unknown name.
 * Known names: "oc-rule-bodytext", "no-handshake-gates",
 * "move-ignore-neighbors".
 */
bool applyMutation(const std::string &name, CheckConfig &cfg);

} // namespace check
} // namespace rmb

#endif // RMB_CHECK_RUNNER_HH
