/**
 * @file
 * Permutation workloads.
 *
 * The paper's evaluation metric is a network's ability to route
 * k-permutations: k simultaneous messages with distinct sources and
 * distinct destinations.  This module generates full permutations
 * (the classical adversarial patterns plus uniformly random ones) and
 * partial h-permutations.
 */

#ifndef RMB_WORKLOAD_PERMUTATION_HH
#define RMB_WORKLOAD_PERMUTATION_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "netbase/message.hh"
#include "sim/random.hh"

namespace rmb {
namespace workload {

/**
 * A full permutation: element i is node i's destination.  A fixed
 * point (p[i] == i) means node i sends nothing (self-messages do not
 * enter the network).
 */
using Permutation = std::vector<net::NodeId>;

/** A partial permutation: explicit (source, destination) pairs. */
using PairList = std::vector<std::pair<net::NodeId, net::NodeId>>;

/** @return true iff @p p is a permutation of 0..n-1. */
bool isPermutation(const Permutation &p);

/** Identity (all fixed points; routes nothing). */
Permutation identity(net::NodeId n);

/** Uniformly random permutation. */
Permutation randomPermutation(net::NodeId n, sim::Random &rng);

/**
 * Uniformly random derangement-style permutation: re-drawn until no
 * fixed points remain, so every node sends exactly one message.
 */
Permutation randomFullTraffic(net::NodeId n, sim::Random &rng);

/** Bit reversal: node b_{m-1}..b_0 sends to b_0..b_{m-1}; N = 2^m. */
Permutation bitReversal(net::NodeId n);

/** Perfect shuffle: left-rotate the address bits; N = 2^m. */
Permutation perfectShuffle(net::NodeId n);

/** Matrix transpose: swap address halves; N = 2^m, m even. */
Permutation transpose(net::NodeId n);

/** Cyclic rotation by @p shift: i -> (i + shift) mod N. */
Permutation rotation(net::NodeId n, net::NodeId shift);

/** Bit complement: i -> ~i mod N; N = 2^m. */
Permutation bitComplement(net::NodeId n);

/** Drop fixed points, yielding explicit message pairs. */
PairList toPairs(const Permutation &p);

/**
 * Random h-permutation: @p h pairs with distinct sources and distinct
 * destinations (and src != dst per pair); requires h <= N.
 */
PairList randomPartialPermutation(net::NodeId n, net::NodeId h,
                                  sim::Random &rng);

/**
 * Random h-relation: every node sends exactly @p h messages and
 * receives exactly @p h (the union of h fixed-point-free random
 * permutations) - the BSP/bulk-transfer generalization of the
 * paper's h-permutation metric.
 */
PairList randomHRelation(net::NodeId n, std::uint32_t h,
                         sim::Random &rng);

/**
 * The maximum number of clockwise ring hops any single inter-node gap
 * must carry for this pair list; the RMB needs at least this many
 * buses to route the whole set concurrently (see offline/).
 */
std::uint32_t maxRingLoad(net::NodeId n, const PairList &pairs);

} // namespace workload
} // namespace rmb

#endif // RMB_WORKLOAD_PERMUTATION_HH
