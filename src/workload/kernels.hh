/**
 * @file
 * Application communication kernels.
 *
 * The paper motivates reconfigurable bus machines with computations
 * from "image processing, sorting, selection, geometric and graph
 * algorithms" (section 1).  This module provides the communication
 * skeletons such algorithms generate - phase-structured (BSP-style)
 * exchanges with a barrier between phases - so the benches can
 * compare networks on algorithm-shaped traffic rather than only on
 * synthetic permutations.
 */

#ifndef RMB_WORKLOAD_KERNELS_HH
#define RMB_WORKLOAD_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/network.hh"
#include "sim/types.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace workload {

/** One barrier-separated communication phase. */
struct KernelPhase
{
    PairList pairs;
};

/** A whole kernel: phases executed in order with barriers. */
struct Kernel
{
    std::string name;
    std::vector<KernelPhase> phases;

    /** Total messages across all phases. */
    std::size_t numMessages() const;
};

/**
 * Butterfly / ascend: log2(N) phases; in phase s node i exchanges
 * with i XOR 2^s.  The skeleton of bitonic sort, FFT and
 * ascend/descend algorithms.  N must be a power of two.
 */
Kernel butterflyKernel(net::NodeId n);

/**
 * All-to-all personalized exchange as N-1 rotation phases (phase s:
 * i -> i + s); the skeleton of matrix transpose and bucket sort.
 */
Kernel allToAllKernel(net::NodeId n);

/**
 * Iterative stencil: @p iterations phases of simultaneous exchange
 * with both ring neighbours (i -> i+1 and i -> i-1); the skeleton
 * of image filtering and relaxation solvers.
 */
Kernel stencilKernel(net::NodeId n, std::uint32_t iterations);

/**
 * Binary-tree reduction: log2(N) phases; in phase s nodes with
 * index == 2^s (mod 2^(s+1)) send to index - 2^s.  The skeleton of
 * global sums, selection and prefix operations.  N power of two.
 */
Kernel reductionKernel(net::NodeId n);

/**
 * Parallel prefix (exclusive scan, Hillis-Steele): log2(N) phases;
 * in phase s every node i >= 2^s receives from i - 2^s.
 */
Kernel prefixKernel(net::NodeId n);

/** Result of executing a kernel on a network. */
struct KernelResult
{
    bool completed = false;
    sim::Tick makespan = 0;
    std::vector<sim::Tick> phaseTicks; //!< per-phase duration
};

/**
 * Execute @p kernel on @p network, @p payload_flits per message,
 * with a full barrier (network quiescence) between phases.
 */
KernelResult runKernel(net::Network &network, const Kernel &kernel,
                       std::uint32_t payload_flits,
                       sim::Tick phase_timeout = 10'000'000);

/** All kernels at size @p n (power of two), for bench loops. */
std::vector<Kernel> allKernels(net::NodeId n);

} // namespace workload
} // namespace rmb

#endif // RMB_WORKLOAD_KERNELS_HH
