#include "workload/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "sim/stats.hh"

namespace rmb {
namespace workload {

Trace
generateTrace(TrafficPattern &pattern, double rate,
              std::uint32_t payload_flits, sim::Tick duration,
              sim::Random &rng)
{
    rmb_assert(rate > 0.0 && rate <= 1.0,
               "trace rate must be in (0, 1]");
    Trace trace;
    // split(node) rather than fork(): each node's event stream is a
    // pure function of (caller seed, node id), so traces for a
    // shared prefix of nodes agree across different network sizes.
    for (net::NodeId node = 0; node < pattern.numNodes(); ++node) {
        sim::Random node_rng = rng.split(node);
        sim::Tick t = node_rng.geometric(rate) + 1;
        while (t < duration) {
            trace.push_back(TraceEvent{
                t, node, pattern.pick(node, node_rng),
                payload_flits});
            t += node_rng.geometric(rate) + 1;
        }
    }
    std::stable_sort(trace.begin(), trace.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.time < b.time;
                     });
    return trace;
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << "# rmbtrace v1\n";
    for (const TraceEvent &e : trace) {
        os << e.time << ' ' << e.src << ' ' << e.dst << ' '
           << e.payloadFlits << '\n';
    }
}

Trace
readTrace(std::istream &is)
{
    Trace trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        TraceEvent e;
        if (!(fields >> e.time >> e.src >> e.dst >>
              e.payloadFlits)) {
            fatal("trace line ", line_no, " malformed: '", line,
                  "'");
        }
        trace.push_back(e);
    }
    std::stable_sort(trace.begin(), trace.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.time < b.time;
                     });
    return trace;
}

ReplayResult
replayTrace(net::Network &network, const Trace &trace,
            sim::Tick drain)
{
    ReplayResult r;
    if (trace.empty())
        return r;

    auto &simulator = network.simulator();
    const sim::Tick base = simulator.now();
    std::vector<net::MessageId> ids;
    ids.reserve(trace.size());

    // Issue the sends in trace order, advancing simulated time to
    // each event's (base-relative) timestamp.
    for (const TraceEvent &e : trace) {
        rmb_assert(e.src < network.numNodes() &&
                       e.dst < network.numNodes(),
                   "trace node out of range for this network");
        simulator.runUntil(base + e.time);
        ids.push_back(network.send(e.src, e.dst, e.payloadFlits));
    }
    const sim::Tick last_event = base + trace.back().time;
    while (!network.quiescent() && !simulator.idle() &&
           simulator.now() < last_event + drain) {
        simulator.run(1024);
    }

    sim::SampleStat latency;
    sim::Tick last_delivery = base;
    for (const net::MessageId id : ids) {
        ++r.injected;
        const net::Message &m = network.message(id);
        if (m.state == net::MessageState::Failed) {
            ++r.failed;
            continue;
        }
        if (m.state != net::MessageState::Delivered)
            continue;
        ++r.delivered;
        latency.add(static_cast<double>(m.totalLatency()));
        last_delivery = std::max(last_delivery, m.delivered);
    }
    r.makespan = last_delivery - base;
    r.meanLatency = latency.count() ? latency.mean() : 0.0;
    r.p95Latency = latency.count() ? latency.percentile(95) : 0.0;
    return r;
}

} // namespace workload
} // namespace rmb
