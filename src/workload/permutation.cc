#include "workload/permutation.hh"

#include <algorithm>
#include <numeric>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rmb {
namespace workload {

bool
isPermutation(const Permutation &p)
{
    std::vector<bool> seen(p.size(), false);
    for (net::NodeId v : p) {
        if (v >= p.size() || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

Permutation
identity(net::NodeId n)
{
    Permutation p(n);
    std::iota(p.begin(), p.end(), 0);
    return p;
}

Permutation
randomPermutation(net::NodeId n, sim::Random &rng)
{
    Permutation p = identity(n);
    rng.shuffle(p);
    return p;
}

Permutation
randomFullTraffic(net::NodeId n, sim::Random &rng)
{
    rmb_assert(n >= 2, "need N >= 2 for a fixed-point-free permutation");
    for (;;) {
        Permutation p = randomPermutation(n, rng);
        bool has_fixed_point = false;
        for (net::NodeId i = 0; i < n; ++i) {
            if (p[i] == i) {
                has_fixed_point = true;
                break;
            }
        }
        if (!has_fixed_point)
            return p;
    }
}

Permutation
bitReversal(net::NodeId n)
{
    rmb_assert(isPowerOfTwo(n), "bit reversal needs N = 2^m, got ", n);
    const std::uint32_t bits = log2Floor(n);
    Permutation p(n);
    for (net::NodeId i = 0; i < n; ++i)
        p[i] = static_cast<net::NodeId>(bitReverse(i, bits));
    return p;
}

Permutation
perfectShuffle(net::NodeId n)
{
    rmb_assert(isPowerOfTwo(n), "shuffle needs N = 2^m, got ", n);
    const std::uint32_t bits = log2Floor(n);
    Permutation p(n);
    for (net::NodeId i = 0; i < n; ++i) {
        const std::uint64_t high = (i >> (bits - 1)) & 1;
        p[i] = static_cast<net::NodeId>(((i << 1) | high) & (n - 1));
    }
    return p;
}

Permutation
transpose(net::NodeId n)
{
    rmb_assert(isPowerOfTwo(n), "transpose needs N = 2^m, got ", n);
    const std::uint32_t bits = log2Floor(n);
    rmb_assert(bits % 2 == 0, "transpose needs an even bit count");
    const std::uint32_t half = bits / 2;
    const std::uint64_t mask = (1ull << half) - 1;
    Permutation p(n);
    for (net::NodeId i = 0; i < n; ++i) {
        const std::uint64_t lo = i & mask;
        const std::uint64_t hi = (i >> half) & mask;
        p[i] = static_cast<net::NodeId>((lo << half) | hi);
    }
    return p;
}

Permutation
rotation(net::NodeId n, net::NodeId shift)
{
    Permutation p(n);
    for (net::NodeId i = 0; i < n; ++i)
        p[i] = static_cast<net::NodeId>((i + shift) % n);
    return p;
}

Permutation
bitComplement(net::NodeId n)
{
    rmb_assert(isPowerOfTwo(n), "bit complement needs N = 2^m");
    Permutation p(n);
    for (net::NodeId i = 0; i < n; ++i)
        p[i] = static_cast<net::NodeId>((~i) & (n - 1));
    return p;
}

PairList
toPairs(const Permutation &p)
{
    PairList pairs;
    for (net::NodeId i = 0; i < p.size(); ++i)
        if (p[i] != i)
            pairs.emplace_back(i, p[i]);
    return pairs;
}

PairList
randomPartialPermutation(net::NodeId n, net::NodeId h,
                         sim::Random &rng)
{
    rmb_assert(h <= n, "h-permutation needs h <= N");
    for (;;) {
        Permutation sources = identity(n);
        Permutation dests = identity(n);
        rng.shuffle(sources);
        rng.shuffle(dests);
        PairList pairs;
        bool ok = true;
        for (net::NodeId i = 0; i < h; ++i) {
            if (sources[i] == dests[i]) {
                ok = false;
                break;
            }
            pairs.emplace_back(sources[i], dests[i]);
        }
        if (ok)
            return pairs;
    }
}

PairList
randomHRelation(net::NodeId n, std::uint32_t h, sim::Random &rng)
{
    PairList pairs;
    pairs.reserve(static_cast<std::size_t>(n) * h);
    for (std::uint32_t round = 0; round < h; ++round) {
        const Permutation p = randomFullTraffic(n, rng);
        for (net::NodeId i = 0; i < n; ++i)
            pairs.emplace_back(i, p[i]);
    }
    return pairs;
}

std::uint32_t
maxRingLoad(net::NodeId n, const PairList &pairs)
{
    // Sweep: +1 at the gap after src, carried clockwise until dst.
    std::vector<std::uint32_t> load(n, 0);
    for (const auto &[src, dst] : pairs) {
        net::NodeId g = src;
        while (g != dst) {
            ++load[g]; // gap between node g and node g+1
            g = static_cast<net::NodeId>((g + 1) % n);
        }
    }
    return *std::max_element(load.begin(), load.end());
}

} // namespace workload
} // namespace rmb
