/**
 * @file
 * Message-trace recording and replay.
 *
 * A trace is a time-ordered list of injection requests.  Traces make
 * experiments portable (the same communication pattern can be
 * replayed against every network) and reproducible outside the
 * RNG-coupled generators.  The on-disk format is a plain text file:
 *
 *     # rmbtrace v1
 *     <tick> <src> <dst> <payload_flits>
 *     ...
 */

#ifndef RMB_WORKLOAD_TRACE_HH
#define RMB_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netbase/network.hh"
#include "sim/random.hh"
#include "workload/traffic.hh"

namespace rmb {
namespace workload {

/** One injection request. */
struct TraceEvent
{
    sim::Tick time = 0;
    net::NodeId src = 0;
    net::NodeId dst = 0;
    std::uint32_t payloadFlits = 0;

    bool
    operator==(const TraceEvent &o) const
    {
        return time == o.time && src == o.src && dst == o.dst &&
               payloadFlits == o.payloadFlits;
    }
};

/** A whole trace, sorted by time. */
using Trace = std::vector<TraceEvent>;

/**
 * Synthesize a trace: every node generates messages as a Bernoulli
 * process of @p rate per tick over @p duration ticks, destinations
 * drawn from @p pattern.  The result is time-sorted.
 */
Trace generateTrace(TrafficPattern &pattern, double rate,
                    std::uint32_t payload_flits, sim::Tick duration,
                    sim::Random &rng);

/** Serialize to the text format above. */
void writeTrace(std::ostream &os, const Trace &trace);

/**
 * Parse a trace; fatal() on malformed input (user error).  Events
 * are re-sorted by time if needed.
 */
Trace readTrace(std::istream &is);

/** Result of replaying a trace. */
struct ReplayResult
{
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t failed = 0;
    sim::Tick makespan = 0;   //!< first injection -> last delivery
    double meanLatency = 0.0;
    double p95Latency = 0.0;
};

/**
 * Replay @p trace against @p network: each event's send() is issued
 * at its recorded tick (relative to the current simulated time),
 * then the simulator runs until quiescent or @p drain ticks past the
 * last event.
 */
ReplayResult replayTrace(net::Network &network, const Trace &trace,
                         sim::Tick drain = 1'000'000);

} // namespace workload
} // namespace rmb

#endif // RMB_WORKLOAD_TRACE_HH
