#include "workload/driver.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "sim/stats.hh"

namespace rmb {
namespace workload {

namespace {

/** Run the simulator in chunks until @p done or @p deadline or idle. */
void
runUntilDone(net::Network &network, sim::Tick deadline)
{
    auto &simulator = network.simulator();
    while (!network.quiescent() && !simulator.idle() &&
           simulator.now() < deadline) {
        simulator.run(1024);
    }
}

} // namespace

BatchResult
runBatch(net::Network &network, const PairList &pairs,
         std::uint32_t payload_flits, sim::Tick timeout)
{
    rmb_assert(network.quiescent(),
               "runBatch needs a quiescent network to start from");

    auto &simulator = network.simulator();
    const sim::Tick start = simulator.now();
    const std::uint64_t nacks_before = network.stats().nacks;
    const std::uint64_t retries_before = network.stats().retries;

    std::vector<net::MessageId> ids;
    ids.reserve(pairs.size());
    for (const auto &[src, dst] : pairs)
        ids.push_back(network.send(src, dst, payload_flits));

    runUntilDone(network, start + timeout);

    BatchResult r;
    sim::SampleStat latency;
    sim::SampleStat setup;
    sim::Tick last_delivery = start;
    for (net::MessageId id : ids) {
        const net::Message &m = network.message(id);
        if (m.state != net::MessageState::Delivered)
            continue;
        ++r.delivered;
        latency.add(static_cast<double>(m.totalLatency()));
        setup.add(static_cast<double>(m.setupLatency()));
        last_delivery = std::max(last_delivery, m.delivered);
    }
    r.completed = r.delivered == ids.size();
    r.makespan = last_delivery - start;
    r.nacks = network.stats().nacks - nacks_before;
    r.retries = network.stats().retries - retries_before;
    r.meanLatency = latency.count() ? latency.mean() : 0.0;
    r.maxLatency = latency.count() ? latency.max() : 0.0;
    r.meanSetupLatency = setup.count() ? setup.mean() : 0.0;
    return r;
}

OpenLoopResult
runOpenLoop(net::Network &network, TrafficPattern &pattern,
            double rate, std::uint32_t payload_flits,
            sim::Tick duration, sim::Random &rng, sim::Tick warmup,
            sim::Tick drain)
{
    rmb_assert(rate > 0.0 && rate <= 1.0,
               "per-node injection rate must be in (0, 1]");
    rmb_assert(warmup < duration, "warmup must precede the end");

    auto &simulator = network.simulator();
    const sim::Tick start = simulator.now();
    const sim::Tick gen_end = start + duration;
    const sim::Tick measure_from = start + warmup;

    // Message ids created inside the measurement window.
    auto measured = std::make_shared<std::vector<net::MessageId>>();
    const std::uint64_t injected_before = network.stats().injected;
    const std::uint64_t delivered_before =
        network.stats().delivered;
    const std::uint64_t nacks_before = network.stats().nacks;

    // One self-rescheduling generator per node.  Each generator owns
    // the substream split(node) of the caller's RNG, so a node's
    // whole injection sequence (first gap included) is a pure
    // function of (caller seed, node id) - independent of event
    // ordering between nodes and of how many nodes exist.
    struct Generator
    {
        net::Network &network;
        TrafficPattern &pattern;
        std::shared_ptr<std::vector<net::MessageId>> measured;
        net::NodeId node;
        double rate;
        std::uint32_t flits;
        sim::Tick genEnd;
        sim::Tick measureFrom;
        sim::Random rng;

        void
        fire()
        {
            auto &simulator = network.simulator();
            if (simulator.now() >= genEnd)
                return;
            const net::NodeId dst = pattern.pick(node, rng);
            const net::MessageId id =
                network.send(node, dst, flits);
            if (simulator.now() >= measureFrom)
                measured->push_back(id);
            scheduleNext();
        }

        void
        scheduleNext()
        {
            auto &simulator = network.simulator();
            const sim::Tick gap = rng.geometric(rate) + 1;
            if (simulator.now() + gap >= genEnd)
                return;
            simulator.schedule(gap, [this] { fire(); });
        }
    };

    std::vector<std::unique_ptr<Generator>> generators;
    for (net::NodeId i = 0; i < network.numNodes(); ++i) {
        auto g = std::make_unique<Generator>(Generator{
            network, pattern, measured, i, rate, payload_flits,
            gen_end, measure_from, rng.split(i)});
        auto *raw = g.get();
        simulator.schedule(raw->rng.geometric(rate) + 1,
                           [raw] { raw->fire(); });
        generators.push_back(std::move(g));
    }

    // Generation phase: the network may be transiently quiescent
    // between injections, so run on wall-clock ticks, then drain.
    simulator.runUntil(gen_end);
    runUntilDone(network, gen_end + drain);

    OpenLoopResult r;
    r.offeredLoad = rate;
    // Latency over messages *created* in the measurement window
    // (wherever they complete), so congestion queueing is charged to
    // the load that caused it.
    sim::SampleStat latency;
    sim::SampleStat setup;
    for (net::MessageId id : *measured) {
        const net::Message &m = network.message(id);
        if (m.state != net::MessageState::Delivered)
            continue;
        latency.add(static_cast<double>(m.totalLatency()));
        setup.add(static_cast<double>(m.setupLatency()));
    }
    // Throughput counts deliveries that *happened inside* the
    // window; counting the drain phase would let a saturated network
    // fake offered-load throughput.
    std::uint64_t delivered_in_window = 0;
    for (net::MessageId id = 1; id <= network.numMessages(); ++id) {
        const net::Message &m = network.message(id);
        if (m.state == net::MessageState::Delivered &&
            m.delivered >= measure_from && m.delivered < gen_end) {
            ++delivered_in_window;
        }
    }
    const double window =
        static_cast<double>(duration - warmup) *
        static_cast<double>(network.numNodes());
    r.throughput = static_cast<double>(delivered_in_window) / window;
    r.injected = network.stats().injected - injected_before;
    r.delivered = network.stats().delivered - delivered_before;
    r.nacks = network.stats().nacks - nacks_before;
    r.meanLatency = latency.count() ? latency.mean() : 0.0;
    r.p95Latency = latency.count() ? latency.percentile(95.0) : 0.0;
    r.maxLatency = latency.count() ? latency.max() : 0.0;
    r.meanSetupLatency = setup.count() ? setup.mean() : 0.0;
    return r;
}

} // namespace workload
} // namespace rmb
