/**
 * @file
 * Stochastic traffic patterns for open-loop load experiments.
 */

#ifndef RMB_WORKLOAD_TRAFFIC_HH
#define RMB_WORKLOAD_TRAFFIC_HH

#include <cstdint>
#include <memory>
#include <string>

#include "netbase/message.hh"
#include "sim/random.hh"

namespace rmb {
namespace workload {

/**
 * Chooses a destination for each generated message.  Implementations
 * must never return the source itself.
 */
class TrafficPattern
{
  public:
    explicit TrafficPattern(net::NodeId n) : numNodes_(n) {}
    virtual ~TrafficPattern() = default;

    /** Pick a destination for a message from @p src. */
    virtual net::NodeId pick(net::NodeId src, sim::Random &rng) = 0;

    /** Pattern name for bench tables. */
    virtual std::string name() const = 0;

    net::NodeId numNodes() const { return numNodes_; }

  protected:
    net::NodeId numNodes_;
};

/** Uniformly random destination (excluding the source). */
class UniformTraffic : public TrafficPattern
{
  public:
    using TrafficPattern::TrafficPattern;
    net::NodeId pick(net::NodeId src, sim::Random &rng) override;
    std::string name() const override { return "uniform"; }
};

/**
 * Hot-spot: with probability @p fraction the destination is the fixed
 * hot node, otherwise uniform.
 */
class HotSpotTraffic : public TrafficPattern
{
  public:
    HotSpotTraffic(net::NodeId n, net::NodeId hot, double fraction);
    net::NodeId pick(net::NodeId src, sim::Random &rng) override;
    std::string name() const override { return "hotspot"; }

  private:
    net::NodeId hot_;
    double fraction_;
};

/**
 * Ring-local: destination is src + d (clockwise) where d is uniform
 * in [1, maxDistance].  Exercises the RMB's spatial bus reuse.
 */
class LocalRingTraffic : public TrafficPattern
{
  public:
    LocalRingTraffic(net::NodeId n, net::NodeId max_distance);
    net::NodeId pick(net::NodeId src, sim::Random &rng) override;
    std::string name() const override { return "ring-local"; }

  private:
    net::NodeId maxDistance_;
};

/** Tornado: fixed destination src + ceil(N/2) - adversarial on rings. */
class TornadoTraffic : public TrafficPattern
{
  public:
    using TrafficPattern::TrafficPattern;
    net::NodeId pick(net::NodeId src, sim::Random &rng) override;
    std::string name() const override { return "tornado"; }
};

/** Bit-complement destinations (N = 2^m). */
class BitComplementTraffic : public TrafficPattern
{
  public:
    explicit BitComplementTraffic(net::NodeId n);
    net::NodeId pick(net::NodeId src, sim::Random &rng) override;
    std::string name() const override { return "bit-complement"; }
};

} // namespace workload
} // namespace rmb

#endif // RMB_WORKLOAD_TRAFFIC_HH
