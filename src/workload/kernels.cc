#include "workload/kernels.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "workload/driver.hh"

namespace rmb {
namespace workload {

std::size_t
Kernel::numMessages() const
{
    std::size_t total = 0;
    for (const KernelPhase &phase : phases)
        total += phase.pairs.size();
    return total;
}

Kernel
butterflyKernel(net::NodeId n)
{
    rmb_assert(isPowerOfTwo(n), "butterfly needs N = 2^m");
    Kernel kernel;
    kernel.name = "butterfly";
    for (std::uint32_t s = 0; (1u << s) < n; ++s) {
        KernelPhase phase;
        for (net::NodeId i = 0; i < n; ++i)
            phase.pairs.emplace_back(i, i ^ (1u << s));
        kernel.phases.push_back(std::move(phase));
    }
    return kernel;
}

Kernel
allToAllKernel(net::NodeId n)
{
    Kernel kernel;
    kernel.name = "all-to-all";
    for (net::NodeId s = 1; s < n; ++s) {
        KernelPhase phase;
        for (net::NodeId i = 0; i < n; ++i)
            phase.pairs.emplace_back(
                i, static_cast<net::NodeId>((i + s) % n));
        kernel.phases.push_back(std::move(phase));
    }
    return kernel;
}

Kernel
stencilKernel(net::NodeId n, std::uint32_t iterations)
{
    rmb_assert(n >= 3, "stencil needs N >= 3");
    Kernel kernel;
    kernel.name = "stencil";
    for (std::uint32_t it = 0; it < iterations; ++it) {
        KernelPhase phase;
        for (net::NodeId i = 0; i < n; ++i) {
            phase.pairs.emplace_back(
                i, static_cast<net::NodeId>((i + 1) % n));
            phase.pairs.emplace_back(
                i, static_cast<net::NodeId>((i + n - 1) % n));
        }
        kernel.phases.push_back(std::move(phase));
    }
    return kernel;
}

Kernel
reductionKernel(net::NodeId n)
{
    rmb_assert(isPowerOfTwo(n), "reduction needs N = 2^m");
    Kernel kernel;
    kernel.name = "reduction";
    for (std::uint32_t s = 0; (1u << s) < n; ++s) {
        KernelPhase phase;
        const std::uint32_t step = 1u << s;
        for (net::NodeId i = step; i < n; i += 2 * step)
            phase.pairs.emplace_back(
                i, static_cast<net::NodeId>(i - step));
        kernel.phases.push_back(std::move(phase));
    }
    return kernel;
}

Kernel
prefixKernel(net::NodeId n)
{
    rmb_assert(isPowerOfTwo(n), "prefix needs N = 2^m");
    Kernel kernel;
    kernel.name = "prefix";
    for (std::uint32_t s = 0; (1u << s) < n; ++s) {
        KernelPhase phase;
        const std::uint32_t step = 1u << s;
        for (net::NodeId i = 0; i + step < n; ++i)
            phase.pairs.emplace_back(
                i, static_cast<net::NodeId>(i + step));
        kernel.phases.push_back(std::move(phase));
    }
    return kernel;
}

KernelResult
runKernel(net::Network &network, const Kernel &kernel,
          std::uint32_t payload_flits, sim::Tick phase_timeout)
{
    KernelResult result;
    result.completed = true;
    const sim::Tick start = network.simulator().now();
    for (const KernelPhase &phase : kernel.phases) {
        const sim::Tick phase_start = network.simulator().now();
        const BatchResult r = runBatch(network, phase.pairs,
                                       payload_flits,
                                       phase_timeout);
        result.phaseTicks.push_back(network.simulator().now() -
                                    phase_start);
        if (!r.completed) {
            result.completed = false;
            break;
        }
    }
    result.makespan = network.simulator().now() - start;
    return result;
}

std::vector<Kernel>
allKernels(net::NodeId n)
{
    return {butterflyKernel(n), allToAllKernel(n),
            stencilKernel(n, 4), reductionKernel(n),
            prefixKernel(n)};
}

} // namespace workload
} // namespace rmb
