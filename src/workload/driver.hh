/**
 * @file
 * Workload drivers: run a traffic set against any net::Network and
 * report the measurements the benches print.
 */

#ifndef RMB_WORKLOAD_DRIVER_HH
#define RMB_WORKLOAD_DRIVER_HH

#include <cstdint>

#include "netbase/network.hh"
#include "workload/permutation.hh"
#include "workload/traffic.hh"

namespace rmb {
namespace workload {

/** Outcome of a closed batch (e.g. one permutation). */
struct BatchResult
{
    bool completed = false;       //!< all messages delivered in time
    sim::Tick makespan = 0;       //!< first injection -> last delivery
    std::uint64_t delivered = 0;
    std::uint64_t nacks = 0;
    std::uint64_t retries = 0;
    double meanLatency = 0.0;
    double maxLatency = 0.0;
    double meanSetupLatency = 0.0;
};

/**
 * Inject every (src, dst) pair at the current simulated time, each
 * carrying @p payload_flits data flits, and run until the network is
 * quiescent or @p timeout simulated ticks elapse.
 *
 * The network is used as-is (its prior statistics are included in its
 * own counters but the returned BatchResult covers only this batch).
 */
BatchResult runBatch(net::Network &network, const PairList &pairs,
                     std::uint32_t payload_flits,
                     sim::Tick timeout = 10'000'000);

/** Outcome of an open-loop (rate-driven) run. */
struct OpenLoopResult
{
    double offeredLoad = 0.0;     //!< messages/node/tick requested
    double throughput = 0.0;      //!< delivered messages/node/tick
    double meanLatency = 0.0;
    double p95Latency = 0.0;
    double maxLatency = 0.0;
    double meanSetupLatency = 0.0;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t nacks = 0;
};

/**
 * Open-loop run: every node generates messages as a Bernoulli process
 * of rate @p rate (messages per node per tick, so flit load is
 * rate * (payload + overhead)), destinations drawn from @p pattern,
 * for @p duration ticks of generation followed by a drain phase of at
 * most @p drain ticks.  Statistics cover messages created after
 * @p warmup.
 */
OpenLoopResult runOpenLoop(net::Network &network,
                           TrafficPattern &pattern, double rate,
                           std::uint32_t payload_flits,
                           sim::Tick duration, sim::Random &rng,
                           sim::Tick warmup = 0,
                           sim::Tick drain = 1'000'000);

} // namespace workload
} // namespace rmb

#endif // RMB_WORKLOAD_DRIVER_HH
