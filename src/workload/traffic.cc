#include "workload/traffic.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rmb {
namespace workload {

net::NodeId
UniformTraffic::pick(net::NodeId src, sim::Random &rng)
{
    // Draw from N-1 candidates and skip over the source.
    auto d = static_cast<net::NodeId>(rng.uniformInt(numNodes_ - 1));
    return d >= src ? d + 1 : d;
}

HotSpotTraffic::HotSpotTraffic(net::NodeId n, net::NodeId hot,
                               double fraction)
    : TrafficPattern(n), hot_(hot), fraction_(fraction)
{
    rmb_assert(hot < n, "hot node out of range");
    rmb_assert(fraction >= 0.0 && fraction <= 1.0,
               "hot fraction must be in [0,1]");
}

net::NodeId
HotSpotTraffic::pick(net::NodeId src, sim::Random &rng)
{
    if (src != hot_ && rng.bernoulli(fraction_))
        return hot_;
    auto d = static_cast<net::NodeId>(rng.uniformInt(numNodes_ - 1));
    return d >= src ? d + 1 : d;
}

LocalRingTraffic::LocalRingTraffic(net::NodeId n,
                                   net::NodeId max_distance)
    : TrafficPattern(n), maxDistance_(max_distance)
{
    rmb_assert(max_distance >= 1 && max_distance < n,
               "ring-local distance must be in [1, N)");
}

net::NodeId
LocalRingTraffic::pick(net::NodeId src, sim::Random &rng)
{
    const auto d = static_cast<net::NodeId>(
        rng.uniformRange(1, maxDistance_));
    return static_cast<net::NodeId>((src + d) % numNodes_);
}

net::NodeId
TornadoTraffic::pick(net::NodeId src, sim::Random &rng)
{
    (void)rng;
    const net::NodeId half = (numNodes_ + 1) / 2;
    return static_cast<net::NodeId>((src + half) % numNodes_);
}

BitComplementTraffic::BitComplementTraffic(net::NodeId n)
    : TrafficPattern(n)
{
    rmb_assert(isPowerOfTwo(n), "bit complement needs N = 2^m");
}

net::NodeId
BitComplementTraffic::pick(net::NodeId src, sim::Random &rng)
{
    (void)rng;
    return static_cast<net::NodeId>((~src) & (numNodes_ - 1));
}

} // namespace workload
} // namespace rmb
