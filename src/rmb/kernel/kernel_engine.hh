/**
 * @file
 * CycleKernelEngine: the time-stepped structure-of-arrays backend.
 *
 * Same protocol as RmbNetwork (top-bus injection, header propagation
 * with Hack/Nack, closed-form pipelined streaming, Fack teardown,
 * make-before-break compaction, transient-fault sever/recovery), a
 * different execution model:
 *
 *  - Segment occupancy and fault state are uint64_t bitplanes
 *    (kernel/bitplane.hh); the compaction make step filters its
 *    candidates word-parallel per level instead of per-INC events.
 *  - Compaction is one synchronous global cycle of fixed period P
 *    (drawn once from [cyclePeriodMin, cyclePeriodMax]): gap g moves
 *    its levels of parity (g + c) mod 2 at cycle c - the same
 *    odd/even schedule the per-INC FSMs converge to, with skew
 *    pinned to 0.  Eligibility is the *shared* Figure-7 rule
 *    (hopMovableRule), re-evaluated per candidate, so any
 *    serialization the event engine could produce is also legal
 *    here.
 *  - Protocol steps live on a bucket timing wheel, not the event
 *    heap: the engine keeps at most one pending simulator event (its
 *    next due tick), and drains every wheel action for that tick in
 *    one wake.  simulator().now() therefore stays the single time
 *    source, and all message timestamps are exact.
 *  - Virtual buses live in a recycled slot pool with generation
 *    counters; a sever or teardown bumps the generation, which
 *    lazily invalidates every in-flight wheel action of the old
 *    life - the kernel never cancels.
 *
 * Configurations the kernel cannot model (detailedFlits, Wait-mode
 * blocking, watchdog) are refused by RmbConfig::validate() with the
 * exact option to change.  Multicast/broadcast are RmbNetwork APIs,
 * not part of the Engine contract.  See docs/ENGINE.md.
 */

#ifndef RMB_RMB_KERNEL_KERNEL_ENGINE_HH
#define RMB_RMB_KERNEL_KERNEL_ENGINE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/trace.hh"
#include "rmb/config.hh"
#include "rmb/engine.hh"
#include "rmb/kernel/bitplane.hh"
#include "rmb/pe.hh"
#include "rmb/types.hh"
#include "rmb/virtual_bus.hh"
#include "sim/random.hh"

namespace rmb {
namespace core {

class FaultSchedule;

class CycleKernelEngine : public Engine
{
  public:
    CycleKernelEngine(sim::Simulator &simulator,
                      const RmbConfig &config);
    ~CycleKernelEngine() override;

    net::MessageId send(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload_flits) override;

    const RmbConfig &
    config() const override
    {
        return config_;
    }
    const RmbStats &
    rmbStats() const override
    {
        return rmbStats_;
    }

    void failSegment(GapId gap, Level level) override;
    void repairSegment(GapId gap, Level level) override;
    void auditInvariants() const override;

    bool
    segmentOccupied(GapId gap, Level level) const override
    {
        return planes_.occupied(gap, level);
    }
    bool
    segmentFaulty(GapId gap, Level level) const override
    {
        return planes_.faulted(gap, level);
    }
    std::uint32_t
    faultySegments() const override
    {
        return planes_.faultyCount();
    }
    std::uint64_t
    occupiedSegments() const override
    {
        return planes_.occupiedCount();
    }
    double
    segmentUtilization(GapId gap, Level level,
                       sim::Tick now) const override
    {
        return planes_.utilization(gap, level, now);
    }
    double
    averageSegmentUtilization(sim::Tick now) const override
    {
        return planes_.averageUtilization(now);
    }

    /** Completed global compaction cycles (make steps). */
    std::uint64_t cycles() const { return cycleIndex_; }

    /**
     * Testing-only seeded divergence (tests/engine_diff_test.cc's
     * WILL_FAIL probe): ShortCircuit delivers every message one node
     * early, which the outcome digest must catch via pathHops.
     * Never set outside tests.
     */
    enum class TestMutation : std::uint8_t
    {
        None,
        ShortCircuit,
    };
    void setTestMutation(TestMutation m) { mutation_ = m; }

  private:
    /** One pooled virtual bus; satisfies hopMovableRule's BusT. */
    struct KBus
    {
        VirtualBusId id = kNoBus;
        net::MessageId message = net::kNoMessage;
        net::NodeId src = 0;
        net::NodeId dst = 0;
        BusState state = BusState::Advancing;
        net::NodeId headNode = 0;
        sim::Tick injectedAt = 0;
        std::uint32_t hopsFreed = 0;
        bool topReleased = false;
        bool live = false;
        /** Bumped on teardown start and retirement; stale wheel
         *  actions compare and drop. */
        std::uint32_t gen = 0;
        std::vector<Hop> hops;

        GapId srcGap() const { return src; }
    };

    /** One deferred protocol step on the timing wheel. */
    struct Action
    {
        enum Kind : std::uint8_t
        {
            HeaderArrive,  //!< slot+gen
            HackArrive,    //!< slot+gen
            FinalFlit,     //!< slot+gen
            TeardownStep,  //!< slot+gen
            TryInject,     //!< slot = node id, gen unused
        };
        Kind kind;
        std::uint32_t slot;
        std::uint32_t gen;
        sim::Tick due;
    };

    /** One make-step record awaiting its break step.  Matched by
     *  bus *id* (unique per life), exactly like the event engine's
     *  MoveRecord, so slot recycling cannot confuse a break. */
    struct MoveRecord
    {
        std::uint32_t slot;
        VirtualBusId bus;
        GapId gap;
        Level fromLevel;
        Level toLevel;
    };

    static constexpr sim::Tick kNever = ~sim::Tick{0};

    // --- agenda (wheel + far list + cycle clock) ---
    void scheduleAction(sim::Tick delay, Action::Kind kind,
                        std::uint32_t slot, std::uint32_t gen);
    void ensureWake(sim::Tick due);
    void onWake();
    void processTick(sim::Tick now);
    void dispatch(const Action &a);
    sim::Tick nextDue() const;
    void rearm();

    // --- protocol steps (mirrors of the event engine's) ---
    void tryInject(net::NodeId node);
    void headerArrive(std::uint32_t slot);
    void tryAdvance(std::uint32_t slot);
    void acceptAtDestination(KBus &bus);
    void hackArriveAtSource(std::uint32_t slot);
    void finalFlitArrive(std::uint32_t slot);
    void startTeardown(KBus &bus, BusState kind);
    void teardownStep(std::uint32_t slot);
    void busFinished(std::uint32_t slot, const Hop &last_hop);
    void scheduleRetry(net::NodeId node, net::MessageId msg);
    void severOccupant(GapId gap, Level level, std::uint32_t slot);
    void severBus(KBus &bus, std::uint64_t reason);
    void releaseSegment(KBus &bus, GapId gap, Level level,
                        std::uint64_t reason);
    void segmentFreed(GapId gap, Level level);

    // --- compaction cycle ---
    void armCycle();
    void makeStep(sim::Tick now);
    void breakStep(sim::Tick now);
    void exitQuietCycles(sim::Tick now);

    // --- helpers ---
    std::uint32_t allocSlot();
    void retireSlot(std::uint32_t slot);
    net::NodeId effectiveDst(const KBus &bus) const;
    std::uint32_t pathLength(const KBus &bus) const;
    bool isFree(GapId gap, Level level) const;
    std::size_t hopIndexAt(const KBus &bus, GapId gap) const;
    obs::TraceEvent busEvent(obs::EventKind kind, const KBus &bus,
                             net::NodeId node, GapId gap = 0,
                             Level level = kNoLevel) const;
    void checkAfterMutation() const;

    RmbConfig config_;
    sim::Random rng_;
    kernel::SegmentPlanes planes_;
    std::vector<Pe> pes_;

    std::vector<KBus> pool_;
    std::vector<std::uint32_t> freeSlots_;
    VirtualBusId nextBusId_ = 1;
    std::uint64_t liveBuses_ = 0;

    // Timing wheel: power-of-two buckets over absolute tick & mask;
    // actions with delay >= wheel span overflow to farActions_.
    std::vector<std::vector<Action>> wheel_;
    sim::Tick wheelMask_ = 0;
    std::uint64_t wheelPending_ = 0;
    std::vector<Action> farActions_;
    sim::Tick farMinDue_ = kNever;
    /** Earliest armed simulator wake; kNever when idle. */
    sim::Tick armedAt_ = kNever;
    /** The tick currently being processed (reentrancy guard). */
    sim::Tick processing_ = kNever;

    // Synchronous compaction clock.
    sim::Tick period_ = 0;
    bool cycleArmed_ = false;
    sim::Tick nextMakeAt_ = kNever;
    sim::Tick nextBreakAt_ = kNever;
    std::uint64_t cycleIndex_ = 0;
    std::vector<MoveRecord> moveRecords_;
    /**
     * Plane epoch at which a make pass of the given cycle parity
     * last found nothing to move; while the epoch still matches,
     * the same pass would find nothing again and is skipped.
     */
    std::uint64_t noMoveEpoch_[2] = {~0ull, ~0ull};
    /**
     * Quiet mode: both parities proved no-move at quietEpoch_, so
     * the cycle clock stops waking at all; exitQuietCycles()
     * accounts the slept (provably no-op) cycles when the grid
     * next changes.
     */
    bool cycleQuiet_ = false;
    std::uint64_t quietEpoch_ = 0;

    std::unordered_map<net::MessageId, sim::Tick> severedAt_;
    std::unique_ptr<FaultSchedule> faults_;
    TestMutation mutation_ = TestMutation::None;

    RmbStats rmbStats_;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_KERNEL_KERNEL_ENGINE_HH
