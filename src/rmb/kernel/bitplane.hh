/**
 * @file
 * Structure-of-arrays segment state for the cycle kernel.
 *
 * The event engine's SegmentTable is an array-of-cells keyed by
 * (gap, level).  The kernel instead keeps one *bitplane* per level:
 * a row of ceil(N/64) uint64_t words in which bit g is gap g's
 * segment.  Occupancy and fault state are separate plane sets, so
 * per-cycle compaction candidate filtering collapses to a handful of
 * word-parallel AND/OR/NOT ops per level:
 *
 *   candidates(l) = occ(l) & parity(l, c) & ~(occ(l-1) | faulty(l-1))
 *
 * Ownership (which bus holds a claimed segment) cannot be a bitplane
 * - it is a dense level-major array of pool-slot indices consulted
 * only for the bits that survive the filter.  Busy tracking for
 * utilization reports rides along per cell, exactly mirroring
 * SegmentTable's semantics (a faulted segment counts as busy).
 */

#ifndef RMB_RMB_KERNEL_BITPLANE_HH
#define RMB_RMB_KERNEL_BITPLANE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "rmb/types.hh"
#include "sim/stats.hh"

namespace rmb {
namespace core {
namespace kernel {

/** Slot sentinel: "no bus holds this segment". */
constexpr std::uint32_t kNoSlot = 0xffffffffu;

/**
 * The N x k segment grid as level-major bitplanes plus an owner
 * array.  All mutators take the current tick for busy tracking.
 */
class SegmentPlanes
{
  public:
    SegmentPlanes(std::uint32_t num_gaps, std::uint32_t num_levels)
        : numGaps_(num_gaps), numLevels_(num_levels),
          words_((num_gaps + 63) / 64),
          occ_(static_cast<std::size_t>(num_levels) * words_, 0),
          faulty_(static_cast<std::size_t>(num_levels) * words_, 0),
          owner_(static_cast<std::size_t>(num_levels) * num_gaps,
                 kNoSlot),
          busy_(static_cast<std::size_t>(num_levels) * num_gaps),
          evenGaps_(words_, 0), oddGaps_(words_, 0)
    {
        rmb_assert(num_gaps >= 2 && num_levels >= 1,
                   "segment planes need >= 2 gaps and >= 1 level");
        for (std::uint32_t g = 0; g < num_gaps; ++g) {
            auto &mask = (g % 2 == 0) ? evenGaps_ : oddGaps_;
            mask[g / 64] |= std::uint64_t{1} << (g % 64);
        }
    }

    std::uint32_t numGaps() const { return numGaps_; }
    std::uint32_t numLevels() const { return numLevels_; }
    std::uint32_t wordsPerLevel() const { return words_; }

    /** Word @p w of level @p l's occupancy plane. */
    std::uint64_t
    occWord(Level l, std::uint32_t w) const
    {
        return occ_[planeIndex(l, w)];
    }

    /** Word @p w of level @p l's fault plane. */
    std::uint64_t
    faultyWord(Level l, std::uint32_t w) const
    {
        return faulty_[planeIndex(l, w)];
    }

    /** Word @p w of the mask of gaps with parity @p parity. */
    std::uint64_t
    parityWord(int parity, std::uint32_t w) const
    {
        return parity == 0 ? evenGaps_[w] : oddGaps_[w];
    }

    bool
    occupied(GapId gap, Level level) const
    {
        return (occWord(level, gap / 64) >>
                (gap % 64)) & 1;
    }

    bool
    faulted(GapId gap, Level level) const
    {
        return (faultyWord(level, gap / 64) >>
                (gap % 64)) & 1;
    }

    /** Claimable: neither occupied nor faulted (SegmentTable's
     *  isFree). */
    bool
    isFree(GapId gap, Level level) const
    {
        const std::size_t w = planeIndex(level, gap / 64);
        return (((occ_[w] | faulty_[w]) >> (gap % 64)) & 1) == 0;
    }

    /** Pool slot holding (gap, level); kNoSlot when unclaimed. */
    std::uint32_t
    ownerSlot(GapId gap, Level level) const
    {
        return owner_[cellIndex(gap, level)];
    }

    std::uint64_t occupiedCount() const { return occupied_; }
    std::uint32_t faultyCount() const { return faulty_n_; }

    /**
     * Monotonic change counter: bumped by every occupancy or fault
     * mutation (and by bumpEpoch() for the rare movability-relevant
     * transitions that live outside the planes).  Lets the cycle
     * kernel prove "the grid is exactly as it was when this parity's
     * make pass found nothing to move" and skip the rescan.
     */
    std::uint64_t epoch() const { return epoch_; }
    void bumpEpoch() { ++epoch_; }

    void
    occupy(GapId gap, Level level, std::uint32_t slot, sim::Tick now)
    {
        rmb_assert(slot != kNoSlot, "occupy by the slot sentinel");
        const std::size_t cell = cellIndex(gap, level);
        rmb_assert(owner_[cell] == kNoSlot, "segment (", gap, ",",
                   level, ") already held by slot ", owner_[cell]);
        rmb_assert(!faulted(gap, level), "segment (", gap, ",",
                   level, ") is faulted; slot ", slot,
                   " tried to claim it");
        owner_[cell] = slot;
        occ_[planeIndex(level, gap / 64)] |= bit(gap);
        ++occupied_;
        ++epoch_;
        busy_[cell].setBusy(now);
    }

    void
    release(GapId gap, Level level, std::uint32_t slot,
            sim::Tick now)
    {
        const std::size_t cell = cellIndex(gap, level);
        rmb_assert(owner_[cell] == slot, "segment (", gap, ",",
                   level, ") held by slot ", owner_[cell],
                   ", not by releasing slot ", slot);
        owner_[cell] = kNoSlot;
        occ_[planeIndex(level, gap / 64)] &= ~bit(gap);
        --occupied_;
        ++epoch_;
        if (!faulted(gap, level))
            busy_[cell].setFree(now);
    }

    void
    markFaulty(GapId gap, Level level, sim::Tick now)
    {
        rmb_assert(!faulted(gap, level), "segment (", gap, ",",
                   level, ") is already faulted");
        faulty_[planeIndex(level, gap / 64)] |= bit(gap);
        ++faulty_n_;
        ++epoch_;
        if (owner_[cellIndex(gap, level)] == kNoSlot)
            busy_[cellIndex(gap, level)].setBusy(now);
    }

    void
    clearFault(GapId gap, Level level, sim::Tick now)
    {
        rmb_assert(faulted(gap, level), "segment (", gap, ",",
                   level, ") is not faulted");
        faulty_[planeIndex(level, gap / 64)] &= ~bit(gap);
        --faulty_n_;
        ++epoch_;
        if (owner_[cellIndex(gap, level)] == kNoSlot)
            busy_[cellIndex(gap, level)].setFree(now);
    }

    double
    utilization(GapId gap, Level level, sim::Tick now) const
    {
        return busy_[cellIndex(gap, level)].utilization(now);
    }

    double
    averageUtilization(sim::Tick now) const
    {
        if (busy_.empty() || now == 0)
            return 0.0;
        double sum = 0.0;
        for (const auto &b : busy_)
            sum += b.utilization(now);
        return sum / static_cast<double>(busy_.size());
    }

  private:
    static std::uint64_t
    bit(GapId gap)
    {
        return std::uint64_t{1} << (gap % 64);
    }

    std::size_t
    planeIndex(Level level, std::uint32_t w) const
    {
        rmb_assert(level >= 0 && static_cast<std::uint32_t>(level) <
                       numLevels_,
                   "level ", level, " out of range");
        return static_cast<std::size_t>(level) * words_ + w;
    }

    std::size_t
    cellIndex(GapId gap, Level level) const
    {
        rmb_assert(gap < numGaps_, "gap ", gap, " out of range");
        return static_cast<std::size_t>(level) * numGaps_ + gap;
    }

    std::uint32_t numGaps_;
    std::uint32_t numLevels_;
    std::uint32_t words_;
    std::vector<std::uint64_t> occ_;
    std::vector<std::uint64_t> faulty_;
    std::vector<std::uint32_t> owner_;
    std::vector<sim::BusyTracker> busy_;
    std::vector<std::uint64_t> evenGaps_;
    std::vector<std::uint64_t> oddGaps_;
    std::uint64_t occupied_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint32_t faulty_n_ = 0;
};

} // namespace kernel
} // namespace core
} // namespace rmb

#endif // RMB_RMB_KERNEL_BITPLANE_HH
