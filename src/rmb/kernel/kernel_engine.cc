#include "rmb/kernel/kernel_engine.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "rmb/compaction_rules.hh"
#include "rmb/fault.hh"
#include "rmb/status_register.hh"
#include "sim/simulator.hh"

namespace rmb {
namespace core {

namespace {

/**
 * Force the engine tag before validating: a config handed straight
 * to this constructor must pass the *kernel* compatibility checks
 * regardless of what its engine field said.
 */
RmbConfig
kernelValidated(RmbConfig config)
{
    config.engine = EngineKind::Kernel;
    validatedEngineConfig(config);
    return config;
}

sim::Tick
nextPow2(sim::Tick v)
{
    sim::Tick p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

CycleKernelEngine::CycleKernelEngine(sim::Simulator &simulator,
                                     const RmbConfig &config)
    : Engine(simulator, "RMB(kernel)",
             kernelValidated(config).numNodes),
      config_(kernelValidated(config)), rng_(config.seed),
      planes_(config.numNodes, config.numBuses),
      pes_(config.numNodes), rmbStats_(metrics())
{
    // One fixed global compaction period, drawn from the same range
    // the event engine draws each INC's period from.  The kernel's
    // cycle is synchronous (skew 0): Lemma 1 bounds the event
    // engine's skew to <= 1, and the zero-skew schedule is one of
    // the legal executions of the same pure rules.
    period_ = static_cast<sim::Tick>(rng_.uniformRange(
        config_.cyclePeriodMin, config_.cyclePeriodMax));

    // Wheel span: comfortably past every common delay (header and
    // ack walks, one cycle period, capped backoff).  Anything rarer
    // and further out - long streams, MTTR repairs - overflows to
    // the unsorted far list, which is scanned only when its minimum
    // comes into range.
    const sim::Tick ack_walk =
        config_.ackHopDelay * config_.numNodes;
    sim::Tick span = 256;
    span = std::max(span, 2 * config_.headerHopDelay);
    span = std::max(span, 2 * ack_walk);
    span = std::max(span, 2 * period_);
    span = std::max(span, config_.retryBackoffMax + 1);
    span = std::max(span, config_.retryBackoffCap + 1);
    span = std::min(nextPow2(span), sim::Tick{1} << 16);
    wheel_.assign(static_cast<std::size_t>(span),
                  std::vector<Action>{});
    wheelMask_ = span - 1;

    if (config_.numNodes % 2 != 0) {
        warn("odd node count: the odd/even gap parity of section"
             " 2.4 is imperfect on an odd ring (two adjacent gaps"
             " share a parity); the synchronous kernel cycle keeps"
             " the protocol correct regardless");
    }

    if (config_.faultMtbf > 0) {
        faults_ = std::make_unique<FaultSchedule>(
            *this, sim::Random(config_.seed).split(kFaultStream));
        faults_->start();
    }
}

CycleKernelEngine::~CycleKernelEngine() = default;

// ----------------------------------------------------------------
// Agenda: timing wheel, far list, wake management
// ----------------------------------------------------------------

void
CycleKernelEngine::scheduleAction(sim::Tick delay,
                                  Action::Kind kind,
                                  std::uint32_t slot,
                                  std::uint32_t gen)
{
    const sim::Tick now = simulator().now();
    const sim::Tick due = now + delay;
    const Action a{kind, slot, gen, due};
    if (delay <= wheelMask_) {
        wheel_[due & wheelMask_].push_back(a);
        ++wheelPending_;
    } else {
        farActions_.push_back(a);
        farMinDue_ = std::min(farMinDue_, due);
    }
    if (processing_ == kNever)
        ensureWake(due);
}

void
CycleKernelEngine::ensureWake(sim::Tick due)
{
    const sim::Tick now = simulator().now();
    // An armed wake at or before the new due tick already covers it
    // (it will re-arm when it fires).
    if (armedAt_ != kNever && armedAt_ > now && armedAt_ <= due)
        return;
    simulator().schedule(due - now, [this] { onWake(); });
    armedAt_ = due;
}

void
CycleKernelEngine::onWake()
{
    processTick(simulator().now());
    // Self-clocked fast path: while the simulator has nothing due
    // before our next action tick, step the clock ourselves instead
    // of bouncing every tick through the event heap.  Outcomes are
    // identical — the same actions run at the same ticks — but a
    // kernel-only stretch costs zero heap operations.
    sim::Tick due;
    while ((due = nextDue()) != kNever && simulator().advanceIfIdle(due))
        processTick(due);
    rearm();
}

void
CycleKernelEngine::rearm()
{
    const sim::Tick due = nextDue();
    if (due == kNever) {
        armedAt_ = kNever;
        return;
    }
    const sim::Tick now = simulator().now();
    if (armedAt_ != kNever && armedAt_ > now && armedAt_ <= due)
        return; // a live (possibly zombie) wake covers it
    simulator().schedule(due - now, [this] { onWake(); });
    armedAt_ = due;
}

sim::Tick
CycleKernelEngine::nextDue() const
{
    // Known dues outside the wheel bound the scan: a wheel hit past
    // them cannot be the minimum, so stop early instead of walking
    // the full wheel span on sparse ticks.
    sim::Tick best = farMinDue_;
    if (cycleArmed_ && !cycleQuiet_)
        best = std::min(best, nextMakeAt_);
    best = std::min(best, nextBreakAt_);
    if (wheelPending_ > 0) {
        const sim::Tick now = simulator().now();
        const sim::Tick last =
            std::min(now + wheelMask_ + 1, best - 1);
        for (sim::Tick t = now + 1; t <= last; ++t) {
            const auto &bucket = wheel_[t & wheelMask_];
            if (bucket.empty())
                continue;
            for (const Action &a : bucket) {
                if (a.due == t)
                    return t;
            }
        }
    }
    return best;
}

void
CycleKernelEngine::processTick(sim::Tick now)
{
    processing_ = now;

    // Pull far actions into the wheel once their minimum is in
    // range; the scan re-establishes the minimum of what stays.
    if (farMinDue_ != kNever && farMinDue_ - now <= wheelMask_) {
        std::size_t keep = 0;
        sim::Tick new_min = kNever;
        for (const Action &a : farActions_) {
            if (a.due - now <= wheelMask_) {
                wheel_[a.due & wheelMask_].push_back(a);
                ++wheelPending_;
            } else {
                farActions_[keep++] = a;
                new_min = std::min(new_min, a.due);
            }
        }
        farActions_.resize(keep);
        farMinDue_ = new_min;
    }

    // Drain this tick's bucket.  Entries whose due tick is a wheel
    // wrap ahead are kept in place; the index loop tolerates pushes
    // from same-tick dispatches.
    auto &bucket = wheel_[now & wheelMask_];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
        const Action a = bucket[i];
        if (a.due != now) {
            bucket[keep++] = a;
            continue;
        }
        --wheelPending_;
        dispatch(a);
    }
    bucket.resize(keep);

    // A dispatched action may have changed the grid while the
    // cycle clock slept; settle the slept cycles before the make
    // check so a make due this very tick rescans.
    if (cycleQuiet_ && planes_.epoch() != quietEpoch_)
        exitQuietCycles(now);

    // Cycle steps after the tick's protocol actions: break (armed
    // half a period before) strictly precedes the next make.
    if (nextBreakAt_ == now)
        breakStep(now);
    if (cycleArmed_ && nextMakeAt_ == now)
        makeStep(now);

    processing_ = kNever;
    checkAfterMutation();
}

void
CycleKernelEngine::dispatch(const Action &a)
{
    if (a.kind == Action::TryInject) {
        tryInject(a.slot);
        return;
    }
    KBus &bus = pool_[a.slot];
    if (!bus.live || bus.gen != a.gen)
        return; // the bus this action was aimed at is gone
    switch (a.kind) {
    case Action::HeaderArrive:
        headerArrive(a.slot);
        break;
    case Action::HackArrive:
        hackArriveAtSource(a.slot);
        break;
    case Action::FinalFlit:
        finalFlitArrive(a.slot);
        break;
    case Action::TeardownStep:
        teardownStep(a.slot);
        break;
    case Action::TryInject:
        break; // handled above
    }
}

// ----------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------

std::uint32_t
CycleKernelEngine::allocSlot()
{
    if (!freeSlots_.empty()) {
        const std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
CycleKernelEngine::retireSlot(std::uint32_t slot)
{
    KBus &bus = pool_[slot];
    bus.live = false;
    ++bus.gen;
    bus.hops.clear(); // keeps capacity for the next life
    freeSlots_.push_back(slot);
}

net::NodeId
CycleKernelEngine::effectiveDst(const KBus &bus) const
{
    if (mutation_ != TestMutation::ShortCircuit)
        return bus.dst;
    const std::uint32_t n = config_.numNodes;
    const std::uint32_t dist = (bus.dst + n - bus.src) % n;
    if (dist <= 1)
        return bus.dst; // a one-hop path cannot be shortened
    return (bus.dst + n - 1) % n;
}

std::uint32_t
CycleKernelEngine::pathLength(const KBus &bus) const
{
    const std::uint32_t n = config_.numNodes;
    return (effectiveDst(bus) + n - bus.src) % n;
}

bool
CycleKernelEngine::isFree(GapId gap, Level level) const
{
    return planes_.isFree(gap, level);
}

std::size_t
CycleKernelEngine::hopIndexAt(const KBus &bus, GapId gap) const
{
    return static_cast<std::size_t>(
        (gap + config_.numNodes - bus.srcGap()) % config_.numNodes);
}

obs::TraceEvent
CycleKernelEngine::busEvent(obs::EventKind kind, const KBus &bus,
                            net::NodeId node, GapId gap,
                            Level level) const
{
    obs::TraceEvent e;
    e.kind = kind;
    e.at = simulator().now();
    e.message = bus.message;
    e.bus = bus.id;
    e.node = node;
    e.gap = gap;
    e.level = level;
    return e;
}

void
CycleKernelEngine::checkAfterMutation() const
{
    // Full verification audits once per processed tick (the kernel's
    // observable unit), not per mutation like the event engine - the
    // intermediate states inside a tick are the same ones the event
    // engine reaches between events.
    if (config_.verify == VerifyLevel::Full)
        auditInvariants();
}

// ----------------------------------------------------------------
// Protocol steps
// ----------------------------------------------------------------

net::MessageId
CycleKernelEngine::send(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload_flits)
{
    net::Message &m = createMessage(src, dst, payload_flits);
    pes_[src].sendQueue.push_back(m.id);
    const net::MessageId id = m.id;
    scheduleAction(0, Action::TryInject, src, 0);
    return id;
}

void
CycleKernelEngine::tryInject(net::NodeId node)
{
    Pe &pe = pes_[node];
    if (!pe.sendPortFree(config_.sendPorts) ||
        pe.sendQueue.empty()) {
        return;
    }
    if (simulator().now() < pe.backoffUntil)
        return; // the retry's TryInject action is already armed

    const Level top = static_cast<Level>(config_.numBuses) - 1;
    const GapId gap = node;
    if (!isFree(gap, top))
        return;

    const net::MessageId mid = pe.sendQueue.front();
    pe.sendQueue.pop_front();
    pe.activeSends.push_back(mid);

    net::Message &m = messageRef(mid);
    if (m.state == net::MessageState::Queued)
        noteFirstAttempt(m);
    else
        noteRetry(m);

    const std::uint32_t slot = allocSlot();
    KBus &bus = pool_[slot];
    bus.id = nextBusId_++;
    bus.message = mid;
    bus.src = m.src;
    bus.dst = m.dst;
    bus.state = BusState::Advancing;
    bus.headNode = (node + 1) % config_.numNodes;
    bus.injectedAt = simulator().now();
    bus.hopsFreed = 0;
    bus.topReleased = false;
    bus.live = true;

    planes_.occupy(gap, top, slot, simulator().now());
    bus.hops.push_back(Hop{gap, top, kNoLevel, 0});
    ++liveBuses_;
    rmbStats_.liveBuses.adjust(simulator().now(), +1);
    if (tracing())
        emitTrace(busEvent(obs::EventKind::HeaderHop, bus, node,
                           gap, top));

    scheduleAction(config_.headerHopDelay, Action::HeaderArrive,
                   slot, bus.gen);
    armCycle();
}

void
CycleKernelEngine::headerArrive(std::uint32_t slot)
{
    KBus &bus = pool_[slot];
    rmb_assert(bus.state == BusState::Advancing,
               "header arrival on a non-advancing bus");
    const net::NodeId here = bus.headNode;
    if (here == effectiveDst(bus)) {
        Pe &pe = pes_[bus.dst];
        if (pe.receivePortFree(config_.receivePorts)) {
            acceptAtDestination(bus);
        } else {
            noteNack(messageRef(bus.message));
            startTeardown(bus, BusState::NackTeardown);
        }
        return;
    }
    tryAdvance(slot);
}

void
CycleKernelEngine::tryAdvance(std::uint32_t slot)
{
    KBus &bus = pool_[slot];
    rmb_assert(bus.state == BusState::Advancing,
               "tryAdvance on a bus in state ",
               static_cast<int>(bus.state));
    const net::NodeId here = bus.headNode;
    const GapId gap = here;

    // Fault lookahead, mirroring the event engine: skip output
    // levels from which every onward level of the next gap is
    // faulted, unless only dead ends are free.
    const GapId next_gap = (here + 1) % config_.numNodes;
    const bool lookahead = planes_.faultyCount() > 0 &&
                           next_gap != effectiveDst(bus);
    const auto dead_end = [&](Level lin) {
        for (Level lout : {lin - 1, lin, lin + 1}) {
            if (lout < 0 ||
                lout >= static_cast<Level>(config_.numBuses))
                continue;
            if (!planes_.faulted(next_gap, lout))
                return false;
        }
        return true;
    };

    Level reachable[3];
    const int count = reachableOutputLevelsInto(
        bus.hops.back(), static_cast<Level>(config_.numBuses),
        config_.headerPolicy, reachable);
    Level chosen = kNoLevel;
    Level fallback = kNoLevel;
    for (int i = 0; i < count; ++i) {
        const Level l = reachable[i];
        if (!isFree(gap, l))
            continue;
        if (fallback == kNoLevel)
            fallback = l;
        if (lookahead && dead_end(l))
            continue;
        chosen = l;
        break;
    }
    if (chosen == kNoLevel)
        chosen = fallback;

    if (chosen != kNoLevel) {
        planes_.occupy(gap, chosen, slot, simulator().now());
        bus.hops.push_back(Hop{gap, chosen, kNoLevel, 0});
        bus.headNode = (here + 1) % config_.numNodes;
        if (tracing())
            emitTrace(busEvent(obs::EventKind::HeaderHop, bus,
                               here, gap, chosen));
        scheduleAction(config_.headerHopDelay,
                       Action::HeaderArrive, slot, bus.gen);
        return;
    }

    // No reachable free segment: the kernel only models NackRetry
    // (validate() refuses Wait), so abort and retry from the source.
    ++rmbStats_.blockedAborts;
    if (tracing()) {
        obs::TraceEvent e =
            busEvent(obs::EventKind::Nack, bus, here, gap);
        e.a = obs::kNackNoSegment;
        emitTrace(e);
    }
    startTeardown(bus, BusState::NackTeardown);
}

void
CycleKernelEngine::acceptAtDestination(KBus &bus)
{
    Pe &pe = pes_[bus.dst];
    pe.activeReceives.push_back(bus.message);
    bus.state = BusState::AwaitHack;
    // Leaving Advancing frees the head hop to move (Figure 7 pins
    // an advancing head); this is the one movability change with no
    // plane mutation, so note it for the no-move make-skip.
    planes_.bumpEpoch();
    const auto path = static_cast<sim::Tick>(bus.hops.size());
    rmb_assert(bus.hops.size() == pathLength(bus),
               "accepted bus spans ", bus.hops.size(),
               " gaps, expected ", pathLength(bus));
    const auto slot =
        planes_.ownerSlot(bus.srcGap(), bus.hops.front().level);
    scheduleAction(path * config_.ackHopDelay, Action::HackArrive,
                   slot, bus.gen);
}

void
CycleKernelEngine::hackArriveAtSource(std::uint32_t slot)
{
    KBus &bus = pool_[slot];
    rmb_assert(bus.state == BusState::AwaitHack,
               "Hack arrived on a bus in state ",
               static_cast<int>(bus.state));
    bus.state = BusState::Streaming;
    noteEstablished(messageRef(bus.message));
    noteCircuit(+1);

    // Closed-form pipelined streaming (detailedFlits is refused by
    // validate() for this engine): the source emits payload+FF
    // flits one flitDelay apart, and the final flit drains through
    // hops.size() stages.
    const net::Message &m = message(bus.message);
    const auto path = static_cast<sim::Tick>(bus.hops.size());
    const sim::Tick duration =
        (static_cast<sim::Tick>(m.payloadFlits) + 1) *
            config_.flitDelay +
        path * config_.flitDelay;
    scheduleAction(duration, Action::FinalFlit, slot, bus.gen);
}

void
CycleKernelEngine::finalFlitArrive(std::uint32_t slot)
{
    KBus &bus = pool_[slot];
    rmb_assert(bus.state == BusState::Streaming,
               "FF arrived on a non-streaming bus");
    noteDelivered(messageRef(bus.message),
                  static_cast<std::uint32_t>(bus.hops.size()));
    noteCircuit(-1);
    pes_[bus.dst].releaseReceive(bus.message);

    auto sev = severedAt_.find(bus.message);
    if (sev != severedAt_.end()) {
        ++rmbStats_.messagesRecovered;
        rmbStats_.recoveryLatency.add(
            static_cast<double>(simulator().now() - sev->second));
        rmbStats_.recoveryLatencyHist.add(simulator().now() -
                                          sev->second);
        if (tracing()) {
            obs::TraceEvent e = busEvent(
                obs::EventKind::MessageRecovered, bus, bus.dst);
            e.a = simulator().now() - sev->second;
            emitTrace(e);
        }
        severedAt_.erase(sev);
    }
    startTeardown(bus, BusState::FackTeardown);
}

void
CycleKernelEngine::startTeardown(KBus &bus, BusState kind)
{
    rmb_assert(isTeardown(kind), "bad teardown kind");
    bus.state = kind;
    // Invalidate every in-flight header/Hack/FF action of this
    // life; the teardown walk runs on the new generation.
    ++bus.gen;
    if (tracing()) {
        obs::TraceEvent e = busEvent(obs::EventKind::Teardown, bus,
                                     bus.headNode);
        e.a = kind == BusState::FackTeardown   ? obs::kTeardownFack
              : kind == BusState::NackTeardown ? obs::kTeardownNack
                                               : obs::kTeardownFault;
        emitTrace(e);
    }
    const auto slot = planes_.ownerSlot(bus.srcGap(),
                                        bus.hops.front().level);
    scheduleAction(config_.ackHopDelay, Action::TeardownStep, slot,
                   bus.gen);
}

void
CycleKernelEngine::teardownStep(std::uint32_t slot)
{
    KBus &bus = pool_[slot];
    rmb_assert(isTeardown(bus.state),
               "teardown step on a live bus");
    rmb_assert(!bus.hops.empty(), "teardown of an empty bus");

    const Hop hop = bus.hops.back();
    bus.hops.pop_back();
    ++bus.hopsFreed;

    if (!bus.hops.empty()) {
        if (hop.inMove())
            releaseSegment(bus, hop.gap, hop.dualLevel,
                           obs::kFreeTeardown);
        releaseSegment(bus, hop.gap, hop.level,
                       obs::kFreeTeardown);
        scheduleAction(config_.ackHopDelay, Action::TeardownStep,
                       slot, bus.gen);
        return;
    }
    busFinished(slot, hop);
}

void
CycleKernelEngine::busFinished(std::uint32_t slot,
                               const Hop &last_hop)
{
    // Retire the bus *before* releasing its final (source-gap)
    // segments, mirroring the event engine: release wakeups must
    // never observe a live bus with no hops.
    KBus &bus = pool_[slot];
    const net::NodeId src = bus.src;
    const net::MessageId mid = bus.message;
    const VirtualBusId bid = bus.id;
    const BusState kind = bus.state;
    const sim::Tick injected_at = bus.injectedAt;
    const bool top_released = bus.topReleased;
    const sim::Tick now = simulator().now();
    rmb_assert(last_hop.gap == bus.srcGap(),
               "teardown must end at the source gap");
    --liveBuses_;
    rmbStats_.liveBuses.adjust(now, -1);
    retireSlot(slot);

    Pe &pe = pes_[src];
    pe.releaseSend(mid);

    if (kind == BusState::NackTeardown ||
        kind == BusState::FaultTeardown) {
        net::Message &m = messageRef(mid);
        if (config_.maxRetries > 0 &&
            m.retries >= config_.maxRetries) {
            noteFailed(m);
            auto sev = severedAt_.find(mid);
            if (sev != severedAt_.end()) {
                ++rmbStats_.messagesLost;
                severedAt_.erase(sev);
            }
        } else {
            pe.sendQueue.push_front(mid);
            scheduleRetry(src, mid);
        }
    }

    const Level top = static_cast<Level>(config_.numBuses) - 1;
    if (!top_released && last_hop.level == top) {
        rmbStats_.topReleaseLatency.add(
            static_cast<double>(now - injected_at));
    }
    const auto lastFree = [&](GapId gap, Level level) {
        planes_.release(gap, level, slot, now);
        if (tracing()) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::SegmentFree;
            e.at = now;
            e.message = mid;
            e.bus = bid;
            e.node = gap;
            e.gap = gap;
            e.level = level;
            e.a = obs::kFreeTeardown;
            emitTrace(e);
        }
        if (!planes_.faulted(gap, level))
            segmentFreed(gap, level);
    };
    if (last_hop.inMove())
        lastFree(last_hop.gap, last_hop.dualLevel);
    lastFree(last_hop.gap, last_hop.level);
    tryInject(src);
}

void
CycleKernelEngine::scheduleRetry(net::NodeId node,
                                 net::MessageId msg)
{
    sim::Tick backoff = rng_.uniformRange(config_.retryBackoffMin,
                                          config_.retryBackoffMax);
    if (config_.exponentialBackoff) {
        const std::uint32_t shift =
            std::min(message(msg).retries, 16u);
        if ((backoff << shift) >= config_.retryBackoffCap) {
            backoff = rng_.uniformRange(config_.retryBackoffCap / 2,
                                        config_.retryBackoffCap);
        } else {
            backoff <<= shift;
        }
    }
    Pe &pe = pes_[node];
    pe.backoffUntil = simulator().now() + backoff;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Backoff;
        e.at = simulator().now();
        e.message = msg;
        e.node = node;
        e.a = backoff;
        emitTrace(e);
    }
    scheduleAction(backoff, Action::TryInject, node, 0);
}

void
CycleKernelEngine::releaseSegment(KBus &bus, GapId gap, Level level,
                                  std::uint64_t reason)
{
    const auto slot = planes_.ownerSlot(gap, level);
    planes_.release(gap, level, slot, simulator().now());
    if (tracing()) {
        obs::TraceEvent e = busEvent(obs::EventKind::SegmentFree,
                                     bus, gap, gap, level);
        e.a = reason;
        emitTrace(e);
    }
    if (!bus.topReleased && gap == bus.srcGap() &&
        level == static_cast<Level>(config_.numBuses) - 1) {
        bus.topReleased = true;
        rmbStats_.topReleaseLatency.add(static_cast<double>(
            simulator().now() - bus.injectedAt));
    }
    if (!planes_.faulted(gap, level))
        segmentFreed(gap, level);
}

void
CycleKernelEngine::segmentFreed(GapId gap, Level level)
{
    // No Wait-mode waiter lists in this engine; the only wakeup is
    // a freed top segment letting the local PE inject.
    if (level == static_cast<Level>(config_.numBuses) - 1)
        tryInject(gap);
}

// ----------------------------------------------------------------
// Compaction cycle
// ----------------------------------------------------------------

void
CycleKernelEngine::armCycle()
{
    if (!config_.enableCompaction || cycleArmed_)
        return;
    cycleArmed_ = true;
    cycleQuiet_ = false;
    nextMakeAt_ = simulator().now() + period_;
    if (processing_ == kNever)
        ensureWake(nextMakeAt_);
}

void
CycleKernelEngine::exitQuietCycles(sim::Tick now)
{
    cycleQuiet_ = false;
    if (!cycleArmed_)
        return;
    if (nextMakeAt_ < now) {
        // Every make slept through ran against the unchanged quiet
        // epoch, i.e. was a proven no-op; account for the cycles at
        // their cadence and resume at the first make >= now.
        const std::uint64_t j = (now - 1 - nextMakeAt_) / period_ + 1;
        cycleIndex_ += j;
        rmbStats_.cycleFlips += j * config_.numNodes;
        nextMakeAt_ += j * period_;
    }
    if (processing_ == kNever)
        ensureWake(nextMakeAt_);
}

void
CycleKernelEngine::makeStep(sim::Tick now)
{
    rmb_assert(moveRecords_.empty(),
               "make step with pending break records");
    if (planes_.occupiedCount() == 0) {
        // Idle ring: pause the cycle clock; the next injection
        // re-arms it.  (Compaction over an empty grid is a no-op,
        // so skipping cycles is outcome-neutral.)
        cycleArmed_ = false;
        nextMakeAt_ = kNever;
        return;
    }

    const int c = static_cast<int>(cycleIndex_ % 2);
    if (!tracing() && noMoveEpoch_[c] == planes_.epoch()) {
        // The grid is bit-identical to a same-parity cycle that
        // found nothing to move, so this pass would too.  Keep the
        // cycle accounting and skip the scan.  (Disabled while
        // tracing so per-cycle CycleFlip events stay complete.)
        ++cycleIndex_;
        rmbStats_.cycleFlips += config_.numNodes;
        nextMakeAt_ = now + period_;
        if (noMoveEpoch_[0] == planes_.epoch() &&
            noMoveEpoch_[1] == planes_.epoch()) {
            cycleQuiet_ = true;
            quietEpoch_ = planes_.epoch();
        }
        return;
    }
    const auto k = static_cast<Level>(config_.numBuses);
    const std::uint32_t words = planes_.wordsPerLevel();
    for (Level l = 1; l < k; ++l) {
        // Gap g considers its levels of parity (g + c) mod 2 this
        // cycle (the per-INC FSM schedule), so level l is in play
        // exactly at gaps of parity (l + c) mod 2.
        const int gap_parity = static_cast<int>(
            (static_cast<std::uint64_t>(l) + c) % 2);
        for (std::uint32_t w = 0; w < words; ++w) {
            std::uint64_t cand =
                planes_.occWord(l, w) &
                planes_.parityWord(gap_parity, w) &
                ~(planes_.occWord(l - 1, w) |
                  planes_.faultyWord(l - 1, w));
            while (cand != 0) {
                const int b = std::countr_zero(cand);
                cand &= cand - 1;
                const GapId g = w * 64 +
                                static_cast<std::uint32_t>(b);
                const std::uint32_t slot = planes_.ownerSlot(g, l);
                rmb_assert(slot != kernel::kNoSlot,
                           "occupancy bit with no owner");
                KBus &bus = pool_[slot];
                const std::size_t idx = hopIndexAt(bus, g);
                if (idx >= bus.hops.size())
                    continue; // freed region of a tearing-down bus
                Hop &hop = bus.hops[idx];
                rmb_assert(hop.gap == g,
                           "hop/gap bookkeeping mismatch");
                if (hop.level != l)
                    continue; // l is a mid-move dual target
                if (!hopMovableRule(bus, idx,
                                    [this](GapId gg, Level ll) {
                                        return isFree(gg, ll);
                                    })) {
                    continue;
                }
                planes_.occupy(g, l - 1, slot, now);
                hop.dualLevel = l - 1;
                ++hop.moveSeq;
                if (tracing()) {
                    obs::TraceEvent e =
                        busEvent(obs::EventKind::CompactionMake,
                                 bus, g, g, l);
                    e.a = static_cast<std::uint64_t>(l - 1);
                    e.b = hop.moveSeq;
                    emitTrace(e);
                }
                moveRecords_.push_back(
                    MoveRecord{slot, bus.id, g, l, l - 1});
            }
        }
    }

    if (moveRecords_.empty()) {
        noMoveEpoch_[c] = planes_.epoch();
        if (!tracing() && noMoveEpoch_[1 - c] == planes_.epoch()) {
            cycleQuiet_ = true;
            quietEpoch_ = planes_.epoch();
        }
    }
    ++cycleIndex_;
    // Every INC flips once per global cycle; skew stays 0.
    rmbStats_.cycleFlips += config_.numNodes;
    if (tracing()) {
        for (net::NodeId i = 0; i < config_.numNodes; ++i) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::CycleFlip;
            e.at = now;
            e.node = i;
            e.gap = i;
            e.a = cycleIndex_;
            emitTrace(e);
        }
    }
    nextBreakAt_ =
        moveRecords_.empty() ? kNever : now + period_ / 2;
    nextMakeAt_ = now + period_;
}

void
CycleKernelEngine::breakStep(sim::Tick)
{
    for (const MoveRecord &r : moveRecords_) {
        KBus &bus = pool_[r.slot];
        if (!bus.live || bus.id != r.bus)
            continue; // fully torn down since the make step
        const std::size_t idx = hopIndexAt(bus, r.gap);
        if (idx >= bus.hops.size())
            continue; // hop already freed by a travelling ack
        Hop &hop = bus.hops[idx];
        if (!hop.inMove() || hop.dualLevel != r.toLevel ||
            hop.level != r.fromLevel) {
            continue; // stale record (move cancelled by a sever)
        }
        if (planes_.faulted(r.gap, r.toLevel))
            continue; // target faulted between make and break
        hop.level = r.toLevel;
        hop.dualLevel = kNoLevel;
        ++rmbStats_.compactionMoves;
        if (tracing()) {
            obs::TraceEvent e =
                busEvent(obs::EventKind::CompactionBreak, bus,
                         r.gap, r.gap, r.toLevel);
            e.a = static_cast<std::uint64_t>(r.fromLevel);
            emitTrace(e);
        }
        releaseSegment(bus, r.gap, r.fromLevel,
                       obs::kFreeCompaction);
    }
    moveRecords_.clear();
    nextBreakAt_ = kNever;
}

// ----------------------------------------------------------------
// Fault injection and recovery
// ----------------------------------------------------------------

void
CycleKernelEngine::failSegment(GapId gap, Level level)
{
    const std::uint32_t occupant = planes_.ownerSlot(gap, level);
    if (occupant != kernel::kNoSlot && !config_.transientFaults) {
        panic("failSegment(", gap, ",", level, "): can only fault a"
              " free segment while transient faults are disabled,"
              " and level ", level, " of gap ", gap,
              " is held by virtual bus ", pool_[occupant].id,
              "; set RmbConfig::transientFaults to sever live"
              " buses");
    }
    planes_.markFaulty(gap, level, simulator().now());
    ++rmbStats_.faultsInjected;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::SegmentFail;
        e.at = simulator().now();
        e.node = gap;
        e.gap = gap;
        e.level = level;
        e.a = occupant == kernel::kNoSlot ? 0
                                          : pool_[occupant].id;
        emitTrace(e);
    }
    if (occupant != kernel::kNoSlot)
        severOccupant(gap, level, occupant);
    if (cycleQuiet_)
        exitQuietCycles(simulator().now());
    checkAfterMutation();
}

void
CycleKernelEngine::repairSegment(GapId gap, Level level)
{
    planes_.clearFault(gap, level, simulator().now());
    ++rmbStats_.faultsRepaired;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::SegmentRepair;
        e.at = simulator().now();
        e.node = gap;
        e.gap = gap;
        e.level = level;
        emitTrace(e);
    }
    // A severed occupant may still be walking its teardown across
    // this segment; then the wakeups happen at its release instead.
    if (planes_.ownerSlot(gap, level) == kernel::kNoSlot)
        segmentFreed(gap, level);
    if (cycleQuiet_)
        exitQuietCycles(simulator().now());
    checkAfterMutation();
}

void
CycleKernelEngine::severOccupant(GapId gap, Level level,
                                 std::uint32_t slot)
{
    KBus &bus = pool_[slot];
    if (isTeardown(bus.state))
        return; // the walking Fack/Nack will release it anyway

    const std::size_t idx = hopIndexAt(bus, gap);
    rmb_assert(idx < bus.hops.size(),
               "faulted segment held by a hop out of range");
    Hop &hop = bus.hops[idx];
    rmb_assert(hop.gap == gap, "hop/gap bookkeeping mismatch");

    if (hop.inMove() && level == hop.dualLevel) {
        // Fault hit the make-before-break *target*: cancel the move
        // and stay on the (live) old level; the pending break
        // record goes stale via inMove().
        planes_.release(gap, level, slot, simulator().now());
        if (tracing()) {
            obs::TraceEvent e =
                busEvent(obs::EventKind::SegmentFree, bus, gap,
                         gap, level);
            e.a = obs::kFreeMoveCancel;
            emitTrace(e);
        }
        hop.dualLevel = kNoLevel;
        return;
    }
    if (hop.inMove() && level == hop.level) {
        // Fault hit the *old* level mid-move: the lower segment
        // already carries the signal, so complete the move early.
        planes_.release(gap, level, slot, simulator().now());
        if (tracing()) {
            obs::TraceEvent e =
                busEvent(obs::EventKind::SegmentFree, bus, gap,
                         gap, level);
            e.a = obs::kFreeMoveCancel;
            emitTrace(e);
        }
        hop.level = hop.dualLevel;
        hop.dualLevel = kNoLevel;
        ++rmbStats_.compactionMoves;
        return;
    }
    rmb_assert(level == hop.level,
               "faulted segment not part of its occupant's hop");
    severBus(bus, obs::kSeverFault);
}

void
CycleKernelEngine::severBus(KBus &bus, std::uint64_t reason)
{
    rmb_assert(!isTeardown(bus.state),
               "sever of a bus already tearing down");
    const sim::Tick now = simulator().now();

    switch (bus.state) {
    case BusState::AwaitHack:
        pes_[bus.dst].releaseReceive(bus.message);
        break;
    case BusState::Streaming:
        pes_[bus.dst].releaseReceive(bus.message);
        noteCircuit(-1);
        // The re-injected header starts a fresh circuit; in-flight
        // FF actions die against the generation bump.
        messageRef(bus.message).state = net::MessageState::Setup;
        break;
    default:
        break; // Advancing: the in-flight header action goes stale
    }

    ++rmbStats_.busesSevered;
    severedAt_.emplace(bus.message, now); // keeps the first sever
    if (tracing()) {
        obs::TraceEvent e = busEvent(obs::EventKind::BusSevered,
                                     bus, bus.headNode);
        e.a = reason;
        emitTrace(e);
    }
    startTeardown(bus, BusState::FaultTeardown);
}

// ----------------------------------------------------------------
// Invariant auditing
// ----------------------------------------------------------------

void
CycleKernelEngine::auditInvariants() const
{
    const std::uint32_t n = config_.numNodes;
    const auto k = static_cast<Level>(config_.numBuses);

    std::uint64_t claimed = 0;
    std::uint64_t live_seen = 0;
    for (std::uint32_t slot = 0; slot < pool_.size(); ++slot) {
        const KBus &bus = pool_[slot];
        if (!bus.live)
            continue;
        ++live_seen;
        rmb_assert(!bus.hops.empty(), "live bus ", bus.id,
                   " with no hops");
        rmb_assert(bus.hops.size() + bus.hopsFreed <=
                       pathLength(bus),
                   "bus ", bus.id, " longer than its path");
        for (std::size_t i = 0; i < bus.hops.size(); ++i) {
            const Hop &hop = bus.hops[i];
            rmb_assert(hop.gap == (bus.srcGap() + i) % n, "bus ",
                       bus.id, " hop ", i, " at wrong gap");
            rmb_assert(hop.level >= 0 && hop.level < k, "bus ",
                       bus.id, " level out of range");
            rmb_assert(planes_.ownerSlot(hop.gap, hop.level) ==
                           slot,
                       "grid does not record bus ", bus.id,
                       " at (", hop.gap, ",", hop.level, ")");
            ++claimed;
            if (hop.inMove()) {
                rmb_assert(hop.dualLevel == hop.level - 1,
                           "moves must go exactly one level down");
                rmb_assert(planes_.ownerSlot(hop.gap,
                                             hop.dualLevel) ==
                               slot,
                           "dual segment not recorded");
                ++claimed;
            }
            if (i > 0) {
                const Hop &prev = bus.hops[i - 1];
                rmb_assert(!(prev.inMove() && hop.inMove()),
                           "adjacent hops of bus ", bus.id,
                           " moving concurrently");
                for (Level a : {prev.level, prev.dualLevel}) {
                    if (a == kNoLevel)
                        continue;
                    for (Level b : {hop.level, hop.dualLevel}) {
                        if (b == kNoLevel)
                            continue;
                        rmb_assert(a - b <= 1 && b - a <= 1,
                                   "bus ", bus.id,
                                   " kinked at gap ", hop.gap,
                                   ": levels ", a, " -> ", b);
                    }
                }
                // Table-1 legality of the derived status code:
                // sourceDirOf panics unless the live input levels
                // are adjacent to this output level.
                StatusRegister reg;
                if (prev.inMove()) {
                    reg.connect(
                        sourceDirOf(prev.level, hop.level));
                    reg.connect(
                        sourceDirOf(prev.dualLevel, hop.level));
                } else {
                    reg.connect(
                        sourceDirOf(prev.level, hop.level));
                }
            }
        }
        if (bus.state == BusState::AwaitHack ||
            bus.state == BusState::Streaming) {
            rmb_assert(bus.hops.size() == pathLength(bus),
                       "established bus ", bus.id,
                       " does not span its path");
        }
        rmb_assert(bus.state != BusState::Blocked,
                   "kernel engine cannot produce Blocked buses");
    }
    rmb_assert(live_seen == liveBuses_, "pool shows ", live_seen,
               " live buses but the census counts ", liveBuses_);
    rmb_assert(claimed == planes_.occupiedCount(), "grid claims ",
               planes_.occupiedCount(), " segments but buses own ",
               claimed, " (plus ", planes_.faultyCount(),
               " faulted)");

    std::uint32_t faulted_seen = 0;
    for (GapId g = 0; g < n; ++g) {
        for (Level l = 0; l < k; ++l) {
            const std::uint32_t slot = planes_.ownerSlot(g, l);
            rmb_assert(planes_.occupied(g, l) ==
                           (slot != kernel::kNoSlot),
                       "occupancy plane out of sync with the owner"
                       " grid at (", g, ",", l, ")");
            if (!planes_.faulted(g, l))
                continue;
            ++faulted_seen;
            rmb_assert(!planes_.isFree(g, l), "faulted segment (",
                       g, ",", l, ") reads as free");
            if (slot == kernel::kNoSlot)
                continue;
            const KBus &owner = pool_[slot];
            rmb_assert(owner.live, "faulted segment (", g, ",", l,
                       ") held by dead slot ", slot);
            rmb_assert(isTeardown(owner.state), "bus ", owner.id,
                       " holds faulted segment (", g, ",", l,
                       ") but is not tearing down (state ",
                       static_cast<int>(owner.state), ")");
        }
    }
    rmb_assert(faulted_seen == planes_.faultyCount(),
               "fault plane shows ", faulted_seen,
               " faulted segments but the census counts ",
               planes_.faultyCount());
}

} // namespace core
} // namespace rmb
