/**
 * @file
 * Per-node processing-element state.
 *
 * The paper's PE <-> INC interface allows one active send and one
 * active receive per node (section 2.1).  The PE side is pure state:
 * an injection FIFO plus the two port flags; the protocol logic lives
 * in RmbNetwork.
 */

#ifndef RMB_RMB_PE_HH
#define RMB_RMB_PE_HH

#include <algorithm>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "netbase/message.hh"
#include "rmb/types.hh"
#include "sim/types.hh"

namespace rmb {
namespace core {

/**
 * Injection queue and port state of one processing element.
 *
 * The paper's base interface has one send and one receive port
 * (section 2.1); it also notes the interface can "be enhanced to
 * permit the PE to talk concurrently with multiple inputs and
 * outputs", which RmbConfig::sendPorts / receivePorts model.
 */
struct Pe
{
    /** Messages waiting to be injected, FIFO.  Retries re-enter at
     *  the front so a Nacked message keeps its place. */
    std::deque<net::MessageId> sendQueue;

    /** Messages currently owning send ports. */
    std::vector<net::MessageId> activeSends;

    /** Messages currently owning receive ports. */
    std::vector<net::MessageId> activeReceives;

    /** Earliest tick the next injection attempt may happen
     *  (retry backoff). */
    sim::Tick backoffUntil = 0;

    bool
    sendPortFree(std::uint32_t ports) const
    {
        return activeSends.size() < ports;
    }

    bool
    receivePortFree(std::uint32_t ports) const
    {
        return activeReceives.size() < ports;
    }

    void
    releaseSend(net::MessageId id)
    {
        auto it = std::find(activeSends.begin(), activeSends.end(),
                            id);
        rmb_assert(it != activeSends.end(),
                   "message ", id, " does not own a send port");
        activeSends.erase(it);
    }

    void
    releaseReceive(net::MessageId id)
    {
        auto it = std::find(activeReceives.begin(),
                            activeReceives.end(), id);
        rmb_assert(it != activeReceives.end(),
                   "message ", id, " does not own a receive port");
        activeReceives.erase(it);
    }
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_PE_HH
