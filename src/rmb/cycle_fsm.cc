#include "rmb/cycle_fsm.hh"

namespace rmb {
namespace core {

bool
CycleFsm::step(bool ld, bool lc, bool rd, bool rc)
{
    switch (phase_) {
      case CyclePhase::Moving:
        // Rule 2: OD := 1 if ID and both neighbour cycles are clear.
        if (id_ && !lc && !rc) {
            od_ = true;
            phase_ = CyclePhase::WaitNeighborsDone;
        }
        return false;

      case CyclePhase::WaitNeighborsDone:
        // Rule 3 (Figure 10): OC := 1 once both neighbours report
        // their datapath switches complete; the local cycle flips.
        if (ld && rd) {
            oc_ = true;
            ++cycleCount_;
            phase_ = CyclePhase::WaitNeighborsCycle;
        }
        return false;

      case CyclePhase::WaitNeighborsCycle:
        // Rule 4: OD := 0 once both neighbours flipped their cycles.
        if (lc && rc) {
            od_ = false;
            phase_ = CyclePhase::WaitNeighborsClear;
        }
        return false;

      case CyclePhase::WaitNeighborsClear:
        // Rule 5: OC := 0 once both neighbours cleared OD; the next
        // Moving phase begins.
        if (!ld && !rd) {
            oc_ = false;
            id_ = false;
            phase_ = CyclePhase::Moving;
            return true;
        }
        return false;
    }
    return false;
}

} // namespace core
} // namespace rmb
