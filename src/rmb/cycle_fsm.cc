#include "rmb/cycle_fsm.hh"

namespace rmb {
namespace core {

CycleStep
stepCycle(CyclePhase phase, bool id, bool ld, bool lc, bool rd,
          bool rc, CycleRuleVariant variant)
{
    CycleStep r{phase, false, false};
    switch (phase) {
      case CyclePhase::Moving:
        // Rule 2: OD := 1 if ID and both neighbour cycles are clear.
        if (id && !lc && !rc)
            r.phase = CyclePhase::WaitNeighborsDone;
        return r;

      case CyclePhase::WaitNeighborsDone:
        // Rule 3 (Figure 10): OC := 1 once both neighbours report
        // their datapath switches complete; the local cycle flips.
        // The body-text variant fires on LC = RC = 0 instead, i.e.
        // immediately after rule 2 - rmbcheck proves that reading
        // deadlocks the ring.
        if (variant == CycleRuleVariant::OcRuleBodyText
                ? (!lc && !rc)
                : (ld && rd)) {
            r.phase = CyclePhase::WaitNeighborsCycle;
            r.cycleFlipped = true;
        }
        return r;

      case CyclePhase::WaitNeighborsCycle:
        // Rule 4: OD := 0 once both neighbours flipped their cycles.
        if (variant == CycleRuleVariant::NoHandshakeGates ||
            (lc && rc)) {
            r.phase = CyclePhase::WaitNeighborsClear;
        }
        return r;

      case CyclePhase::WaitNeighborsClear:
        // Rule 5: OC := 0 once both neighbours cleared OD; the next
        // Moving phase begins.
        if (variant == CycleRuleVariant::NoHandshakeGates ||
            (!ld && !rd)) {
            r.phase = CyclePhase::Moving;
            r.enteredMoving = true;
        }
        return r;
    }
    return r;
}

bool
CycleFsm::step(bool ld, bool lc, bool rd, bool rc)
{
    const CycleStep r = stepCycle(phase_, id_, ld, lc, rd, rc);
    phase_ = r.phase;
    if (r.cycleFlipped)
        ++cycleCount_;
    if (r.enteredMoving)
        id_ = false;
    return r.enteredMoving;
}

} // namespace core
} // namespace rmb
