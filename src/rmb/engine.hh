/**
 * @file
 * The pluggable RMB engine contract.
 *
 * Everything outside `src/rmb` that drives an RMB simulation -
 * benches, sweeps, fault injection, trace sinks, reports - depends
 * only on this interface.  Two backends implement it:
 *
 *  - `RmbNetwork` (network.hh): the reference discrete-event engine;
 *    every header hop, INC cycle tick and teardown step is a
 *    heap-scheduled `sim::EventQueue` event with per-INC clock skew.
 *  - `CycleKernelEngine` (kernel/kernel_engine.hh): a time-stepped
 *    structure-of-arrays kernel; segment occupancy and fault state
 *    live in uint64_t bitplanes, compaction candidates are filtered
 *    word-parallel, and the protocol agenda is a bucket timing wheel.
 *
 * Select a backend with `RmbConfig::engine` and construct through
 * `makeEngine()`; see docs/ENGINE.md for the full contract, the
 * bitset layout and how to add a third backend.
 */

#ifndef RMB_RMB_ENGINE_HH
#define RMB_RMB_ENGINE_HH

#include <memory>
#include <string>

#include "netbase/network.hh"
#include "obs/metrics.hh"
#include "rmb/config.hh"
#include "rmb/types.hh"
#include "sim/stats.hh"

namespace rmb {
namespace core {

/**
 * Typed view of the RMB-specific counters beyond the common
 * NetworkStats.  Like NetworkStats, the metrics live in the owning
 * engine's obs::MetricsRegistry (under the "rmb." prefix); this
 * struct only names them.  Both engines maintain the same registry
 * names, so reports and gates read either backend unchanged.
 */
struct RmbStats
{
    explicit RmbStats(obs::MetricsRegistry &registry);
    RmbStats(const RmbStats &) = delete;
    RmbStats &operator=(const RmbStats &) = delete;

    /** Completed downward moves (break steps). */
    obs::Counter &compactionMoves;
    /** Headers that entered the Blocked state. */
    obs::Counter &blockedHeaders;
    /** Partial buses torn down under BlockingPolicy::NackRetry. */
    obs::Counter &blockedAborts;
    /** Partial buses torn down by the Wait-mode header timeout. */
    obs::Counter &timeoutAborts;
    /** Total odd/even cycle flips across all INCs. */
    obs::Counter &cycleFlips;
    /** Data-flit acknowledgements delivered (detailed mode). */
    obs::Counter &dacks;
    /** Largest |cycleCount(i) - cycleCount(i+1)| ever observed. */
    obs::Counter &maxCycleSkew;

    /** Multicast/broadcast groups completed. */
    obs::Counter &multicasts;

    /** Segment faults injected (failSegment calls). */
    obs::Counter &faultsInjected;
    /** Segment faults repaired (repairSegment calls). */
    obs::Counter &faultsRepaired;
    /** Live virtual buses severed by a fault or the watchdog. */
    obs::Counter &busesSevered;
    /** Messages delivered despite >= 1 sever along the way. */
    obs::Counter &messagesRecovered;
    /** Messages that were severed and then permanently failed. */
    obs::Counter &messagesLost;
    /** Source watchdog expirations (each severs one bus). */
    obs::Counter &watchdogFires;

    /** Injection -> the source's top segment is free again. */
    sim::SampleStat &topReleaseLatency;

    /** First sever -> eventual delivery, per recovered message. */
    sim::SampleStat &recoveryLatency;
    /** Log-bucketed recovery latencies (p50/90/99 in reports). */
    obs::LogHistogram &recoveryLatencyHist;

    /** Creation -> per-member delivery over all multicast members. */
    sim::SampleStat &multicastMemberLatency;
    /** Time headers spent in the Blocked state. */
    sim::SampleStat &blockedTime;
    /** Live virtual buses (injection .. teardown complete). */
    sim::LevelTracker &liveBuses;
};

/**
 * Abstract RMB simulation backend.
 *
 * The contract on top of net::Network:
 *  - construction takes a validated RmbConfig; engines refuse (via
 *    fatal) to build from a config whose validate() reports problems;
 *  - fault injection (failSegment/repairSegment) follows the
 *    transient-fault semantics of docs/FAULTS.md on both backends;
 *  - the segment census accessors expose the N x k grid generically,
 *    so heatmaps and reports need no backend-specific casts;
 *  - auditInvariants() panics on any structural violation and may be
 *    called at any quiescent or non-quiescent instant.
 *
 * Scheduling internals - retry backoff (`scheduleRetry`), watchdog
 * arming, INC clocks or timing wheels - are deliberately *absent*:
 * they are implementation details that moved behind this interface.
 */
class Engine : public net::Network
{
  public:
    Engine(sim::Simulator &simulator, std::string name,
           net::NodeId num_nodes)
        : net::Network(simulator, std::move(name), num_nodes)
    {
    }

    /** The validated configuration this engine was built from. */
    virtual const RmbConfig &config() const = 0;

    /** RMB-specific counters (same registry names on all backends). */
    virtual const RmbStats &rmbStats() const = 0;

    /**
     * Fault injection: disable the physical segment at
     * (@p gap, @p level).  With RmbConfig::transientFaults the
     * segment may be *occupied*: the owning virtual bus is severed
     * and torn down hop by hop, and its message retried from the
     * source (docs/FAULTS.md).  Without it, faulting an occupied
     * segment is a hard error (the historical static-fault model).
     */
    virtual void failSegment(GapId gap, Level level) = 0;

    /**
     * Repair a faulted segment: the inverse of failSegment.  The
     * segment becomes claimable again once any severed occupant has
     * finished releasing it.
     */
    virtual void repairSegment(GapId gap, Level level) = 0;

    /** Run every structural invariant check now (any VerifyLevel). */
    virtual void auditInvariants() const = 0;

    // --- segment census (generic N x k grid view) ---

    /** Is the segment at (@p gap, @p level) claimed by a bus? */
    virtual bool segmentOccupied(GapId gap, Level level) const = 0;

    /** Is the segment at (@p gap, @p level) faulted? */
    virtual bool segmentFaulty(GapId gap, Level level) const = 0;

    /** Number of currently faulted segments. */
    virtual std::uint32_t faultySegments() const = 0;

    /** Number of currently occupied segments. */
    virtual std::uint64_t occupiedSegments() const = 0;

    /** Busy fraction of one segment over [0, @p now]. */
    virtual double segmentUtilization(GapId gap, Level level,
                                      sim::Tick now) const = 0;

    /** Mean busy fraction over all N x k segments. */
    virtual double averageSegmentUtilization(sim::Tick now) const = 0;
};

/**
 * Construct the backend selected by @p config.engine.  Fatals (like
 * the engines themselves) if the configuration is invalid - including
 * kernel-incompatible option combinations, which validate() reports
 * with the exact option to change.
 */
std::unique_ptr<Engine> makeEngine(sim::Simulator &simulator,
                                   const RmbConfig &config);

/**
 * Fatal with every validate() problem unless @p config is valid;
 * returns @p config so engine constructors can chain it before any
 * member construction.
 */
const RmbConfig &validatedEngineConfig(const RmbConfig &config);

/**
 * Canonical digest of a network's per-message *outcomes*: one line
 * per message id with source, destination, payload, final state and
 * the delivering circuit's hop count.  Two engines that implement the
 * same protocol semantics must produce byte-identical digests for the
 * same workload (see tests/engine_diff_test.cc and docs/ENGINE.md for
 * why outcomes, not tick-level traces, are the equivalence contract).
 */
std::string outcomeDigest(const net::Network &network);

} // namespace core
} // namespace rmb

#endif // RMB_RMB_ENGINE_HH
