#include "rmb/inc.hh"

#include "common/logging.hh"
#include "rmb/network.hh"

namespace rmb {
namespace core {

void
Inc::start(RmbNetwork &network)
{
    rmb_assert(!started_, "Inc::start called twice");
    started_ = true;
    // Desynchronize the first ticks so INC clocks have arbitrary
    // phase, as the paper's asynchronous-clock assumption demands.
    const sim::Tick offset =
        network.rng().uniformRange(1, period_);
    network.simulator().schedule(offset, [this, &network] {
        // The construction-time state is the first Moving phase.
        startMovingPhase(network);
        tick(network);
    });
}

void
Inc::tick(RmbNetwork &network)
{
    const Inc &left = network.leftOf(index_);
    const Inc &right = network.rightOf(index_);
    const std::uint64_t cycles_before = fsm_.cycleCount();
    const bool entered_moving =
        fsm_.step(left.fsm().od(), left.fsm().oc(),
                  right.fsm().od(), right.fsm().oc());
    if (fsm_.cycleCount() != cycles_before)
        network.noteCycleFlip(index_);
    if (entered_moving)
        startMovingPhase(network);
    network.simulator().schedule(period_,
                                 [this, &network] { tick(network); });
}

void
Inc::startMovingPhase(RmbNetwork &network)
{
    if (!network.config().enableCompaction) {
        fsm_.setMovesDone();
        return;
    }
    const int parity = fsm_.consideredParity(index_);
    auto records = network.makeEligibleMoves(index_, parity);
    if (records.empty()) {
        fsm_.setMovesDone();
        return;
    }
    // Break the old connections half a local period after making the
    // new ones (make-before-break, Figure 4).
    network.simulator().schedule(
        period_ / 2,
        [this, &network, records = std::move(records)] {
            network.breakMoves(records);
            fsm_.setMovesDone();
        });
}

} // namespace core
} // namespace rmb
