#include "rmb/config.hh"

#include <sstream>

namespace rmb {
namespace core {

namespace {

template <typename... Args>
std::string
msg(Args &&...args)
{
    std::ostringstream out;
    (out << ... << std::forward<Args>(args));
    return out.str();
}

} // namespace

std::vector<std::string>
RmbConfig::validate() const
{
    std::vector<std::string> problems;

    if (numNodes < 2) {
        problems.push_back(msg(
            "numNodes=", numNodes,
            ": the ring needs at least two nodes"));
    }
    if (numBuses < 1) {
        problems.push_back(msg(
            "numBuses=", numBuses,
            ": the grid needs at least one bus level (k >= 1)"));
    }
    if (headerHopDelay < 1 || ackHopDelay < 1 || flitDelay < 1) {
        problems.push_back(msg(
            "hop delays must all be >= 1 tick (headerHopDelay=",
            headerHopDelay, ", ackHopDelay=", ackHopDelay,
            ", flitDelay=", flitDelay, ")"));
    }
    if (cyclePeriodMin < 2) {
        problems.push_back(msg(
            "cyclePeriodMin=", cyclePeriodMin,
            ": the make-before-break break step fires half a period"
            " later, so periods below 2 ticks cannot be split"));
    }
    if (cyclePeriodMin > cyclePeriodMax) {
        problems.push_back(msg(
            "cycle period range [", cyclePeriodMin, ", ",
            cyclePeriodMax, "] is inverted (min > max)"));
    }
    if (detailedFlits && dackWindow == 0) {
        problems.push_back(
            "dackWindow=0 with detailedFlits: the first data flit"
            " could never depart; use dackWindow >= 1 (or disable"
            " detailedFlits)");
    }
    if (retryBackoffMin < 1) {
        problems.push_back(msg(
            "retryBackoffMin=", retryBackoffMin,
            ": a zero backoff re-injects in the same tick and"
            " livelocks colliding senders"));
    }
    if (retryBackoffMin > retryBackoffMax) {
        problems.push_back(msg(
            "retry backoff range [", retryBackoffMin, ", ",
            retryBackoffMax, "] is inverted (min > max)"));
    }
    if (exponentialBackoff && retryBackoffCap < 2) {
        problems.push_back(msg(
            "retryBackoffCap=", retryBackoffCap,
            " with exponentialBackoff: the capped backoff is drawn"
            " from [cap/2, cap], so the cap must be >= 2"));
    }
    if (sendPorts < 1 || receivePorts < 1) {
        problems.push_back(msg(
            "sendPorts=", sendPorts, ", receivePorts=", receivePorts,
            ": every PE needs at least one port of each kind"));
    }
    if (headerTimeout > 0 &&
        blocking == BlockingPolicy::NackRetry) {
        problems.push_back(msg(
            "headerTimeout=", headerTimeout,
            " has no effect under BlockingPolicy::NackRetry; set"
            " blocking=Wait or drop the timeout"));
    }
    if (faultMtbf > 0 && !transientFaults) {
        problems.push_back(msg(
            "faultMtbf=", faultMtbf,
            " without transientFaults: the fault schedule hits"
            " occupied segments, which needs the transient-fault"
            " recovery path; set transientFaults=true"));
    }
    if (faultMtbf > 0 && faultMttrMin < 1) {
        problems.push_back(
            "faultMttrMin=0 with a fault schedule: a zero repair"
            " delay repairs the segment in the injection tick; use"
            " faultMttrMin >= 1");
    }
    if (faultMttrMin > faultMttrMax) {
        problems.push_back(msg(
            "fault MTTR range [", faultMttrMin, ", ", faultMttrMax,
            "] is inverted (min > max)"));
    }
    if (watchdogTimeout > 0 &&
        watchdogTimeout < headerHopDelay + ackHopDelay) {
        problems.push_back(msg(
            "watchdogTimeout=", watchdogTimeout,
            " is below one header+ack hop (",
            headerHopDelay + ackHopDelay,
            " ticks); every healthy bus would be severed before it"
            " could make its first hop"));
    }

    // Engine-compatibility: the cycle kernel refuses, with an
    // actionable message, every option it does not model - silent
    // fallback to the event engine would invalidate perf numbers and
    // differential baselines alike.
    if (engine == EngineKind::Kernel) {
        if (detailedFlits) {
            problems.push_back(
                "engine=kernel does not model per-flit Dack flow"
                " control (detailedFlits); use the closed-form"
                " pipeline (detailedFlits=false) or engine=event");
        }
        if (blocking == BlockingPolicy::Wait) {
            problems.push_back(
                "engine=kernel only implements"
                " BlockingPolicy::NackRetry; Wait-mode header"
                " parking (and its deadlock modes) needs"
                " engine=event");
        }
        if (watchdogTimeout > 0) {
            problems.push_back(msg(
                "engine=kernel has no source watchdog"
                " (watchdogTimeout=", watchdogTimeout,
                "): the kernel's timing wheel cannot lose protocol"
                " events, so there is nothing for a watchdog to"
                " recover; set watchdogTimeout=0 or engine=event"));
        }
    }
    return problems;
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
    case EngineKind::Event:
        return "event";
    case EngineKind::Kernel:
        return "kernel";
    }
    return "?";
}

} // namespace core
} // namespace rmb
