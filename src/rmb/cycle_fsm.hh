/**
 * @file
 * The odd/even cycle controller of one INC (paper section 2.5).
 *
 * Each INC alternates between odd and even compaction cycles using a
 * purely local four-phase handshake with its two ring neighbours.
 * The paper expresses it as two flags per INC,
 *
 *   OD - "own datapaths have switched" (this cycle's moves are done)
 *   OC - "own cycle has changed"
 *
 * plus each neighbour's view of them (LD/LC from the left, RD/RC from
 * the right), an internal ID signal ("all datapath switches
 * complete"), and five rules (section 2.5 / Figure 10):
 *
 *   1. at reset OD = OC = 0
 *   2. OD := 1  if ID = 1 and LC = 0 and RC = 0
 *   3. OC := 1  if OD = 1 and LD = 1 and RD = 1
 *   4. OD := 0  if OD = 1 and LC = 1 and RC = 1
 *   5. OC := 0  if OC = 1 and LD = 0 and RD = 0
 *
 * (The body text of the paper prints rule 3 as "OC = 1 if OD = 1 and
 * LC = 0 and RC = 0", but that makes OC rise in the same instant as
 * OD regardless of the neighbours; Figure 10's version - shown above -
 * is the one that actually synchronizes, so we implement that and
 * flag the discrepancy here.)
 *
 * The FSM guarantees (paper Lemma 1, checked by our property tests)
 * that neighbouring INCs' completed-cycle counts never differ by more
 * than one.
 */

#ifndef RMB_RMB_CYCLE_FSM_HH
#define RMB_RMB_CYCLE_FSM_HH

#include <cstdint>

namespace rmb {
namespace core {

/** The four waiting states between datapath-switching phases. */
enum class CyclePhase : std::uint8_t
{
    Moving,             //!< executing this cycle's datapath moves
    WaitNeighborsDone,  //!< OD=1, waiting for LD and RD
    WaitNeighborsCycle, //!< OC=1, waiting for LC and RC
    WaitNeighborsClear, //!< OD=0, waiting for LD and RD to clear
};

/** OD as a pure function of the phase (high between rules 2 and 4). */
inline bool
cycleOd(CyclePhase p)
{
    return p == CyclePhase::WaitNeighborsDone ||
           p == CyclePhase::WaitNeighborsCycle;
}

/** OC as a pure function of the phase (high between rules 3 and 5). */
inline bool
cycleOc(CyclePhase p)
{
    return p == CyclePhase::WaitNeighborsCycle ||
           p == CyclePhase::WaitNeighborsClear;
}

/**
 * Which reading of the section-2.5 rules to apply.  The simulator
 * always runs Figure10; the other variants exist so the model
 * checker (tools/rmbcheck --mutate) can prove the discrepancies
 * documented above actually break the protocol.
 */
enum class CycleRuleVariant : std::uint8_t
{
    /** Figure 10's rule 3: OC rises only once LD = RD = 1. */
    Figure10,
    /**
     * The body text's rule 3: OC rises as soon as OD = 1 and
     * LC = RC = 0, i.e. instantly after rule 2 and regardless of the
     * neighbours' datapath progress.
     */
    OcRuleBodyText,
    /**
     * Rules 4 and 5 without their neighbour gates (OD and OC fall
     * unconditionally).  Not a reading of the paper - a deliberately
     * broken variant that lets one INC sprint ahead of a slow
     * neighbour, violating Lemma 1's skew bound.
     */
    NoHandshakeGates,
};

/** Outcome of one pure rule evaluation (see stepCycle). */
struct CycleStep
{
    CyclePhase phase;   //!< next phase
    bool enteredMoving; //!< rule 5 fired: a new Moving phase begins
    bool cycleFlipped;  //!< rule 3 fired: the completed-cycle count
                        //!< increments
};

/**
 * One side-effect-free evaluation of the section-2.5 rules: given
 * the current phase, the internal ID signal and the neighbour flags,
 * return the successor phase and what happened.  This is the single
 * source of truth for the rules - CycleFsm::step drives it for the
 * simulator, and the model checker (src/check/) drives it directly
 * to enumerate every reachable state of a ring of these FSMs.
 */
CycleStep stepCycle(CyclePhase phase, bool id, bool ld, bool lc,
                    bool rd, bool rc,
                    CycleRuleVariant variant =
                        CycleRuleVariant::Figure10);

/**
 * Pure state machine: the owner (the Inc) feeds it neighbour flags on
 * every local clock tick and is told when a new Moving phase begins.
 */
class CycleFsm
{
  public:
    bool od() const { return cycleOd(phase_); }
    bool oc() const { return cycleOc(phase_); }
    CyclePhase phase() const { return phase_; }

    /** Number of completed odd/even cycles. */
    std::uint64_t cycleCount() const { return cycleCount_; }

    /**
     * Parity of the bus levels this INC may move during the current
     * Moving phase, per section 2.4: an even INC moves even levels in
     * even cycles, an odd INC moves even levels in odd cycles.
     * @param inc_index this INC's position on the ring.
     */
    int
    consideredParity(std::uint32_t inc_index) const
    {
        return static_cast<int>((inc_index + cycleCount_) % 2);
    }

    /** Assert the internal ID signal: this cycle's moves are done. */
    void setMovesDone() { id_ = true; }

    /** True while the FSM is in Moving and moves are not yet done. */
    bool
    moving() const
    {
        return phase_ == CyclePhase::Moving && !id_;
    }

    /**
     * Evaluate the rules against the current neighbour flags.
     * @param ld left neighbour's OD   @param lc left neighbour's OC
     * @param rd right neighbour's OD  @param rc right neighbour's OC
     * @retval true if a new Moving phase just began (the caller
     *         should plan and execute this cycle's datapath moves,
     *         then call setMovesDone()).
     */
    bool step(bool ld, bool lc, bool rd, bool rc);

  private:
    CyclePhase phase_ = CyclePhase::Moving;
    bool id_ = false;
    std::uint64_t cycleCount_ = 0;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_CYCLE_FSM_HH
