/**
 * @file
 * n-dimensional grids of RMB rings (paper section 4: "the design of
 * reconfigurable multiple bus systems for 2- and 3-D grid connected
 * computers").
 *
 * Every grid *line* (the set of nodes differing only in one
 * coordinate) is a full RMB ring.  A message routes dimension-
 * ordered: one ring leg per differing coordinate, with
 * store-and-forward at each turning node.  RmbTorusNetwork is the
 * 2-D special case with row/column accessors.
 */

#ifndef RMB_RMB_GRID_HH
#define RMB_RMB_GRID_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/network.hh"
#include "rmb/config.hh"
#include "rmb/network.hh"

namespace rmb {
namespace core {

/** Grid of RMB rings over dims[0] x dims[1] x ... nodes. */
class RmbGridNetwork : public net::Network
{
  public:
    /**
     * @param dims extent per dimension (each >= 2, at least one
     *        dimension); node ids are mixed-radix with dimension 0
     *        fastest: id = x0 + dims[0]*(x1 + dims[1]*(x2 + ...)).
     * @param config applies to every ring; numNodes is ignored.
     */
    RmbGridNetwork(sim::Simulator &simulator,
                   std::vector<std::uint32_t> dims,
                   const RmbConfig &config,
                   std::string name = "RMB(grid)");

    net::MessageId send(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload_flits) override;

    std::uint32_t numDims() const
    {
        return static_cast<std::uint32_t>(dims_.size());
    }

    std::uint32_t
    dimExtent(std::uint32_t d) const
    {
        return dims_[d];
    }

    /** Coordinate @p d of node @p node. */
    std::uint32_t coordinate(net::NodeId node,
                             std::uint32_t d) const;

    /**
     * The ring running along dimension @p d through node @p node
     * (all rings through a node are distinct RmbNetworks).
     */
    const RmbNetwork &lineRing(std::uint32_t d,
                               net::NodeId node) const;

    /** Messages that needed more than one ring leg. */
    std::uint64_t multiLegMessages() const { return multiLeg_; }

    /** Total compaction moves across every ring. */
    std::uint64_t totalCompactionMoves() const;

  private:
    struct Pending
    {
        net::MessageId ours = net::kNoMessage;
        net::NodeId dst = 0;       //!< global destination
        net::NodeId at = 0;        //!< global position after this leg
        std::uint32_t nextDim = 0; //!< next dimension to correct
        std::uint32_t hops = 0;    //!< ring hops accumulated
    };

    /** Index of the dim-d ring containing @p node. */
    std::uint32_t ringIndex(std::uint32_t d,
                            net::NodeId node) const;

    /** Launch the leg correcting dimension >= @p from_dim. */
    void launchLeg(Pending pending, std::uint32_t from_dim);

    void onLegDelivered(std::uint32_t d, std::uint32_t ring,
                        const net::Message &pm);

    void finish(Pending &pending, const net::Message &last_leg);

    std::vector<std::uint32_t> dims_;
    std::vector<std::uint32_t> stride_;
    RmbConfig ringConfig_;
    /** rings_[d][ringIndex] */
    std::vector<std::vector<std::unique_ptr<RmbNetwork>>> rings_;
    /** pending_[d][ringIndex]: ring message id -> state */
    std::vector<std::vector<
        std::unordered_map<net::MessageId, Pending>>>
        pending_;
    std::uint64_t multiLeg_ = 0;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_GRID_HH
