#include "rmb/engine.hh"

#include <sstream>

#include "common/logging.hh"
#include "rmb/kernel/kernel_engine.hh"
#include "rmb/network.hh"

namespace rmb {
namespace core {

RmbStats::RmbStats(obs::MetricsRegistry &registry)
    : compactionMoves(registry.counter("rmb.compaction.moves")),
      blockedHeaders(registry.counter("rmb.blocked.headers")),
      blockedAborts(registry.counter("rmb.blocked.aborts")),
      timeoutAborts(registry.counter("rmb.timeout.aborts")),
      cycleFlips(registry.counter("rmb.cycle.flips")),
      dacks(registry.counter("rmb.dacks")),
      maxCycleSkew(registry.counter("rmb.cycle.max_skew")),
      multicasts(registry.counter("rmb.multicasts")),
      faultsInjected(registry.counter("rmb.faults.injected")),
      faultsRepaired(registry.counter("rmb.faults.repaired")),
      busesSevered(registry.counter("rmb.faults.severed")),
      messagesRecovered(registry.counter("rmb.faults.recovered")),
      messagesLost(registry.counter("rmb.faults.lost")),
      watchdogFires(registry.counter("rmb.watchdog.fires")),
      topReleaseLatency(
          registry.sampler("rmb.top_release_latency")),
      recoveryLatency(
          registry.sampler("rmb.faults.recovery_latency")),
      recoveryLatencyHist(
          registry.histogram("rmb.hist.recovery_latency")),
      multicastMemberLatency(
          registry.sampler("rmb.multicast.member_latency")),
      blockedTime(registry.sampler("rmb.blocked.time")),
      liveBuses(registry.level("rmb.live_buses"))
{}

const RmbConfig &
validatedEngineConfig(const RmbConfig &config)
{
    const std::vector<std::string> problems = config.validate();
    if (!problems.empty()) {
        std::string joined;
        for (const std::string &p : problems) {
            if (!joined.empty())
                joined += "; ";
            joined += p;
        }
        fatal("invalid RmbConfig: ", joined);
    }
    return config;
}

std::unique_ptr<Engine>
makeEngine(sim::Simulator &simulator, const RmbConfig &config)
{
    switch (config.engine) {
    case EngineKind::Event:
        return std::make_unique<RmbNetwork>(simulator, config);
    case EngineKind::Kernel:
        return std::make_unique<CycleKernelEngine>(simulator,
                                                   config);
    }
    fatal("unknown EngineKind ",
          static_cast<unsigned>(config.engine));
}

std::string
outcomeDigest(const net::Network &network)
{
    std::ostringstream out;
    for (net::MessageId id = 1; id <= network.numMessages(); ++id) {
        const net::Message &m = network.message(id);
        out << m.id << ':' << m.src << '>' << m.dst << ':'
            << m.payloadFlits << ':';
        switch (m.state) {
        case net::MessageState::Queued:
            out << 'Q';
            break;
        case net::MessageState::Setup:
            out << 'S';
            break;
        case net::MessageState::Streaming:
            out << 's';
            break;
        case net::MessageState::Delivered:
            out << 'D';
            break;
        case net::MessageState::Failed:
            out << 'F';
            break;
        }
        out << ':' << m.pathHops << '\n';
    }
    return out.str();
}

} // namespace core
} // namespace rmb
