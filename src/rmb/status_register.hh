/**
 * @file
 * The 3-bit output-port status register of an INC (paper Table 1).
 *
 * Each INC keeps one register per output port (= per bus level).  The
 * bits say which input port(s) currently drive that output:
 *
 *   bit 0 - "from below":   input port l-1 drives output port l
 *   bit 1 - "straight":     input port l   drives output port l
 *   bit 2 - "from above":   input port l+1 drives output port l
 *
 * Two sources are legal only during the make-before-break step of a
 * downward move and only for adjacent sources, so 101 and 111 are
 * forbidden (Table 1 "Not allowed").
 */

#ifndef RMB_RMB_STATUS_REGISTER_HH
#define RMB_RMB_STATUS_REGISTER_HH

#include <cstdint>
#include <string>

namespace rmb {
namespace core {

/** Table 1 codes, named. */
enum class PortStatus : std::uint8_t
{
    Unused = 0b000,
    FromBelow = 0b001,
    Straight = 0b010,
    FromBelowAndStraight = 0b011,
    FromAbove = 0b100,
    FromAboveAndStraight = 0b110,
};

/** Relative source of an output port. */
enum class SourceDir : std::uint8_t
{
    Below,     //!< input l-1
    Straight,  //!< input l
    Above,     //!< input l+1
};

/** @return true for the six codes Table 1 allows. */
bool statusLegal(std::uint8_t bits);

/**
 * Human-readable name of a code, for traces and tables.  Codes
 * Table 1 forbids come back as a diagnostic "illegal(0bXXX)" string
 * rather than a panic, so checkers (rmbcheck, traceview) can print
 * counterexamples that *contain* bad codes.
 */
std::string statusName(std::uint8_t bits);

/** The Table-1 bit a source direction occupies in a status code. */
std::uint8_t dirBit(SourceDir d);

/**
 * One output port's status register with checked mutation: connecting
 * a second source is only legal in the make-before-break patterns
 * (below+straight or above+straight), and disconnect must leave a
 * legal code.  Violations panic, because they indicate a protocol
 * bug, not a user error.
 */
class StatusRegister
{
  public:
    std::uint8_t bits() const { return bits_; }
    PortStatus status() const { return PortStatus{bits_}; }

    bool unused() const { return bits_ == 0; }

    /** @return true if the given direction currently drives us. */
    bool receivesFrom(SourceDir d) const;

    /** Number of sources currently connected (0, 1 or 2). */
    int numSources() const;

    /** Connect @p d as a source; panics if the result is illegal. */
    void connect(SourceDir d);

    /** Disconnect @p d; panics if it was not connected. */
    void disconnect(SourceDir d);

    /** Force back to Unused (teardown). */
    void clear() { bits_ = 0; }

  private:
    std::uint8_t bits_ = 0;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_STATUS_REGISTER_HH
