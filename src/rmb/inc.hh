/**
 * @file
 * The interconnection network controller (INC) of one node.
 *
 * Each INC runs the odd/even cycle FSM off its own local clock and,
 * in every Moving phase, performs the downward make-before-break
 * moves of eligible virtual buses crossing its output gap (paper
 * sections 2.3-2.5).
 */

#ifndef RMB_RMB_INC_HH
#define RMB_RMB_INC_HH

#include <cstdint>
#include <vector>

#include "rmb/cycle_fsm.hh"
#include "rmb/types.hh"
#include "sim/types.hh"

namespace rmb {
namespace core {

class RmbNetwork;

/** One INC: compaction engine + cycle controller. */
class Inc
{
  public:
    /**
     * @param index position on the ring (also its output GapId)
     * @param period local clock period in ticks
     */
    Inc(std::uint32_t index, sim::Tick period)
        : index_(index), period_(period)
    {}

    std::uint32_t index() const { return index_; }
    sim::Tick period() const { return period_; }

    const CycleFsm &fsm() const { return fsm_; }

    /** Completed odd/even cycles (for Lemma 1 checks). */
    std::uint64_t cycleCount() const { return fsm_.cycleCount(); }

    /**
     * One local clock tick: poll neighbour flags, advance the cycle
     * FSM, and begin the Moving phase's datapath switches when it
     * starts.  Reschedules itself.
     */
    void tick(RmbNetwork &network);

    /** Schedule the first tick (called once by RmbNetwork). */
    void start(RmbNetwork &network);

  private:
    /**
     * Entering a Moving phase: execute the make step of every
     * eligible downward move at this INC's output gap, schedule the
     * break step half a period later, then raise ID.
     */
    void startMovingPhase(RmbNetwork &network);

    std::uint32_t index_;
    sim::Tick period_;
    CycleFsm fsm_;
    bool started_ = false;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_INC_HH
