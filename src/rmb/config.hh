/**
 * @file
 * Configuration of an RMB network instance.
 */

#ifndef RMB_RMB_CONFIG_HH
#define RMB_RMB_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rmb/types.hh"
#include "sim/types.hh"

namespace rmb {
namespace core {

/**
 * All tunables of the RMB simulation.  Defaults model a medium-sized
 * ring (paper section 1) with mildly asynchronous INC clocks.
 */
struct RmbConfig
{
    /** Number of nodes N on the ring. */
    std::uint32_t numNodes = 16;

    /** Number of physical bus segments k between adjacent INCs. */
    std::uint32_t numBuses = 4;

    /** Header flit propagation time across one gap. */
    sim::Tick headerHopDelay = 4;

    /** Ack (Hack/Dack/Fack/Nack) propagation time across one gap. */
    sim::Tick ackHopDelay = 2;

    /** Data flit time per gap (pipelined streaming). */
    sim::Tick flitDelay = 1;

    /**
     * Simulate every data flit individually with Dack-based sliding
     * window flow control (paper section 2.2's data flit
     * acknowledgement, "used for continuation of data flit
     * transmissions and may also be used for flow control").  When
     * false, streaming uses the equivalent closed-form pipeline
     * time; the flit_level tests prove the two agree whenever the
     * window does not throttle.
     */
    bool detailedFlits = false;

    /** Max unacknowledged data flits in flight (detailed mode). */
    std::uint32_t dackWindow = 8;

    /**
     * Local compaction-clock period bounds per INC; each INC draws a
     * fixed period uniformly from [min, max], modelling the paper's
     * independent clocks.  The make-before-break break step happens
     * half a period after the make step.
     */
    sim::Tick cyclePeriodMin = 6;
    sim::Tick cyclePeriodMax = 10;

    /** Output-level preference of an advancing header (see
     *  HeaderPolicy). */
    HeaderPolicy headerPolicy = HeaderPolicy::PreferLowest;

    /**
     * Concurrent sends / receives per PE.  1 each is the paper's
     * base interface; larger values model its section 2.1
     * "enhanced" interface (and exercise the top-bus recycling that
     * compaction provides).  A node still injects one header at a
     * time - its gap has a single top segment - so extra send ports
     * only pay off once compaction frees the top bus early.
     */
    std::uint32_t sendPorts = 1;
    std::uint32_t receivePorts = 1;

    /**
     * Behaviour of a header blocked at an intermediate INC.  The
     * default is NackRetry: Wait (hold the partial bus) can deadlock
     * once the ring is oversubscribed - a measurable finding of this
     * reproduction (see EXPERIMENTS.md) - while NackRetry matches
     * Theorem 1's "a request is provided if a segment is available"
     * reading and is deadlock free.
     */
    BlockingPolicy blocking = BlockingPolicy::NackRetry;

    /**
     * In Wait mode, tear down and retry if a header has been blocked
     * this long (0 disables the timeout).  A safety valve; section 2
     * of the paper argues blocking is rare once compaction runs.
     */
    sim::Tick headerTimeout = 0;

    /** Source retry backoff after a Nack: uniform in [min, max]. */
    sim::Tick retryBackoffMin = 8;
    sim::Tick retryBackoffMax = 32;

    /**
     * Double the backoff per consecutive retry of a message (capped
     * below); prevents retry livelock when the ring is heavily
     * oversubscribed.
     */
    bool exponentialBackoff = true;
    sim::Tick retryBackoffCap = 512;

    /** Upper bound on retries per message (0 = unlimited). */
    std::uint32_t maxRetries = 0;

    /**
     * Allow failSegment on an *occupied* segment: the occupying
     * virtual bus is severed, torn down hop by hop, and its message
     * re-queued through the Nack backoff machinery (see
     * docs/FAULTS.md).  When false (the default), faulting an
     * occupied segment is a hard configuration error - the
     * historical static-fault model, where faults are injected
     * before traffic starts.
     */
    bool transientFaults = false;

    /**
     * Mean ticks between fault injections by the built-in
     * FaultSchedule (0 disables the schedule).  Inter-fault gaps are
     * geometric with this mean, drawn from a dedicated
     * sim::Random::split substream so the fault process never
     * perturbs protocol randomness.  Requires transientFaults.
     */
    sim::Tick faultMtbf = 0;

    /**
     * Repair delay of a scheduled fault: uniform in
     * [faultMttrMin, faultMttrMax] ticks after injection.
     */
    sim::Tick faultMttrMin = 500;
    sim::Tick faultMttrMax = 2000;

    /**
     * Source-side watchdog: if a live virtual bus makes no protocol
     * progress for this many ticks (lost Hack/Dack/Fack after a
     * silent fault, or a Wait-mode deadlock), the source severs it
     * and retries the message.  0 disables the watchdog.  Must
     * comfortably exceed the longest legitimate quiet phase (e.g. a
     * full header round trip plus blocking time) or healthy buses
     * get severed; see docs/FAULTS.md for sizing.  Closed-form
     * streaming (detailedFlits=false) is exempt: its completion is a
     * single pre-scheduled event that cannot be lost.
     */
    sim::Tick watchdogTimeout = 0;

    /**
     * Master switch for the compaction protocol; disabling it is the
     * key ablation (the top bus is then the only injection resource
     * and never recycled until teardown).
     */
    bool enableCompaction = true;

    /**
     * Which backend executes this configuration (see EngineKind and
     * docs/ENGINE.md).  The kernel backend refuses configurations it
     * cannot model - validate() reports exactly which option to
     * change - rather than silently falling back to the event path.
     */
    EngineKind engine = EngineKind::Event;

    /** Invariant-checking level. */
    VerifyLevel verify = VerifyLevel::Cheap;

    /** Seed for all randomness (INC clock jitter, backoff). */
    std::uint64_t seed = 1;

    /**
     * Check the configuration for nonsense (k = 0, inverted period
     * or backoff ranges, a zero Dack window in detailed mode, ...).
     * @return one actionable message per problem found; an empty
     * vector means the configuration is valid.  RmbNetwork runs this
     * at construction and refuses (via fatal) to build from an
     * invalid config.
     */
    std::vector<std::string> validate() const;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_CONFIG_HH
