/**
 * @file
 * Occupancy of the N x k physical bus segments.
 *
 * Pure bookkeeping with checked invariants; the protocol logic in
 * RmbNetwork/Inc decides *what* to occupy or free, this class ensures
 * double-occupancy and double-free are impossible and tracks
 * per-segment utilization for the benches.
 */

#ifndef RMB_RMB_SEGMENT_TABLE_HH
#define RMB_RMB_SEGMENT_TABLE_HH

#include <cstdint>
#include <vector>

#include "rmb/types.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rmb {
namespace core {

/** Occupancy grid over (gap, level) with utilization tracking. */
class SegmentTable
{
  public:
    SegmentTable(std::uint32_t num_gaps, std::uint32_t num_levels);

    std::uint32_t numGaps() const { return numGaps_; }
    std::uint32_t numLevels() const { return numLevels_; }

    /**
     * Occupant of (gap, level); kNoBus when no virtual bus holds the
     * segment.  Faults are tracked separately (isFaulty): a faulted
     * segment may still report its occupant while the severed bus is
     * being torn down hop by hop.
     */
    VirtualBusId occupant(GapId gap, Level level) const;

    /** Usable and unclaimed: no occupant and not faulted. */
    bool
    isFree(GapId gap, Level level) const
    {
        return occupant(gap, level) == kNoBus &&
               !isFaulty(gap, level);
    }

    /** Claim a free segment for @p bus at time @p now. */
    void occupy(GapId gap, Level level, VirtualBusId bus,
                sim::Tick now);

    /** Release a segment owned by @p bus at time @p now. */
    void release(GapId gap, Level level, VirtualBusId bus,
                 sim::Tick now);

    /**
     * Disable a segment: fault injection for robustness
     * experiments.  The segment may be occupied - the occupying
     * virtual bus keeps ownership until the protocol tears it down -
     * but no new bus can claim it until clearFault.
     */
    void markFaulty(GapId gap, Level level, sim::Tick now);

    /** Repair a faulted segment; any occupant keeps ownership. */
    void clearFault(GapId gap, Level level, sim::Tick now);

    /** @return true if (gap, level) is currently fault-injected. */
    bool
    isFaulty(GapId gap, Level level) const
    {
        return faultMask_[index(gap, level)];
    }

    /** Number of currently fault-injected segments. */
    std::uint32_t faultyCount() const { return faulty_; }

    /** Number of free levels in @p gap. */
    std::uint32_t freeLevels(GapId gap) const;

    /** Lowest free level in @p gap, or kNoLevel if the gap is full. */
    Level lowestFree(GapId gap) const;

    /** Total currently-occupied segments. */
    std::uint64_t occupiedCount() const { return occupied_; }

    /** Time-weighted busy fraction of one segment over [0, now]. */
    double utilization(GapId gap, Level level, sim::Tick now) const;

    /** Mean busy fraction over all N*k segments. */
    double averageUtilization(sim::Tick now) const;

  private:
    std::size_t
    index(GapId gap, Level level) const;

    std::uint32_t numGaps_;
    std::uint32_t numLevels_;
    std::vector<VirtualBusId> grid_;
    /** Per-segment fault flag, orthogonal to occupancy. */
    std::vector<std::uint8_t> faultMask_;
    std::vector<sim::BusyTracker> busy_;
    std::uint64_t occupied_ = 0;
    std::uint32_t faulty_ = 0;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_SEGMENT_TABLE_HH
