/**
 * @file
 * The pure datapath rules of the RMB switch, tabulated from the
 * paper's Figures 6 and 7.
 *
 * Figure 6: input port l of an INC can drive output ports
 * {l-1, l, l+1} only (three cross points per output).  Figure 7: a
 * virtual bus hop may move one level down when the target segment is
 * free, both neighbouring hops sit within the reachable window of
 * the new level, and no adjacent hop is itself mid-move.
 *
 * Everything here is side-effect free and independent of the event
 * queue: RmbNetwork drives these predicates inside the simulation,
 * and the model checker (src/check/) drives the very same functions
 * while enumerating all reachable protocol states - keeping the two
 * from drifting apart is the point of this header.
 */

#ifndef RMB_RMB_COMPACTION_RULES_HH
#define RMB_RMB_COMPACTION_RULES_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "rmb/status_register.hh"
#include "rmb/types.hh"
#include "rmb/virtual_bus.hh"

namespace rmb {
namespace core {

/** Figure 6: may input level @p lin drive output level @p lout? */
inline bool
levelsReachable(Level lin, Level lout)
{
    return lin - lout <= 1 && lout - lin <= 1;
}

/**
 * Direction of input level @p lin as seen from output level @p lout;
 * panics unless the two are adjacent per Figure 6.
 */
inline SourceDir
sourceDirOf(Level lin, Level lout)
{
    if (lin == lout - 1)
        return SourceDir::Below;
    if (lin == lout)
        return SourceDir::Straight;
    if (lin == lout + 1)
        return SourceDir::Above;
    panic("input level ", lin, " not adjacent to output level ",
          lout);
}

/**
 * Output levels an advancing header can take from head hop @p head,
 * in the preference order of @p policy (section 2.2 + Figure 6).
 * Mid-move the hop settles at dualLevel = level-1, so only outputs
 * legal from *both* the old and the new input level may be taken,
 * which is exactly {level-1, level}.
 */
inline int
reachableOutputLevelsInto(const Hop &head, Level num_buses,
                          HeaderPolicy policy, Level (&out)[3])
{
    const bool lowest_first = policy == HeaderPolicy::PreferLowest;
    Level cand[3];
    int m = 0;
    if (head.inMove()) {
        if (lowest_first) {
            cand[m++] = head.level - 1;
            cand[m++] = head.level;
        } else {
            cand[m++] = head.level;
            cand[m++] = head.level - 1;
        }
    } else if (lowest_first) {
        cand[m++] = head.level - 1;
        cand[m++] = head.level;
        cand[m++] = head.level + 1;
    } else {
        cand[m++] = head.level;
        cand[m++] = head.level - 1;
        cand[m++] = head.level + 1;
    }
    int count = 0;
    for (int i = 0; i < m; ++i)
        if (cand[i] >= 0 && cand[i] < num_buses)
            out[count++] = cand[i];
    return count;
}

inline std::vector<Level>
reachableOutputLevels(const Hop &head, Level num_buses,
                      HeaderPolicy policy)
{
    Level out[3];
    const int count =
        reachableOutputLevelsInto(head, num_buses, policy, out);
    return std::vector<Level>(out, out + count);
}

/**
 * Which reading of the Figure-7 move rule to apply.  The simulator
 * always runs Figure7; IgnoreNeighbors exists so the model checker
 * (tools/rmbcheck --mutate move-ignore-neighbors) can demonstrate
 * that dropping the neighbour conditions lets a move sever a virtual
 * bus / produce codes Table 1 forbids.
 */
enum class MoveRuleVariant : std::uint8_t
{
    Figure7,         //!< full rule, as tabulated below
    IgnoreNeighbors, //!< skip the neighbour-hop window and
                     //!< mid-move checks (deliberately broken)
};

/**
 * Figure 7's eligibility of hop @p hop_index of @p bus for a
 * downward move, given segment availability through @p is_free
 * (callable as is_free(GapId, Level)).
 *
 * The four tabulated conditions: the hop is above level 0 and not
 * already mid-move; the segment one level down is free; both
 * neighbouring hops (when they exist) sit at level or level-1 and
 * are not themselves mid-move (the odd/even pairwise agreement
 * serializes adjacent moves).  Additionally no hop of a
 * tearing-down bus moves, and the head hop of an *advancing* bus
 * stays put: the header flit is mid-flight beyond it, and moving
 * the segment under the header would shrink its reachable output
 * set at the next INC ({l-1, l} instead of three levels) and
 * provoke needless aborts.  The paper compacts "the virtual bus
 * drawn behind" the header (section 2.2) - a *blocked* head hop
 * still moves so a waiting header can sink toward the lowest free
 * levels (Theorem 1).
 *
 * Templated on the bus type so every backend shares the one rule:
 * @p BusT needs `.state`, and `.hops` indexable to Hop-shaped
 * elements (RmbNetwork's deque-backed VirtualBus, the cycle kernel's
 * vector-backed pool slot, and the model checker's bus all qualify).
 */
template <typename BusT, typename IsFree>
bool
hopMovableRule(const BusT &bus, std::size_t hop_index,
               IsFree &&is_free,
               MoveRuleVariant variant = MoveRuleVariant::Figure7)
{
    if (isTeardown(bus.state))
        return false;
    const Hop &hop = bus.hops[hop_index];
    if (hop.inMove() || hop.level <= 0)
        return false;
    if (!is_free(hop.gap, hop.level - 1))
        return false;
    const bool check_neighbours =
        variant != MoveRuleVariant::IgnoreNeighbors;
    if (check_neighbours && hop_index > 0) {
        const Hop &prev = bus.hops[hop_index - 1];
        if (prev.inMove())
            return false;
        if (prev.level != hop.level && prev.level != hop.level - 1)
            return false;
    }
    if (hop_index + 1 < bus.hops.size()) {
        if (check_neighbours) {
            const Hop &next = bus.hops[hop_index + 1];
            if (next.inMove())
                return false;
            if (next.level != hop.level &&
                next.level != hop.level - 1)
                return false;
        }
    } else if (bus.state == BusState::Advancing) {
        return false;
    }
    return true;
}

} // namespace core
} // namespace rmb

#endif // RMB_RMB_COMPACTION_RULES_HH
