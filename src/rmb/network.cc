#include "rmb/network.hh"

#include <algorithm>

#include "common/logging.hh"
#include "rmb/compaction_rules.hh"
#include "rmb/fault.hh"

namespace rmb {
namespace core {

namespace {

/** User-input validation; must run before any member construction. */
const RmbConfig &
validated(const RmbConfig &config)
{
    return validatedEngineConfig(config);
}

} // namespace

RmbNetwork::RmbNetwork(sim::Simulator &simulator,
                       const RmbConfig &config)
    : Engine(simulator, "RMB(ring)", validated(config).numNodes),
      config_(config), rng_(config.seed),
      segments_(config.numNodes, config.numBuses),
      pes_(config.numNodes), waiters_(config.numNodes),
      rmbStats_(metrics())
{
    if (config_.numNodes % 2 != 0) {
        warn("odd node count: the odd/even INC marking of section"
             " 2.4 is imperfect on an odd ring (two adjacent INCs"
             " share a parity); the DES serialization keeps the"
             " protocol correct regardless");
    }

    incs_.reserve(config_.numNodes);
    for (std::uint32_t i = 0; i < config_.numNodes; ++i) {
        const sim::Tick period = rng_.uniformRange(
            config_.cyclePeriodMin, config_.cyclePeriodMax);
        incs_.push_back(std::make_unique<Inc>(i, period));
    }
    for (auto &inc : incs_)
        inc->start(*this);

    if (config_.faultMtbf > 0) {
        // The fault process draws from its own split substream so
        // enabling it never perturbs protocol randomness (INC
        // phases above, backoff jitter) for a given seed.
        faults_ = std::make_unique<FaultSchedule>(
            *this, sim::Random(config_.seed).split(kFaultStream));
        faults_->start();
    }
}

RmbNetwork::~RmbNetwork() = default;

const Inc &
RmbNetwork::leftOf(std::uint32_t i) const
{
    return *incs_[(i + config_.numNodes - 1) % config_.numNodes];
}

const Inc &
RmbNetwork::rightOf(std::uint32_t i) const
{
    return *incs_[(i + 1) % config_.numNodes];
}

const VirtualBus *
RmbNetwork::bus(VirtualBusId id) const
{
    rmb_assert(id != kNoBus && id < nextBusId_,
               "virtual bus id ", id, " was never allocated",
               " (ids run 1..", nextBusId_ - 1, ")");
    auto it = buses_.find(id);
    return it == buses_.end() ? nullptr : &it->second;
}

std::vector<VirtualBusId>
RmbNetwork::liveBusIds() const
{
    std::vector<VirtualBusId> ids;
    ids.reserve(buses_.size());
    for (const auto &[id, bus] : buses_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

VirtualBus &
RmbNetwork::busRef(VirtualBusId id)
{
    auto it = buses_.find(id);
    rmb_assert(it != buses_.end(), "no live bus with id ", id);
    return it->second;
}

obs::TraceEvent
RmbNetwork::busEvent(obs::EventKind kind, const VirtualBus &bus,
                     net::NodeId node, GapId gap, Level level) const
{
    obs::TraceEvent e;
    e.kind = kind;
    e.at = simulator().now();
    e.message = bus.message;
    e.bus = bus.id;
    e.node = node;
    e.gap = gap;
    e.level = level;
    return e;
}

net::MessageId
RmbNetwork::send(net::NodeId src, net::NodeId dst,
                 std::uint32_t payload_flits)
{
    net::Message &m = createMessage(src, dst, payload_flits);
    pes_[src].sendQueue.push_back(m.id);
    const net::MessageId id = m.id;
    simulator().schedule(0, [this, src] { tryInject(src); });
    return id;
}

MulticastId
RmbNetwork::multicast(net::NodeId src,
                      std::vector<net::NodeId> members,
                      std::uint32_t payload_flits)
{
    rmb_assert(!members.empty(), "multicast needs members");
    // The carrier's destination is the farthest member clockwise;
    // every other member taps the virtual bus as flits pass it.
    net::NodeId farthest = members.front();
    std::uint32_t max_dist = 0;
    for (net::NodeId member : members) {
        rmb_assert(member < config_.numNodes, "member out of range");
        rmb_assert(member != src, "the source cannot be a member");
        const std::uint32_t d =
            (member + config_.numNodes - src) % config_.numNodes;
        if (d > max_dist) {
            max_dist = d;
            farthest = member;
        }
    }
    const net::MessageId carrier =
        send(src, farthest, payload_flits);

    MulticastRecord record;
    record.id = multicasts_.size() + 1;
    record.carrier = carrier;
    record.src = src;
    record.members = std::move(members);
    record.deliveredAt.assign(record.members.size(), 0);
    multicasts_.push_back(std::move(record));
    carrierToMulticast_[carrier] = multicasts_.back().id;
    return multicasts_.back().id;
}

MulticastId
RmbNetwork::broadcast(net::NodeId src, std::uint32_t payload_flits)
{
    std::vector<net::NodeId> members;
    members.reserve(config_.numNodes - 1);
    for (net::NodeId i = 1; i < config_.numNodes; ++i)
        members.push_back(
            static_cast<net::NodeId>((src + i) % config_.numNodes));
    return multicast(src, std::move(members), payload_flits);
}

const MulticastRecord &
RmbNetwork::multicastRecord(MulticastId id) const
{
    rmb_assert(id != 0 && id <= multicasts_.size(),
               "unknown multicast id ", id, " (valid ids are 1..",
               multicasts_.size(), ")");
    return multicasts_[id - 1];
}

void
RmbNetwork::finishMulticast(net::MessageId carrier)
{
    auto it = carrierToMulticast_.find(carrier);
    if (it == carrierToMulticast_.end())
        return;
    MulticastRecord &record = multicasts_[it->second - 1];
    const net::Message &m = message(carrier);
    // Member j saw the last payload flit when the final flit passed
    // it: established + (payload + FF + distance) * flitDelay.
    for (std::size_t i = 0; i < record.members.size(); ++i) {
        const std::uint32_t d =
            (record.members[i] + config_.numNodes - record.src) %
            config_.numNodes;
        record.deliveredAt[i] =
            m.established +
            (static_cast<sim::Tick>(m.payloadFlits) + 1 + d) *
                config_.flitDelay;
        rmbStats_.multicastMemberLatency.add(static_cast<double>(
            record.deliveredAt[i] - m.created));
    }
    record.complete = true;
    ++rmbStats_.multicasts;
}

void
RmbNetwork::tryInject(net::NodeId node)
{
    Pe &pe = pes_[node];
    if (!pe.sendPortFree(config_.sendPorts) ||
        pe.sendQueue.empty()) {
        return;
    }
    if (simulator().now() < pe.backoffUntil)
        return;

    // Section 2.3: a new request may only be inserted at the top
    // output port; if it is busy the header flit stays buffered.
    const Level top = static_cast<Level>(config_.numBuses) - 1;
    const GapId gap = node;
    if (!segments_.isFree(gap, top))
        return;

    const net::MessageId mid = pe.sendQueue.front();
    pe.sendQueue.pop_front();
    pe.activeSends.push_back(mid);

    net::Message &m = messageRef(mid);
    if (m.state == net::MessageState::Queued)
        noteFirstAttempt(m);
    else
        noteRetry(m);

    const VirtualBusId bid = nextBusId_++;
    VirtualBus &bus = buses_[bid];
    bus.id = bid;
    bus.message = mid;
    bus.src = m.src;
    bus.dst = m.dst;
    bus.state = BusState::Advancing;
    bus.injectedAt = simulator().now();
    bus.headNode = (node + 1) % config_.numNodes;

    segments_.occupy(gap, top, bid, simulator().now());
    bus.hops.push_back(Hop{gap, top, kNoLevel, 0});
    rmbStats_.liveBuses.adjust(simulator().now(), +1);
    if (tracing())
        emitTrace(busEvent(obs::EventKind::HeaderHop, bus, node,
                           gap, top));

    simulator().schedule(config_.headerHopDelay,
                         [this, bid] { headerArrive(bid); });
    if (config_.watchdogTimeout > 0)
        armWatchdog(bid, bus.epoch);
    checkAfterMutation();
}

void
RmbNetwork::headerArrive(VirtualBusId bus_id)
{
    // A fault or watchdog sever may beat an in-flight header event:
    // the bus is then gone (short teardown) or in FaultTeardown.
    // Any other state mismatch is still a protocol bug.
    auto it = buses_.find(bus_id);
    if (it == buses_.end() ||
        it->second.state == BusState::FaultTeardown) {
        return;
    }
    VirtualBus &bus = it->second;
    rmb_assert(bus.state == BusState::Advancing,
               "header arrival on a non-advancing bus");
    const net::NodeId here = bus.headNode;
    if (here == bus.dst) {
        Pe &pe = pes_[here];
        if (pe.receivePortFree(config_.receivePorts)) {
            acceptAtDestination(bus);
        } else {
            // Destination busy: Nack travels back tearing the
            // virtual bus down; the source retries later.
            noteNack(messageRef(bus.message));
            startTeardown(bus, BusState::NackTeardown);
        }
        return;
    }
    tryAdvance(bus_id);
}

std::vector<Level>
RmbNetwork::reachableLevels(const VirtualBus &bus) const
{
    return reachableOutputLevels(bus.hops.back(),
                                 static_cast<Level>(config_.numBuses),
                                 config_.headerPolicy);
}

void
RmbNetwork::tryAdvance(VirtualBusId bus_id)
{
    VirtualBus &bus = busRef(bus_id);
    rmb_assert(bus.state == BusState::Advancing ||
                   bus.state == BusState::Blocked,
               "tryAdvance on a bus in state ",
               static_cast<int>(bus.state));
    const net::NodeId here = bus.headNode;
    const GapId gap = here;

    // Fault lookahead: prefer output levels from which the *next*
    // gap still has a live onward level.  Without this, eager
    // descent walks straight into a gap whose low levels are all
    // faulted - a deterministic trap (the level-0 header can only
    // reach the dead {0, 1}).  When every free level is a dead end,
    // fall back to the plain choice and let the blocking/abort
    // machinery handle it.
    const GapId next_gap = (here + 1) % config_.numNodes;
    const bool lookahead =
        segments_.faultyCount() > 0 && next_gap != bus.dst;
    const auto dead_end = [&](Level lin) {
        for (Level lout : {lin - 1, lin, lin + 1}) {
            if (lout < 0 ||
                lout >= static_cast<Level>(config_.numBuses))
                continue;
            if (!segments_.isFaulty(next_gap, lout))
                return false;
        }
        return true;
    };

    Level chosen = kNoLevel;
    Level fallback = kNoLevel;
    for (Level l : reachableLevels(bus)) {
        if (!segments_.isFree(gap, l))
            continue;
        if (fallback == kNoLevel)
            fallback = l;
        if (lookahead && dead_end(l))
            continue;
        chosen = l;
        break;
    }
    if (chosen == kNoLevel)
        chosen = fallback;

    if (chosen != kNoLevel) {
        if (bus.state == BusState::Blocked) {
            rmbStats_.blockedTime.add(static_cast<double>(
                simulator().now() - bus.blockedSince));
            auto &q = waiters_[gap];
            q.erase(std::remove(q.begin(), q.end(), bus_id),
                    q.end());
            bus.state = BusState::Advancing;
            if (tracing())
                emitTrace(busEvent(obs::EventKind::Unblock, bus,
                                   here, gap));
        }
        segments_.occupy(gap, chosen, bus_id, simulator().now());
        bus.hops.push_back(Hop{gap, chosen, kNoLevel, 0});
        bus.headNode = (here + 1) % config_.numNodes;
        ++bus.epoch;
        if (tracing())
            emitTrace(busEvent(obs::EventKind::HeaderHop, bus, here,
                               gap, chosen));
        simulator().schedule(
            config_.headerHopDelay,
            [this, bus_id] { headerArrive(bus_id); });
        checkAfterMutation();
        return;
    }

    // No reachable free segment at this gap.
    if (config_.blocking == BlockingPolicy::NackRetry) {
        ++rmbStats_.blockedAborts;
        if (tracing()) {
            obs::TraceEvent e =
                busEvent(obs::EventKind::Nack, bus, here, gap);
            e.a = obs::kNackNoSegment;
            emitTrace(e);
        }
        startTeardown(bus, BusState::NackTeardown);
        return;
    }
    if (bus.state != BusState::Blocked) {
        bus.state = BusState::Blocked;
        bus.blockedSince = simulator().now();
        ++bus.epoch;
        ++rmbStats_.blockedHeaders;
        if (tracing())
            emitTrace(busEvent(obs::EventKind::Block, bus, here,
                               gap));
        waiters_[gap].push_back(bus_id);
        if (config_.headerTimeout > 0) {
            const sim::Tick since = bus.blockedSince;
            simulator().schedule(
                config_.headerTimeout, [this, bus_id, since] {
                    onHeaderTimeout(bus_id, since);
                });
        }
        checkAfterMutation();
    }
}

void
RmbNetwork::onHeaderTimeout(VirtualBusId bus_id, sim::Tick since)
{
    auto it = buses_.find(bus_id);
    if (it == buses_.end())
        return;
    VirtualBus &bus = it->second;
    if (bus.state != BusState::Blocked || bus.blockedSince != since)
        return;
    ++rmbStats_.timeoutAborts;
    rmbStats_.blockedTime.add(
        static_cast<double>(simulator().now() - bus.blockedSince));
    auto &q = waiters_[bus.headNode];
    q.erase(std::remove(q.begin(), q.end(), bus_id), q.end());
    if (tracing()) {
        obs::TraceEvent e = busEvent(obs::EventKind::Nack, bus,
                                     bus.headNode, bus.headNode);
        e.a = obs::kNackTimeout;
        emitTrace(e);
    }
    startTeardown(bus, BusState::NackTeardown);
}

void
RmbNetwork::acceptAtDestination(VirtualBus &bus)
{
    Pe &pe = pes_[bus.dst];
    pe.activeReceives.push_back(bus.message);
    bus.state = BusState::AwaitHack;
    ++bus.epoch;
    const auto path =
        static_cast<sim::Tick>(bus.hops.size());
    rmb_assert(bus.hops.size() ==
                   bus.pathLength(config_.numNodes),
               "accepted bus spans ", bus.hops.size(),
               " gaps, expected ",
               bus.pathLength(config_.numNodes));
    const VirtualBusId bid = bus.id;
    simulator().schedule(path * config_.ackHopDelay,
                         [this, bid] { hackArriveAtSource(bid); });
}

void
RmbNetwork::hackArriveAtSource(VirtualBusId bus_id)
{
    auto it = buses_.find(bus_id);
    if (it == buses_.end() ||
        it->second.state == BusState::FaultTeardown) {
        return; // severed while the Hack travelled back
    }
    VirtualBus &bus = it->second;
    rmb_assert(bus.state == BusState::AwaitHack,
               "Hack arrived on a bus in state ",
               static_cast<int>(bus.state));
    bus.state = BusState::Streaming;
    ++bus.epoch;
    noteEstablished(messageRef(bus.message));
    noteCircuit(+1);

    if (config_.detailedFlits) {
        // Flit-by-flit with Dack window flow control; the first
        // flit leaves one flitDelay after the Hack.
        simulator().schedule(config_.flitDelay, [this, bus_id] {
            departFlit(bus_id, 0);
        });
        return;
    }

    // Closed-form pipelined streaming: the source emits payload+FF
    // flits one flitDelay apart; the last (final) flit drains
    // through hops.size() stages.
    const net::Message &m = message(bus.message);
    const auto path = static_cast<sim::Tick>(bus.hops.size());
    const sim::Tick duration =
        (static_cast<sim::Tick>(m.payloadFlits) + 1) *
            config_.flitDelay +
        path * config_.flitDelay;
    simulator().schedule(duration,
                         [this, bus_id] { finalFlitArrive(bus_id); });
}

void
RmbNetwork::departFlit(VirtualBusId bus_id, std::uint32_t seq)
{
    auto it = buses_.find(bus_id);
    if (it == buses_.end() ||
        it->second.state == BusState::FaultTeardown) {
        return; // severed; the pump died with the bus
    }
    VirtualBus &bus = it->second;
    rmb_assert(bus.state == BusState::Streaming,
               "flit departure on a non-streaming bus");
    rmb_assert(seq == bus.flitsSent, "flits must depart in order");
    const net::Message &m = message(bus.message);
    rmb_assert(seq <= m.payloadFlits, "flit sequence overrun");

    ++bus.flitsSent;
    ++bus.epoch;
    bus.lastFlitDepart = simulator().now();
    if (tracing()) {
        obs::TraceEvent e =
            busEvent(obs::EventKind::DataFlit, bus, bus.src);
        e.a = seq;
        emitTrace(e);
    }

    // The circuit is dedicated, so the flit pipelines across the
    // hops at one gap per flitDelay, undisturbed by compaction
    // (flits ride the virtual bus, not a fixed physical level).
    const auto path = static_cast<sim::Tick>(bus.hops.size());
    simulator().schedule(path * config_.flitDelay,
                         [this, bus_id, seq] {
                             flitArriveAtDst(bus_id, seq);
                         });

    if (seq == m.payloadFlits)
        return; // FF sent; the pump is done.

    // Send the next flit one flitDelay later if the Dack window
    // allows; otherwise stall until a Dack reopens it.
    if (bus.flitsSent - bus.flitsAcked < config_.dackWindow) {
        simulator().schedule(config_.flitDelay,
                             [this, bus_id, seq] {
                                 departFlit(bus_id, seq + 1);
                             });
    } else {
        bus.pumpStalled = true;
    }
}

void
RmbNetwork::flitArriveAtDst(VirtualBusId bus_id, std::uint32_t seq)
{
    auto it = buses_.find(bus_id);
    if (it == buses_.end() ||
        it->second.state == BusState::FaultTeardown) {
        return; // severed; in-flight flits are lost with the bus
    }
    VirtualBus &bus = it->second;
    rmb_assert(bus.state == BusState::Streaming,
               "flit arrival on a non-streaming bus");
    // The paper's contiguity guarantee: flits arrive in order and
    // gap-free.
    rmb_assert(seq == bus.flitsAtDst,
               "flit ", seq, " arrived out of order (expected ",
               bus.flitsAtDst, ")");
    rmb_assert(bus.flitsAtDst == 0 ||
                   simulator().now() >=
                       bus.lastFlitArrive + config_.flitDelay,
               "flits bunched closer than the pipeline rate");
    ++bus.flitsAtDst;
    ++bus.epoch;
    bus.lastFlitArrive = simulator().now();

    const net::Message &m = message(bus.message);
    if (seq == m.payloadFlits) {
        finalFlitArrive(bus_id);
        return;
    }
    // Dack returns along the virtual bus.
    const auto path = static_cast<sim::Tick>(bus.hops.size());
    simulator().schedule(path * config_.ackHopDelay,
                         [this, bus_id] {
                             dackArriveAtSource(bus_id);
                         });
}

void
RmbNetwork::dackArriveAtSource(VirtualBusId bus_id)
{
    auto it = buses_.find(bus_id);
    if (it == buses_.end())
        return; // bus already torn down (Dacks may trail the FF)
    VirtualBus &bus = it->second;
    if (bus.state == BusState::FaultTeardown)
        return; // severed mid-stream; the trailing Dack is void
    ++bus.flitsAcked;
    ++bus.epoch;
    ++rmbStats_.dacks;
    if (tracing()) {
        obs::TraceEvent e =
            busEvent(obs::EventKind::Dack, bus, bus.src);
        e.a = bus.flitsAcked;
        emitTrace(e);
    }
    if (bus.pumpStalled &&
        bus.flitsSent - bus.flitsAcked < config_.dackWindow) {
        bus.pumpStalled = false;
        const sim::Tick next_depart =
            bus.lastFlitDepart + config_.flitDelay;
        const sim::Tick now = simulator().now();
        const sim::Tick delay =
            next_depart > now ? next_depart - now : 0;
        const std::uint32_t seq = bus.flitsSent;
        simulator().schedule(delay, [this, bus_id, seq] {
            departFlit(bus_id, seq);
        });
    }
}

void
RmbNetwork::finalFlitArrive(VirtualBusId bus_id)
{
    auto it = buses_.find(bus_id);
    if (it == buses_.end() ||
        it->second.state == BusState::FaultTeardown) {
        return; // severed before the final flit could land
    }
    VirtualBus &bus = it->second;
    rmb_assert(bus.state == BusState::Streaming,
               "FF arrived on a non-streaming bus");
    noteDelivered(messageRef(bus.message),
                  static_cast<std::uint32_t>(bus.hops.size()));
    noteCircuit(-1);
    pes_[bus.dst].releaseReceive(bus.message);
    finishMulticast(bus.message);

    // Delivered despite at least one earlier sever: the recovery
    // path (teardown -> requeue -> retry) closed the loop.
    auto sev = severedAt_.find(bus.message);
    if (sev != severedAt_.end()) {
        ++rmbStats_.messagesRecovered;
        rmbStats_.recoveryLatency.add(
            static_cast<double>(simulator().now() - sev->second));
        rmbStats_.recoveryLatencyHist.add(
            simulator().now() - sev->second);
        if (tracing()) {
            obs::TraceEvent e = busEvent(
                obs::EventKind::MessageRecovered, bus, bus.dst);
            e.a = simulator().now() - sev->second;
            emitTrace(e);
        }
        severedAt_.erase(sev);
    }
    startTeardown(bus, BusState::FackTeardown);
}

void
RmbNetwork::startTeardown(VirtualBus &bus, BusState kind)
{
    rmb_assert(isTeardown(kind), "bad teardown kind");
    bus.state = kind;
    ++bus.epoch;
    if (tracing()) {
        obs::TraceEvent e = busEvent(obs::EventKind::Teardown, bus,
                                     bus.headNode);
        e.a = kind == BusState::FackTeardown   ? obs::kTeardownFack
              : kind == BusState::NackTeardown ? obs::kTeardownNack
                                               : obs::kTeardownFault;
        emitTrace(e);
    }
    const VirtualBusId bid = bus.id;
    simulator().schedule(config_.ackHopDelay,
                         [this, bid] { teardownStep(bid); });
}

void
RmbNetwork::teardownStep(VirtualBusId bus_id)
{
    VirtualBus &bus = busRef(bus_id);
    rmb_assert(isTeardown(bus.state), "teardown step on a live bus");
    rmb_assert(!bus.hops.empty(), "teardown of an empty bus");

    // The Fack/Nack just crossed the head-most remaining hop; the
    // INCs on both sides free its port(s).
    Hop hop = bus.hops.back();
    bus.hops.pop_back();
    ++bus.hopsFreed;
    ++bus.epoch;

    if (!bus.hops.empty()) {
        if (hop.inMove())
            releaseSegment(bus, hop.gap, hop.dualLevel,
                           obs::kFreeTeardown);
        releaseSegment(bus, hop.gap, hop.level, obs::kFreeTeardown);
        simulator().schedule(config_.ackHopDelay, [this, bus_id] {
            teardownStep(bus_id);
        });
        checkAfterMutation();
        return;
    }
    busFinished(bus_id, hop);
}

void
RmbNetwork::busFinished(VirtualBusId bus_id, const Hop &last_hop)
{
    // Retire the bus *before* releasing its final (source-gap)
    // segments: the release wakeups (blocked headers, pending
    // injections) must never observe a live bus with no hops.
    VirtualBus &bus = busRef(bus_id);
    const net::NodeId src = bus.src;
    const net::MessageId mid = bus.message;
    const BusState kind = bus.state;
    const sim::Tick injected_at = bus.injectedAt;
    const bool top_released = bus.topReleased;
    const sim::Tick now = simulator().now();
    rmb_assert(last_hop.gap == bus.srcGap(),
               "teardown must end at the source gap");
    rmbStats_.liveBuses.adjust(now, -1);
    buses_.erase(bus_id);

    Pe &pe = pes_[src];
    pe.releaseSend(mid);

    // Retry bookkeeping precedes the wakeups so the backoff window
    // is in place when segmentFreed pokes the source PE.  A
    // fault-severed bus rides the same requeue path as a Nacked one.
    if (kind == BusState::NackTeardown ||
        kind == BusState::FaultTeardown) {
        net::Message &m = messageRef(mid);
        if (config_.maxRetries > 0 &&
            m.retries >= config_.maxRetries) {
            noteFailed(m);
            auto sev = severedAt_.find(mid);
            if (sev != severedAt_.end()) {
                ++rmbStats_.messagesLost;
                severedAt_.erase(sev);
            }
        } else {
            pe.sendQueue.push_front(mid);
            scheduleRetry(src, mid);
        }
    }

    const Level top = static_cast<Level>(config_.numBuses) - 1;
    if (!top_released && last_hop.level == top) {
        rmbStats_.topReleaseLatency.add(
            static_cast<double>(now - injected_at));
    }
    // The bus record is already gone, so the SegmentFree events are
    // assembled from the captured ids rather than via busEvent().
    const auto lastFree = [&](GapId gap, Level level) {
        segments_.release(gap, level, bus_id, now);
        if (tracing()) {
            obs::TraceEvent e;
            e.kind = obs::EventKind::SegmentFree;
            e.at = now;
            e.message = mid;
            e.bus = bus_id;
            e.node = gap;
            e.gap = gap;
            e.level = level;
            e.a = obs::kFreeTeardown;
            emitTrace(e);
        }
        if (!segments_.isFaulty(gap, level))
            segmentFreed(gap, level);
    };
    if (last_hop.inMove())
        lastFree(last_hop.gap, last_hop.dualLevel);
    lastFree(last_hop.gap, last_hop.level);
    tryInject(src);
    checkAfterMutation();
}

void
RmbNetwork::scheduleRetry(net::NodeId node, net::MessageId msg)
{
    sim::Tick backoff = rng_.uniformRange(
        config_.retryBackoffMin, config_.retryBackoffMax);
    if (config_.exponentialBackoff) {
        const std::uint32_t shift =
            std::min(message(msg).retries, 16u);
        if ((backoff << shift) >= config_.retryBackoffCap) {
            // Keep the jitter when capping: a deterministic capped
            // backoff phase-locks colliding senders into permanent
            // livelock.
            backoff = rng_.uniformRange(config_.retryBackoffCap / 2,
                                        config_.retryBackoffCap);
        } else {
            backoff <<= shift;
        }
    }
    Pe &pe = pes_[node];
    pe.backoffUntil = simulator().now() + backoff;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Backoff;
        e.at = simulator().now();
        e.message = msg;
        e.node = node;
        e.a = backoff;
        emitTrace(e);
    }
    simulator().schedule(backoff, [this, node] { tryInject(node); });
}

void
RmbNetwork::noteSegmentFree(const VirtualBus &bus, GapId gap,
                            Level level,
                            obs::SegmentFreeReason reason)
{
    if (!tracing())
        return;
    obs::TraceEvent e = busEvent(obs::EventKind::SegmentFree, bus,
                                 gap, gap, level);
    e.a = reason;
    emitTrace(e);
}

void
RmbNetwork::releaseSegment(VirtualBus &bus, GapId gap, Level level,
                           obs::SegmentFreeReason reason)
{
    segments_.release(gap, level, bus.id, simulator().now());
    noteSegmentFree(bus, gap, level, reason);
    if (!bus.topReleased && gap == bus.srcGap() &&
        level == static_cast<Level>(config_.numBuses) - 1) {
        bus.topReleased = true;
        rmbStats_.topReleaseLatency.add(
            static_cast<double>(simulator().now() - bus.injectedAt));
    }
    // A faulted segment is released (the severed owner lets go of
    // it) but not *freed*: nobody may claim it until repair.
    if (!segments_.isFaulty(gap, level))
        segmentFreed(gap, level);
}

void
RmbNetwork::segmentFreed(GapId gap, Level level)
{
    // Wake blocked headers waiting at this gap (FIFO order).  A
    // snapshot is used because tryAdvance edits the deque.
    if (!waiters_[gap].empty()) {
        std::vector<VirtualBusId> snapshot(waiters_[gap].begin(),
                                           waiters_[gap].end());
        for (VirtualBusId bid : snapshot) {
            auto it = buses_.find(bid);
            if (it == buses_.end())
                continue;
            if (it->second.state != BusState::Blocked)
                continue;
            if (!segments_.isFree(gap, level))
                break; // the freed segment was taken
            tryAdvance(bid);
        }
    }
    // A freed top segment lets the local PE inject a queued request.
    if (level == static_cast<Level>(config_.numBuses) - 1)
        tryInject(gap);
}

// ----------------------------------------------------------------
// Compaction (called from Inc)
// ----------------------------------------------------------------

bool
RmbNetwork::hopMovable(const VirtualBus &bus,
                       std::size_t hop_index) const
{
    // Figure 7, via the shared pure rule the model checker also
    // drives (rmb/compaction_rules.hh).
    return hopMovableRule(bus, hop_index,
                          [this](GapId gap, Level level) {
                              return segments_.isFree(gap, level);
                          });
}

std::vector<RmbNetwork::MoveRecord>
RmbNetwork::makeEligibleMoves(GapId gap, int parity)
{
    std::vector<MoveRecord> out;
    const auto k = static_cast<Level>(config_.numBuses);
    for (Level l = 1; l < k; ++l) {
        if ((l % 2) != parity)
            continue;
        const VirtualBusId bid = segments_.occupant(gap, l);
        if (bid == kNoBus)
            continue;
        auto it = buses_.find(bid);
        rmb_assert(it != buses_.end(),
                   "segment held by a dead bus");
        VirtualBus &bus = it->second;
        // Locate the hop crossing this gap.
        const auto idx = static_cast<std::size_t>(
            (gap + config_.numNodes - bus.srcGap()) %
            config_.numNodes);
        if (idx >= bus.hops.size())
            continue; // freed region of a tearing-down bus
        Hop &hop = bus.hops[idx];
        rmb_assert(hop.gap == gap, "hop/gap bookkeeping mismatch");
        if (hop.level != l)
            continue; // l is the dual target of a move in progress
        if (!hopMovable(bus, idx))
            continue;
        // Make step: claim the lower segment; both segments carry
        // the signal until the break step.
        segments_.occupy(gap, l - 1, bid, simulator().now());
        hop.dualLevel = l - 1;
        ++hop.moveSeq;
        if (tracing()) {
            obs::TraceEvent e = busEvent(
                obs::EventKind::CompactionMake, bus, gap, gap, l);
            e.a = static_cast<std::uint64_t>(l - 1);
            e.b = hop.moveSeq;
            emitTrace(e);
        }
        out.push_back(MoveRecord{bid, gap, l, l - 1});
    }
    if (!out.empty())
        checkAfterMutation();
    return out;
}

void
RmbNetwork::breakMoves(const std::vector<MoveRecord> &records)
{
    for (const MoveRecord &r : records) {
        auto it = buses_.find(r.bus);
        if (it == buses_.end())
            continue; // torn down since the make step
        VirtualBus &bus = it->second;
        const auto idx = static_cast<std::size_t>(
            (r.gap + config_.numNodes - bus.srcGap()) %
            config_.numNodes);
        if (idx >= bus.hops.size())
            continue; // hop already freed by a travelling ack
        Hop &hop = bus.hops[idx];
        if (!hop.inMove() || hop.dualLevel != r.toLevel ||
            hop.level != r.fromLevel) {
            continue; // stale record
        }
        if (segments_.isFaulty(r.gap, r.toLevel)) {
            // The target faulted between make and break; the sever
            // path cancels such moves at injection time, but refuse
            // here too so a break can never commit onto a dead
            // segment.
            continue;
        }
        hop.level = r.toLevel;
        hop.dualLevel = kNoLevel;
        ++rmbStats_.compactionMoves;
        if (tracing()) {
            obs::TraceEvent e =
                busEvent(obs::EventKind::CompactionBreak, bus,
                         r.gap, r.gap, r.toLevel);
            e.a = static_cast<std::uint64_t>(r.fromLevel);
            emitTrace(e);
        }
        releaseSegment(bus, r.gap, r.fromLevel,
                       obs::kFreeCompaction);

        // A blocked header whose input hop just moved down may now
        // reach a lower (free) output level.
        auto it2 = buses_.find(r.bus);
        if (it2 != buses_.end() &&
            it2->second.state == BusState::Blocked &&
            idx + 1 == it2->second.hops.size()) {
            tryAdvance(r.bus);
        }
    }
    checkAfterMutation();
}

void
RmbNetwork::failSegment(GapId gap, Level level)
{
    const VirtualBusId occupant = segments_.occupant(gap, level);
    if (occupant != kNoBus && !config_.transientFaults) {
        panic("failSegment(", gap, ",", level, "): can only fault a"
              " free segment while transient faults are disabled,"
              " and level ", level, " of gap ", gap,
              " is held by virtual bus ", occupant,
              "; set RmbConfig::transientFaults to sever live"
              " buses");
    }
    segments_.markFaulty(gap, level, simulator().now());
    ++rmbStats_.faultsInjected;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::SegmentFail;
        e.at = simulator().now();
        e.node = gap;
        e.gap = gap;
        e.level = level;
        e.a = occupant;
        emitTrace(e);
    }
    if (occupant != kNoBus)
        severOccupant(gap, level, occupant);
    checkAfterMutation();
}

void
RmbNetwork::repairSegment(GapId gap, Level level)
{
    segments_.clearFault(gap, level, simulator().now());
    ++rmbStats_.faultsRepaired;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::SegmentRepair;
        e.at = simulator().now();
        e.node = gap;
        e.gap = gap;
        e.level = level;
        emitTrace(e);
    }
    // A severed occupant may still be walking its teardown across
    // this segment; then the wakeups happen at its release instead.
    if (segments_.isFree(gap, level))
        segmentFreed(gap, level);
    checkAfterMutation();
}

void
RmbNetwork::severOccupant(GapId gap, Level level,
                          VirtualBusId bus_id)
{
    VirtualBus &bus = busRef(bus_id);
    if (isTeardown(bus.state))
        return; // the walking Fack/Nack will release it anyway

    const auto idx = static_cast<std::size_t>(
        (gap + config_.numNodes - bus.srcGap()) % config_.numNodes);
    rmb_assert(idx < bus.hops.size(),
               "faulted segment held by a hop out of range");
    Hop &hop = bus.hops[idx];
    rmb_assert(hop.gap == gap, "hop/gap bookkeeping mismatch");

    if (hop.inMove() && level == hop.dualLevel) {
        // The fault hit the make-before-break *target* before the
        // break step: cancel the move and stay on the (live) old
        // level.  The pending break record goes stale via inMove().
        segments_.release(gap, level, bus_id, simulator().now());
        noteSegmentFree(bus, gap, level, obs::kFreeMoveCancel);
        hop.dualLevel = kNoLevel;
        return;
    }
    if (hop.inMove() && level == hop.level) {
        // The fault hit the *old* level mid-move: make-before-break
        // means the lower segment already carries the signal, so
        // complete the move early instead of severing.
        segments_.release(gap, level, bus_id, simulator().now());
        noteSegmentFree(bus, gap, level, obs::kFreeMoveCancel);
        hop.level = hop.dualLevel;
        hop.dualLevel = kNoLevel;
        ++rmbStats_.compactionMoves;
        return;
    }
    rmb_assert(level == hop.level,
               "faulted segment not part of its occupant's hop");
    severBus(bus, obs::kSeverFault);
}

void
RmbNetwork::severBus(VirtualBus &bus, std::uint64_t reason)
{
    rmb_assert(!isTeardown(bus.state),
               "sever of a bus already tearing down");
    const sim::Tick now = simulator().now();

    switch (bus.state) {
      case BusState::Blocked: {
        rmbStats_.blockedTime.add(
            static_cast<double>(now - bus.blockedSince));
        auto &q = waiters_[bus.headNode];
        q.erase(std::remove(q.begin(), q.end(), bus.id), q.end());
        break;
      }
      case BusState::AwaitHack:
        pes_[bus.dst].releaseReceive(bus.message);
        break;
      case BusState::Streaming:
        pes_[bus.dst].releaseReceive(bus.message);
        noteCircuit(-1);
        // The re-injected header starts a fresh circuit; in-flight
        // flit/Dack events die against the FaultTeardown guards.
        messageRef(bus.message).state = net::MessageState::Setup;
        break;
      default:
        break; // Advancing: the in-flight header event goes stale
    }

    ++rmbStats_.busesSevered;
    severedAt_.emplace(bus.message, now); // keeps the first sever
    if (tracing()) {
        obs::TraceEvent e = busEvent(obs::EventKind::BusSevered,
                                     bus, bus.headNode);
        e.a = reason;
        emitTrace(e);
    }
    startTeardown(bus, BusState::FaultTeardown);
}

void
RmbNetwork::armWatchdog(VirtualBusId bus_id, std::uint64_t epoch)
{
    simulator().schedule(config_.watchdogTimeout,
                         [this, bus_id, epoch] {
                             watchdogCheck(bus_id, epoch);
                         });
}

void
RmbNetwork::watchdogCheck(VirtualBusId bus_id, std::uint64_t epoch)
{
    auto it = buses_.find(bus_id);
    if (it == buses_.end())
        return; // retired; the watchdog dies with the bus
    VirtualBus &bus = it->second;
    // Teardowns are self-driving, and closed-form streaming is one
    // pre-scheduled event that cannot be lost - neither counts as
    // "silent".
    const bool exempt =
        isTeardown(bus.state) ||
        (bus.state == BusState::Streaming && !config_.detailedFlits);
    if (bus.epoch != epoch || exempt) {
        armWatchdog(bus_id, bus.epoch);
        return;
    }
    ++rmbStats_.watchdogFires;
    if (tracing()) {
        obs::TraceEvent e = busEvent(obs::EventKind::WatchdogFire,
                                     bus, bus.src);
        e.a = epoch;
        emitTrace(e);
    }
    severBus(bus, obs::kSeverWatchdog);
    checkAfterMutation();
}

void
RmbNetwork::noteCycleFlip(std::uint32_t inc_index)
{
    ++rmbStats_.cycleFlips;
    const std::uint64_t mine = incs_[inc_index]->cycleCount();
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::CycleFlip;
        e.at = simulator().now();
        e.node = inc_index;
        e.gap = inc_index;
        e.a = mine;
        emitTrace(e);
    }
    for (const Inc *nb : {&leftOf(inc_index), &rightOf(inc_index)}) {
        const std::uint64_t theirs = nb->cycleCount();
        const std::uint64_t skew =
            mine > theirs ? mine - theirs : theirs - mine;
        if (skew > rmbStats_.maxCycleSkew)
            rmbStats_.maxCycleSkew = skew;
        if (config_.verify != VerifyLevel::Off) {
            rmb_assert(skew <= 1, "Lemma 1 violated: INC ",
                       inc_index, " at cycle ", mine, ", neighbour ",
                       nb->index(), " at ", theirs);
        }
    }
}

// ----------------------------------------------------------------
// Derived status registers and invariant auditing
// ----------------------------------------------------------------

std::uint8_t
RmbNetwork::outputStatus(net::NodeId node, Level level,
                         bool *pe_driven) const
{
    if (pe_driven)
        *pe_driven = false;
    const VirtualBusId bid = segments_.occupant(node, level);
    if (bid == kNoBus)
        return 0b000;
    const VirtualBus *b = bus(bid);
    rmb_assert(b, "segment held by a dead bus");
    const auto idx = static_cast<std::size_t>(
        (node + config_.numNodes - b->srcGap()) % config_.numNodes);
    rmb_assert(idx < b->hops.size(), "occupant hop out of range");

    if (idx == 0) {
        // Source hop: the PE write port drives this output; Table 1
        // does not model PE sources.
        if (pe_driven)
            *pe_driven = true;
        return 0b000;
    }

    const Hop &prev = b->hops[idx - 1];
    StatusRegister reg;
    if (prev.inMove()) {
        // Input mid-move: both the old and the new input level drive
        // this output (the documented 011/110 dual codes).
        reg.connect(sourceDirOf(prev.level, level));
        reg.connect(sourceDirOf(prev.dualLevel, level));
    } else {
        reg.connect(sourceDirOf(prev.level, level));
    }
    return reg.bits();
}

void
RmbNetwork::checkAfterMutation() const
{
    if (config_.verify == VerifyLevel::Full)
        auditInvariants();
}

void
RmbNetwork::auditInvariants() const
{
    const auto n = config_.numNodes;
    const auto k = static_cast<Level>(config_.numBuses);

    // Every hop's claim must match the grid, and vice versa.
    std::uint64_t claimed = 0;
    for (const auto &[id, bus] : buses_) {
        rmb_assert(!bus.hops.empty(), "live bus ", id,
                   " with no hops");
        rmb_assert(bus.hops.size() + bus.hopsFreed <=
                       bus.pathLength(n),
                   "bus ", id, " longer than its path");
        for (std::size_t i = 0; i < bus.hops.size(); ++i) {
            const Hop &hop = bus.hops[i];
            rmb_assert(hop.gap ==
                           (bus.srcGap() + i) % n,
                       "bus ", id, " hop ", i, " at wrong gap");
            rmb_assert(hop.level >= 0 && hop.level < k,
                       "bus ", id, " level out of range");
            rmb_assert(segments_.occupant(hop.gap, hop.level) == id,
                       "grid does not record bus ", id, " at (",
                       hop.gap, ",", hop.level, ")");
            ++claimed;
            if (hop.inMove()) {
                rmb_assert(hop.dualLevel == hop.level - 1,
                           "moves must go exactly one level down");
                rmb_assert(segments_.occupant(hop.gap,
                                              hop.dualLevel) == id,
                           "dual segment not recorded");
                ++claimed;
            }
            if (i > 0) {
                const Hop &prev = bus.hops[i - 1];
                rmb_assert(!(prev.inMove() && hop.inMove()),
                           "adjacent hops of bus ", id,
                           " moving concurrently");
                // Electrical connectivity: every live level pair of
                // adjacent hops must be within one level.
                for (Level a : {prev.level, prev.dualLevel}) {
                    if (a == kNoLevel)
                        continue;
                    for (Level b : {hop.level, hop.dualLevel}) {
                        if (b == kNoLevel)
                            continue;
                        rmb_assert(a - b <= 1 && b - a <= 1,
                                   "bus ", id, " kinked at gap ",
                                   hop.gap, ": levels ", a, " -> ",
                                   b);
                    }
                }
            }
        }
        // Circuit-complete states must span the whole path.
        if (bus.state == BusState::AwaitHack ||
            bus.state == BusState::Streaming) {
            rmb_assert(bus.hops.size() == bus.pathLength(n),
                       "established bus ", id,
                       " does not span its path");
        }
        if (bus.state == BusState::Blocked) {
            const auto &q = waiters_[bus.headNode];
            rmb_assert(std::find(q.begin(), q.end(), id) != q.end(),
                       "blocked bus ", id, " missing from waiter"
                       " list");
        }
    }
    // occupiedCount() counts bus-owned cells only; faulted cells
    // are tracked separately by faultyCount().
    rmb_assert(claimed == segments_.occupiedCount(),
               "grid claims ", segments_.occupiedCount(),
               " segments but buses own ", claimed, " (plus ",
               segments_.faultyCount(), " faulted)");

    // Fault/occupancy consistency: the fault-mask count adds up, a
    // faulted segment never reads as free, and any bus still holding
    // one must be tearing down (failSegment severs the occupant
    // synchronously; only the walking teardown may linger).
    std::uint32_t faulted_seen = 0;
    for (GapId g = 0; g < n; ++g) {
        for (Level l = 0; l < k; ++l) {
            if (!segments_.isFaulty(g, l))
                continue;
            ++faulted_seen;
            rmb_assert(!segments_.isFree(g, l),
                       "faulted segment (", g, ",", l,
                       ") reads as free");
            const VirtualBusId bid = segments_.occupant(g, l);
            if (bid == kNoBus)
                continue;
            auto owner = buses_.find(bid);
            rmb_assert(owner != buses_.end(),
                       "faulted segment (", g, ",", l,
                       ") held by dead bus ", bid);
            rmb_assert(isTeardown(owner->second.state),
                       "bus ", bid, " holds faulted segment (", g,
                       ",", l, ") but is not tearing down (state ",
                       static_cast<int>(owner->second.state), ")");
        }
    }
    rmb_assert(faulted_seen == segments_.faultyCount(),
               "fault mask shows ", faulted_seen,
               " faulted segments but the table counts ",
               segments_.faultyCount());

    // Derived Table-1 codes must all be legal (outputStatus panics
    // internally if not).
    for (net::NodeId node = 0; node < n; ++node)
        for (Level l = 0; l < k; ++l)
            (void)outputStatus(node, l);
}

} // namespace core
} // namespace rmb
