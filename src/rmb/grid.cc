#include "rmb/grid.hh"

#include "common/logging.hh"

namespace rmb {
namespace core {

namespace {

net::NodeId
product(const std::vector<std::uint32_t> &dims)
{
    if (dims.empty())
        fatal("grid needs at least one dimension");
    std::uint64_t n = 1;
    for (const std::uint32_t d : dims) {
        if (d < 2)
            fatal("grid needs width and height (every extent)"
                  " >= 2, got ", d);
        n *= d;
        if (n > (1u << 24))
            fatal("grid too large");
    }
    return static_cast<net::NodeId>(n);
}

} // namespace

RmbGridNetwork::RmbGridNetwork(sim::Simulator &simulator,
                               std::vector<std::uint32_t> dims,
                               const RmbConfig &config,
                               std::string name)
    : net::Network(simulator, std::move(name), product(dims)),
      dims_(std::move(dims)), ringConfig_(config)
{
    stride_.resize(dims_.size());
    std::uint32_t s = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        stride_[d] = s;
        s *= dims_[d];
    }

    rings_.resize(dims_.size());
    pending_.resize(dims_.size());
    for (std::uint32_t d = 0; d < dims_.size(); ++d) {
        const std::uint32_t num_rings = numNodes() / dims_[d];
        pending_[d].resize(num_rings);
        for (std::uint32_t ring = 0; ring < num_rings; ++ring) {
            RmbConfig cfg = ringConfig_;
            cfg.numNodes = dims_[d];
            cfg.seed = ringConfig_.seed * 7919 +
                       d * 104729 + ring;
            rings_[d].push_back(
                std::make_unique<RmbNetwork>(simulator, cfg));
            rings_[d][ring]->setDeliveryCallback(
                [this, d, ring](const net::Message &pm) {
                    onLegDelivered(d, ring, pm);
                });
        }
    }
}

std::uint32_t
RmbGridNetwork::coordinate(net::NodeId node, std::uint32_t d) const
{
    return (node / stride_[d]) % dims_[d];
}

std::uint32_t
RmbGridNetwork::ringIndex(std::uint32_t d, net::NodeId node) const
{
    // The node id with coordinate d removed.
    const std::uint32_t low = node % stride_[d];
    const std::uint32_t high =
        node / (stride_[d] * dims_[d]);
    return low + high * stride_[d];
}

const RmbNetwork &
RmbGridNetwork::lineRing(std::uint32_t d, net::NodeId node) const
{
    rmb_assert(d < dims_.size(), "dimension out of range");
    rmb_assert(node < numNodes(), "node out of range");
    return *rings_[d][ringIndex(d, node)];
}

net::MessageId
RmbGridNetwork::send(net::NodeId src, net::NodeId dst,
                     std::uint32_t payload_flits)
{
    net::Message &m = createMessage(src, dst, payload_flits);
    noteFirstAttempt(m);

    std::uint32_t differing = 0;
    for (std::uint32_t d = 0; d < dims_.size(); ++d)
        differing += coordinate(src, d) != coordinate(dst, d);
    rmb_assert(differing > 0, "self-messages are rejected earlier");
    if (differing > 1)
        ++multiLeg_;

    Pending pending;
    pending.ours = m.id;
    pending.dst = dst;
    pending.at = src;
    launchLeg(pending, 0);
    return m.id;
}

void
RmbGridNetwork::launchLeg(Pending pending, std::uint32_t from_dim)
{
    for (std::uint32_t d = from_dim; d < dims_.size(); ++d) {
        const std::uint32_t here = coordinate(pending.at, d);
        const std::uint32_t there = coordinate(pending.dst, d);
        if (here == there)
            continue;
        const std::uint32_t ring = ringIndex(d, pending.at);
        const net::Message &m = message(pending.ours);
        const net::MessageId leg =
            rings_[d][ring]->send(here, there, m.payloadFlits);
        // Position after this leg: coordinate d corrected.
        pending.at =
            pending.at - here * stride_[d] + there * stride_[d];
        pending.nextDim = d + 1;
        pending_[d][ring][leg] = pending;
        return;
    }
    panic("launchLeg found no differing coordinate");
}

void
RmbGridNetwork::onLegDelivered(std::uint32_t d, std::uint32_t ring,
                               const net::Message &pm)
{
    auto it = pending_[d][ring].find(pm.id);
    rmb_assert(it != pending_[d][ring].end(),
               "ring delivered an unmapped message");
    Pending pending = it->second;
    pending_[d][ring].erase(it);

    net::Message &m = messageRef(pending.ours);
    m.nacks += pm.nacks;
    m.retries += pm.retries;
    stats_.nacks += pm.nacks;
    stats_.retries += pm.retries;
    pending.hops +=
        (pm.dst + dims_[d] - pm.src) % dims_[d];

    for (std::uint32_t next = pending.nextDim;
         next < dims_.size(); ++next) {
        if (coordinate(pending.at, next) !=
            coordinate(pending.dst, next)) {
            launchLeg(pending, next);
            return;
        }
    }
    finish(pending, pm);
}

void
RmbGridNetwork::finish(Pending &pending,
                       const net::Message &last_leg)
{
    net::Message &m = messageRef(pending.ours);
    rmb_assert(pending.at == pending.dst,
               "message finished away from its destination");
    m.established = last_leg.established;
    stats_.setupLatency.add(
        static_cast<double>(m.established - m.firstAttempt));
    noteDelivered(m, pending.hops);
}

std::uint64_t
RmbGridNetwork::totalCompactionMoves() const
{
    std::uint64_t total = 0;
    for (const auto &dimension : rings_)
        for (const auto &ring : dimension)
            total += ring->rmbStats().compactionMoves;
    return total;
}

} // namespace core
} // namespace rmb
