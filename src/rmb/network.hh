/**
 * @file
 * RmbNetwork: the public entry point to the reconfigurable multiple
 * bus simulation.
 *
 * Assembles N INCs and PEs around the N x k segment grid and runs the
 * full protocol of paper section 2: top-bus injection, header
 * propagation with Hack/Nack, pipelined data streaming, Fack
 * teardown, and the systolic compaction that continuously moves
 * virtual buses to the lowest free segments.
 */

#ifndef RMB_RMB_NETWORK_HH
#define RMB_RMB_NETWORK_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "netbase/network.hh"
#include "obs/metrics.hh"
#include "rmb/config.hh"
#include "rmb/engine.hh"
#include "rmb/inc.hh"
#include "rmb/pe.hh"
#include "rmb/segment_table.hh"
#include "rmb/status_register.hh"
#include "rmb/types.hh"
#include "rmb/virtual_bus.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace rmb {
namespace core {

class FaultSchedule;

/** Id of a multicast/broadcast group (1-based, per network). */
using MulticastId = std::uint64_t;

/**
 * One multicast (or broadcast) delivery: a single virtual bus spans
 * from the source to the farthest member; the other members tap the
 * bus as the flits stream past (the paper's section-1 extension,
 * using the section-2.1 "enhanced" PE interface so taps do not
 * occupy receive ports).
 */
struct MulticastRecord
{
    MulticastId id = 0;
    net::MessageId carrier = net::kNoMessage;
    net::NodeId src = 0;
    /** Member nodes (excludes the source). */
    std::vector<net::NodeId> members;
    /** Tick each member saw the final payload flit; parallel to
     *  members, 0 until the group completes. */
    std::vector<sim::Tick> deliveredAt;
    bool complete = false;
};

/**
 * The RMB network: the reference discrete-event engine.  See
 * RmbConfig for tunables, core::Engine for the backend contract
 * shared with the cycle kernel, and net::Network for the send/stats
 * interface shared with the baselines.
 */
class RmbNetwork : public Engine
{
  public:
    RmbNetwork(sim::Simulator &simulator, const RmbConfig &config);
    ~RmbNetwork() override;

    net::MessageId send(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload_flits) override;

    /**
     * Deliver @p payload_flits to every node in @p members over one
     * virtual bus spanning to the farthest member (clockwise);
     * intermediate members snoop the passing flits.
     * @return a group id for multicastRecord().
     */
    MulticastId multicast(net::NodeId src,
                          std::vector<net::NodeId> members,
                          std::uint32_t payload_flits);

    /** Multicast to every other node (full-ring virtual bus). */
    MulticastId broadcast(net::NodeId src,
                          std::uint32_t payload_flits);

    /**
     * Look up a multicast group's record; panics with the offending
     * id if no such group was ever created.
     */
    const MulticastRecord &multicastRecord(MulticastId id) const;

    const RmbConfig &
    config() const override
    {
        return config_;
    }
    const RmbStats &
    rmbStats() const override
    {
        return rmbStats_;
    }
    const SegmentTable &segments() const { return segments_; }

    // --- Engine segment census (delegates to the SegmentTable) ---
    bool
    segmentOccupied(GapId gap, Level level) const override
    {
        return !segments_.isFree(gap, level);
    }
    bool
    segmentFaulty(GapId gap, Level level) const override
    {
        return segments_.isFaulty(gap, level);
    }
    std::uint32_t
    faultySegments() const override
    {
        return segments_.faultyCount();
    }
    std::uint64_t
    occupiedSegments() const override
    {
        return segments_.occupiedCount();
    }
    double
    segmentUtilization(GapId gap, Level level,
                       sim::Tick now) const override
    {
        return segments_.utilization(gap, level, now);
    }
    double
    averageSegmentUtilization(sim::Tick now) const override
    {
        return segments_.averageUtilization(now);
    }

    /** INC @p i; panics with the offending index if out of range. */
    const Inc &
    inc(std::uint32_t i) const
    {
        rmb_assert(i < incs_.size(), "no INC with index ", i,
                   " (the ring has ", incs_.size(), " nodes)");
        return *incs_[i];
    }

    /**
     * Live virtual bus by id; nullptr if the bus existed but has
     * been retired.  Panics with the offending id if no bus with
     * that id was ever allocated (a caller bug, not a race).
     */
    const VirtualBus *bus(VirtualBusId id) const;

    /** Ids of all live virtual buses (ascending). */
    std::vector<VirtualBusId> liveBusIds() const;

    /**
     * Derived Table-1 status code of INC @p node's output port at
     * @p level, reconstructed from the virtual-bus structures (the
     * simulator's source of truth); panics if the electrical state
     * would be an illegal code.  PE-driven ports report Straight
     * sources the paper's table does not model and are flagged via
     * @p pe_driven.
     */
    std::uint8_t outputStatus(net::NodeId node, Level level,
                              bool *pe_driven = nullptr) const;

    /**
     * Fault injection: disable the physical segment at
     * (@p gap, @p level).  With RmbConfig::transientFaults the
     * segment may be *occupied*: the owning virtual bus is severed
     * and torn down hop by hop, and its message retried from the
     * source (docs/FAULTS.md).  Without it, faulting an occupied
     * segment is a hard error (the historical static-fault model).
     * The protocol routes and compacts around faulted segments; note
     * that faulting a gap's *top* segment disables injection at
     * that node, and faulting all k levels of a gap partitions the
     * (one-way) ring.
     */
    void failSegment(GapId gap, Level level) override;

    /**
     * Repair a faulted segment: the inverse of failSegment.  The
     * segment becomes claimable again once any severed occupant has
     * finished releasing it; blocked headers and pending injections
     * are woken exactly as on a normal release.
     */
    void repairSegment(GapId gap, Level level) override;

    /** Run every structural invariant check now (any VerifyLevel). */
    void auditInvariants() const override;

  private:
    // ------------------------------------------------------------
    // Interface reserved for Inc (the compaction engine): the INCs
    // are the only callers of the make/break steps, the Lemma-1
    // bookkeeping and the neighbour/RNG accessors below.
    // ------------------------------------------------------------
    friend class Inc;

    /** A make-step record handed back to the break step. */
    struct MoveRecord
    {
        VirtualBusId bus;
        GapId gap;
        Level fromLevel;
        Level toLevel;
    };

    /**
     * Execute the make step of every eligible move at @p gap for bus
     * levels of @p parity; returns the records the caller must pass
     * to breakMoves() half a cycle later.
     */
    std::vector<MoveRecord> makeEligibleMoves(GapId gap, int parity);

    /** Execute the break step for records produced by make. */
    void breakMoves(const std::vector<MoveRecord> &records);

    /** Lemma-1 bookkeeping: called by an Inc on every cycle flip. */
    void noteCycleFlip(std::uint32_t inc_index);

    /** Neighbour flag access for the cycle FSMs. */
    const Inc &leftOf(std::uint32_t i) const;
    const Inc &rightOf(std::uint32_t i) const;

    /** RNG stream (backoff jitter, INC clock phase). */
    sim::Random &rng() { return rng_; }
    // --- protocol steps (all take the bus id; the bus may die) ---
    void tryInject(net::NodeId node);
    void headerArrive(VirtualBusId bus_id);
    void tryAdvance(VirtualBusId bus_id);
    void acceptAtDestination(VirtualBus &bus);
    void hackArriveAtSource(VirtualBusId bus_id);
    void finalFlitArrive(VirtualBusId bus_id);
    // Detailed flit-level streaming (Dack flow control).
    void departFlit(VirtualBusId bus_id, std::uint32_t seq);
    void flitArriveAtDst(VirtualBusId bus_id, std::uint32_t seq);
    void dackArriveAtSource(VirtualBusId bus_id);
    void startTeardown(VirtualBus &bus, BusState kind);
    void teardownStep(VirtualBusId bus_id);
    // --- transient-fault recovery (docs/FAULTS.md) ---
    void severOccupant(GapId gap, Level level, VirtualBusId bus_id);
    void severBus(VirtualBus &bus, std::uint64_t reason);
    void armWatchdog(VirtualBusId bus_id, std::uint64_t epoch);
    void watchdogCheck(VirtualBusId bus_id, std::uint64_t epoch);
    void finishMulticast(net::MessageId carrier);
    void busFinished(VirtualBusId bus_id, const Hop &last_hop);
    void scheduleRetry(net::NodeId node, net::MessageId msg);
    void onHeaderTimeout(VirtualBusId bus_id, sim::Tick since);

    /** Free one segment and dispatch wakeups. */
    void releaseSegment(VirtualBus &bus, GapId gap, Level level,
                        obs::SegmentFreeReason reason);
    void segmentFreed(GapId gap, Level level);

    /** Emit a SegmentFree trace event (no-op when not tracing). */
    void noteSegmentFree(const VirtualBus &bus, GapId gap,
                         Level level,
                         obs::SegmentFreeReason reason);

    /** Output levels reachable from the head hop of @p bus. */
    std::vector<Level> reachableLevels(const VirtualBus &bus) const;

    /** Eligibility of one hop for a downward move (Figure 7). */
    bool hopMovable(const VirtualBus &bus, std::size_t hop_index)
        const;

    VirtualBus &busRef(VirtualBusId id);

    /** Assemble a trace event carrying @p bus's identity. */
    obs::TraceEvent busEvent(obs::EventKind kind,
                             const VirtualBus &bus,
                             net::NodeId node, GapId gap = 0,
                             Level level = kNoLevel) const;

    void checkAfterMutation() const;

    RmbConfig config_;
    sim::Random rng_;
    SegmentTable segments_;
    std::vector<std::unique_ptr<Inc>> incs_;
    std::vector<Pe> pes_;
    std::unordered_map<VirtualBusId, VirtualBus> buses_;
    VirtualBusId nextBusId_ = 1;

    /** Blocked buses waiting for a segment per gap, FIFO. */
    std::vector<std::deque<VirtualBusId>> waiters_;

    std::vector<MulticastRecord> multicasts_;
    std::unordered_map<net::MessageId, MulticastId>
        carrierToMulticast_;

    /**
     * First-sever tick of every message whose virtual bus was cut by
     * a fault or the watchdog and that has not yet been delivered
     * (-> messagesRecovered + recoveryLatency) or permanently failed
     * (-> messagesLost).
     */
    std::unordered_map<net::MessageId, sim::Tick> severedAt_;

    /** MTBF/MTTR fail-repair process (RmbConfig::faultMtbf > 0). */
    std::unique_ptr<FaultSchedule> faults_;

    RmbStats rmbStats_;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_NETWORK_HH
