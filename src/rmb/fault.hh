/**
 * @file
 * MTBF/MTTR transient-fault process for the RMB network.
 *
 * A FaultSchedule turns the static failSegment/repairSegment API
 * into a stochastic fail-repair event process: inter-fault gaps are
 * geometric with mean RmbConfig::faultMtbf, each injected fault is
 * repaired after a uniform [faultMttrMin, faultMttrMax] delay.  All
 * draws come from a dedicated sim::Random::split substream handed in
 * by the owner, so the fault process is deterministic per seed and
 * independent of protocol randomness (see docs/FAULTS.md).
 */

#ifndef RMB_RMB_FAULT_HH
#define RMB_RMB_FAULT_HH

#include <cstdint>

#include "rmb/types.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace rmb {
namespace core {

class Engine;

/** Stream id of the fault substream under sim::Random(seed). */
constexpr std::uint64_t kFaultStream = 0xfa;

/**
 * Drives failSegment/repairSegment through the owning engine's
 * simulator.  Constructed (and started) by either backend when
 * RmbConfig::faultMtbf > 0; uses only the core::Engine API, so the
 * event and kernel engines share one fault process - and because
 * every draw comes from the dedicated substream and depends only on
 * prior fault state (never on protocol state), the two backends see
 * the *identical* (gap, level, time) fault sequence for a given
 * seed.  The differential test leans on that.
 */
class FaultSchedule
{
  public:
    FaultSchedule(Engine &network, sim::Random rng);

    /** Schedule the first fault; call once after construction. */
    void start();

    /** Faults injected by this schedule so far. */
    std::uint64_t injected() const { return injected_; }

    /** Repairs completed by this schedule so far. */
    std::uint64_t repaired() const { return repaired_; }

  private:
    void scheduleNextFault();
    void injectOne();

    Engine &network_;
    sim::Random rng_;
    std::uint64_t injected_ = 0;
    std::uint64_t repaired_ = 0;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_FAULT_HH
