#include "rmb/status_register.hh"

#include "common/logging.hh"

namespace rmb {
namespace core {

std::uint8_t
dirBit(SourceDir d)
{
    switch (d) {
      case SourceDir::Below:
        return 0b001;
      case SourceDir::Straight:
        return 0b010;
      case SourceDir::Above:
        return 0b100;
    }
    panic("bad SourceDir");
}

bool
statusLegal(std::uint8_t bits)
{
    // Table 1: everything except 101, 111 (and out-of-range values).
    return bits <= 0b111 && bits != 0b101 && bits != 0b111;
}

std::string
statusName(std::uint8_t bits)
{
    switch (bits) {
      case 0b000:
        return "unused";
      case 0b001:
        return "from-below";
      case 0b010:
        return "straight";
      case 0b011:
        return "below+straight";
      case 0b100:
        return "from-above";
      case 0b110:
        return "above+straight";
      default: {
        // Diagnostic form for the forbidden codes (101, 111) and
        // out-of-range values: at least three binary digits.
        std::string digits;
        for (std::uint8_t b = bits; b || digits.size() < 3; b >>= 1)
            digits.insert(digits.begin(),
                          static_cast<char>('0' + (b & 1)));
        return "illegal(0b" + digits + ")";
      }
    }
}

bool
StatusRegister::receivesFrom(SourceDir d) const
{
    return (bits_ & dirBit(d)) != 0;
}

int
StatusRegister::numSources() const
{
    int n = 0;
    for (std::uint8_t b = bits_; b; b >>= 1)
        n += b & 1;
    return n;
}

void
StatusRegister::connect(SourceDir d)
{
    const std::uint8_t next = bits_ | dirBit(d);
    rmb_assert(next != bits_, "source ", statusName(dirBit(d)),
               " already connected");
    rmb_assert(statusLegal(next), "illegal status transition ",
               statusName(bits_), " -> bits ", int{next});
    bits_ = next;
}

void
StatusRegister::disconnect(SourceDir d)
{
    const std::uint8_t bit = dirBit(d);
    rmb_assert(bits_ & bit, "source not connected");
    const std::uint8_t next = bits_ & ~bit;
    rmb_assert(statusLegal(next), "illegal status after disconnect");
    bits_ = next;
}

} // namespace core
} // namespace rmb
