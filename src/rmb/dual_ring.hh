/**
 * @file
 * Two counter-rotating RMB rings.
 *
 * Paper section 2.1: "although, for simplicity, we describe the
 * communication as a one-way ring, for efficiency reasons, one may
 * like to organize the communication as two parallel unidirectional
 * rings."  This module builds that system: a clockwise and a
 * counter-clockwise RMB plane over the same nodes, with each message
 * routed on the plane that gives it the shorter path (halving the
 * expected distance from N/2 to N/4).
 *
 * The counter-clockwise plane is realized as a regular (clockwise)
 * RmbNetwork over *reflected* node indices (i -> (N - i) mod N), so
 * the full protocol - compaction, odd/even cycles, acks - runs
 * unchanged on both planes.
 */

#ifndef RMB_RMB_DUAL_RING_HH
#define RMB_RMB_DUAL_RING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "netbase/network.hh"
#include "rmb/config.hh"
#include "rmb/network.hh"

namespace rmb {
namespace core {

/** Which plane a message was routed on. */
enum class RingPlane : std::uint8_t
{
    Clockwise,
    CounterClockwise,
};

/**
 * The dual-ring RMB.  The RmbConfig applies to each plane (numBuses
 * buses *per direction*, so the system spends 2k buses total, like
 * the paper's EHC comparison doubles links).
 */
class DualRingRmbNetwork : public net::Network
{
  public:
    DualRingRmbNetwork(sim::Simulator &simulator,
                       const RmbConfig &config);

    /** Route on the shorter-path plane (ties go clockwise). */
    net::MessageId send(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload_flits) override;

    /** Plane a message was assigned to. */
    RingPlane plane(net::MessageId id) const;

    /** Clockwise hop count if routed CW vs CCW. */
    std::uint32_t cwDistance(net::NodeId src, net::NodeId dst) const;

    /** The underlying planes (internal node ids on the CCW plane
     *  are reflected: external i <-> internal (N - i) mod N). */
    const RmbNetwork &clockwise() const { return *cw_; }
    const RmbNetwork &counterClockwise() const { return *ccw_; }

    /** Sum of both planes' compaction moves. */
    std::uint64_t totalCompactionMoves() const;

  private:
    /** Reflect an external node id into the CCW plane's space. */
    net::NodeId reflect(net::NodeId node) const;

    /** Wire a plane's delivery/failure events back to our records. */
    void attach(RmbNetwork &plane, RingPlane which);

    void onPlaneDelivered(RingPlane which, const net::Message &pm);
    void onPlaneFailed(RingPlane which, const net::Message &pm);

    RmbConfig config_;
    std::unique_ptr<RmbNetwork> cw_;
    std::unique_ptr<RmbNetwork> ccw_;

    struct Forward
    {
        RingPlane plane;
        net::MessageId planeMessage;
    };
    /** Our message id -> plane assignment (index = id - 1). */
    std::vector<Forward> forwards_;
    /** Per-plane: plane message id -> our message id. */
    std::vector<net::MessageId> cwToOurs_;
    std::vector<net::MessageId> ccwToOurs_;
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_DUAL_RING_HH
