#include "rmb/dual_ring.hh"

#include "common/logging.hh"

namespace rmb {
namespace core {

DualRingRmbNetwork::DualRingRmbNetwork(sim::Simulator &simulator,
                                       const RmbConfig &config)
    : net::Network(simulator, "RMB(dual-ring)", config.numNodes),
      config_(config)
{
    RmbConfig cw_cfg = config;
    RmbConfig ccw_cfg = config;
    // Decorrelate the planes' clock jitter and backoff draws.
    ccw_cfg.seed = config.seed * 2654435761u + 1;
    cw_ = std::make_unique<RmbNetwork>(simulator, cw_cfg);
    ccw_ = std::make_unique<RmbNetwork>(simulator, ccw_cfg);
    attach(*cw_, RingPlane::Clockwise);
    attach(*ccw_, RingPlane::CounterClockwise);
}

net::NodeId
DualRingRmbNetwork::reflect(net::NodeId node) const
{
    return static_cast<net::NodeId>((numNodes() - node) %
                                    numNodes());
}

std::uint32_t
DualRingRmbNetwork::cwDistance(net::NodeId src,
                               net::NodeId dst) const
{
    return (dst + numNodes() - src) % numNodes();
}

void
DualRingRmbNetwork::attach(RmbNetwork &plane, RingPlane which)
{
    plane.setDeliveryCallback([this, which](const net::Message &pm) {
        onPlaneDelivered(which, pm);
    });
    plane.setFailureCallback([this, which](const net::Message &pm) {
        onPlaneFailed(which, pm);
    });
}

net::MessageId
DualRingRmbNetwork::send(net::NodeId src, net::NodeId dst,
                         std::uint32_t payload_flits)
{
    net::Message &m = createMessage(src, dst, payload_flits);

    const std::uint32_t cw_dist = cwDistance(src, dst);
    const bool go_cw = cw_dist <= numNodes() - cw_dist;

    net::MessageId plane_id;
    if (go_cw) {
        plane_id = cw_->send(src, dst, payload_flits);
        cwToOurs_.resize(
            std::max<std::size_t>(cwToOurs_.size(), plane_id), 0);
        cwToOurs_[plane_id - 1] = m.id;
    } else {
        plane_id =
            ccw_->send(reflect(src), reflect(dst), payload_flits);
        ccwToOurs_.resize(
            std::max<std::size_t>(ccwToOurs_.size(), plane_id), 0);
        ccwToOurs_[plane_id - 1] = m.id;
    }
    forwards_.push_back(Forward{go_cw
                                    ? RingPlane::Clockwise
                                    : RingPlane::CounterClockwise,
                                plane_id});
    rmb_assert(forwards_.size() == m.id,
               "forward table out of sync");
    return m.id;
}

RingPlane
DualRingRmbNetwork::plane(net::MessageId id) const
{
    rmb_assert(id != net::kNoMessage && id <= forwards_.size(),
               "unknown message id ", id);
    return forwards_[id - 1].plane;
}

void
DualRingRmbNetwork::onPlaneDelivered(RingPlane which,
                                     const net::Message &pm)
{
    const auto &map = which == RingPlane::Clockwise ? cwToOurs_
                                                    : ccwToOurs_;
    rmb_assert(pm.id <= map.size() && map[pm.id - 1] != 0,
               "plane delivered an unmapped message");
    net::Message &m = messageRef(map[pm.id - 1]);

    // Mirror the plane's lifecycle timestamps into our record and
    // feed the aggregate statistics exactly once per phase.
    m.firstAttempt = pm.firstAttempt;
    m.established = pm.established;
    m.nacks = pm.nacks;
    m.retries = pm.retries;
    stats_.nacks += pm.nacks;
    stats_.retries += pm.retries;
    stats_.queueDelay.add(
        static_cast<double>(m.firstAttempt - m.created));
    stats_.setupLatency.add(
        static_cast<double>(m.established - m.firstAttempt));
    noteDelivered(m, cwDistance(pm.src, pm.dst));
}

void
DualRingRmbNetwork::onPlaneFailed(RingPlane which,
                                  const net::Message &pm)
{
    const auto &map = which == RingPlane::Clockwise ? cwToOurs_
                                                    : ccwToOurs_;
    rmb_assert(pm.id <= map.size() && map[pm.id - 1] != 0,
               "plane failed an unmapped message");
    net::Message &m = messageRef(map[pm.id - 1]);
    m.nacks = pm.nacks;
    m.retries = pm.retries;
    stats_.nacks += pm.nacks;
    stats_.retries += pm.retries;
    noteFailed(m);
}

std::uint64_t
DualRingRmbNetwork::totalCompactionMoves() const
{
    return cw_->rmbStats().compactionMoves +
           ccw_->rmbStats().compactionMoves;
}

} // namespace core
} // namespace rmb
