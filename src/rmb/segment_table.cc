#include "rmb/segment_table.hh"

#include "common/logging.hh"

namespace rmb {
namespace core {

SegmentTable::SegmentTable(std::uint32_t num_gaps,
                           std::uint32_t num_levels)
    : numGaps_(num_gaps), numLevels_(num_levels),
      grid_(static_cast<std::size_t>(num_gaps) * num_levels, kNoBus),
      faultMask_(grid_.size(), 0), busy_(grid_.size())
{
    rmb_assert(num_gaps >= 2 && num_levels >= 1,
               "segment table needs >= 2 gaps and >= 1 level");
}

std::size_t
SegmentTable::index(GapId gap, Level level) const
{
    rmb_assert(gap < numGaps_, "gap ", gap, " out of range");
    rmb_assert(level >= 0 && static_cast<std::uint32_t>(level) <
                   numLevels_,
               "level ", level, " out of range");
    return static_cast<std::size_t>(gap) * numLevels_ +
           static_cast<std::size_t>(level);
}

VirtualBusId
SegmentTable::occupant(GapId gap, Level level) const
{
    return grid_[index(gap, level)];
}

void
SegmentTable::markFaulty(GapId gap, Level level, sim::Tick now)
{
    const std::size_t i = index(gap, level);
    rmb_assert(!faultMask_[i], "segment (", gap, ",", level,
               ") is already faulted");
    faultMask_[i] = 1;
    ++faulty_;
    // A faulted segment counts as busy for utilization purposes; if
    // it is occupied it is busy already.
    if (grid_[i] == kNoBus)
        busy_[i].setBusy(now);
}

void
SegmentTable::clearFault(GapId gap, Level level, sim::Tick now)
{
    const std::size_t i = index(gap, level);
    rmb_assert(faultMask_[i], "segment (", gap, ",", level,
               ") is not faulted");
    faultMask_[i] = 0;
    --faulty_;
    // The occupant (a severed bus mid-teardown) may still hold the
    // segment; it only becomes idle once that release happens.
    if (grid_[i] == kNoBus)
        busy_[i].setFree(now);
}

void
SegmentTable::occupy(GapId gap, Level level, VirtualBusId bus,
                     sim::Tick now)
{
    rmb_assert(bus != kNoBus, "occupy by a sentinel bus id");
    const std::size_t i = index(gap, level);
    auto &cell = grid_[i];
    rmb_assert(cell == kNoBus, "segment (", gap, ",", level,
               ") already held by bus ", cell, "; bus ", bus,
               " tried to claim it");
    rmb_assert(!faultMask_[i], "segment (", gap, ",", level,
               ") is faulted; bus ", bus, " tried to claim it");
    cell = bus;
    ++occupied_;
    busy_[i].setBusy(now);
}

void
SegmentTable::release(GapId gap, Level level, VirtualBusId bus,
                      sim::Tick now)
{
    const std::size_t i = index(gap, level);
    auto &cell = grid_[i];
    rmb_assert(cell == bus, "segment (", gap, ",", level,
               ") held by bus ", cell, ", not by releasing bus ",
               bus);
    cell = kNoBus;
    --occupied_;
    if (!faultMask_[i])
        busy_[i].setFree(now);
}

std::uint32_t
SegmentTable::freeLevels(GapId gap) const
{
    std::uint32_t n = 0;
    for (Level l = 0; static_cast<std::uint32_t>(l) < numLevels_; ++l)
        if (isFree(gap, l))
            ++n;
    return n;
}

Level
SegmentTable::lowestFree(GapId gap) const
{
    for (Level l = 0; static_cast<std::uint32_t>(l) < numLevels_; ++l)
        if (isFree(gap, l))
            return l;
    return kNoLevel;
}

double
SegmentTable::utilization(GapId gap, Level level, sim::Tick now) const
{
    return busy_[index(gap, level)].utilization(now);
}

double
SegmentTable::averageUtilization(sim::Tick now) const
{
    if (now == 0 || busy_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &tracker : busy_)
        total += tracker.utilization(now);
    return total / static_cast<double>(busy_.size());
}

} // namespace core
} // namespace rmb
