/**
 * @file
 * Core identifiers and enums of the RMB model.
 *
 * Geometry: N nodes on a ring, k physical bus segments between each
 * pair of adjacent nodes.  "Gap g" names the bundle of k segments
 * between node g and node (g+1) mod N; "level l" in [0, k) names one
 * segment within a gap, level k-1 being the *top* bus where new
 * requests are injected (paper section 2.2).
 */

#ifndef RMB_RMB_TYPES_HH
#define RMB_RMB_TYPES_HH

#include <cstdint>

#include "netbase/message.hh"

namespace rmb {
namespace core {

/** Index of the inter-node gap between node g and node g+1 (mod N). */
using GapId = std::uint32_t;

/** Bus level within a gap; 0 = bottom, k-1 = top (injection) bus. */
using Level = std::int32_t;

/** Sentinel for "no level". */
constexpr Level kNoLevel = -1;

/** Unique id of a virtual bus (one per message attempt lifetime). */
using VirtualBusId = std::uint64_t;

/** Sentinel for "no virtual bus". */
constexpr VirtualBusId kNoBus = 0;

/**
 * What a blocked header flit does when no reachable output segment is
 * free at an intermediate INC.
 */
enum class BlockingPolicy : std::uint8_t
{
    /**
     * Hold the partial virtual bus and wait for compaction or a
     * teardown to free a reachable segment (wormhole-style blocking).
     */
    Wait,
    /**
     * Tear the partial virtual bus down (as if Nacked) and retry
     * later from the source; keeps the network trivially
     * deadlock-free and matches Theorem 1's "provided if available"
     * reading.
     */
    NackRetry,
};

/**
 * Which output level an advancing header flit prefers at each INC
 * (among the legal {l-1, l, l+1} from its input level l).
 */
enum class HeaderPolicy : std::uint8_t
{
    /**
     * Take the lowest free reachable level (eager descent): the
     * header pre-compacts its own path one level per hop.  This is
     * the engineering reading of "make use of only the lowest
     * physical free bus segments".
     */
    PreferLowest,
    /**
     * Stay at the current level when free (top-bus propagation, the
     * paper's literal Figure-3 description), then try below, then
     * above; the compaction protocol alone sinks the circuit later.
     */
    PreferStraight,
};

/**
 * Which simulation backend executes the RMB protocol.  Both engines
 * implement the same `core::Engine` interface (engine.hh) and the
 * same outcome semantics; they differ in *how* time advances.
 */
enum class EngineKind : std::uint8_t
{
    /**
     * The original discrete-event path (`RmbNetwork`): every header
     * hop, INC cycle tick and teardown step is a heap-scheduled
     * `sim::EventQueue` event.  Most faithful to per-INC clock skew;
     * the reference implementation.
     */
    Event,
    /**
     * Time-stepped structure-of-arrays cycle kernel
     * (`CycleKernelEngine`): segment occupancy and fault state live
     * in uint64_t bitplanes, compaction runs as a synchronous global
     * cycle with word-parallel candidate filtering, and the protocol
     * agenda is a bucket timing wheel.  ~10x+ faster; refuses
     * configurations it cannot model (see RmbConfig::validate()).
     */
    Kernel,
};

/** Stable lowercase name of @p kind ("event" / "kernel"). */
const char *engineKindName(EngineKind kind);

/** How much invariant checking the network performs while running. */
enum class VerifyLevel : std::uint8_t
{
    Off,    //!< no checks (large benches)
    Cheap,  //!< O(1) checks on each mutation
    Full,   //!< full-structure audit on each mutation (tests)
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_TYPES_HH
