/**
 * @file
 * A virtual bus: the chain of physical bus segments carrying one
 * message (paper section 2.2, Figure 2).
 */

#ifndef RMB_RMB_VIRTUAL_BUS_HH
#define RMB_RMB_VIRTUAL_BUS_HH

#include <cstdint>
#include <deque>

#include "netbase/message.hh"
#include "rmb/types.hh"
#include "sim/types.hh"

namespace rmb {
namespace core {

/**
 * One hop of a virtual bus: the physical segment it occupies in one
 * gap.  During a make-before-break downward move the hop briefly owns
 * two segments: `level` (the old, upper one) and `dualLevel` (the
 * new, lower one); outside a move dualLevel == kNoLevel.
 */
struct Hop
{
    GapId gap = 0;
    Level level = kNoLevel;
    Level dualLevel = kNoLevel;
    /** Increments on every move; stale break events check it. */
    std::uint32_t moveSeq = 0;

    bool inMove() const { return dualLevel != kNoLevel; }

    /** The level the hop will sit at once any in-flight move ends. */
    Level
    settledLevel() const
    {
        return inMove() ? dualLevel : level;
    }
};

/** Protocol state of a virtual bus. */
enum class BusState : std::uint8_t
{
    Advancing,   //!< header flit moving toward the destination
    Blocked,     //!< header waiting for a free reachable segment
    AwaitHack,   //!< header accepted; Hack travelling back to source
    Streaming,   //!< data flits flowing
    FackTeardown, //!< FF delivered; Fack freeing hops back to source
    NackTeardown, //!< refused/aborted; Nack freeing hops to source
    FaultTeardown, //!< severed by a segment fault or watchdog; like
                   //!< NackTeardown (the message retries) but kept
                   //!< distinct for tracing and recovery metrics
};

/** True for any of the three teardown states. */
inline bool
isTeardown(BusState s)
{
    return s == BusState::FackTeardown ||
           s == BusState::NackTeardown ||
           s == BusState::FaultTeardown;
}

/**
 * Bookkeeping for one live virtual bus.  The hop deque is ordered
 * from the source gap to the head gap.
 */
struct VirtualBus
{
    VirtualBusId id = kNoBus;
    net::MessageId message = net::kNoMessage;
    net::NodeId src = 0;
    net::NodeId dst = 0;
    BusState state = BusState::Advancing;

    std::deque<Hop> hops;

    /** Node the header flit currently sits at (or is travelling to). */
    net::NodeId headNode = 0;

    /** Gaps already freed by a travelling Fack/Nack (from the head). */
    std::uint32_t hopsFreed = 0;

    sim::Tick injectedAt = 0;
    /** Tick the header became blocked (for the optional timeout). */
    sim::Tick blockedSince = 0;
    /**
     * Bumped on every protocol step this bus makes (advance, block,
     * ack, flit, teardown step).  The source-side watchdog snapshots
     * it and fires only if the bus made no progress for a whole
     * watchdog period - the signature of a silently lost ack.
     */
    std::uint64_t epoch = 0;
    /** True once the (source gap, top) segment released (stats). */
    bool topReleased = false;

    /**
     * Detailed flit-level streaming state (RmbConfig::detailedFlits).
     * Flit sequence numbers run 0..payload, the last one being the
     * final flit (FF).
     */
    std::uint32_t flitsSent = 0;     //!< departures so far
    std::uint32_t flitsAcked = 0;    //!< Dacks received at the source
    std::uint32_t flitsAtDst = 0;    //!< in-order arrivals at the dst
    sim::Tick lastFlitDepart = 0;    //!< tick of the last departure
    sim::Tick lastFlitArrive = 0;    //!< tick of the last dst arrival
    bool pumpStalled = false;        //!< window closed, pump paused

    /** The gap the source PE injects on. */
    GapId srcGap() const { return src; }

    /** Whole clockwise path length in gaps. */
    std::uint32_t
    pathLength(net::NodeId n) const
    {
        return (dst + n - src) % n;
    }
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_VIRTUAL_BUS_HH
