#include "rmb/fault.hh"

#include "common/logging.hh"
#include "rmb/engine.hh"
#include "sim/simulator.hh"

namespace rmb {
namespace core {

FaultSchedule::FaultSchedule(Engine &network, sim::Random rng)
    : network_(network), rng_(rng)
{
    rmb_assert(network_.config().faultMtbf > 0,
               "FaultSchedule needs faultMtbf > 0");
}

void
FaultSchedule::start()
{
    scheduleNextFault();
}

void
FaultSchedule::scheduleNextFault()
{
    const sim::Tick mtbf = network_.config().faultMtbf;
    // 1 + geometric(1/mtbf) is the discrete analogue of an
    // exponential inter-arrival with mean ~mtbf, never zero.
    const sim::Tick gap =
        1 + rng_.geometric(1.0 / static_cast<double>(mtbf));
    network_.simulator().schedule(gap, [this] { injectOne(); });
}

void
FaultSchedule::injectOne()
{
    const RmbConfig &cfg = network_.config();
    const std::uint32_t n = cfg.numNodes;
    const std::uint32_t k = cfg.numBuses;

    // Keep at least half the grid alive: letting the process
    // swallow every segment partitions the (one-way) ring and the
    // availability sweep would measure nothing but the partition.
    if (network_.faultySegments() < n * k / 2) {
        for (int tries = 0; tries < 64; ++tries) {
            const auto g = static_cast<GapId>(rng_.uniformInt(n));
            const auto l = static_cast<Level>(rng_.uniformInt(k));
            if (network_.segmentFaulty(g, l))
                continue;
            network_.failSegment(g, l);
            ++injected_;
            const sim::Tick mttr = rng_.uniformRange(
                cfg.faultMttrMin, cfg.faultMttrMax);
            network_.simulator().schedule(mttr, [this, g, l] {
                network_.repairSegment(g, l);
                ++repaired_;
            });
            break;
        }
    }
    scheduleNextFault();
}

} // namespace core
} // namespace rmb
