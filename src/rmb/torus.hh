/**
 * @file
 * A 2-D grid of RMB rings (paper section 4: "the design of
 * reconfigurable multiple bus systems for 2- and 3-D grid connected
 * computers"; section 1 likewise proposes using the ring-based
 * system as a module of larger topologies).
 *
 * This is the two-dimensional special case of RmbGridNetwork with
 * the conventional row/column vocabulary: node (x, y) has id
 * y*W + x, belongs to row ring y and column ring x, and routes row
 * leg first (dimension order) with store-and-forward at the corner.
 */

#ifndef RMB_RMB_TORUS_HH
#define RMB_RMB_TORUS_HH

#include <cstdint>

#include "rmb/grid.hh"

namespace rmb {
namespace core {

/** W x H torus of RMB rings. */
class RmbTorusNetwork : public RmbGridNetwork
{
  public:
    /**
     * @param config applies to every row and column ring; its
     *        numNodes field is ignored (rings get W or H nodes).
     */
    RmbTorusNetwork(sim::Simulator &simulator, std::uint32_t width,
                    std::uint32_t height, const RmbConfig &config)
        : RmbGridNetwork(simulator, {width, height}, config,
                         "RMB(torus)")
    {}

    std::uint32_t width() const { return dimExtent(0); }
    std::uint32_t height() const { return dimExtent(1); }

    /** The ring spanning row @p y (x = 0..W-1). */
    const RmbNetwork &
    rowRing(std::uint32_t y) const
    {
        return lineRing(0, y * width());
    }

    /** The ring spanning column @p x (y = 0..H-1). */
    const RmbNetwork &
    columnRing(std::uint32_t x) const
    {
        return lineRing(1, x);
    }

    /** Messages that needed two legs (row + column). */
    std::uint64_t cornerTurns() const { return multiLegMessages(); }
};

} // namespace core
} // namespace rmb

#endif // RMB_RMB_TORUS_HH
