/**
 * @file
 * Machine-readable and visual run reports.
 *
 * - statsToJson(): serialize a network's aggregate statistics (plus
 *   RMB-specific counters when applicable) as a JSON object, for
 *   scripting around rmbsim and the benches.
 * - utilizationHeatmap(): render the RMB's per-segment
 *   time-weighted utilization as an ASCII heatmap (gaps across,
 *   levels down) - the static counterpart of the
 *   permutation_route example's live view.
 */

#ifndef RMB_REPORT_REPORT_HH
#define RMB_REPORT_REPORT_HH

#include <iosfwd>
#include <string>

#include "netbase/network.hh"
#include "rmb/engine.hh"

namespace rmb {
namespace report {

/**
 * Serialize @p network's statistics as a single JSON object.
 * Always includes the common counters; adds a "rmb" sub-object for
 * RMB engines (any core::Engine backend).  NaNs (empty stats) are
 * emitted as null.
 */
std::string statsToJson(const net::Network &network, sim::Tick now);

/**
 * Render the N x k utilization heatmap of an RMB to @p os, via the
 * backend-generic segment census (works for any engine).
 */
void utilizationHeatmap(std::ostream &os,
                        const core::Engine &engine, sim::Tick now);

} // namespace report
} // namespace rmb

#endif // RMB_REPORT_REPORT_HH
