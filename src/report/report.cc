#include "report/report.hh"

#include <ostream>

#include "obs/json.hh"

namespace rmb {
namespace report {

namespace {

void
sampleStat(obs::JsonWriter &json, const std::string &key,
           const sim::SampleStat &stat)
{
    json.beginObject(key);
    json.field("count", stat.count());
    json.field("mean", stat.mean());
    json.field("min", stat.min());
    json.field("max", stat.max());
    json.field("p50", stat.percentile(50));
    json.field("p95", stat.percentile(95));
    json.endObject();
}

} // namespace

std::string
statsToJson(const net::Network &network, sim::Tick now)
{
    const net::NetworkStats &s = network.stats();
    obs::JsonWriter json;
    json.beginObject();
    json.field("network", network.name());
    json.field("nodes", std::uint64_t{network.numNodes()});
    json.field("now", static_cast<std::uint64_t>(now));
    json.field("injected", s.injected);
    json.field("delivered", s.delivered);
    json.field("failed", s.failed);
    json.field("nacks", s.nacks);
    json.field("retries", s.retries);
    sampleStat(json, "queueDelay", s.queueDelay);
    sampleStat(json, "setupLatency", s.setupLatency);
    sampleStat(json, "totalLatency", s.totalLatency);
    sampleStat(json, "pathLength", s.pathLength);
    json.field("peakCircuits",
               static_cast<std::int64_t>(
                   s.activeCircuits.maximum()));

    if (const auto *rmb =
            dynamic_cast<const core::Engine *>(&network)) {
        const core::RmbStats &r = rmb->rmbStats();
        json.beginObject("rmb");
        json.field("buses",
                   std::uint64_t{rmb->config().numBuses});
        json.field("compactionMoves", r.compactionMoves);
        json.field("blockedHeaders", r.blockedHeaders);
        json.field("blockedAborts", r.blockedAborts);
        json.field("timeoutAborts", r.timeoutAborts);
        json.field("cycleFlips", r.cycleFlips);
        json.field("maxCycleSkew", r.maxCycleSkew);
        json.field("dacks", r.dacks);
        json.field("multicasts", r.multicasts);
        sampleStat(json, "topReleaseLatency",
                   r.topReleaseLatency);
        json.field("avgSegmentUtilization",
                   rmb->averageSegmentUtilization(now));
        json.field("faultySegments",
                   std::uint64_t{rmb->faultySegments()});
        json.endObject();
    }

    // The full registry, keyed by stable dotted metric names; covers
    // every counter the typed views above name (and any future ones)
    // without this function having to keep up.
    json.raw("metrics", network.metrics().snapshot(now));
    json.endObject();
    return json.str();
}

void
utilizationHeatmap(std::ostream &os, const core::Engine &engine,
                   sim::Tick now)
{
    static const char kScale[] = " .:-=+*#%@";
    const auto n = static_cast<core::GapId>(engine.numNodes());
    const auto k = static_cast<int>(engine.config().numBuses);

    os << "segment utilization heatmap (columns = gaps 0.."
       << n - 1 << ", X = faulted)\n";
    for (int l = k - 1; l >= 0; --l) {
        os << "  L" << l
           << (l == k - 1 ? " (top)|" : "      |");
        for (core::GapId g = 0; g < n; ++g) {
            if (engine.segmentFaulty(g, l)) {
                os << 'X';
                continue;
            }
            const double u = engine.segmentUtilization(g, l, now);
            const auto bucket = static_cast<std::size_t>(
                u * 9.999);
            os << kScale[bucket > 9 ? 9 : bucket];
        }
        os << "|\n";
    }
    os << "  scale: ' ' = idle ... '@' = ~100% busy\n";
}

} // namespace report
} // namespace rmb
