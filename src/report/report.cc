#include "report/report.hh"

#include <cmath>
#include <ostream>
#include <sstream>

namespace rmb {
namespace report {

namespace {

/** Minimal JSON assembly (numbers, strings, nesting). */
class Json
{
  public:
    void
    beginObject(const std::string &key = "")
    {
        comma();
        if (!key.empty())
            out_ << '"' << key << "\":";
        out_ << '{';
        first_ = true;
    }

    void
    endObject()
    {
        out_ << '}';
        first_ = false;
    }

    void
    field(const std::string &key, std::uint64_t v)
    {
        comma();
        out_ << '"' << key << "\":" << v;
    }

    void
    field(const std::string &key, std::int64_t v)
    {
        comma();
        out_ << '"' << key << "\":" << v;
    }

    void
    field(const std::string &key, double v)
    {
        comma();
        if (std::isnan(v) || std::isinf(v)) {
            out_ << '"' << key << "\":null";
        } else {
            out_ << '"' << key << "\":" << v;
        }
    }

    void
    field(const std::string &key, const std::string &v)
    {
        comma();
        out_ << '"' << key << "\":\"" << v << '"';
    }

    std::string str() const { return out_.str(); }

  private:
    void
    comma()
    {
        if (!first_)
            out_ << ',';
        first_ = false;
    }

    std::ostringstream out_;
    bool first_ = true;
};

void
sampleStat(Json &json, const std::string &key,
           const sim::SampleStat &stat)
{
    json.beginObject(key);
    json.field("count", stat.count());
    json.field("mean", stat.mean());
    json.field("min", stat.min());
    json.field("max", stat.max());
    json.field("p50", stat.percentile(50));
    json.field("p95", stat.percentile(95));
    json.endObject();
}

} // namespace

std::string
statsToJson(const net::Network &network, sim::Tick now)
{
    const net::NetworkStats &s = network.stats();
    Json json;
    json.beginObject();
    json.field("network", network.name());
    json.field("nodes", std::uint64_t{network.numNodes()});
    json.field("now", static_cast<std::uint64_t>(now));
    json.field("injected", s.injected);
    json.field("delivered", s.delivered);
    json.field("failed", s.failed);
    json.field("nacks", s.nacks);
    json.field("retries", s.retries);
    sampleStat(json, "queueDelay", s.queueDelay);
    sampleStat(json, "setupLatency", s.setupLatency);
    sampleStat(json, "totalLatency", s.totalLatency);
    sampleStat(json, "pathLength", s.pathLength);
    json.field("peakCircuits",
               static_cast<std::int64_t>(
                   s.activeCircuits.maximum()));

    if (const auto *rmb =
            dynamic_cast<const core::RmbNetwork *>(&network)) {
        const core::RmbStats &r = rmb->rmbStats();
        json.beginObject("rmb");
        json.field("buses",
                   std::uint64_t{rmb->config().numBuses});
        json.field("compactionMoves", r.compactionMoves);
        json.field("blockedHeaders", r.blockedHeaders);
        json.field("blockedAborts", r.blockedAborts);
        json.field("timeoutAborts", r.timeoutAborts);
        json.field("cycleFlips", r.cycleFlips);
        json.field("maxCycleSkew", r.maxCycleSkew);
        json.field("dacks", r.dacks);
        json.field("multicasts", r.multicasts);
        sampleStat(json, "topReleaseLatency",
                   r.topReleaseLatency);
        json.field("avgSegmentUtilization",
                   rmb->segments().averageUtilization(now));
        json.field("faultySegments",
                   std::uint64_t{rmb->segments().faultyCount()});
        json.endObject();
    }
    json.endObject();
    return json.str();
}

void
utilizationHeatmap(std::ostream &os,
                   const core::RmbNetwork &network, sim::Tick now)
{
    static const char kScale[] = " .:-=+*#%@";
    const auto &segments = network.segments();
    const auto n = segments.numGaps();
    const auto k = segments.numLevels();

    os << "segment utilization heatmap (columns = gaps 0.."
       << n - 1 << ", X = faulted)\n";
    for (int l = static_cast<int>(k) - 1; l >= 0; --l) {
        os << "  L" << l
           << (l == static_cast<int>(k) - 1 ? " (top)|" : "      |");
        for (core::GapId g = 0; g < n; ++g) {
            if (segments.isFaulty(g, l)) {
                os << 'X';
                continue;
            }
            const double u = segments.utilization(g, l, now);
            const auto bucket = static_cast<std::size_t>(
                u * 9.999);
            os << kScale[bucket > 9 ? 9 : bucket];
        }
        os << "|\n";
    }
    os << "  scale: ' ' = idle ... '@' = ~100% busy\n";
}

} // namespace report
} // namespace rmb
