/**
 * @file
 * Log-bucketed latency histogram.
 *
 * The moment-based sim::SampleStat keeps every sample to answer
 * percentile queries exactly, which is fine for a few thousand
 * latencies but not for per-flit streams.  LogHistogram trades exact
 * order statistics for O(1) memory: 64 power-of-two buckets plus
 * exact count/sum/min/max, with percentiles interpolated inside the
 * containing bucket.  Tick latencies fit comfortably: bucket 63
 * starts at 2^62 and absorbs everything above it.
 */

#ifndef RMB_OBS_HISTOGRAM_HH
#define RMB_OBS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace rmb {
namespace obs {

class LogHistogram
{
  public:
    /** Bucket 0 holds exactly 0; bucket i>=1 holds [2^(i-1), 2^i). */
    static constexpr std::size_t kNumBuckets = 64;

    /** Index of the bucket containing @p value. */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Inclusive lower bound of bucket @p index. */
    static std::uint64_t bucketLow(std::size_t index);

    void add(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return min_; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    std::uint64_t
    bucketCount(std::size_t index) const
    {
        return buckets_[index];
    }

    /**
     * Approximate @p p-th percentile (p in [0, 1]): walk the
     * cumulative counts to the containing bucket, interpolate
     * linearly within it, clamp to the exact [min, max] range.
     * NaN when empty.
     */
    double percentile(double p) const;

    /**
     * One JSON object: {count, min, max, mean, p50, p90, p99,
     * buckets: [[low, count], ...]} with only non-empty buckets
     * listed.  Empty histograms render the moments as null.
     */
    std::string toJson() const;

    void reset();

  private:
    std::uint64_t buckets_[kNumBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_HISTOGRAM_HH
