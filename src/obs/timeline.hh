/**
 * @file
 * Periodic timeline sampler.
 *
 * End-of-run averages hide saturation onset; the sampler snapshots a
 * set of named probes every `period` ticks into parallel arrays that
 * a RunReport embeds as a "timeline" section.  Sampling rides the
 * DES event queue itself (so samples interleave deterministically
 * with protocol events and never touch any RNG), which means the
 * sampler must know when to stop rescheduling or it would keep the
 * simulation alive forever: the stop predicate is checked after
 * every sample.
 */

#ifndef RMB_OBS_TIMELINE_HH
#define RMB_OBS_TIMELINE_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace rmb {
namespace obs {

class TimelineSampler
{
  public:
    /** Sample every @p period ticks (must be >= 1). */
    TimelineSampler(sim::Simulator &simulator, sim::Tick period);

    TimelineSampler(const TimelineSampler &) = delete;
    TimelineSampler &operator=(const TimelineSampler &) = delete;

    /** Register probe @p fn under @p name; call before start(). */
    void addSeries(const std::string &name,
                   std::function<double()> fn);

    /**
     * Stop rescheduling once @p done returns true at a sample point
     * (the final sample is still taken).  Without one, sampling
     * continues forever and a drain-the-queue run never ends.
     */
    void setStopWhen(std::function<bool()> done);

    /** Schedule the first sample, `period` ticks from now. */
    void start();

    std::size_t sampleCount() const { return ticks_.size(); }

    /**
     * {"period":N,"ticks":[...],"series":{name:[...]}} - parallel
     * arrays, one value per series per sample.
     */
    std::string toJson() const;

  private:
    void sample();

    sim::Simulator &simulator_;
    sim::Tick period_;
    std::function<bool()> stopWhen_;
    std::vector<std::pair<std::string, std::function<double()>>>
        series_;
    std::vector<sim::Tick> ticks_;
    std::vector<std::vector<double>> values_; //!< per series
};

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_TIMELINE_HH
