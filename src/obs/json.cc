#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace rmb {
namespace obs {

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::field(const std::string &key, double v)
{
    comma();
    writeKey(key);
    if (std::isnan(v) || std::isinf(v))
        out_ << "null";
    else
        out_ << v;
}

namespace {

/** Recursive-descent JSON validator over @p s, cursor at @p i. */
class Validator
{
  public:
    explicit Validator(const std::string &s) : s_(s) {}

    bool
    run()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return i_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (depth_ > 256 || i_ >= s_.size())
            return false;
        switch (s_[i_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++depth_;
        ++i_; // '{'
        skipWs();
        if (peek() == '}') {
            ++i_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (peek() != '"' || !string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++i_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            if (peek() == '}') {
                ++i_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++depth_;
        ++i_; // '['
        skipWs();
        if (peek() == ']') {
            ++i_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            if (peek() == ']') {
                ++i_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        ++i_; // '"'
        while (i_ < s_.size()) {
            const char c = s_[i_];
            if (c == '"') {
                ++i_;
                return true;
            }
            if (c == '\\') {
                ++i_;
                if (i_ >= s_.size())
                    return false;
                const char e = s_[i_];
                if (e == 'u') {
                    for (int d = 0; d < 4; ++d) {
                        ++i_;
                        if (i_ >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[i_]))) {
                            return false;
                        }
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            }
            ++i_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = i_;
        if (peek() == '-')
            ++i_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++i_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++i_;
            if (peek() == '+' || peek() == '-')
                ++i_;
            if (!digits())
                return false;
        }
        return i_ > start;
    }

    bool
    digits()
    {
        const std::size_t start = i_;
        while (i_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[i_]))) {
            ++i_;
        }
        return i_ > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++i_) {
            if (i_ >= s_.size() || s_[i_] != *p)
                return false;
        }
        return true;
    }

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

    void
    skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                s_[i_] == '\r')) {
            ++i_;
        }
    }

    const std::string &s_;
    std::size_t i_ = 0;
    int depth_ = 0;
};

} // namespace

bool
jsonValid(const std::string &text)
{
    return Validator(text).run();
}

std::string
jsonArray(const std::vector<std::string> &elements)
{
    std::string out = "[";
    for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i)
            out += ',';
        out += elements[i];
    }
    return out + ']';
}

} // namespace obs
} // namespace rmb
