/**
 * @file
 * Bundled TraceSink implementations.
 *
 * - NullSink: discards everything (an explicit "tracing off").
 * - CountingSink: per-kind event counters, for tests and cheap
 *   aggregate checks.
 * - RingBufferSink: retains the last N events for post-mortem dumps
 *   (attach one and print it from an invariant-failure handler).
 * - JsonlFileSink: streams every event as one JSON line to a file.
 */

#ifndef RMB_OBS_SINKS_HH
#define RMB_OBS_SINKS_HH

#include <array>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace rmb {
namespace obs {

/** Sink that drops every event. */
class NullSink final : public TraceSink
{
  public:
    void onEvent(const TraceEvent &) override {}
};

/** Sink that counts events per kind. */
class CountingSink final : public TraceSink
{
  public:
    void
    onEvent(const TraceEvent &event) override
    {
        ++counts_[static_cast<std::size_t>(event.kind)];
        ++total_;
    }

    std::uint64_t
    count(EventKind kind) const
    {
        return counts_[static_cast<std::size_t>(kind)];
    }

    std::uint64_t total() const { return total_; }

    void
    reset()
    {
        counts_.fill(0);
        total_ = 0;
    }

  private:
    std::array<std::uint64_t, kNumEventKinds> counts_{};
    std::uint64_t total_ = 0;
};

/**
 * Sink retaining the last @p capacity events in a circular buffer.
 * Intended as a flight recorder: cheap enough to leave attached, and
 * dump() renders the tail as JSONL when something goes wrong.
 */
class RingBufferSink final : public TraceSink
{
  public:
    explicit RingBufferSink(std::size_t capacity);

    void onEvent(const TraceEvent &event) override;

    /** Events currently retained (<= capacity). */
    std::size_t size() const;

    /** Total events ever seen (retained + overwritten). */
    std::uint64_t seen() const { return seen_; }

    std::size_t capacity() const { return capacity_; }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Render the retained events as JSONL, oldest first. */
    void dump(std::ostream &os) const;

    /**
     * Flight-recorder dump: the retained tail as human-readable
     * lines (obs::formatEvent), oldest first, with a header giving
     * the seen/retained counts.  Wired into the panic path by
     * net::Network::setTraceSink.
     */
    void postMortem(std::ostream &os) const override;

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> buffer_;
    std::size_t next_ = 0;
    std::uint64_t seen_ = 0;
};

/**
 * Sink fanning every event out to two downstream sinks (either may
 * be nullptr).  Lets a run keep a CountingSink attached alongside a
 * JsonlFileSink without the network knowing.  postMortem() forwards
 * to both, first sink first.
 */
class TeeSink final : public TraceSink
{
  public:
    TeeSink(TraceSink *first, TraceSink *second)
        : first_(first), second_(second)
    {}

    void
    onEvent(const TraceEvent &event) override
    {
        if (first_)
            first_->onEvent(event);
        if (second_)
            second_->onEvent(event);
    }

    void
    postMortem(std::ostream &os) const override
    {
        if (first_)
            first_->postMortem(os);
        if (second_)
            second_->postMortem(os);
    }

  private:
    TraceSink *first_;
    TraceSink *second_;
};

/**
 * Sink streaming events to @p path as JSON lines.  Fails fast (via
 * fatal) if the file cannot be opened or a write fails, so a traced
 * run never silently produces a truncated file.
 */
class JsonlFileSink final : public TraceSink
{
  public:
    explicit JsonlFileSink(const std::string &path);
    ~JsonlFileSink() override;

    void onEvent(const TraceEvent &event) override;

    /** Events written so far. */
    std::uint64_t written() const { return written_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
    std::uint64_t written_ = 0;
};

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_SINKS_HH
