#include "obs/sinks.hh"

#include <ostream>

#include "common/logging.hh"

namespace rmb {
namespace obs {

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity)
{
    rmb_assert(capacity_ > 0, "RingBufferSink needs capacity >= 1");
    buffer_.reserve(capacity_);
}

void
RingBufferSink::onEvent(const TraceEvent &event)
{
    if (buffer_.size() < capacity_) {
        buffer_.push_back(event);
    } else {
        buffer_[next_] = event;
    }
    next_ = (next_ + 1) % capacity_;
    ++seen_;
}

std::size_t
RingBufferSink::size() const
{
    return buffer_.size();
}

std::vector<TraceEvent>
RingBufferSink::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(buffer_.size());
    if (buffer_.size() < capacity_) {
        // Not yet wrapped: insertion order is already oldest-first.
        out = buffer_;
        return out;
    }
    for (std::size_t i = 0; i < capacity_; ++i)
        out.push_back(buffer_[(next_ + i) % capacity_]);
    return out;
}

void
RingBufferSink::dump(std::ostream &os) const
{
    for (const TraceEvent &event : events())
        os << toJsonLine(event) << '\n';
}

void
RingBufferSink::postMortem(std::ostream &os) const
{
    os << "=== trace flight recorder: last " << buffer_.size()
       << " of " << seen_ << " events ===\n";
    for (const TraceEvent &event : events())
        os << formatEvent(event) << '\n';
}

JsonlFileSink::JsonlFileSink(const std::string &path)
    : path_(path), out_(path)
{
    if (!out_)
        fatal("cannot open trace file '", path_, "' for writing");
}

JsonlFileSink::~JsonlFileSink()
{
    out_.flush();
}

void
JsonlFileSink::onEvent(const TraceEvent &event)
{
    out_ << toJsonLine(event) << '\n';
    if (!out_)
        fatal("write to trace file '", path_, "' failed");
    ++written_;
}

} // namespace obs
} // namespace rmb
