#include "obs/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "obs/json.hh"

namespace rmb {
namespace obs {

const char *
JsonValue::kindName() const
{
    switch (kind_) {
      case Kind::Null: return "null";
      case Kind::Bool: return "boolean";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

bool
JsonValue::asUint64(std::uint64_t &out) const
{
    if (kind_ != Kind::Number || string_.empty() ||
        string_[0] == '-') {
        return false;
    }
    for (const char c : string_) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false; // fractions / exponents are not integers
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(string_.c_str(), &end, 10);
    if (errno != 0 || end != string_.c_str() + string_.size())
        return false;
    out = v;
    return true;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::serialize() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Number:
        return string_; // the exact source token
      case Kind::String:
        return '"' + jsonEscape(string_) + '"';
      case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            out += array_[i].serialize();
        }
        return out + ']';
      }
      case Kind::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            out += '"' + jsonEscape(members_[i].first) + "\":";
            out += members_[i].second.serialize();
        }
        return out + '}';
      }
    }
    return "null";
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v, std::string token)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    j.number_ = v;
    j.string_ = std::move(token);
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.kind_ = Kind::String;
    j.string_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue j;
    j.kind_ = Kind::Array;
    j.array_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeObject(Members v)
{
    JsonValue j;
    j.kind_ = Kind::Object;
    j.members_ = std::move(v);
    return j;
}

namespace {

/**
 * Recursive-descent parser; mirrors the Validator in json.cc but
 * builds the value tree and reports *why* a document is malformed.
 */
class Parser
{
  public:
    explicit Parser(const std::string &s) : s_(s) {}

    bool
    run(JsonValue &out, std::string &error)
    {
        skipWs();
        if (!value(out)) {
            error = error_ + " (at byte " + std::to_string(i_) + ")";
            return false;
        }
        skipWs();
        if (i_ != s_.size()) {
            error = "trailing characters after the document (at byte " +
                    std::to_string(i_) + ")";
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (error_.empty())
            error_ = why;
        return false;
    }

    bool
    value(JsonValue &out)
    {
        if (depth_ > 256)
            return fail("nesting deeper than 256 levels");
        if (i_ >= s_.size())
            return fail("unexpected end of document");
        switch (s_[i_]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"': return string(out);
          case 't': return literal("true", JsonValue::makeBool(true), out);
          case 'f': return literal("false", JsonValue::makeBool(false), out);
          case 'n': return literal("null", JsonValue::makeNull(), out);
          default: return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        ++depth_;
        ++i_; // '{'
        JsonValue::Members members;
        skipWs();
        if (peek() == '}') {
            ++i_;
            --depth_;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            JsonValue key;
            if (peek() != '"' || !string(key))
                return fail("expected a '\"key\"' in object");
            skipWs();
            if (peek() != ':')
                return fail("expected ':' after object key '" +
                            key.string() + "'");
            ++i_;
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            members.emplace_back(key.string(), std::move(v));
            skipWs();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            if (peek() == '}') {
                ++i_;
                --depth_;
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out)
    {
        ++depth_;
        ++i_; // '['
        std::vector<JsonValue> elements;
        skipWs();
        if (peek() == ']') {
            ++i_;
            --depth_;
            out = JsonValue::makeArray(std::move(elements));
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            elements.push_back(std::move(v));
            skipWs();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            if (peek() == ']') {
                ++i_;
                --depth_;
                out = JsonValue::makeArray(std::move(elements));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(JsonValue &out)
    {
        ++i_; // '"'
        std::string text;
        while (i_ < s_.size()) {
            const char c = s_[i_];
            if (c == '"') {
                ++i_;
                out = JsonValue::makeString(std::move(text));
                return true;
            }
            if (c == '\\') {
                ++i_;
                if (i_ >= s_.size())
                    return fail("unterminated escape in string");
                switch (s_[i_]) {
                  case '"': text += '"'; break;
                  case '\\': text += '\\'; break;
                  case '/': text += '/'; break;
                  case 'b': text += '\b'; break;
                  case 'f': text += '\f'; break;
                  case 'n': text += '\n'; break;
                  case 'r': text += '\r'; break;
                  case 't': text += '\t'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int d = 0; d < 4; ++d) {
                        ++i_;
                        if (i_ >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[i_]))) {
                            return fail("bad \\u escape in string");
                        }
                        const char h = s_[i_];
                        code = code * 16 +
                               (std::isdigit(
                                    static_cast<unsigned char>(h))
                                    ? static_cast<unsigned>(h - '0')
                                    : static_cast<unsigned>(
                                          std::tolower(h) - 'a') +
                                          10);
                    }
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are passed through as two code points;
                    // the emitters never produce them).
                    if (code < 0x80) {
                        text += static_cast<char>(code);
                    } else if (code < 0x800) {
                        text += static_cast<char>(0xc0 | (code >> 6));
                        text +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        text +=
                            static_cast<char>(0xe0 | (code >> 12));
                        text += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        text +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape in string");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control character in string");
            } else {
                text += c;
            }
            ++i_;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = i_;
        if (peek() == '-')
            ++i_;
        if (!digits())
            return fail("expected a value");
        if (peek() == '.') {
            ++i_;
            if (!digits())
                return fail("digits must follow '.' in number");
        }
        if (peek() == 'e' || peek() == 'E') {
            ++i_;
            if (peek() == '+' || peek() == '-')
                ++i_;
            if (!digits())
                return fail("digits must follow exponent in number");
        }
        std::string token = s_.substr(start, i_ - start);
        const double v = std::strtod(token.c_str(), nullptr);
        out = JsonValue::makeNumber(v, std::move(token));
        return true;
    }

    bool
    digits()
    {
        const std::size_t start = i_;
        while (i_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[i_]))) {
            ++i_;
        }
        return i_ > start;
    }

    bool
    literal(const char *word, JsonValue v, JsonValue &out)
    {
        for (const char *p = word; *p; ++p, ++i_) {
            if (i_ >= s_.size() || s_[i_] != *p)
                return fail(std::string("bad literal (expected '") +
                            word + "')");
        }
        out = std::move(v);
        return true;
    }

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

    void
    skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                s_[i_] == '\r')) {
            ++i_;
        }
    }

    const std::string &s_;
    std::size_t i_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string &error)
{
    return Parser(text).run(out, error);
}

} // namespace obs
} // namespace rmb
