#include "obs/perfetto.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "obs/json.hh"

namespace rmb {
namespace obs {

namespace {

constexpr int kPidMessages = 1;
constexpr int kPidSegments = 2;
constexpr int kPidCompaction = 3;

struct ChromeEvent
{
    sim::Tick ts = 0;
    std::string json;
};

std::string
metadataEvent(const char *what, int pid, int tid,
              const std::string &name, bool process)
{
    std::ostringstream out;
    out << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":"
        << pid;
    if (!process)
        out << ",\"tid\":" << tid;
    out << ",\"ts\":0,\"args\":{\"name\":\"" << jsonEscape(name)
        << "\"}}";
    return out.str();
}

int
pidOf(SpanKind kind)
{
    switch (kind) {
      case SpanKind::SegmentOccupancy:
      case SpanKind::CompactionMove:
        return kPidSegments;
      case SpanKind::IncCycle:
        return kPidCompaction;
      default:
        return kPidMessages;
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<Span> &spans,
                 const std::vector<TraceEvent> &instants)
{
    std::vector<ChromeEvent> events;
    events.reserve(spans.size() + instants.size());

    // Dense, deterministic lane numbering for the segment process:
    // (gap, level) sorted ascending.
    std::map<std::pair<std::uint32_t, std::int32_t>, int> lanes;
    for (const Span &span : spans) {
        if (pidOf(span.kind) == kPidSegments)
            lanes.emplace(std::make_pair(span.gap, span.level), 0);
    }
    {
        int next = 0;
        for (auto &[key, tid] : lanes)
            tid = next++;
    }

    std::vector<std::string> metadata;
    metadata.push_back(
        metadataEvent("process_name", kPidMessages, 0, "messages",
                      true));
    metadata.push_back(
        metadataEvent("process_name", kPidSegments, 0, "segments",
                      true));
    metadata.push_back(
        metadataEvent("process_name", kPidCompaction, 0,
                      "compaction", true));
    for (const auto &[key, tid] : lanes) {
        std::ostringstream name;
        name << "gap " << key.first << " level " << key.second;
        metadata.push_back(metadataEvent("thread_name", kPidSegments,
                                         tid, name.str(), false));
    }

    for (const Span &span : spans) {
        const int pid = pidOf(span.kind);
        int tid = static_cast<int>(span.node);
        if (pid == kPidSegments)
            tid = lanes[std::make_pair(span.gap, span.level)];

        std::ostringstream out;
        out << "{\"name\":\"" << spanKindName(span.kind)
            << "\",\"ph\":\"X\",\"ts\":" << span.begin
            << ",\"dur\":" << span.duration() << ",\"pid\":" << pid
            << ",\"tid\":" << tid << ",\"args\":{";
        bool first = true;
        const auto arg = [&](const char *key, std::uint64_t v) {
            if (!first)
                out << ',';
            first = false;
            out << '"' << key << "\":" << v;
        };
        if (span.message != 0)
            arg("msg", span.message);
        if (span.bus != 0)
            arg("bus", span.bus);
        if (span.kind == SpanKind::Setup)
            arg("attempt", span.a);
        else if (span.kind == SpanKind::Teardown)
            arg("teardown_kind", span.a);
        else if (span.kind == SpanKind::CompactionMove)
            arg("to_level", span.a);
        else if (span.kind == SpanKind::IncCycle)
            arg("cycle", span.a);
        if (span.open)
            arg("open_at_end", 1);
        if (span.severed)
            arg("severed", 1);
        if (span.refused)
            arg("refused", 1);
        out << "}}";
        events.push_back(ChromeEvent{span.begin, out.str()});
    }

    for (const TraceEvent &e : instants) {
        std::ostringstream out;
        out << "{\"name\":\"" << eventKindName(e.kind)
            << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.at
            << ",\"pid\":" << kPidMessages << ",\"tid\":" << e.node
            << ",\"args\":{\"msg\":" << e.message << ",\"a\":" << e.a
            << "}}";
        events.push_back(ChromeEvent{e.at, out.str()});
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const ChromeEvent &a, const ChromeEvent &b) {
                         return a.ts < b.ts;
                     });

    os << '[';
    bool first = true;
    for (const std::string &m : metadata) {
        if (!first)
            os << ',';
        first = false;
        os << '\n' << m;
    }
    for (const ChromeEvent &e : events) {
        if (!first)
            os << ',';
        first = false;
        os << '\n' << e.json;
    }
    os << "\n]\n";
}

} // namespace obs
} // namespace rmb
