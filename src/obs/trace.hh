/**
 * @file
 * Protocol trace events and the pluggable sink interface.
 *
 * A network emits one TraceEvent per protocol action (injection,
 * header hop, Hack/Nack, compaction move, ...) into an attached
 * TraceSink.  With no sink attached the emission sites reduce to a
 * single pointer test, so tracing costs nothing unless requested.
 *
 * The event is a flat POD on purpose: sinks that buffer (the
 * RingBufferSink post-mortem buffer) copy it by value, and the JSONL
 * serialisation is a single pass over fixed fields.
 */

#ifndef RMB_OBS_TRACE_HH
#define RMB_OBS_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/types.hh"

namespace rmb {
namespace obs {

/**
 * The protocol vocabulary.  Events marked [net] are emitted by every
 * network through the shared net::Network bookkeeping; the rest are
 * RMB-specific.
 */
enum class EventKind : std::uint8_t
{
    Inject,          //!< [net] header first injected (a=dst, b=flits)
    HeaderHop,       //!< header occupied (gap, level) of one more gap
    Block,           //!< header entered the Blocked state at `node`
    Unblock,         //!< blocked header resumed advancing
    Hack,            //!< [net] circuit established (Hack at source)
    Nack,            //!< refusal; a = NackReason
    Retry,           //!< [net] re-injection (a = retry ordinal)
    Backoff,         //!< retry scheduled after a ticks of backoff
    DataFlit,        //!< data flit departed the source (a = seq)
    Dack,            //!< data-flit ack at the source (a = acked count)
    Deliver,         //!< [net] final flit accepted (a = path hops)
    Fail,            //!< [net] message permanently failed
    Teardown,        //!< teardown started; a = TeardownKind
    CompactionMake,  //!< make step: level -> a at `gap` (b = moveSeq)
    CompactionBreak, //!< break step completed; level = new, a = old
    CycleFlip,       //!< INC `node` finished a cycle (a = cycle count)
    SegmentFail,     //!< segment (gap, level) faulted (a = occupant)
    SegmentRepair,   //!< faulted segment (gap, level) repaired
    BusSevered,      //!< live bus lost a segment; a = SeverReason
    MessageRecovered, //!< delivery after >= 1 sever (a = latency)
    WatchdogFire,    //!< source watchdog expired on a silent bus
    SegmentFree,     //!< segment (gap, level) released (a = reason)
};

/** Number of EventKind values (for per-kind counters). */
constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::SegmentFree) + 1;

/** Reason codes carried in the `a` field of a Nack event. */
enum NackReason : std::uint64_t
{
    kNackDestBusy = 0,   //!< destination had no free receive port
    kNackNoSegment = 1,  //!< no reachable free segment (NackRetry)
    kNackTimeout = 2,    //!< Wait-mode header timeout expired
};

/** Kind codes carried in the `a` field of a Teardown event. */
enum TeardownKind : std::uint64_t
{
    kTeardownFack = 0, //!< delivery complete, Fack freeing the bus
    kTeardownNack = 1, //!< refusal/abort, Nack freeing the bus
    kTeardownFault = 2, //!< severed by a fault or watchdog
};

/** Reason codes carried in the `a` field of a BusSevered event. */
enum SeverReason : std::uint64_t
{
    kSeverFault = 0,    //!< a held segment was fault-injected
    kSeverWatchdog = 1, //!< the source watchdog saw no progress
};

/** Reason codes carried in the `a` field of a SegmentFree event. */
enum SegmentFreeReason : std::uint64_t
{
    kFreeTeardown = 0,   //!< released by a teardown wave
    kFreeCompaction = 1, //!< old level freed by a break step
    kFreeMoveCancel = 2, //!< half-made move abandoned (fault path)
};

/** Stable lower_snake name of @p kind (used in the JSONL output). */
const char *eventKindName(EventKind kind);

/**
 * Reverse of eventKindName: parse @p name into @p out.  Returns
 * false (leaving @p out untouched) when the name is unknown, so
 * offline readers can reject malformed traces without panicking.
 */
bool eventKindFromName(const std::string &name, EventKind &out);

/**
 * One traced protocol action.  Fields that do not apply to a kind
 * stay at their defaults (0 / -1); the per-kind meaning of the
 * generic `a` / `b` payload is documented on EventKind.
 */
struct TraceEvent
{
    EventKind kind = EventKind::Inject;
    sim::Tick at = 0;          //!< simulated time of the action
    std::uint64_t message = 0; //!< net::MessageId, 0 = n/a
    std::uint64_t bus = 0;     //!< virtual bus id, 0 = n/a
    std::uint32_t node = 0;    //!< node / INC where it happened
    std::uint32_t gap = 0;     //!< gap touched, when meaningful
    std::int32_t level = -1;   //!< bus level, -1 = n/a
    std::uint64_t a = 0;       //!< kind-specific payload
    std::uint64_t b = 0;       //!< kind-specific payload
};

/** Serialise @p event as one JSON object (no trailing newline). */
std::string toJsonLine(const TraceEvent &event);

/**
 * Render @p event as a human-readable one-liner for post-mortem
 * dumps: aligned tick, kind, and only the fields that apply.
 */
std::string formatEvent(const TraceEvent &event);

/**
 * Receiver of trace events.  Implementations must not re-enter the
 * emitting network; they see events in emission order, which is the
 * DES execution order.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Handle one event; called synchronously at emission time. */
    virtual void onEvent(const TraceEvent &event) = 0;

    /**
     * Write whatever post-mortem context the sink holds to @p os.
     * Called from the panic path when the network this sink is
     * attached to trips an invariant; the default has nothing to
     * say.  Implementations must not allocate unboundedly or panic.
     */
    virtual void postMortem(std::ostream &os) const { (void)os; }
};

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_TRACE_HH
