/**
 * @file
 * Minimal JSON assembly and validation.
 *
 * JsonWriter builds one JSON document imperatively (objects, arrays,
 * scalar fields, pre-serialised raw inserts); it is the single
 * serialiser behind MetricsRegistry::snapshot(), RunReport and the
 * stats reports, so every machine-readable output of the project
 * escapes strings and renders numbers the same way.
 *
 * jsonValid() is a dependency-free syntax checker used by the tests
 * and the json_check tool to keep the emitters honest.
 */

#ifndef RMB_OBS_JSON_HH
#define RMB_OBS_JSON_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace rmb {
namespace obs {

/** Escape @p raw for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &raw);

/** True iff @p text is one syntactically valid JSON value. */
bool jsonValid(const std::string &text);

/** Join pre-serialised JSON values into one array document. */
std::string jsonArray(const std::vector<std::string> &elements);

/**
 * Streaming JSON writer.  The caller is responsible for balanced
 * begin/end calls; keys are only valid inside objects, bare elements
 * only inside arrays.
 */
class JsonWriter
{
  public:
    /** Open an object; @p key empty at the top level / in arrays. */
    void
    beginObject(const std::string &key = "")
    {
        comma();
        writeKey(key);
        out_ << '{';
        first_ = true;
    }

    void
    endObject()
    {
        out_ << '}';
        first_ = false;
    }

    /** Open an array; @p key empty at the top level / in arrays. */
    void
    beginArray(const std::string &key = "")
    {
        comma();
        writeKey(key);
        out_ << '[';
        first_ = true;
    }

    void
    endArray()
    {
        out_ << ']';
        first_ = false;
    }

    void
    field(const std::string &key, std::uint64_t v)
    {
        comma();
        writeKey(key);
        out_ << v;
    }

    void
    field(const std::string &key, std::int64_t v)
    {
        comma();
        writeKey(key);
        out_ << v;
    }

    /** NaN / infinity (empty stats) are emitted as null. */
    void field(const std::string &key, double v);

    void
    field(const std::string &key, const std::string &v)
    {
        comma();
        writeKey(key);
        out_ << '"' << jsonEscape(v) << '"';
    }

    void
    field(const std::string &key, bool v)
    {
        comma();
        writeKey(key);
        out_ << (v ? "true" : "false");
    }

    /** Insert @p json (a pre-serialised value) under @p key. */
    void
    raw(const std::string &key, const std::string &json)
    {
        comma();
        writeKey(key);
        out_ << json;
    }

    /** Append one string element to the open array. */
    void
    element(const std::string &v)
    {
        comma();
        out_ << '"' << jsonEscape(v) << '"';
    }

    /** Append one pre-serialised element to the open array. */
    void
    elementRaw(const std::string &json)
    {
        comma();
        out_ << json;
    }

    std::string str() const { return out_.str(); }

  private:
    void
    comma()
    {
        if (!first_)
            out_ << ',';
        first_ = false;
    }

    void
    writeKey(const std::string &key)
    {
        if (!key.empty())
            out_ << '"' << jsonEscape(key) << "\":";
    }

    std::ostringstream out_;
    bool first_ = true;
};

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_JSON_HH
