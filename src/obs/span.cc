#include "obs/span.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace rmb {
namespace obs {

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Backoff: return "backoff";
      case SpanKind::Setup: return "setup";
      case SpanKind::Streaming: return "streaming";
      case SpanKind::Blocked: return "blocked";
      case SpanKind::Teardown: return "teardown";
      case SpanKind::SegmentOccupancy: return "segment_occupancy";
      case SpanKind::CompactionMove: return "compaction_move";
      case SpanKind::IncCycle: return "inc_cycle";
    }
    panic("unknown SpanKind ", static_cast<int>(kind));
}

void
SpanBuilder::close(Span span, sim::Tick end)
{
    span.end = end;
    if (!span.open) {
        phaseStats_[static_cast<std::size_t>(span.kind)].add(
            static_cast<double>(span.duration()));
    }
    spans_.push_back(span);
}

void
SpanBuilder::closeOpenMessagePhases(const TraceEvent &event,
                                    bool severed)
{
    for (auto *open : {&openSetup_, &openStreaming_, &openBlocked_}) {
        auto it = open->find(event.message);
        if (it == open->end())
            continue;
        Span span = it->second;
        open->erase(it);
        span.severed = severed;
        close(span, event.at);
    }
}

void
SpanBuilder::onEvent(const TraceEvent &event)
{
    rmb_assert(!finished_,
               "SpanBuilder::onEvent after finish()");
    ++eventCount_;
    switch (event.kind) {
      case EventKind::Inject:
      case EventKind::Retry: {
        Span span;
        span.kind = SpanKind::Setup;
        span.begin = event.at;
        span.message = event.message;
        span.node = event.node;
        // Attempt ordinal: 0 on the first injection, the retry
        // count afterwards.
        span.a = event.kind == EventKind::Retry ? event.a : 0;
        openSetup_[event.message] = span;
        break;
      }
      case EventKind::Backoff: {
        Span span;
        span.kind = SpanKind::Backoff;
        span.begin = event.at;
        span.message = event.message;
        span.node = event.node;
        span.a = event.a;
        close(span, event.at + event.a);
        break;
      }
      case EventKind::Hack: {
        auto it = openSetup_.find(event.message);
        if (it != openSetup_.end()) {
            Span span = it->second;
            openSetup_.erase(it);
            close(span, event.at);
        }
        Span span;
        span.kind = SpanKind::Streaming;
        span.begin = event.at;
        span.message = event.message;
        span.bus = event.bus;
        span.node = event.node;
        openStreaming_[event.message] = span;
        break;
      }
      case EventKind::Nack: {
        auto it = openSetup_.find(event.message);
        if (it != openSetup_.end()) {
            Span span = it->second;
            openSetup_.erase(it);
            span.refused = true;
            close(span, event.at);
        }
        instants_.push_back(event);
        break;
      }
      case EventKind::Deliver: {
        auto it = openStreaming_.find(event.message);
        if (it != openStreaming_.end()) {
            Span span = it->second;
            openStreaming_.erase(it);
            close(span, event.at);
        }
        break;
      }
      case EventKind::Fail:
        closeOpenMessagePhases(event, false);
        instants_.push_back(event);
        break;
      case EventKind::Block: {
        Span span;
        span.kind = SpanKind::Blocked;
        span.begin = event.at;
        span.message = event.message;
        span.bus = event.bus;
        span.node = event.node;
        span.gap = event.gap;
        openBlocked_[event.message] = span;
        break;
      }
      case EventKind::Unblock: {
        auto it = openBlocked_.find(event.message);
        if (it != openBlocked_.end()) {
            Span span = it->second;
            openBlocked_.erase(it);
            close(span, event.at);
        }
        break;
      }
      case EventKind::Teardown: {
        OpenTeardown open;
        open.span.kind = SpanKind::Teardown;
        open.span.begin = event.at;
        open.span.end = event.at;
        open.span.message = event.message;
        open.span.bus = event.bus;
        open.span.node = event.node;
        open.span.a = event.a;
        openTeardown_[event.bus] = open;
        break;
      }
      case EventKind::HeaderHop: {
        Span span;
        span.kind = SpanKind::SegmentOccupancy;
        span.begin = event.at;
        span.message = event.message;
        span.bus = event.bus;
        span.node = event.node;
        span.gap = event.gap;
        span.level = event.level;
        openSegments_[segKey(event.gap, event.level)] = span;
        break;
      }
      case EventKind::CompactionMake: {
        // The make step claims the *target* level (a) while the old
        // level keeps carrying the signal: a new occupancy lane
        // opens at (gap, a) and a move interval opens keyed by the
        // old level.
        const auto target = static_cast<std::int32_t>(event.a);
        Span seg;
        seg.kind = SpanKind::SegmentOccupancy;
        seg.begin = event.at;
        seg.message = event.message;
        seg.bus = event.bus;
        seg.node = event.node;
        seg.gap = event.gap;
        seg.level = target;
        openSegments_[segKey(event.gap, target)] = seg;

        Span move;
        move.kind = SpanKind::CompactionMove;
        move.begin = event.at;
        move.message = event.message;
        move.bus = event.bus;
        move.node = event.node;
        move.gap = event.gap;
        move.level = event.level;
        move.a = event.a;
        openMoves_[segKey(event.gap, event.level)] = move;
        break;
      }
      case EventKind::CompactionBreak: {
        // level = new (to) level, a = freed (from) level: the move
        // was keyed by the from level.
        auto it = openMoves_.find(
            segKey(event.gap, static_cast<std::int32_t>(event.a)));
        if (it != openMoves_.end()) {
            Span span = it->second;
            openMoves_.erase(it);
            close(span, event.at);
        }
        break;
      }
      case EventKind::SegmentFree: {
        auto seg = openSegments_.find(
            segKey(event.gap, event.level));
        if (seg != openSegments_.end()) {
            Span span = seg->second;
            openSegments_.erase(seg);
            close(span, event.at);
        }
        auto td = openTeardown_.find(event.bus);
        if (td != openTeardown_.end()) {
            td->second.span.end = event.at;
            td->second.sawFree = true;
        }
        if (event.a == kFreeMoveCancel) {
            // A fault cancelled or early-completed a half-made
            // move.  The freed level tells which: the target
            // (cancel, move keyed one level up) or the old level
            // (early completion, move keyed at this level).
            auto cancel = openMoves_.find(
                segKey(event.gap, event.level + 1));
            if (cancel != openMoves_.end()) {
                Span span = cancel->second;
                openMoves_.erase(cancel);
                span.severed = true;
                close(span, event.at);
            } else {
                auto early = openMoves_.find(
                    segKey(event.gap, event.level));
                if (early != openMoves_.end()) {
                    Span span = early->second;
                    openMoves_.erase(early);
                    close(span, event.at);
                }
            }
        }
        break;
      }
      case EventKind::CycleFlip: {
        auto it = openCycles_.find(event.node);
        if (it != openCycles_.end()) {
            Span span = it->second;
            close(span, event.at);
        }
        Span span;
        span.kind = SpanKind::IncCycle;
        span.begin = event.at;
        span.node = event.node;
        span.gap = event.gap;
        span.a = event.a;
        openCycles_[event.node] = span;
        break;
      }
      case EventKind::BusSevered:
        closeOpenMessagePhases(event, true);
        instants_.push_back(event);
        break;
      case EventKind::SegmentFail:
      case EventKind::SegmentRepair:
      case EventKind::MessageRecovered:
      case EventKind::WatchdogFire:
        instants_.push_back(event);
        break;
      case EventKind::DataFlit:
      case EventKind::Dack:
        // Per-flit events stay inside the Streaming span.
        break;
    }
}

void
SpanBuilder::finish(sim::Tick now)
{
    if (finished_)
        return;
    finished_ = true;
    for (auto *open : {&openSetup_, &openStreaming_, &openBlocked_,
                       &openSegments_, &openMoves_}) {
        for (auto &[key, span] : *open) {
            span.open = true;
            close(span, now);
        }
        open->clear();
    }
    for (auto &[bus, td] : openTeardown_) {
        // A teardown that freed at least one segment ends at its
        // last free; one that never got that far is truly open.
        if (td.sawFree) {
            close(td.span, td.span.end);
        } else {
            td.span.open = true;
            close(td.span, now);
        }
    }
    openTeardown_.clear();
    for (auto &[node, span] : openCycles_) {
        span.open = true;
        close(span, now);
    }
    openCycles_.clear();
}

const sim::SampleStat &
SpanBuilder::phaseStat(SpanKind kind) const
{
    const auto index = static_cast<std::size_t>(kind);
    rmb_assert(index < kNumSpanKinds, "bad SpanKind");
    return phaseStats_[index];
}

std::vector<std::string>
checkTrace(const std::vector<TraceEvent> &events)
{
    std::vector<std::string> problems;
    const auto report = [&problems](const std::string &msg) {
        problems.push_back(msg);
    };

    sim::Tick prev = 0;
    std::map<std::uint64_t, std::uint64_t> segOwner; // key -> bus
    std::map<std::uint64_t, std::uint64_t> busHeld;  // bus -> count
    std::map<std::uint64_t, bool> injected;
    std::map<std::uint64_t, bool> hacked;
    std::map<std::uint64_t, bool> delivered;
    std::map<std::uint64_t, std::uint64_t> fackBus; // msg -> bus
    std::map<std::uint32_t, std::uint64_t> cycles;  // INC -> count
    std::uint32_t maxFlipNode = 0;
    bool sawFlip = false;

    const auto segKey = [](std::uint32_t gap, std::int32_t level) {
        return (static_cast<std::uint64_t>(gap) << 32) |
               static_cast<std::uint32_t>(level);
    };
    const auto occupy = [&](const TraceEvent &e, std::int32_t level) {
        const std::uint64_t key = segKey(e.gap, level);
        auto it = segOwner.find(key);
        if (it != segOwner.end()) {
            report(detail::concat(
                "[", e.at, "] segment (gap ", e.gap, ", level ",
                level, ") claimed by bus ", e.bus,
                " while held by bus ", it->second));
            return;
        }
        segOwner[key] = e.bus;
        ++busHeld[e.bus];
    };

    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        if (i > 0 && e.at < prev) {
            report(detail::concat(
                "event ", i, " (", eventKindName(e.kind),
                ") goes back in time: ", e.at, " after ", prev));
        }
        prev = e.at;

        switch (e.kind) {
          case EventKind::Inject:
            injected[e.message] = true;
            break;
          case EventKind::Hack:
            if (!injected.count(e.message)) {
                report(detail::concat(
                    "[", e.at, "] hack for message ", e.message,
                    " without a prior inject"));
            }
            hacked[e.message] = true;
            break;
          case EventKind::Deliver:
            if (!hacked.count(e.message)) {
                report(detail::concat(
                    "[", e.at, "] deliver of message ", e.message,
                    " without a prior hack"));
            }
            delivered[e.message] = true;
            break;
          case EventKind::Teardown:
            if (e.a == kTeardownFack)
                fackBus[e.message] = e.bus;
            break;
          case EventKind::HeaderHop:
            occupy(e, e.level);
            break;
          case EventKind::CompactionMake:
            occupy(e, static_cast<std::int32_t>(e.a));
            break;
          case EventKind::SegmentFree: {
            const std::uint64_t key = segKey(e.gap, e.level);
            auto it = segOwner.find(key);
            if (it == segOwner.end()) {
                report(detail::concat(
                    "[", e.at, "] segment (gap ", e.gap, ", level ",
                    e.level, ") freed while already free"));
                break;
            }
            if (it->second != e.bus) {
                report(detail::concat(
                    "[", e.at, "] segment (gap ", e.gap, ", level ",
                    e.level, ") freed by bus ", e.bus,
                    " but held by bus ", it->second));
            }
            auto held = busHeld.find(it->second);
            if (held != busHeld.end() && held->second > 0)
                --held->second;
            segOwner.erase(it);
            break;
          }
          case EventKind::CycleFlip:
            cycles[e.node] = e.a;
            maxFlipNode = std::max(maxFlipNode, e.node);
            sawFlip = true;
            break;
          default:
            break;
        }
    }

    // A delivered message must get its bus back: a Fack teardown
    // must start and every segment of that bus must be freed by the
    // end of the trace.  A dropped Fack shows up here.
    for (const auto &[msg, ok] : delivered) {
        auto it = fackBus.find(msg);
        if (it == fackBus.end()) {
            report(detail::concat(
                "message ", msg,
                " delivered but its bus never started a Fack"
                " teardown (dropped Fack?)"));
            continue;
        }
        auto held = busHeld.find(it->second);
        if (held != busHeld.end() && held->second != 0) {
            report(detail::concat(
                "bus ", it->second, " of delivered message ", msg,
                " still holds ", held->second,
                " segment(s) at trace end"));
        }
    }

    // Lemma 1: the systolic hand-shake keeps adjacent INC cycle
    // counts within 1 of each other at every instant, including the
    // final one recorded here.
    if (sawFlip) {
        const std::uint32_t n = maxFlipNode + 1;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t j = (i + 1) % n;
            const std::uint64_t a =
                cycles.count(i) ? cycles[i] : 0;
            const std::uint64_t b =
                cycles.count(j) ? cycles[j] : 0;
            const std::uint64_t skew = a > b ? a - b : b - a;
            if (skew > 1) {
                report(detail::concat(
                    "Lemma 1 violated: INC ", i, " cycle count ", a,
                    " vs neighbour INC ", j, " count ", b,
                    " (skew ", skew, " > 1)"));
            }
        }
    }
    return problems;
}

} // namespace obs
} // namespace rmb
