/**
 * @file
 * Parsed JSON values.
 *
 * JsonValue is the read-side counterpart of JsonWriter: a small
 * immutable tree the sweep engine parses specs and baselines into.
 * Object members keep their source order (like RunReport fields), so
 * re-serialising a document is deterministic.  Numbers keep their raw
 * source token alongside the double so 64-bit integers (seeds) round
 * trip exactly.
 */

#ifndef RMB_OBS_JSON_VALUE_HH
#define RMB_OBS_JSON_VALUE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rmb {
namespace obs {

/** One parsed JSON value (null / bool / number / string / array /
 *  object). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Members = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Kind as a lower-case word for error messages. */
    const char *kindName() const;

    bool boolean() const { return bool_; }
    double number() const { return number_; }

    /** The raw source token of a number (exact integer text). */
    const std::string &numberToken() const { return string_; }

    /**
     * The number as a uint64, if the source token is a non-negative
     * integer that fits; @return false otherwise.
     */
    bool asUint64(std::uint64_t &out) const;

    const std::string &string() const { return string_; }

    const std::vector<JsonValue> &array() const { return array_; }

    /** Object members in source order. */
    const Members &members() const { return members_; }

    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Compact canonical serialisation (no whitespace). */
    std::string serialize() const;

    // Construction helpers (parser and tests).
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v, std::string token);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue makeObject(Members v);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    /** String payload, or the raw token of a number. */
    std::string string_;
    std::vector<JsonValue> array_;
    Members members_;
};

/**
 * Parse @p text (one complete JSON document) into @p out.
 * @return true on success; on failure @p error gets one actionable
 * message with the byte offset of the problem.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_JSON_VALUE_HH
