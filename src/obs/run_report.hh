/**
 * @file
 * Machine-readable run reports.
 *
 * A RunReport is the JSON artifact a binary leaves behind for
 * scripting: tool identity, run parameters, result tables and any
 * embedded sub-documents (a stats report, a metrics snapshot).
 * Fields keep insertion order so reports diff cleanly between runs.
 */

#ifndef RMB_OBS_RUN_REPORT_HH
#define RMB_OBS_RUN_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rmb {
namespace obs {

/** One JSON document describing one run of one binary. */
class RunReport
{
  public:
    /** @param tool binary name, e.g. "rmbsim" or "bench_saturation". */
    explicit RunReport(std::string tool);

    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** Embed @p json (a pre-serialised JSON value) under @p key. */
    void setRaw(const std::string &key, std::string json);

    /** The whole report as one JSON object. */
    std::string toJson() const;

    /** Write toJson() plus a trailing newline; fatal on failure. */
    void write(const std::string &path) const;

  private:
    std::string tool_;
    /** (key, pre-serialised value), in insertion order. */
    std::vector<std::pair<std::string, std::string>> fields_;
};

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_RUN_REPORT_HH
