/**
 * @file
 * Chrome-trace-format (Trace Event JSON) export of reconstructed
 * spans, loadable in chrome://tracing and Perfetto's legacy
 * importer.
 *
 * The layout maps the RMB onto trace "processes":
 *  - pid 1 "messages": one thread per node; Setup / Streaming /
 *    Backoff / Blocked / Teardown spans plus the instant markers
 *    (Nack, SegmentFail, WatchdogFire, ...),
 *  - pid 2 "segments": one thread per (gap, level) lane;
 *    SegmentOccupancy and CompactionMove spans,
 *  - pid 3 "compaction": one thread per INC; IncCycle spans.
 *
 * Durations are emitted as complete ("X") events with ts/dur in
 * microseconds, 1 tick == 1 us, sorted by ts so the file satisfies
 * the monotonic-timestamp expectation of strict validators.
 */

#ifndef RMB_OBS_PERFETTO_HH
#define RMB_OBS_PERFETTO_HH

#include <iosfwd>
#include <vector>

#include "obs/span.hh"
#include "obs/trace.hh"

namespace rmb {
namespace obs {

/** Render @p spans and @p instants as one Chrome-trace JSON array. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<Span> &spans,
                      const std::vector<TraceEvent> &instants);

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_PERFETTO_HH
