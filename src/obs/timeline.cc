#include "obs/timeline.hh"

#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace rmb {
namespace obs {

TimelineSampler::TimelineSampler(sim::Simulator &simulator,
                                 sim::Tick period)
    : simulator_(simulator), period_(period)
{
    rmb_assert(period_ >= 1, "timeline period must be >= 1 tick");
}

void
TimelineSampler::addSeries(const std::string &name,
                           std::function<double()> fn)
{
    rmb_assert(ticks_.empty(),
               "addSeries after sampling started");
    series_.emplace_back(name, std::move(fn));
    values_.emplace_back();
}

void
TimelineSampler::setStopWhen(std::function<bool()> done)
{
    stopWhen_ = std::move(done);
}

void
TimelineSampler::start()
{
    rmb_assert(stopWhen_,
               "TimelineSampler needs a stop predicate before"
               " start(): an unconditional sampler keeps the event"
               " queue alive forever");
    simulator_.schedule(period_, [this] { sample(); });
}

void
TimelineSampler::sample()
{
    ticks_.push_back(simulator_.now());
    for (std::size_t i = 0; i < series_.size(); ++i)
        values_[i].push_back(series_[i].second());
    if (!stopWhen_())
        simulator_.schedule(period_, [this] { sample(); });
}

std::string
TimelineSampler::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.field("period", static_cast<std::uint64_t>(period_));
    json.beginArray("ticks");
    for (sim::Tick t : ticks_) {
        std::ostringstream v;
        v << t;
        json.elementRaw(v.str());
    }
    json.endArray();
    json.beginObject("series");
    for (std::size_t i = 0; i < series_.size(); ++i) {
        json.beginArray(series_[i].first);
        for (double v : values_[i]) {
            std::ostringstream out;
            out << v;
            json.elementRaw(out.str());
        }
        json.endArray();
    }
    json.endObject();
    json.endObject();
    return json.str();
}

} // namespace obs
} // namespace rmb
