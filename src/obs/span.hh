/**
 * @file
 * Causal span reconstruction over the flat trace-event stream.
 *
 * A SpanBuilder folds the per-action TraceEvents into intervals that
 * mirror the paper's circuit phases: per-message backoff, header
 * setup (HF -> Hack/Nack), data streaming (Hack -> final flit) and
 * teardown, plus per-(gap, level) segment-occupancy lanes,
 * compaction make/break moves and per-INC odd/even cycles.  The
 * result feeds the Chrome-trace exporter (obs/perfetto.hh), the
 * traceview phase-latency table, and the offline causality checker.
 *
 * The builder is itself a TraceSink, so it can sit directly on a
 * live network or be replayed over a JSONL trace offline; either
 * way it never touches the network, so attaching one cannot perturb
 * a deterministic run.
 */

#ifndef RMB_OBS_SPAN_HH
#define RMB_OBS_SPAN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rmb {
namespace obs {

/** The interval vocabulary built from EventKind sequences. */
enum class SpanKind : std::uint8_t
{
    Backoff,          //!< retry backoff window at the source
    Setup,            //!< injection/retry -> Hack, Nack or sever
    Streaming,        //!< Hack -> final-flit delivery
    Blocked,          //!< Wait-mode header blocked at a gap
    Teardown,         //!< teardown start -> last segment freed
    SegmentOccupancy, //!< one (gap, level) held by one bus
    CompactionMove,   //!< make step -> break / cancel / early done
    IncCycle,         //!< one odd/even compaction cycle of one INC
};

/** Number of SpanKind values (for per-kind phase stats). */
constexpr std::size_t kNumSpanKinds =
    static_cast<std::size_t>(SpanKind::IncCycle) + 1;

/** Stable lower_snake name of @p kind. */
const char *spanKindName(SpanKind kind);

/**
 * One reconstructed interval.  As with TraceEvent, fields that do
 * not apply stay at their defaults; `a` is kind-specific (Setup:
 * attempt ordinal; Teardown: TeardownKind; CompactionMove: target
 * level; IncCycle: cycle count).
 */
struct Span
{
    SpanKind kind = SpanKind::Setup;
    sim::Tick begin = 0;
    sim::Tick end = 0;
    /** True when the simulation ended with the span still open
     *  (finish() closes such spans at the final tick and flags
     *  them rather than dropping them). */
    bool open = false;
    /** True when the span was cut short by a fault/watchdog sever. */
    bool severed = false;
    /** True when a Setup span ended in a Nack instead of a Hack. */
    bool refused = false;
    std::uint64_t message = 0;
    std::uint64_t bus = 0;
    std::uint32_t node = 0;
    std::uint32_t gap = 0;
    std::int32_t level = -1;
    std::uint64_t a = 0;

    sim::Tick duration() const { return end - begin; }
};

/**
 * TraceSink that folds events into Spans.  Feed it events in
 * emission order (live, or replayed from a file), then call
 * finish(now) once; spans() returns every completed interval and
 * instants() the point events worth plotting (Nack, Fail,
 * SegmentFail/Repair, BusSevered, MessageRecovered, WatchdogFire).
 */
class SpanBuilder final : public TraceSink
{
  public:
    void onEvent(const TraceEvent &event) override;

    /**
     * Close every span still open at @p now, flagging it open=true.
     * Idempotent; onEvent must not be called afterwards.
     */
    void finish(sim::Tick now);

    /** Completed spans, in completion order. */
    const std::vector<Span> &spans() const { return spans_; }

    /** Plot-worthy point events, in emission order. */
    const std::vector<TraceEvent> &instants() const
    {
        return instants_;
    }

    /** Durations of every *cleanly closed* span of @p kind. */
    const sim::SampleStat &phaseStat(SpanKind kind) const;

    /** Events folded so far. */
    std::uint64_t eventCount() const { return eventCount_; }

  private:
    void close(Span span, sim::Tick end);
    void closeOpenMessagePhases(const TraceEvent &event,
                                bool severed);

    static std::uint64_t
    segKey(std::uint32_t gap, std::int32_t level)
    {
        return (static_cast<std::uint64_t>(gap) << 32) |
               static_cast<std::uint32_t>(level);
    }

    std::vector<Span> spans_;
    std::vector<TraceEvent> instants_;
    sim::SampleStat phaseStats_[kNumSpanKinds];
    std::uint64_t eventCount_ = 0;
    bool finished_ = false;

    std::map<std::uint64_t, Span> openSetup_;     //!< by message
    std::map<std::uint64_t, Span> openStreaming_; //!< by message
    std::map<std::uint64_t, Span> openBlocked_;   //!< by message
    struct OpenTeardown
    {
        Span span;
        bool sawFree = false;
    };
    std::map<std::uint64_t, OpenTeardown> openTeardown_; //!< by bus
    std::map<std::uint64_t, Span> openSegments_; //!< by (gap,level)
    std::map<std::uint64_t, Span> openMoves_; //!< by (gap,fromLevel)
    std::map<std::uint32_t, Span> openCycles_;   //!< by INC index
};

/**
 * Offline causality checker.  Walks @p events (emission order) and
 * returns one human-readable line per violated protocol law:
 *
 * - timestamps must be non-decreasing,
 * - a message's Hack needs a prior Inject, its Deliver a prior Hack,
 * - every segment is freed exactly once per occupation and never
 *   double-claimed,
 * - a delivered message's bus must start a Fack teardown and have
 *   every segment freed by trace end (a dropped Fack leaks the bus),
 * - Lemma 1: adjacent INC cycle counts never drift more than 1
 *   apart (from CycleFlip events).
 *
 * Empty result == healthy trace.
 */
std::vector<std::string>
checkTrace(const std::vector<TraceEvent> &events);

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_SPAN_HH
