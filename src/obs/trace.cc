#include "obs/trace.hh"

#include <sstream>

#include "common/logging.hh"

namespace rmb {
namespace obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Inject: return "inject";
      case EventKind::HeaderHop: return "header_hop";
      case EventKind::Block: return "block";
      case EventKind::Unblock: return "unblock";
      case EventKind::Hack: return "hack";
      case EventKind::Nack: return "nack";
      case EventKind::Retry: return "retry";
      case EventKind::Backoff: return "backoff";
      case EventKind::DataFlit: return "data_flit";
      case EventKind::Dack: return "dack";
      case EventKind::Deliver: return "deliver";
      case EventKind::Fail: return "fail";
      case EventKind::Teardown: return "teardown";
      case EventKind::CompactionMake: return "compaction_make";
      case EventKind::CompactionBreak: return "compaction_break";
      case EventKind::CycleFlip: return "cycle_flip";
      case EventKind::SegmentFail: return "segment_fail";
      case EventKind::SegmentRepair: return "segment_repair";
      case EventKind::BusSevered: return "bus_severed";
      case EventKind::MessageRecovered: return "message_recovered";
      case EventKind::WatchdogFire: return "watchdog_fire";
      case EventKind::SegmentFree: return "segment_free";
    }
    panic("unknown EventKind ", static_cast<int>(kind));
}

bool
eventKindFromName(const std::string &name, EventKind &out)
{
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
        EventKind kind = static_cast<EventKind>(k);
        if (name == eventKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::string
toJsonLine(const TraceEvent &event)
{
    // Fixed key set in a fixed order so consumers can parse the
    // lines with anything from jq to a CSV-minded awk script.
    std::ostringstream out;
    out << "{\"at\":" << event.at
        << ",\"kind\":\"" << eventKindName(event.kind) << '"'
        << ",\"msg\":" << event.message
        << ",\"bus\":" << event.bus
        << ",\"node\":" << event.node
        << ",\"gap\":" << event.gap
        << ",\"level\":" << event.level
        << ",\"a\":" << event.a
        << ",\"b\":" << event.b << '}';
    return out.str();
}

std::string
formatEvent(const TraceEvent &event)
{
    std::ostringstream out;
    out << '[' << event.at << "] " << eventKindName(event.kind);
    if (event.message != 0)
        out << " msg=" << event.message;
    if (event.bus != 0)
        out << " bus=" << event.bus;
    out << " node=" << event.node;
    if (event.level >= 0)
        out << " gap=" << event.gap << " level=" << event.level;
    if (event.a != 0 || event.b != 0)
        out << " a=" << event.a;
    if (event.b != 0)
        out << " b=" << event.b;
    return out.str();
}

} // namespace obs
} // namespace rmb
