#include "obs/run_report.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace rmb {
namespace obs {

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {}

void
RunReport::set(const std::string &key, const std::string &value)
{
    fields_.emplace_back(key, '"' + jsonEscape(value) + '"');
}

void
RunReport::set(const std::string &key, const char *value)
{
    set(key, std::string(value));
}

void
RunReport::set(const std::string &key, std::uint64_t value)
{
    fields_.emplace_back(key, std::to_string(value));
}

void
RunReport::set(const std::string &key, std::int64_t value)
{
    fields_.emplace_back(key, std::to_string(value));
}

void
RunReport::set(const std::string &key, double value)
{
    if (std::isnan(value) || std::isinf(value)) {
        fields_.emplace_back(key, "null");
        return;
    }
    std::ostringstream out;
    out << value;
    fields_.emplace_back(key, out.str());
}

void
RunReport::set(const std::string &key, bool value)
{
    fields_.emplace_back(key, value ? "true" : "false");
}

void
RunReport::setRaw(const std::string &key, std::string json)
{
    fields_.emplace_back(key, std::move(json));
}

std::string
RunReport::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.field("tool", tool_);
    for (const auto &[key, value] : fields_)
        json.raw(key, value);
    json.endObject();
    return json.str();
}

void
RunReport::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open report file '", path, "' for writing");
    out << toJson() << '\n';
    if (!out)
        fatal("write to report file '", path, "' failed");
}

} // namespace obs
} // namespace rmb
