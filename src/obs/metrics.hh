/**
 * @file
 * Unified metrics registry.
 *
 * Every statistic a network maintains lives in one MetricsRegistry
 * under a stable dotted name ("rmb.compaction.moves"), in one of
 * three shapes:
 *
 * - Counter: a monotonic (or max-tracking) integer,
 * - sampler:  a sim::SampleStat distribution,
 * - level:    a sim::LevelTracker time-weighted level.
 *
 * The typed stats structs (net::NetworkStats, core::RmbStats) are
 * thin views holding references into the registry, so existing
 * field-style call sites keep compiling while snapshot() can
 * serialise every metric generically.
 */

#ifndef RMB_OBS_METRICS_HH
#define RMB_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace rmb {
namespace obs {

/**
 * A named integer metric.  Converts implicitly to std::uint64_t so
 * it drops into arithmetic and comparisons like the plain counter
 * fields it replaced; assignment supports max-tracking gauges
 * (`if (x > c) c = x;`).
 */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    Counter &
    operator=(std::uint64_t v)
    {
        value_ = v;
        return *this;
    }

    operator std::uint64_t() const { return value_; }

    std::uint64_t value() const { return value_; }

    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Owns every metric of one network instance.  Metrics are created on
 * first lookup and live as long as the registry; returned references
 * stay valid across later registrations.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Get or create the counter named @p name. */
    Counter &counter(const std::string &name);

    /** Get or create the sample distribution named @p name. */
    sim::SampleStat &sampler(const std::string &name);

    /** Get or create the level tracker named @p name. */
    sim::LevelTracker &level(const std::string &name);

    /** Get or create the log-bucketed histogram named @p name. */
    LogHistogram &histogram(const std::string &name);

    /** True if a metric of any shape is registered under @p name. */
    bool has(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    std::size_t
    size() const
    {
        return counters_.size() + samplers_.size() + levels_.size() +
               histograms_.size();
    }

    /**
     * Serialise every metric as one JSON object with sub-objects
     * "counters" (name -> integer), "samplers" (name -> moments and
     * percentiles), "levels" (name -> current/max/time-weighted
     * average over [0, @p now]) and "histograms" (name ->
     * count/min/max/mean/p50/p90/p99/buckets).  The "histograms"
     * key is omitted entirely when no histogram is registered, so
     * pre-existing report consumers see byte-identical snapshots.
     */
    std::string snapshot(sim::Tick now) const;

  private:
    /** Panics if @p name already exists with a different shape. */
    void checkShape(const std::string &name, const char *shape) const;

    std::map<std::string, Counter> counters_;
    std::map<std::string, sim::SampleStat> samplers_;
    std::map<std::string, sim::LevelTracker> levels_;
    std::map<std::string, LogHistogram> histograms_;
};

} // namespace obs
} // namespace rmb

#endif // RMB_OBS_METRICS_HH
