#include "obs/metrics.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/json.hh"

namespace rmb {
namespace obs {

Counter &
MetricsRegistry::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        checkShape(name, "counter");
        it = counters_.emplace(name, Counter{}).first;
    }
    return it->second;
}

sim::SampleStat &
MetricsRegistry::sampler(const std::string &name)
{
    auto it = samplers_.find(name);
    if (it == samplers_.end()) {
        checkShape(name, "sampler");
        it = samplers_.emplace(name, sim::SampleStat{}).first;
    }
    return it->second;
}

sim::LevelTracker &
MetricsRegistry::level(const std::string &name)
{
    auto it = levels_.find(name);
    if (it == levels_.end()) {
        checkShape(name, "level");
        it = levels_.emplace(name, sim::LevelTracker{}).first;
    }
    return it->second;
}

LogHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        checkShape(name, "histogram");
        it = histograms_.emplace(name, LogHistogram{}).first;
    }
    return it->second;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return counters_.count(name) || samplers_.count(name) ||
           levels_.count(name) || histograms_.count(name);
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(size());
    for (const auto &[name, metric] : counters_)
        out.push_back(name);
    for (const auto &[name, metric] : samplers_)
        out.push_back(name);
    for (const auto &[name, metric] : levels_)
        out.push_back(name);
    for (const auto &[name, metric] : histograms_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

void
MetricsRegistry::checkShape(const std::string &name,
                            const char *shape) const
{
    rmb_assert(!has(name), "metric '", name,
               "' already registered with a shape other than ",
               shape);
}

std::string
MetricsRegistry::snapshot(sim::Tick now) const
{
    JsonWriter json;
    json.beginObject();
    json.beginObject("counters");
    for (const auto &[name, c] : counters_)
        json.field(name, c.value());
    json.endObject();
    json.beginObject("samplers");
    for (const auto &[name, s] : samplers_) {
        json.beginObject(name);
        json.field("count", s.count());
        json.field("sum", s.sum());
        json.field("mean", s.mean());
        json.field("min", s.min());
        json.field("max", s.max());
        json.field("stddev", s.stddev());
        json.field("p50", s.percentile(50));
        json.field("p95", s.percentile(95));
        json.endObject();
    }
    json.endObject();
    json.beginObject("levels");
    for (const auto &[name, l] : levels_) {
        json.beginObject(name);
        json.field("current", static_cast<std::int64_t>(l.current()));
        json.field("max", static_cast<std::int64_t>(l.maximum()));
        json.field("avg", l.average(now));
        json.endObject();
    }
    json.endObject();
    if (!histograms_.empty()) {
        json.beginObject("histograms");
        for (const auto &[name, h] : histograms_)
            json.raw(name, h.toJson());
        json.endObject();
    }
    json.endObject();
    return json.str();
}

} // namespace obs
} // namespace rmb
