#include "obs/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace rmb {
namespace obs {

std::size_t
LogHistogram::bucketIndex(std::uint64_t value)
{
    if (value == 0)
        return 0;
    std::size_t index = 1;
    while (value > 1) {
        value >>= 1;
        ++index;
    }
    // Values >= 2^63 fold into the top bucket.
    return std::min(index, kNumBuckets - 1);
}

std::uint64_t
LogHistogram::bucketLow(std::size_t index)
{
    rmb_assert(index < kNumBuckets);
    if (index == 0)
        return 0;
    return std::uint64_t{1} << (index - 1);
}

void
LogHistogram::add(std::uint64_t value)
{
    ++buckets_[bucketIndex(value)];
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

double
LogHistogram::mean() const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double
LogHistogram::percentile(double p) const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    p = std::min(1.0, std::max(0.0, p));

    // Nearest-rank: the smallest value with at least ceil(p * count)
    // samples at or below it (so p99 of 5 samples reaches the 5th).
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    target = std::max<std::uint64_t>(1, std::min(target, count_));
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        std::uint64_t n = buckets_[i];
        if (n == 0)
            continue;
        if (below + n >= target) {
            // Interpolate within [low, high) by the fraction of the
            // bucket's samples under the rank, then clamp to the
            // exact observed range.
            double low = static_cast<double>(bucketLow(i));
            double high = i == 0
                ? 1.0
                : static_cast<double>(bucketLow(i)) * 2.0;
            double frac = static_cast<double>(target - below) /
                          static_cast<double>(n);
            double value = low + frac * (high - low);
            value = std::max(value, static_cast<double>(min_));
            value = std::min(value, static_cast<double>(max_));
            return value;
        }
        below += n;
    }
    return static_cast<double>(max_);
}

namespace {

void
appendMoment(std::ostringstream &out, const char *name, double v)
{
    out << '"' << name << "\":";
    if (std::isnan(v))
        out << "null";
    else
        out << v;
}

} // namespace

std::string
LogHistogram::toJson() const
{
    std::ostringstream out;
    out << "{\"count\":" << count_ << ',';
    if (count_ == 0) {
        out << "\"min\":null,\"max\":null,";
    } else {
        out << "\"min\":" << min_ << ",\"max\":" << max_ << ',';
    }
    appendMoment(out, "mean", mean());
    out << ',';
    appendMoment(out, "p50", percentile(0.50));
    out << ',';
    appendMoment(out, "p90", percentile(0.90));
    out << ',';
    appendMoment(out, "p99", percentile(0.99));
    out << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        if (!first)
            out << ',';
        first = false;
        out << '[' << bucketLow(i) << ',' << buckets_[i] << ']';
    }
    out << "]}";
    return out.str();
}

void
LogHistogram::reset()
{
    *this = LogHistogram();
}

} // namespace obs
} // namespace rmb
