#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace rmb {

TextTable::TextTable(std::string caption,
                     std::vector<std::string> headers)
    : caption_(std::move(caption)), headers_(std::move(headers))
{
    rmb_assert(!headers_.empty(), "a table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rmb_assert(cells.size() == headers_.size(),
               "row has ", cells.size(), " cells, expected ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&os, &width]() {
        os << '+';
        for (std::size_t w : width)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&os, &width](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << ' ' << std::setw(static_cast<int>(width[c]))
               << cells[c] << " |";
        os << '\n';
    };

    os << "# " << caption_ << '\n';
    rule();
    line(headers_);
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    os << "# " << caption_ << '\n';
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 < row.size() ? "," : "\n");
}

std::string
TextTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

} // namespace rmb
