/**
 * @file
 * Plain-text table formatter.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * they all print through this class so output is uniform and easy to
 * diff or grep.  Also supports CSV emission for plotting.
 */

#ifndef RMB_COMMON_TABLE_HH
#define RMB_COMMON_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rmb {

/**
 * A right-aligned monospace table with a caption, assembled row by row
 * and rendered to any ostream.
 */
class TextTable
{
  public:
    /** Create a table with the given caption and column headers. */
    TextTable(std::string caption, std::vector<std::string> headers);

    /** Append one row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with box-drawing separators to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (caption emitted as a comment line). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Structured access (JSON emission, tests). */
    const std::string &caption() const { return caption_; }
    const std::vector<std::string> &headers() const
    {
        return headers_;
    }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Format helpers for numeric cells. */
    static std::string num(std::uint64_t v);
    static std::string num(double v, int precision = 2);

  private:
    std::string caption_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rmb

#endif // RMB_COMMON_TABLE_HH
