#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

namespace rmb {

namespace {

struct PanicHook
{
    std::uint64_t id;
    std::function<void()> fn;
};

// The registry is mutated from whichever thread builds or tears
// down a Network (parallel sweeps register hooks from every
// worker), so all access goes through hookMutex().
std::mutex &
hookMutex()
{
    static std::mutex m;
    return m;
}

// Function-local so hook registration works from static
// constructors regardless of link order.
std::vector<PanicHook> &
panicHooks()
{
    static std::vector<PanicHook> hooks;
    return hooks;
}

std::uint64_t nextHookId = 1;

} // namespace

std::uint64_t
addPanicHook(std::function<void()> hook)
{
    const std::lock_guard<std::mutex> lock(hookMutex());
    const std::uint64_t id = nextHookId++;
    panicHooks().push_back(PanicHook{id, std::move(hook)});
    return id;
}

void
removePanicHook(std::uint64_t id)
{
    const std::lock_guard<std::mutex> lock(hookMutex());
    auto &hooks = panicHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->id == id) {
            hooks.erase(it);
            return;
        }
    }
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    // Run the post-mortem hooks (newest first), but never re-enter
    // them: a hook that panics would otherwise recurse forever.
    // Snapshot under the lock and run outside it, so a hook that
    // touches the registry can't deadlock.
    static std::atomic<bool> inPanic{false};
    if (!inPanic.exchange(true)) {
        std::vector<std::function<void()>> fns;
        {
            const std::lock_guard<std::mutex> lock(hookMutex());
            auto &hooks = panicHooks();
            fns.reserve(hooks.size());
            for (auto it = hooks.rbegin(); it != hooks.rend(); ++it)
                fns.push_back(it->fn);
        }
        for (auto &fn : fns)
            fn();
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace rmb
