#include "common/logging.hh"

#include <cstdio>
#include <utility>
#include <vector>

namespace rmb {

namespace {

struct PanicHook
{
    std::uint64_t id;
    std::function<void()> fn;
};

// Function-local so hook registration works from static
// constructors regardless of link order.
std::vector<PanicHook> &
panicHooks()
{
    static std::vector<PanicHook> hooks;
    return hooks;
}

std::uint64_t nextHookId = 1;

} // namespace

std::uint64_t
addPanicHook(std::function<void()> hook)
{
    const std::uint64_t id = nextHookId++;
    panicHooks().push_back(PanicHook{id, std::move(hook)});
    return id;
}

void
removePanicHook(std::uint64_t id)
{
    auto &hooks = panicHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->id == id) {
            hooks.erase(it);
            return;
        }
    }
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    // Run the post-mortem hooks (newest first), but never re-enter
    // them: a hook that panics would otherwise recurse forever.
    static bool inPanic = false;
    if (!inPanic) {
        inPanic = true;
        auto &hooks = panicHooks();
        for (auto it = hooks.rbegin(); it != hooks.rend(); ++it)
            it->fn();
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace rmb
