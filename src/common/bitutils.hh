/**
 * @file
 * Small integer/bit helpers used across the RMB codebase.
 */

#ifndef RMB_COMMON_BITUTILS_HH
#define RMB_COMMON_BITUTILS_HH

#include <cstdint>

#include "common/logging.hh"

namespace rmb {

/** @return true iff @p v is a (non-zero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be non-zero. */
constexpr std::uint32_t
log2Floor(std::uint64_t v)
{
    std::uint32_t r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** @return ceil(log2(v)); @p v must be non-zero. */
constexpr std::uint32_t
log2Ceil(std::uint64_t v)
{
    return log2Floor(v) + (isPowerOfTwo(v) ? 0 : 1);
}

/**
 * Reverse the low @p bits bits of @p v (used by the bit-reversal
 * permutation workload).
 */
constexpr std::uint64_t
bitReverse(std::uint64_t v, std::uint32_t bits)
{
    std::uint64_t r = 0;
    for (std::uint32_t i = 0; i < bits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

/** @return ceil(a / b) for positive integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace rmb

#endif // RMB_COMMON_BITUTILS_HH
