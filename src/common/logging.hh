/**
 * @file
 * Error reporting and status message helpers.
 *
 * Follows the gem5 convention: panic() flags an internal simulator bug
 * and aborts; fatal() flags a user error (bad configuration, invalid
 * arguments) and exits cleanly with an error code; warn() and inform()
 * print status without stopping the simulation.
 */

#ifndef RMB_COMMON_LOGGING_HH
#define RMB_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace rmb {

/**
 * Register @p hook to run after a panic message is printed but
 * before abort().  Used by flight recorders (RingBufferSink) to dump
 * post-mortem context when an invariant trips.  Hooks run newest
 * first; a hook that itself panics is not re-entered.
 * @return an id for removePanicHook().
 */
std::uint64_t addPanicHook(std::function<void()> hook);

/** Unregister a hook; unknown ids are ignored (idempotent). */
void removePanicHook(std::uint64_t id);

namespace detail {

/** Terminate after printing a panic (internal bug) message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate after printing a fatal (user error) message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning message to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stdout. */
void informImpl(const std::string &msg);

/** Concatenate a list of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace rmb

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 * Accepts a list of streamable values, e.g. panic("bad level ", l).
 */
#define panic(...) \
    ::rmb::detail::panicImpl(__FILE__, __LINE__, \
                             ::rmb::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user error (bad config) and exit(1). */
#define fatal(...) \
    ::rmb::detail::fatalImpl(__FILE__, __LINE__, \
                             ::rmb::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define warn(...) \
    ::rmb::detail::warnImpl(__FILE__, __LINE__, \
                            ::rmb::detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...) \
    ::rmb::detail::informImpl(::rmb::detail::concat(__VA_ARGS__))

/**
 * Always-on invariant check; unlike assert() it survives NDEBUG and
 * reports through panic() so failures carry file/line context.
 */
#define rmb_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            panic("assertion '" #cond "' failed. ", \
                  ::rmb::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#endif // RMB_COMMON_LOGGING_HH
