/**
 * @file
 * Abstract interconnection-network interface.
 *
 * The workload drivers and comparison benches run against this
 * interface so the RMB and every baseline (mesh, hypercube, EHC,
 * fat tree, arbitrated multibus) are measured by identical harness
 * code.
 */

#ifndef RMB_NETBASE_NETWORK_HH
#define RMB_NETBASE_NETWORK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "netbase/message.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace rmb {
namespace net {

/** Aggregate statistics every network implementation maintains. */
struct NetworkStats
{
    std::uint64_t injected = 0;    //!< messages handed to send()
    std::uint64_t delivered = 0;   //!< messages fully delivered
    std::uint64_t failed = 0;      //!< gave up (bounded retries)
    std::uint64_t nacks = 0;       //!< destination-busy refusals
    std::uint64_t retries = 0;     //!< re-injections

    sim::SampleStat queueDelay;    //!< created -> first injection
    sim::SampleStat setupLatency;  //!< injection -> established
    sim::SampleStat totalLatency;  //!< created -> delivered
    sim::SampleStat pathLength;    //!< hops traversed

    /** Concurrently open circuits (virtual buses). */
    sim::LevelTracker activeCircuits;
};

/**
 * Base class for circuit-switched networks simulated on the shared
 * DES kernel.  Handles message registry, statistics and delivery
 * callbacks; subclasses implement the actual switching fabric.
 */
class Network
{
  public:
    using DeliveryCallback = std::function<void(const Message &)>;

    Network(sim::Simulator &simulator, std::string name,
            NodeId num_nodes);
    virtual ~Network() = default;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Human-readable architecture name (used in bench tables). */
    const std::string &name() const { return name_; }

    /** Number of processing nodes. */
    NodeId numNodes() const { return numNodes_; }

    /**
     * Enqueue a message of @p payload_flits data flits from @p src to
     * @p dst.  The network injects it as soon as the source's
     * injection rules allow.  @p src must differ from @p dst.
     * @return the id used to query the message later.
     */
    virtual MessageId send(NodeId src, NodeId dst,
                           std::uint32_t payload_flits) = 0;

    /** Look up a message by id. */
    const Message &message(MessageId id) const;

    /** Total messages ever created (ids run 1..numMessages()). */
    std::uint64_t numMessages() const { return messages_.size(); }

    /** @return true once every sent message was delivered or has
     *  permanently failed. */
    bool
    quiescent() const
    {
        return stats_.delivered + stats_.failed == stats_.injected;
    }

    /** Aggregate statistics. */
    const NetworkStats &stats() const { return stats_; }

    /** Invoked whenever a message is delivered. */
    void
    setDeliveryCallback(DeliveryCallback cb)
    {
        deliveryCallback_ = std::move(cb);
    }

    /** Invoked whenever a message permanently fails. */
    void
    setFailureCallback(DeliveryCallback cb)
    {
        failureCallback_ = std::move(cb);
    }

    sim::Simulator &simulator() { return simulator_; }
    const sim::Simulator &simulator() const { return simulator_; }

  protected:
    /** Allocate and register a new message record. */
    Message &createMessage(NodeId src, NodeId dst,
                           std::uint32_t payload_flits);

    /** Mutable access for subclasses driving the lifecycle. */
    Message &messageRef(MessageId id);

    /** Record the first injection attempt of @p m at time now. */
    void noteFirstAttempt(Message &m);

    /** Record circuit establishment (Hack at source). */
    void noteEstablished(Message &m);

    /** Record a destination-busy Nack. */
    void noteNack(Message &m);

    /** Record a re-injection. */
    void noteRetry(Message &m);

    /** Record delivery, update stats and fire the callback. */
    void noteDelivered(Message &m, std::uint32_t path_hops);

    /** Record permanent failure (bounded retries exhausted). */
    void noteFailed(Message &m);

    /** Track open-circuit count (+1 on open, -1 on close). */
    void noteCircuit(std::int64_t delta);

    NetworkStats stats_;

  private:
    sim::Simulator &simulator_;
    std::string name_;
    NodeId numNodes_;
    std::deque<Message> messages_;
    DeliveryCallback deliveryCallback_;
    DeliveryCallback failureCallback_;
};

} // namespace net
} // namespace rmb

#endif // RMB_NETBASE_NETWORK_HH
