/**
 * @file
 * Abstract interconnection-network interface.
 *
 * The workload drivers and comparison benches run against this
 * interface so the RMB and every baseline (mesh, hypercube, EHC,
 * fat tree, arbitrated multibus) are measured by identical harness
 * code.
 */

#ifndef RMB_NETBASE_NETWORK_HH
#define RMB_NETBASE_NETWORK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "netbase/message.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace rmb {
namespace net {

/**
 * Typed view of the aggregate statistics every network maintains.
 * The metrics themselves live in the owning network's
 * obs::MetricsRegistry under the "net." prefix; this struct holds
 * references so existing field-style call sites keep working while
 * MetricsRegistry::snapshot() serialises everything generically.
 */
struct NetworkStats
{
    explicit NetworkStats(obs::MetricsRegistry &registry);
    NetworkStats(const NetworkStats &) = delete;
    NetworkStats &operator=(const NetworkStats &) = delete;

    obs::Counter &injected;    //!< messages handed to send()
    obs::Counter &delivered;   //!< messages fully delivered
    obs::Counter &failed;      //!< gave up (bounded retries)
    obs::Counter &nacks;       //!< destination-busy refusals
    obs::Counter &retries;     //!< re-injections

    sim::SampleStat &queueDelay;    //!< created -> first injection
    sim::SampleStat &setupLatency;  //!< injection -> established
    sim::SampleStat &totalLatency;  //!< created -> delivered
    sim::SampleStat &pathLength;    //!< hops traversed

    /** Concurrently open circuits (virtual buses). */
    sim::LevelTracker &activeCircuits;

    /** Log-bucketed injection -> established latencies (p50/90/99). */
    obs::LogHistogram &setupLatencyHist;
    /** Log-bucketed established -> delivered (data-phase) times. */
    obs::LogHistogram &dataPhaseHist;
};

/**
 * Base class for circuit-switched networks simulated on the shared
 * DES kernel.  Handles message registry, statistics and delivery
 * callbacks; subclasses implement the actual switching fabric.
 */
class Network
{
  public:
    using DeliveryCallback = std::function<void(const Message &)>;

    Network(sim::Simulator &simulator, std::string name,
            NodeId num_nodes);
    virtual ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Human-readable architecture name (used in bench tables). */
    const std::string &name() const { return name_; }

    /** Number of processing nodes. */
    NodeId numNodes() const { return numNodes_; }

    /**
     * Enqueue a message of @p payload_flits data flits from @p src to
     * @p dst.  The network injects it as soon as the source's
     * injection rules allow.  @p src must differ from @p dst.
     * @return the id used to query the message later.
     */
    virtual MessageId send(NodeId src, NodeId dst,
                           std::uint32_t payload_flits) = 0;

    /** Look up a message by id. */
    const Message &message(MessageId id) const;

    /** Total messages ever created (ids run 1..numMessages()). */
    std::uint64_t numMessages() const { return messages_.size(); }

    /** @return true once every sent message was delivered or has
     *  permanently failed. */
    bool
    quiescent() const
    {
        return stats_.delivered + stats_.failed == stats_.injected;
    }

    /** Aggregate statistics. */
    const NetworkStats &stats() const { return stats_; }

    /** The registry every statistic of this network lives in. */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Attach @p sink to receive one TraceEvent per protocol action
     * (nullptr detaches).  The sink is borrowed, not owned, and must
     * outlive the network or be detached first; with no sink
     * attached, emission sites cost a single branch.  While a sink
     * is attached its postMortem() is registered as a panic hook, so
     * flight recorders (RingBufferSink) dump their tail to stderr
     * when an invariant audit fails.
     */
    void setTraceSink(obs::TraceSink *sink);

    /** The currently attached sink (nullptr when tracing is off). */
    obs::TraceSink *traceSink() const { return traceSink_; }

    /** Invoked whenever a message is delivered. */
    void
    setDeliveryCallback(DeliveryCallback cb)
    {
        deliveryCallback_ = std::move(cb);
    }

    /** Invoked whenever a message permanently fails. */
    void
    setFailureCallback(DeliveryCallback cb)
    {
        failureCallback_ = std::move(cb);
    }

    sim::Simulator &simulator() { return simulator_; }
    const sim::Simulator &simulator() const { return simulator_; }

  protected:
    /** Allocate and register a new message record. */
    Message &createMessage(NodeId src, NodeId dst,
                           std::uint32_t payload_flits);

    /** Mutable access for subclasses driving the lifecycle. */
    Message &messageRef(MessageId id);

    /** Record the first injection attempt of @p m at time now. */
    void noteFirstAttempt(Message &m);

    /** Record circuit establishment (Hack at source). */
    void noteEstablished(Message &m);

    /** Record a destination-busy Nack. */
    void noteNack(Message &m);

    /** Record a re-injection. */
    void noteRetry(Message &m);

    /** Record delivery, update stats and fire the callback. */
    void noteDelivered(Message &m, std::uint32_t path_hops);

    /** Record permanent failure (bounded retries exhausted). */
    void noteFailed(Message &m);

    /** Track open-circuit count (+1 on open, -1 on close). */
    void noteCircuit(std::int64_t delta);

    /** True when a trace sink is attached (guard event assembly). */
    bool tracing() const { return traceSink_ != nullptr; }

    /** Deliver @p event to the attached sink, if any. */
    void
    emitTrace(const obs::TraceEvent &event)
    {
        if (traceSink_)
            traceSink_->onEvent(event);
    }

  private:
    sim::Simulator &simulator_;
    /** Declared before stats_: the stats views reference into it. */
    obs::MetricsRegistry metrics_;

  protected:
    NetworkStats stats_;

  private:
    std::string name_;
    NodeId numNodes_;
    std::deque<Message> messages_;
    DeliveryCallback deliveryCallback_;
    DeliveryCallback failureCallback_;
    obs::TraceSink *traceSink_ = nullptr;
    std::uint64_t panicHookId_ = 0; //!< 0 = no hook registered
};

} // namespace net
} // namespace rmb

#endif // RMB_NETBASE_NETWORK_HH
