/**
 * @file
 * Message bookkeeping shared by the RMB network and all baselines.
 *
 * A message models the paper's unit of communication: a header flit
 * (HF), a payload of data flits (DF) and a final flit (FF).  The
 * structure records every timestamp the benches report on.
 */

#ifndef RMB_NETBASE_MESSAGE_HH
#define RMB_NETBASE_MESSAGE_HH

#include <cstdint>

#include "sim/types.hh"

namespace rmb {
namespace net {

/** Index of a node (PE + network controller) in [0, N). */
using NodeId = std::uint32_t;

/** Unique id of one message within one network instance. */
using MessageId = std::uint64_t;

/** Sentinel id for "no message". */
constexpr MessageId kNoMessage = 0;

/** Lifecycle of a message. */
enum class MessageState : std::uint8_t
{
    Queued,     //!< created, waiting to inject (source busy/backoff)
    Setup,      //!< header in flight, circuit being established
    Streaming,  //!< Hack received, data flits flowing
    Delivered,  //!< final flit accepted at the destination
    Failed,     //!< permanently failed (only if retries are bounded)
};

/** One point-to-point message and its lifetime timestamps. */
struct Message
{
    MessageId id = kNoMessage;
    NodeId src = 0;
    NodeId dst = 0;
    /** Number of data flits between HF and FF. */
    std::uint32_t payloadFlits = 0;

    MessageState state = MessageState::Queued;

    sim::Tick created = 0;        //!< enqueued at the source PE
    sim::Tick firstAttempt = 0;   //!< first HF injection
    sim::Tick established = 0;    //!< Hack received at the source
    sim::Tick delivered = 0;      //!< FF accepted at the destination

    /** Number of Nacks (destination busy) this message absorbed. */
    std::uint32_t nacks = 0;
    /** Number of re-injections after Nack or local blocking. */
    std::uint32_t retries = 0;
    /** Hops of the delivering circuit (0 until Delivered). */
    std::uint32_t pathHops = 0;

    /** Ticks from creation to delivery. */
    sim::Tick
    totalLatency() const
    {
        return delivered - created;
    }

    /** Ticks from first injection to circuit establishment. */
    sim::Tick
    setupLatency() const
    {
        return established - firstAttempt;
    }
};

} // namespace net
} // namespace rmb

#endif // RMB_NETBASE_MESSAGE_HH
