#include "netbase/network.hh"

#include "common/logging.hh"

namespace rmb {
namespace net {

Network::Network(sim::Simulator &simulator, std::string name,
                 NodeId num_nodes)
    : simulator_(simulator), name_(std::move(name)),
      numNodes_(num_nodes)
{
    rmb_assert(numNodes_ >= 2, "a network needs at least two nodes");
}

Message &
Network::createMessage(NodeId src, NodeId dst,
                       std::uint32_t payload_flits)
{
    rmb_assert(src < numNodes_ && dst < numNodes_,
               "node id out of range: src=", src, " dst=", dst,
               " N=", numNodes_);
    rmb_assert(src != dst, "self-messages are not supported");
    Message m;
    // Ids are 1-based so kNoMessage (0) stays free.
    m.id = messages_.size() + 1;
    m.src = src;
    m.dst = dst;
    m.payloadFlits = payload_flits;
    m.created = simulator_.now();
    messages_.push_back(m);
    ++stats_.injected;
    return messages_.back();
}

const Message &
Network::message(MessageId id) const
{
    rmb_assert(id != kNoMessage && id <= messages_.size(),
               "unknown message id ", id);
    return messages_[id - 1];
}

Message &
Network::messageRef(MessageId id)
{
    rmb_assert(id != kNoMessage && id <= messages_.size(),
               "unknown message id ", id);
    return messages_[id - 1];
}

void
Network::noteFirstAttempt(Message &m)
{
    m.firstAttempt = simulator_.now();
    m.state = MessageState::Setup;
    stats_.queueDelay.add(
        static_cast<double>(m.firstAttempt - m.created));
}

void
Network::noteEstablished(Message &m)
{
    m.established = simulator_.now();
    m.state = MessageState::Streaming;
    stats_.setupLatency.add(
        static_cast<double>(m.established - m.firstAttempt));
}

void
Network::noteNack(Message &m)
{
    ++m.nacks;
    ++stats_.nacks;
}

void
Network::noteRetry(Message &m)
{
    ++m.retries;
    ++stats_.retries;
}

void
Network::noteDelivered(Message &m, std::uint32_t path_hops)
{
    m.delivered = simulator_.now();
    m.state = MessageState::Delivered;
    ++stats_.delivered;
    stats_.totalLatency.add(static_cast<double>(m.totalLatency()));
    stats_.pathLength.add(static_cast<double>(path_hops));
    if (deliveryCallback_)
        deliveryCallback_(m);
}

void
Network::noteFailed(Message &m)
{
    m.state = MessageState::Failed;
    ++stats_.failed;
    if (failureCallback_)
        failureCallback_(m);
}

void
Network::noteCircuit(std::int64_t delta)
{
    stats_.activeCircuits.adjust(simulator_.now(), delta);
}

} // namespace net
} // namespace rmb
