#include "netbase/network.hh"

#include <iostream>

#include "common/logging.hh"

namespace rmb {
namespace net {

NetworkStats::NetworkStats(obs::MetricsRegistry &registry)
    : injected(registry.counter("net.injected")),
      delivered(registry.counter("net.delivered")),
      failed(registry.counter("net.failed")),
      nacks(registry.counter("net.nacks")),
      retries(registry.counter("net.retries")),
      queueDelay(registry.sampler("net.queue_delay")),
      setupLatency(registry.sampler("net.setup_latency")),
      totalLatency(registry.sampler("net.total_latency")),
      pathLength(registry.sampler("net.path_length")),
      activeCircuits(registry.level("net.active_circuits")),
      setupLatencyHist(registry.histogram("net.hist.setup_latency")),
      dataPhaseHist(registry.histogram("net.hist.data_phase"))
{}

Network::Network(sim::Simulator &simulator, std::string name,
                 NodeId num_nodes)
    : simulator_(simulator), stats_(metrics_),
      name_(std::move(name)), numNodes_(num_nodes)
{
    rmb_assert(numNodes_ >= 2, "a network needs at least two nodes");
}

Network::~Network()
{
    if (panicHookId_ != 0)
        removePanicHook(panicHookId_);
}

void
Network::setTraceSink(obs::TraceSink *sink)
{
    if (panicHookId_ != 0) {
        removePanicHook(panicHookId_);
        panicHookId_ = 0;
    }
    traceSink_ = sink;
    if (sink != nullptr) {
        panicHookId_ = addPanicHook(
            [sink] { sink->postMortem(std::cerr); });
    }
}

Message &
Network::createMessage(NodeId src, NodeId dst,
                       std::uint32_t payload_flits)
{
    rmb_assert(src < numNodes_ && dst < numNodes_,
               "node id out of range: src=", src, " dst=", dst,
               " N=", numNodes_);
    rmb_assert(src != dst, "self-messages are not supported");
    Message m;
    // Ids are 1-based so kNoMessage (0) stays free.
    m.id = messages_.size() + 1;
    m.src = src;
    m.dst = dst;
    m.payloadFlits = payload_flits;
    m.created = simulator_.now();
    messages_.push_back(m);
    ++stats_.injected;
    return messages_.back();
}

const Message &
Network::message(MessageId id) const
{
    rmb_assert(id != kNoMessage && id <= messages_.size(),
               "unknown message id ", id, " (valid ids are 1..",
               messages_.size(), ")");
    return messages_[id - 1];
}

Message &
Network::messageRef(MessageId id)
{
    rmb_assert(id != kNoMessage && id <= messages_.size(),
               "unknown message id ", id, " (valid ids are 1..",
               messages_.size(), ")");
    return messages_[id - 1];
}

void
Network::noteFirstAttempt(Message &m)
{
    m.firstAttempt = simulator_.now();
    m.state = MessageState::Setup;
    stats_.queueDelay.add(
        static_cast<double>(m.firstAttempt - m.created));
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Inject;
        e.at = m.firstAttempt;
        e.message = m.id;
        e.node = m.src;
        e.a = m.dst;
        e.b = m.payloadFlits;
        emitTrace(e);
    }
}

void
Network::noteEstablished(Message &m)
{
    m.established = simulator_.now();
    m.state = MessageState::Streaming;
    stats_.setupLatency.add(
        static_cast<double>(m.established - m.firstAttempt));
    stats_.setupLatencyHist.add(m.established - m.firstAttempt);
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Hack;
        e.at = m.established;
        e.message = m.id;
        e.node = m.src;
        emitTrace(e);
    }
}

void
Network::noteNack(Message &m)
{
    ++m.nacks;
    ++stats_.nacks;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Nack;
        e.at = simulator_.now();
        e.message = m.id;
        e.node = m.dst;
        e.a = obs::kNackDestBusy;
        emitTrace(e);
    }
}

void
Network::noteRetry(Message &m)
{
    ++m.retries;
    ++stats_.retries;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Retry;
        e.at = simulator_.now();
        e.message = m.id;
        e.node = m.src;
        e.a = m.retries;
        emitTrace(e);
    }
}

void
Network::noteDelivered(Message &m, std::uint32_t path_hops)
{
    m.delivered = simulator_.now();
    m.state = MessageState::Delivered;
    m.pathHops = path_hops;
    ++stats_.delivered;
    stats_.totalLatency.add(static_cast<double>(m.totalLatency()));
    stats_.pathLength.add(static_cast<double>(path_hops));
    // Some baselines deliver without a distinct establishment step;
    // only a real Hack gives the data phase a defined start.
    if (m.established != 0)
        stats_.dataPhaseHist.add(m.delivered - m.established);
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Deliver;
        e.at = m.delivered;
        e.message = m.id;
        e.node = m.dst;
        e.a = path_hops;
        emitTrace(e);
    }
    if (deliveryCallback_)
        deliveryCallback_(m);
}

void
Network::noteFailed(Message &m)
{
    m.state = MessageState::Failed;
    ++stats_.failed;
    if (tracing()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::Fail;
        e.at = simulator_.now();
        e.message = m.id;
        e.node = m.src;
        e.a = m.retries;
        emitTrace(e);
    }
    if (failureCallback_)
        failureCallback_(m);
}

void
Network::noteCircuit(std::int64_t delta)
{
    stats_.activeCircuits.adjust(simulator_.now(), delta);
}

} // namespace net
} // namespace rmb
