#include "baselines/kary_ncube.hh"

#include "common/logging.hh"

namespace rmb {
namespace baseline {

namespace {

std::uint32_t
power(std::uint32_t base, std::uint32_t exp)
{
    std::uint64_t v = 1;
    for (std::uint32_t i = 0; i < exp; ++i) {
        v *= base;
        if (v > (1u << 24))
            fatal("k-ary n-cube too large: ", base, "^", exp);
    }
    return static_cast<std::uint32_t>(v);
}

std::uint32_t
validatedNodes(std::uint32_t radix, std::uint32_t dimensions)
{
    if (radix < 2)
        fatal("k-ary n-cube needs radix >= 2, got ", radix);
    if (dimensions < 1)
        fatal("k-ary n-cube needs >= 1 dimension");
    return power(radix, dimensions);
}

} // namespace

KaryNcubeNetwork::KaryNcubeNetwork(sim::Simulator &simulator,
                                   std::uint32_t radix,
                                   std::uint32_t dimensions,
                                   const CircuitConfig &config,
                                   std::uint32_t channels)
    : CircuitNetwork(simulator,
                     std::to_string(radix) + "-ary " +
                         std::to_string(dimensions) + "-cube",
                     validatedNodes(radix, dimensions), config),
      radix_(radix), dimensions_(dimensions)
{
    stride_.resize(dimensions_);
    for (std::uint32_t d = 0; d < dimensions_; ++d)
        stride_[d] = power(radix_, d);

    const std::uint32_t n = numNodes();
    links_.resize(static_cast<std::size_t>(n) * dimensions_ * 2);
    for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t d = 0; d < dimensions_; ++d) {
            for (const bool plus : {false, true}) {
                links_[(static_cast<std::size_t>(u) * dimensions_ +
                        d) * 2 +
                       (plus ? 1 : 0)] = addLink(channels);
            }
        }
    }
}

std::uint32_t
KaryNcubeNetwork::digit(net::NodeId u, std::uint32_t d) const
{
    return (u / stride_[d]) % radix_;
}

LinkId
KaryNcubeNetwork::linkFrom(net::NodeId u, std::uint32_t d,
                           bool plus) const
{
    return links_[(static_cast<std::size_t>(u) * dimensions_ + d) *
                      2 +
                  (plus ? 1 : 0)];
}

std::vector<LinkId>
KaryNcubeNetwork::route(net::NodeId src, net::NodeId dst) const
{
    std::vector<LinkId> path;
    net::NodeId cur = src;
    for (std::uint32_t d = 0; d < dimensions_; ++d) {
        const std::uint32_t from = digit(cur, d);
        const std::uint32_t to = digit(dst, d);
        if (from == to)
            continue;
        // Shorter way around this dimension's ring; ties go +.
        const std::uint32_t fwd = (to + radix_ - from) % radix_;
        const std::uint32_t bwd = radix_ - fwd;
        const bool plus = fwd <= bwd;
        std::uint32_t steps = plus ? fwd : bwd;
        while (steps--) {
            path.push_back(linkFrom(cur, d, plus));
            const std::uint32_t cur_digit = digit(cur, d);
            const std::uint32_t next_digit =
                plus ? (cur_digit + 1) % radix_
                     : (cur_digit + radix_ - 1) % radix_;
            cur = cur - cur_digit * stride_[d] +
                  next_digit * stride_[d];
        }
    }
    rmb_assert(cur == dst, "dimension-order routing failed");
    return path;
}

} // namespace baseline
} // namespace rmb
