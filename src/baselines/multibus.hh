/**
 * @file
 * Conventional (non-reconfigurable) multiple-bus baseline, after
 * Mudge, Hayes & Winsor (paper reference [5]).
 *
 * k global buses connect all N nodes; a message must win one entire
 * bus for its whole circuit lifetime.  Contention is resolved by
 * randomized retry (the same backoff discipline the other networks
 * use).  Contrast with the RMB, whose reconfiguration lets many
 * virtual buses share the k physical buses *spatially* along the
 * ring - the paper's closing remark that "an RMB with k buses should
 * not be considered equivalent of a k bus system".
 */

#ifndef RMB_BASELINES_MULTIBUS_HH
#define RMB_BASELINES_MULTIBUS_HH

#include "baselines/circuit_network.hh"

namespace rmb {
namespace baseline {

/** k shared global buses modelled as one capacity-k medium. */
class MultiBusNetwork : public CircuitNetwork
{
  public:
    MultiBusNetwork(sim::Simulator &simulator, net::NodeId num_nodes,
                    std::uint32_t num_buses,
                    const CircuitConfig &config);

    std::uint32_t numBuses() const { return numBuses_; }

  protected:
    std::vector<LinkId> route(net::NodeId src,
                              net::NodeId dst) const override;

  private:
    std::uint32_t numBuses_;
    LinkId medium_;
};

/**
 * Ideal k-channel ring: the same geometry as the RMB (k parallel
 * links per inter-node gap, clockwise routing) but with free channel
 * assignment per gap - no top-bus injection rule, no +-1 switching
 * constraint, no compaction needed.  Separates the cost of the RMB's
 * restricted (3-way) switches from the ring topology itself.
 */
class IdealRingNetwork : public CircuitNetwork
{
  public:
    IdealRingNetwork(sim::Simulator &simulator, net::NodeId num_nodes,
                     std::uint32_t num_buses,
                     const CircuitConfig &config);

    std::uint32_t numBuses() const { return numBuses_; }

  protected:
    std::vector<LinkId> route(net::NodeId src,
                              net::NodeId dst) const override;

  private:
    std::uint32_t numBuses_;
    std::vector<LinkId> gaps_;
};

} // namespace baseline
} // namespace rmb

#endif // RMB_BASELINES_MULTIBUS_HH
